//! Serving-layer telemetry handles.

use ironsafe_obs::{Counter, Gauge, Histogram, Registry};

/// The server's metric handles, registered under the `serve.*` names.
#[derive(Clone, Default)]
pub struct ServeMetrics {
    /// `serve.sessions.active` — sessions in the Active state.
    pub sessions_active: Gauge,
    /// `serve.queue.depth` — queries admitted but not yet started.
    pub queue_depth: Gauge,
    /// `serve.query.admitted` — queries accepted into a session queue.
    pub admitted: Counter,
    /// `serve.query.rejected` — admissions refused (full queue, busy
    /// server, closed session, shutdown).
    pub rejected: Counter,
    /// `serve.query.completed` — responses delivered (success or
    /// per-request error). Equals `admitted` once the server drains.
    pub completed: Counter,
    /// `serve.violations.audited` — integrity/freshness violations
    /// detected during execution and recorded in the monitor's audit
    /// log before the per-request error was delivered.
    pub violations_audited: Counter,
    /// `serve.flight.dumps` — flight-recorder dumps appended to the
    /// audit trail after a failed execution.
    pub flight_dumps: Counter,
    /// `serve.slo.queue_wait_ns` — wall-clock nanoseconds each admitted
    /// job waited in its session queue before a worker picked it up
    /// (lock-free log2-bucketed SLO histogram).
    pub queue_wait_ns: Histogram,
    /// `serve.slo.service_ns` — wall-clock nanoseconds a worker spent
    /// executing each job (monitor round trip included).
    pub service_ns: Histogram,
}

impl ServeMetrics {
    /// Fresh, unregistered handles.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach every handle to `registry` under its `serve.*` name.
    pub fn register(&self, registry: &Registry) {
        registry.register_gauge("serve.sessions.active", &self.sessions_active);
        registry.register_gauge("serve.queue.depth", &self.queue_depth);
        registry.register_counter("serve.query.admitted", &self.admitted);
        registry.register_counter("serve.query.rejected", &self.rejected);
        registry.register_counter("serve.query.completed", &self.completed);
        registry.register_counter("serve.violations.audited", &self.violations_audited);
        registry.register_counter("serve.flight.dumps", &self.flight_dumps);
        registry.register_histogram("serve.slo.queue_wait_ns", &self.queue_wait_ns);
        registry.register_histogram("serve.slo.service_ns", &self.service_ns);
    }
}
