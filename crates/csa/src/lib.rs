//! # ironsafe-csa
//!
//! The computational-storage architecture: host engine, storage engine,
//! query partitioner, secure channel and the analytic cost model that
//! turns *measured work* (pages read, rows shipped, Merkle nodes visited,
//! EPC faults...) into *simulated time* for the paper's five system
//! configurations (Table 2):
//!
//! | abbrev | system            | split | secure |
//! |--------|-------------------|-------|--------|
//! | `hons` | host-only         | no    | no     |
//! | `hos`  | host-only         | no    | yes    |
//! | `vcs`  | vanilla CS        | yes   | no     |
//! | `scs`  | IronSafe          | yes   | yes    |
//! | `sos`  | storage-only      | no    | yes    |
//!
//! Queries really execute — on real generated data through the real
//! (secure) storage stack — and the cost model only converts the observed
//! operation counts into nanoseconds using parameters calibrated to the
//! paper's testbed (i9-10900K host, 16×A72 storage server, NVMe, 40 GbE).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod cost;
pub mod federation;
pub mod net;
pub mod partition;
pub mod profile;
pub mod shared;
pub mod system;

pub use adaptive::{AdaptiveState, EpcView, Estimate, FragmentStats, PlanMetrics, ReplanPolicy};
pub use cost::{CostBreakdown, CostParams, Interconnect};
pub use federation::{PushdownDepth, QueryBackend};
pub use net::SecureChannel;
pub use profile::{CostTerm, Placement, PlanProfile, ProfileExtras, QueryProfile, ReplanEvent};
pub use shared::{RecoveryReport, SharedCsaSystem};
pub use partition::{partition_select, OffloadDecision, Partition, StorageQuery};
pub use system::{CsaSystem, PartitionStrategy, QueryReport, SystemConfig};

/// Errors raised by the CSA layer.
#[derive(Debug)]
pub enum CsaError {
    /// SQL-level failure.
    Sql(ironsafe_sql::SqlError),
    /// Monitor refused the operation.
    Monitor(ironsafe_monitor::MonitorError),
    /// Channel-level failure (MAC mismatch etc.).
    Channel(&'static str),
    /// Storage-level failure.
    Storage(ironsafe_storage::StorageError),
    /// Federation-level failure (shard exhaustion, degenerate sharding
    /// config, unsupported federated operation). Carried as a rendered
    /// string so the CSA layer does not depend on `ironsafe-scale`.
    Federation(String),
}

impl std::fmt::Display for CsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsaError::Sql(e) => write!(f, "sql: {e}"),
            CsaError::Monitor(e) => write!(f, "monitor: {e}"),
            CsaError::Channel(m) => write!(f, "channel: {m}"),
            CsaError::Storage(e) => write!(f, "storage: {e}"),
            CsaError::Federation(m) => write!(f, "federation: {m}"),
        }
    }
}

impl std::error::Error for CsaError {}

impl ironsafe_faults::Transient for CsaError {
    /// Channel faults (drop/corrupt/reorder) clear on retransmission;
    /// storage faults delegate to [`ironsafe_storage::StorageError`]
    /// (including ones the SQL engine wrapped while driving the pager).
    /// SQL and monitor errors are deterministic decisions, never noise.
    fn is_transient(&self) -> bool {
        match self {
            CsaError::Channel(_) => true,
            CsaError::Storage(e) => e.is_transient(),
            CsaError::Sql(ironsafe_sql::SqlError::Storage(e)) => e.is_transient(),
            CsaError::Sql(_) | CsaError::Monitor(_) | CsaError::Federation(_) => false,
        }
    }
}

impl From<ironsafe_sql::SqlError> for CsaError {
    fn from(e: ironsafe_sql::SqlError) -> Self {
        CsaError::Sql(e)
    }
}

impl From<ironsafe_monitor::MonitorError> for CsaError {
    fn from(e: ironsafe_monitor::MonitorError) -> Self {
        CsaError::Monitor(e)
    }
}

impl From<ironsafe_storage::StorageError> for CsaError {
    fn from(e: ironsafe_storage::StorageError) -> Self {
        CsaError::Storage(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, CsaError>;
