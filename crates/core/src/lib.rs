//! # IronSafe
//!
//! Secure and policy-compliant query processing on heterogeneous
//! computational storage — a complete reproduction of the SIGMOD 2022
//! system, with every hardware dependency (Intel SGX, ARM TrustZone,
//! RPMB, NVMe, 40 GbE) replaced by faithful behavioural models.
//!
//! The crate re-exports the whole stack and provides the end-to-end
//! [`Deployment`] implementing the paper's Figure 2 workflow:
//!
//! ```text
//! client ──1 query+policy──▶ host engine ──2 verify──▶ trusted monitor
//!                              │   ▲                      (attestation,
//!                    3 offload │   │ 4 filtered rows       policy, keys,
//!                              ▼   │                       audit log)
//!                         storage engine ⇄ untrusted medium
//!                    5 results + proof of compliance ──▶ client
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use ironsafe::{Deployment, Client};
//!
//! // A deployment: one SGX host + one TrustZone storage server, both
//! // attested by the trusted monitor at build time.
//! let mut dep = Deployment::builder()
//!     .region("EU")
//!     .build()
//!     .expect("attestation succeeds");
//!
//! // The data producer creates a database with an access policy.
//! dep.create_database(
//!     "crm",
//!     "read :- sessionKeyIs(alice) | sessionKeyIs(bob)\n\
//!      write :- sessionKeyIs(alice)",
//! );
//! let alice = Client::new("alice");
//! dep.submit(&alice, "crm", "CREATE TABLE t (a INT, b TEXT)", "").unwrap();
//! dep.submit(&alice, "crm", "INSERT INTO t VALUES (1, 'x'), (2, 'y')", "").unwrap();
//!
//! // A consumer reads — and receives a verifiable proof of compliance.
//! let bob = Client::new("bob");
//! let resp = dep.submit(&bob, "crm", "SELECT b FROM t WHERE a = 2", "").unwrap();
//! assert_eq!(resp.result.rows().len(), 1);
//! assert!(resp.verify_proof(&dep));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deploy;

pub use deploy::{Client, Deployment, DeploymentBuilder, Response};

pub use ironsafe_crypto as crypto;
pub use ironsafe_csa as csa;
pub use ironsafe_monitor as monitor;
pub use ironsafe_policy as policy;
pub use ironsafe_serve as serve;
pub use ironsafe_sql as sql;
pub use ironsafe_storage as storage;
pub use ironsafe_tee as tee;
pub use ironsafe_tpch as tpch;

/// Top-level error for the facade.
#[derive(Debug)]
pub enum IronSafeError {
    /// Monitor refused (attestation or policy).
    Monitor(ironsafe_monitor::MonitorError),
    /// Execution failure in the CSA layer.
    Csa(ironsafe_csa::CsaError),
    /// SQL failure.
    Sql(ironsafe_sql::SqlError),
    /// TEE failure (enclave entry, sealing, RPMB) that survived the
    /// supervisor's restart/retry budget.
    Tee(ironsafe_tee::TeeError),
}

impl std::fmt::Display for IronSafeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IronSafeError::Monitor(e) => write!(f, "monitor: {e}"),
            IronSafeError::Csa(e) => write!(f, "csa: {e}"),
            IronSafeError::Sql(e) => write!(f, "sql: {e}"),
            IronSafeError::Tee(e) => write!(f, "tee: {e}"),
        }
    }
}

impl std::error::Error for IronSafeError {}

impl From<ironsafe_monitor::MonitorError> for IronSafeError {
    fn from(e: ironsafe_monitor::MonitorError) -> Self {
        IronSafeError::Monitor(e)
    }
}

impl From<ironsafe_csa::CsaError> for IronSafeError {
    fn from(e: ironsafe_csa::CsaError) -> Self {
        IronSafeError::Csa(e)
    }
}

impl From<ironsafe_sql::SqlError> for IronSafeError {
    fn from(e: ironsafe_sql::SqlError) -> Self {
        IronSafeError::Sql(e)
    }
}

impl From<ironsafe_tee::TeeError> for IronSafeError {
    fn from(e: ironsafe_tee::TeeError) -> Self {
        IronSafeError::Tee(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, IronSafeError>;
