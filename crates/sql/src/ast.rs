//! Abstract syntax tree.

use crate::value::{DataType, Value};

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col type, ...)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<(String, DataType)>,
    },
    /// `INSERT INTO name [(cols)] VALUES (...), (...)`
    Insert {
        /// Target table.
        table: String,
        /// Optional explicit column list.
        columns: Option<Vec<String>>,
        /// Row value expressions.
        values: Vec<Vec<Expr>>,
    },
    /// `SELECT ...`
    Select(SelectStmt),
    /// `UPDATE name SET col = expr, ... [WHERE ...]`
    Update {
        /// Target table.
        table: String,
        /// Assignments.
        sets: Vec<(String, Expr)>,
        /// Optional predicate.
        where_clause: Option<Expr>,
    },
    /// `DELETE FROM name [WHERE ...]`
    Delete {
        /// Target table.
        table: String,
        /// Optional predicate.
        where_clause: Option<Expr>,
    },
    /// `DROP TABLE name`
    DropTable {
        /// Target table.
        name: String,
    },
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStmt {
    /// Projection list.
    pub projections: Vec<SelectItem>,
    /// Tables in the `FROM` clause (comma join syntax).
    pub from: Vec<TableRef>,
    /// `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
    /// `ORDER BY` keys with `desc` flags.
    pub order_by: Vec<(Expr, bool)>,
    /// `LIMIT` row count.
    pub limit: Option<u64>,
}

/// One projection.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// `expr [AS alias]`
    Expr {
        /// The expression.
        expr: Expr,
        /// Optional output name.
        alias: Option<String>,
    },
}

/// A table reference with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name.
    pub name: String,
    /// Alias (defaults to the name).
    pub alias: String,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `-`
    Neg,
    /// `NOT`
    Not,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT`
    Count,
    /// `SUM`
    Sum,
    /// `AVG`
    Avg,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference (possibly qualified, e.g. `l.l_quantity`).
    Column(String),
    /// A literal.
    Literal(Value),
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `expr [NOT] BETWEEN low AND high`
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// Negated?
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, ...)`
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// Negated?
        negated: bool,
    },
    /// `expr [NOT] LIKE 'pattern'`
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern with `%` and `_` wildcards.
        pattern: String,
        /// Negated?
        negated: bool,
    },
    /// `expr IS [NOT] NULL`
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// Negated (`IS NOT NULL`)?
        negated: bool,
    },
    /// `CASE WHEN c THEN v ... [ELSE e] END`
    Case {
        /// `(condition, result)` arms.
        when_then: Vec<(Expr, Expr)>,
        /// `ELSE` result.
        else_expr: Option<Box<Expr>>,
    },
    /// Scalar function call, e.g. `SUBSTR(s, 1, 4)` or `YEAR(d)`.
    Func {
        /// Function name (uppercase).
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Aggregate call, e.g. `SUM(expr)` or `COUNT(*)` (arg = `None`).
    Agg {
        /// The function.
        func: AggFunc,
        /// Argument (`None` for `COUNT(*)`).
        arg: Option<Box<Expr>>,
        /// `DISTINCT` flag.
        distinct: bool,
    },
}

impl Expr {
    /// Shorthand for a column reference.
    pub fn col(name: &str) -> Expr {
        Expr::Column(name.to_string())
    }

    /// Shorthand for an integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Value::Int(v))
    }

    /// Shorthand for a string literal.
    pub fn text(v: &str) -> Expr {
        Expr::Literal(Value::Text(v.to_string()))
    }

    /// Shorthand for a binary expression.
    pub fn bin(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary { op, left: Box::new(left), right: Box::new(right) }
    }

    /// Does this expression (transitively) contain an aggregate call?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Column(_) | Expr::Literal(_) => false,
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::Binary { left, right, .. } => left.contains_aggregate() || right.contains_aggregate(),
            Expr::Between { expr, low, high, .. } => {
                expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate()
            }
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(|e| e.contains_aggregate())
            }
            Expr::Like { expr, .. } | Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::Func { args, .. } => args.iter().any(|e| e.contains_aggregate()),
            Expr::Case { when_then, else_expr } => {
                when_then.iter().any(|(c, v)| c.contains_aggregate() || v.contains_aggregate())
                    || else_expr.as_ref().is_some_and(|e| e.contains_aggregate())
            }
        }
    }

    /// Collect the names of all referenced columns.
    pub fn referenced_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column(c) => out.push(c.clone()),
            Expr::Literal(_) => {}
            Expr::Unary { expr, .. } => expr.referenced_columns(out),
            Expr::Binary { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            Expr::Between { expr, low, high, .. } => {
                expr.referenced_columns(out);
                low.referenced_columns(out);
                high.referenced_columns(out);
            }
            Expr::InList { expr, list, .. } => {
                expr.referenced_columns(out);
                for e in list {
                    e.referenced_columns(out);
                }
            }
            Expr::Like { expr, .. } | Expr::IsNull { expr, .. } => expr.referenced_columns(out),
            Expr::Func { args, .. } => {
                for a in args {
                    a.referenced_columns(out);
                }
            }
            Expr::Case { when_then, else_expr } => {
                for (c, v) in when_then {
                    c.referenced_columns(out);
                    v.referenced_columns(out);
                }
                if let Some(e) = else_expr {
                    e.referenced_columns(out);
                }
            }
            Expr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.referenced_columns(out);
                }
            }
        }
    }
}

/// Render an expression back to SQL text (used by the policy rewriter and
/// the query partitioner to ship query fragments to the storage engine).
pub fn expr_to_sql(e: &Expr) -> String {
    match e {
        Expr::Column(c) => c.clone(),
        Expr::Literal(Value::Null) => "NULL".into(),
        Expr::Literal(Value::Int(i)) => i.to_string(),
        Expr::Literal(Value::Float(f)) => format!("{f:?}"),
        Expr::Literal(Value::Text(s)) => format!("'{}'", s.replace('\'', "''")),
        Expr::Unary { op, expr } => match op {
            UnaryOp::Neg => format!("(-{})", expr_to_sql(expr)),
            UnaryOp::Not => format!("(NOT {})", expr_to_sql(expr)),
        },
        Expr::Binary { op, left, right } => {
            let o = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "%",
                BinOp::Eq => "=",
                BinOp::NotEq => "<>",
                BinOp::Lt => "<",
                BinOp::LtEq => "<=",
                BinOp::Gt => ">",
                BinOp::GtEq => ">=",
                BinOp::And => "AND",
                BinOp::Or => "OR",
            };
            format!("({} {} {})", expr_to_sql(left), o, expr_to_sql(right))
        }
        Expr::Between { expr, low, high, negated } => format!(
            "({} {}BETWEEN {} AND {})",
            expr_to_sql(expr),
            if *negated { "NOT " } else { "" },
            expr_to_sql(low),
            expr_to_sql(high)
        ),
        Expr::InList { expr, list, negated } => format!(
            "({} {}IN ({}))",
            expr_to_sql(expr),
            if *negated { "NOT " } else { "" },
            list.iter().map(expr_to_sql).collect::<Vec<_>>().join(", ")
        ),
        Expr::Like { expr, pattern, negated } => format!(
            "({} {}LIKE '{}')",
            expr_to_sql(expr),
            if *negated { "NOT " } else { "" },
            pattern.replace('\'', "''")
        ),
        Expr::IsNull { expr, negated } => format!(
            "({} IS {}NULL)",
            expr_to_sql(expr),
            if *negated { "NOT " } else { "" }
        ),
        Expr::Case { when_then, else_expr } => {
            let mut s = String::from("CASE");
            for (c, v) in when_then {
                s.push_str(&format!(" WHEN {} THEN {}", expr_to_sql(c), expr_to_sql(v)));
            }
            if let Some(e) = else_expr {
                s.push_str(&format!(" ELSE {}", expr_to_sql(e)));
            }
            s.push_str(" END");
            s
        }
        Expr::Func { name, args } => {
            format!("{name}({})", args.iter().map(expr_to_sql).collect::<Vec<_>>().join(", "))
        }
        Expr::Agg { func, arg, distinct } => {
            let f = match func {
                AggFunc::Count => "COUNT",
                AggFunc::Sum => "SUM",
                AggFunc::Avg => "AVG",
                AggFunc::Min => "MIN",
                AggFunc::Max => "MAX",
            };
            match arg {
                None => format!("{f}(*)"),
                Some(a) => format!("{f}({}{})", if *distinct { "DISTINCT " } else { "" }, expr_to_sql(a)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_aggregate_walks_tree() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::int(1),
            Expr::Agg { func: AggFunc::Sum, arg: Some(Box::new(Expr::col("x"))), distinct: false },
        );
        assert!(e.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
    }

    #[test]
    fn referenced_columns_collects_all() {
        let e = Expr::bin(BinOp::Mul, Expr::col("a"), Expr::bin(BinOp::Sub, Expr::int(1), Expr::col("b")));
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        assert_eq!(cols, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn expr_to_sql_roundtrips_through_parser() {
        use crate::parser::parse_expression;
        let cases = [
            "(a + 1)",
            "((a * b) >= 10)",
            "(a BETWEEN 1 AND 2)",
            "(x IN (1, 2, 3))",
            "(name LIKE 'a%b_c')",
            "(d IS NOT NULL)",
            "CASE WHEN (a = 1) THEN 2 ELSE 3 END",
            "SUM((price * (1 - disc)))",
        ];
        for c in cases {
            let e = parse_expression(c).unwrap();
            let rendered = expr_to_sql(&e);
            let reparsed = parse_expression(&rendered).unwrap();
            assert_eq!(e, reparsed, "case `{c}` rendered `{rendered}`");
        }
    }

    #[test]
    fn string_literal_escaping() {
        let e = Expr::text("it's");
        assert_eq!(expr_to_sql(&e), "'it''s'");
    }
}
