//! Row-to-shard partitioning layered under the `csa` partitioner.
//!
//! Every sharded table stores a hidden trailing `__gid` column: the
//! row's global index in canonical (generation) order, assigned once at
//! partition time. Fragments project `__gid`, the coordinator k-way
//! merges shard streams by ascending gid, and the canonical row order —
//! the order a single node would have produced — is recovered exactly at
//! any shard count. That merge order is what makes result rows, group
//! first-seen order and non-associative float accumulation bit-identical
//! between one shard and N.
//!
//! Range mode additionally snaps shard boundaries to *canonical heap
//! page starts*: the heap packs greedily and statelessly, so a shard
//! whose rows are a contiguous canonical run starting at a page boundary
//! packs into byte-identical pages. Summed per-shard page reads, writes,
//! decrypts and encrypts are then conserved versus a single node. A
//! boundary page is only usable when its first key is strictly greater
//! than the previous page's last key (duplicate keys must not straddle a
//! cut); the chooser walks forward until that holds.

use crate::{Result, ScaleError};
use ironsafe_sql::db::Database;
use ironsafe_sql::schema::{Column, Row, Schema};
use ironsafe_sql::value::{DataType, Value};
use ironsafe_storage::pager::PlainPager;
use std::cmp::Ordering;

/// Name of the hidden global-row-index column on every shard table.
pub const GID_COLUMN: &str = "__gid";

/// `base` with the trailing hidden gid column appended.
pub fn gid_schema(base: &Schema) -> Schema {
    let mut columns = base.columns.clone();
    columns.push(Column::new(GID_COLUMN, DataType::Int));
    Schema::new(columns)
}

/// FNV-1a over the value's order-preserving key encoding, finalized
/// with a splitmix64 avalanche so low-entropy integer keys spread over
/// small shard counts.
fn hash_key(key: &Value) -> u64 {
    let mut bytes = Vec::new();
    key.key_bytes(&mut bytes);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in &bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One upper range boundary: the first key owned by the *next* shard.
#[derive(Debug, Clone, PartialEq)]
pub enum RangeBound {
    /// Keys `>= this` belong to a later shard.
    Key(Value),
    /// Unreachable boundary (the next shard is empty).
    Top,
}

impl RangeBound {
    fn le(&self, key: &Value) -> bool {
        match self {
            RangeBound::Top => false,
            RangeBound::Key(v) => {
                matches!(v.compare(key), Some(Ordering::Less | Ordering::Equal))
            }
        }
    }
}

/// The row-routing function for one table.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardSpec {
    /// `hash(key) % shards`.
    Hash {
        /// Shard count.
        shards: usize,
    },
    /// Binary search over `shards - 1` ascending boundaries;
    /// `boundaries[i]` is the lowest key shard `i + 1` owns.
    Range {
        /// Ascending shard boundaries.
        boundaries: Vec<RangeBound>,
    },
}

impl ShardSpec {
    /// The shard that owns `key`.
    pub fn shard_of(&self, key: &Value) -> usize {
        match self {
            ShardSpec::Hash { shards } => (hash_key(key) % *shards as u64) as usize,
            ShardSpec::Range { boundaries } => {
                boundaries.partition_point(|b| b.le(key))
            }
        }
    }

    /// Linear-scan reference implementation of [`ShardSpec::shard_of`]
    /// (the proptest oracle the binary search is checked against).
    pub fn shard_of_oracle(&self, key: &Value) -> usize {
        match self {
            ShardSpec::Hash { shards } => (hash_key(key) % *shards as u64) as usize,
            ShardSpec::Range { boundaries } => {
                let mut shard = 0;
                for b in boundaries {
                    if b.le(key) {
                        shard += 1;
                    }
                }
                shard
            }
        }
    }

    /// Shard count this spec routes into.
    pub fn shards(&self) -> usize {
        match self {
            ShardSpec::Hash { shards } => *shards,
            ShardSpec::Range { boundaries } => boundaries.len() + 1,
        }
    }
}

/// One table split across the federation.
#[derive(Debug)]
pub struct TablePartition {
    /// Table name.
    pub table: String,
    /// Base (gid-less) schema.
    pub schema: Schema,
    /// Partition-key column index in the base schema.
    pub key_index: usize,
    /// The routing function.
    pub spec: ShardSpec,
    /// Gid-augmented rows per shard, canonical order within each shard.
    pub shard_rows: Vec<Vec<Row>>,
    /// Total row count across shards.
    pub total_rows: u64,
    /// Heap pages the gid-augmented table occupies when packed on one
    /// node — the N-invariant page count the canonical cost model uses.
    pub canonical_pages: u64,
}

/// Canonical packing facts for one heap page.
struct PageFacts {
    start_row: u64,
    first_key: Value,
    last_key: Value,
}

impl TablePartition {
    /// Split `rows` (base-schema order = canonical order) into `shards`
    /// partitions on `key` under `mode`.
    pub fn build(
        table: &str,
        schema: &Schema,
        rows: &[Row],
        key: &str,
        mode: crate::PartitionMode,
        shards: usize,
    ) -> Result<TablePartition> {
        let key_index = schema.resolve(key).map_err(|_| ScaleError::MissingPartitionKey {
            table: table.to_string(),
            key: key.to_string(),
        })?;
        let with_gid = gid_schema(schema);
        let gid_rows: Vec<Row> = rows
            .iter()
            .enumerate()
            .map(|(gid, r)| {
                let mut row = r.clone();
                row.push(Value::Int(gid as i64));
                row
            })
            .collect();

        let (pages, canonical_pages) = canonical_packing(table, &with_gid, &gid_rows)?;
        let sorted = rows
            .windows(2)
            .all(|w| !matches!(w[0][key_index].compare(&w[1][key_index]), Some(Ordering::Greater)));
        let spec = match mode {
            crate::PartitionMode::Hash => ShardSpec::Hash { shards },
            crate::PartitionMode::Range => {
                if sorted {
                    ShardSpec::Range {
                        boundaries: page_aligned_boundaries(
                            &pages,
                            key_index,
                            rows.len() as u64,
                            shards,
                        ),
                    }
                } else {
                    // Without key-sorted canonical order a page-aligned
                    // cut cannot be a key boundary; fall back to even
                    // cuts over the sorted key set (rows still route
                    // correctly, page conservation is forfeited).
                    ShardSpec::Range {
                        boundaries: sorted_key_boundaries(rows, key_index, shards),
                    }
                }
            }
        };

        let mut shard_rows: Vec<Vec<Row>> = vec![Vec::new(); shards];
        for row in gid_rows {
            let shard = spec.shard_of(&row[key_index]);
            shard_rows[shard].push(row);
        }
        Ok(TablePartition {
            table: table.to_string(),
            schema: schema.clone(),
            key_index,
            spec,
            shard_rows,
            total_rows: rows.len() as u64,
            canonical_pages,
        })
    }
}

/// One packed heap page: starting canonical row index plus the page's
/// first and last row (the boundary chooser extracts partition keys).
type PackedPage = (u64, Row, Row);

/// Pack the gid-augmented table once on a scratch in-memory pager and
/// record, per heap page, its starting canonical row index and its
/// first/last row (the boundary chooser extracts the partition keys).
fn canonical_packing(
    table: &str,
    with_gid: &Schema,
    gid_rows: &[Row],
) -> Result<(Vec<PackedPage>, u64)> {
    let mut db = Database::new(PlainPager::new());
    db.create_table(table, with_gid.clone())?;
    db.insert_rows(table, gid_rows.to_vec())?;
    let info = db.catalog().table(table)?;
    let npages = info.heap.pages.len();
    let mut pages = Vec::with_capacity(npages);
    let mut start = 0u64;
    for p in 0..npages {
        let rows = info.heap.read_page_rows(db.pager(), p, with_gid.len())?;
        let first = rows.first().expect("heap pages are never empty").clone();
        let last = rows.last().expect("heap pages are never empty").clone();
        pages.push((start, first, last));
        start += rows.len() as u64;
    }
    Ok((pages, npages as u64))
}

/// Choose `shards - 1` ascending boundaries snapped to canonical page
/// starts, each a *clean* cut (the boundary page's first key strictly
/// exceeds the previous page's last key, so duplicate keys never
/// straddle it).
fn page_aligned_boundaries(
    pages: &[(u64, Row, Row)],
    key_index: usize,
    total: u64,
    shards: usize,
) -> Vec<RangeBound> {
    let facts: Vec<PageFacts> = pages
        .iter()
        .map(|(start, first, last)| PageFacts {
            start_row: *start,
            first_key: first[key_index].clone(),
            last_key: last[key_index].clone(),
        })
        .collect();
    let npages = facts.len();
    let mut boundaries = Vec::with_capacity(shards.saturating_sub(1));
    let mut last_p = 0usize;
    for i in 1..shards {
        let ideal = total * i as u64 / shards as u64;
        let mut p = facts.partition_point(|f| f.start_row < ideal).max(last_p.max(1));
        while p < npages
            && !matches!(
                facts[p - 1].last_key.compare(&facts[p].first_key),
                Some(Ordering::Less)
            )
        {
            p += 1;
        }
        if p >= npages {
            boundaries.push(RangeBound::Top);
        } else {
            boundaries.push(RangeBound::Key(facts[p].first_key.clone()));
            last_p = p;
        }
    }
    boundaries
}

/// Even cuts over the sorted key multiset (the unsorted-data fallback).
fn sorted_key_boundaries(rows: &[Row], key_index: usize, shards: usize) -> Vec<RangeBound> {
    let mut keys: Vec<&Value> = rows.iter().map(|r| &r[key_index]).collect();
    keys.sort_by(|a, b| a.compare(b).unwrap_or(Ordering::Equal));
    let total = keys.len();
    (1..shards)
        .map(|i| {
            let ideal = total * i / shards;
            if ideal >= total {
                RangeBound::Top
            } else {
                RangeBound::Key(keys[ideal].clone())
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PartitionMode;

    fn schema() -> Schema {
        Schema::new(vec![Column::new("k", DataType::Int), Column::new("v", DataType::Text)])
    }

    fn rows(n: i64) -> Vec<Row> {
        (0..n).map(|i| vec![Value::Int(i), Value::Text(format!("payload {i}"))]).collect()
    }

    #[test]
    fn missing_key_is_a_typed_error() {
        let err = TablePartition::build("t", &schema(), &rows(10), "nope", PartitionMode::Hash, 2)
            .unwrap_err();
        assert!(matches!(err, ScaleError::MissingPartitionKey { .. }));
    }

    #[test]
    fn every_row_lands_on_exactly_one_shard() {
        for mode in [PartitionMode::Hash, PartitionMode::Range] {
            for shards in [1usize, 2, 3, 4, 8] {
                let part =
                    TablePartition::build("t", &schema(), &rows(500), "k", mode, shards).unwrap();
                assert_eq!(part.shard_rows.len(), shards);
                let total: usize = part.shard_rows.iter().map(Vec::len).sum();
                assert_eq!(total, 500);
                // gids across all shards form exactly 0..500
                let mut gids: Vec<i64> = part
                    .shard_rows
                    .iter()
                    .flatten()
                    .map(|r| match r.last() {
                        Some(Value::Int(g)) => *g,
                        other => panic!("gid must be Int, got {other:?}"),
                    })
                    .collect();
                gids.sort_unstable();
                assert_eq!(gids, (0..500).collect::<Vec<i64>>());
            }
        }
    }

    #[test]
    fn range_shards_hold_contiguous_runs_on_sorted_data() {
        let part =
            TablePartition::build("t", &schema(), &rows(500), "k", PartitionMode::Range, 4)
                .unwrap();
        let mut expected_next = 0i64;
        for shard in &part.shard_rows {
            for row in shard {
                let Some(Value::Int(g)) = row.last() else { panic!("gid") };
                assert_eq!(*g, expected_next, "range shards must be contiguous canonical runs");
                expected_next += 1;
            }
        }
        assert_eq!(expected_next, 500);
    }

    #[test]
    fn binary_search_matches_linear_oracle() {
        let part =
            TablePartition::build("t", &schema(), &rows(500), "k", PartitionMode::Range, 4)
                .unwrap();
        for k in -5..505 {
            let key = Value::Int(k);
            assert_eq!(part.spec.shard_of(&key), part.spec.shard_of_oracle(&key));
        }
    }
}
