//! Hash aggregation.

use crate::ast::{AggFunc, Expr};
use crate::exec::{BoxOp, Operator};
use crate::expr::eval;
use crate::schema::{Column, Row, Schema};
use crate::value::{DataType, Value};
use crate::Result;
use std::collections::{HashMap, HashSet};

/// One aggregate to compute.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// The function.
    pub func: AggFunc,
    /// Input expression (`None` for `COUNT(*)`).
    pub arg: Option<Expr>,
    /// `DISTINCT` flag.
    pub distinct: bool,
    /// Output column name.
    pub name: String,
}

/// Accumulator for one aggregate in one group.
enum AggState {
    Count(i64),
    Sum { int: i64, float: f64, all_int: bool, seen: bool },
    Avg { sum: f64, count: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum { int: 0, float: 0.0, all_int: true, seen: false },
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    fn update(&mut self, v: &Value) -> Result<()> {
        if v.is_null() {
            return Ok(()); // aggregates skip NULLs
        }
        match self {
            AggState::Count(c) => *c += 1,
            AggState::Sum { int, float, all_int, seen } => {
                *seen = true;
                match v {
                    Value::Int(i) => {
                        *int = int.wrapping_add(*i);
                        *float += *i as f64;
                    }
                    _ => {
                        *all_int = false;
                        *float += v.as_f64()?;
                    }
                }
            }
            AggState::Avg { sum, count } => {
                *sum += v.as_f64()?;
                *count += 1;
            }
            AggState::Min(cur) => {
                if cur.as_ref().is_none_or(|c| v.sort_cmp(c) == std::cmp::Ordering::Less) {
                    *cur = Some(v.clone());
                }
            }
            AggState::Max(cur) => {
                if cur.as_ref().is_none_or(|c| v.sort_cmp(c) == std::cmp::Ordering::Greater) {
                    *cur = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(c) => Value::Int(c),
            AggState::Sum { int, float, all_int, seen } => {
                if !seen {
                    Value::Null
                } else if all_int {
                    Value::Int(int)
                } else {
                    Value::Float(float)
                }
            }
            AggState::Avg { sum, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / count as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

/// Hash aggregate: groups by `group_exprs`, computes `aggs` per group.
///
/// Output schema: the group expressions (named `g0..gN` unless overridden)
/// followed by the aggregates (named per spec). With no group expressions,
/// exactly one output row is produced even for empty input (SQL global
/// aggregate semantics).
pub struct HashAggregate {
    input: Option<BoxOp>,
    group_exprs: Vec<Expr>,
    aggs: Vec<AggSpec>,
    schema: Schema,
    output: std::vec::IntoIter<Row>,
    emitted: u64,
}

impl HashAggregate {
    /// Build the operator. `group_names` label the group-by outputs.
    pub fn new(input: BoxOp, group_exprs: Vec<Expr>, group_names: Vec<String>, aggs: Vec<AggSpec>) -> Self {
        assert_eq!(group_exprs.len(), group_names.len());
        let mut columns = Vec::with_capacity(group_exprs.len() + aggs.len());
        for (name, _e) in group_names.iter().zip(group_exprs.iter()) {
            // Output types are dynamic; Text is a safe declared default.
            columns.push(Column::new(name.clone(), DataType::Text));
        }
        for a in &aggs {
            let ty = match a.func {
                AggFunc::Count => DataType::Int,
                AggFunc::Avg => DataType::Float,
                _ => DataType::Float,
            };
            columns.push(Column::new(a.name.clone(), ty));
        }
        HashAggregate {
            input: Some(input),
            group_exprs,
            aggs,
            schema: Schema::new(columns),
            output: Vec::new().into_iter(),
            emitted: 0,
        }
    }

    fn materialize(&mut self) -> Result<()> {
        let mut input = self.input.take().expect("materialize called once");
        struct Group {
            keys: Row,
            states: Vec<AggState>,
            distinct_seen: Vec<Option<HashSet<Vec<u8>>>>,
        }
        let mut groups: HashMap<Vec<u8>, Group> = HashMap::new();
        let mut order: Vec<Vec<u8>> = Vec::new(); // first-seen group order

        let global = self.group_exprs.is_empty();
        if global {
            let g = Group {
                keys: Vec::new(),
                states: self.aggs.iter().map(|a| AggState::new(a.func)).collect(),
                distinct_seen: self.aggs.iter().map(|a| a.distinct.then(HashSet::new)).collect(),
            };
            groups.insert(Vec::new(), g);
            order.push(Vec::new());
        }

        while let Some(row) = input.next()? {
            let schema = input.schema();
            let mut key = Vec::new();
            let mut key_vals = Vec::with_capacity(self.group_exprs.len());
            for e in &self.group_exprs {
                let v = eval(e, schema, &row)?;
                v.key_bytes(&mut key);
                key_vals.push(v);
            }
            if !groups.contains_key(&key) {
                order.push(key.clone());
                groups.insert(
                    key.clone(),
                    Group {
                        keys: key_vals,
                        states: self.aggs.iter().map(|a| AggState::new(a.func)).collect(),
                        distinct_seen: self.aggs.iter().map(|a| a.distinct.then(HashSet::new)).collect(),
                    },
                );
            }
            let group = groups.get_mut(&key).expect("just ensured");
            for (i, spec) in self.aggs.iter().enumerate() {
                let v = match &spec.arg {
                    None => Value::Int(1), // COUNT(*) counts rows
                    Some(e) => eval(e, schema, &row)?,
                };
                if spec.arg.is_none() || !v.is_null() {
                    if let Some(seen) = &mut group.distinct_seen[i] {
                        let mut kb = Vec::new();
                        v.key_bytes(&mut kb);
                        if !seen.insert(kb) {
                            continue;
                        }
                    }
                    group.states[i].update(&v)?;
                }
            }
        }

        let mut rows = Vec::with_capacity(order.len());
        for key in order {
            let g = groups.remove(&key).expect("tracked key");
            let mut row = g.keys;
            for s in g.states {
                row.push(s.finish());
            }
            rows.push(row);
        }
        self.output = rows.into_iter();
        Ok(())
    }
}

impl Operator for HashAggregate {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn describe(&self) -> String {
        let groups: Vec<String> = self.group_exprs.iter().map(crate::ast::expr_to_sql).collect();
        let aggs: Vec<String> = self.aggs.iter().map(|a| a.name.clone()).collect();
        format!(
            "HashAggregate: group by [{}], compute [{}]",
            groups.join(", "),
            aggs.join(", ")
        )
    }

    fn children(&self) -> Vec<&BoxOp> {
        self.input.as_ref().map(|i| vec![i]).unwrap_or_default()
    }

    fn rows_out(&self) -> u64 {
        self.emitted
    }

    fn next(&mut self) -> Result<Option<Row>> {
        if self.input.is_some() {
            self.materialize()?;
        }
        let row = self.output.next();
        self.emitted += row.is_some() as u64;
        Ok(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{collect, Values};
    use crate::parser::parse_expression;

    fn input() -> BoxOp {
        let schema = Schema::new(vec![
            Column::new("grp", DataType::Text),
            Column::new("x", DataType::Int),
        ]);
        let rows = vec![
            vec![Value::Text("a".into()), Value::Int(1)],
            vec![Value::Text("b".into()), Value::Int(10)],
            vec![Value::Text("a".into()), Value::Int(2)],
            vec![Value::Text("b".into()), Value::Int(20)],
            vec![Value::Text("a".into()), Value::Int(3)],
            vec![Value::Text("a".into()), Value::Null],
        ];
        Box::new(Values::new(schema, rows))
    }

    fn spec(func: AggFunc, arg: Option<&str>, distinct: bool, name: &str) -> AggSpec {
        AggSpec {
            func,
            arg: arg.map(|a| parse_expression(a).unwrap()),
            distinct,
            name: name.into(),
        }
    }

    #[test]
    fn grouped_aggregates() {
        let agg = HashAggregate::new(
            input(),
            vec![parse_expression("grp").unwrap()],
            vec!["grp".into()],
            vec![
                spec(AggFunc::Count, None, false, "cnt"),
                spec(AggFunc::Sum, Some("x"), false, "total"),
                spec(AggFunc::Avg, Some("x"), false, "mean"),
                spec(AggFunc::Min, Some("x"), false, "lo"),
                spec(AggFunc::Max, Some("x"), false, "hi"),
            ],
        );
        let (schema, rows) = collect(Box::new(agg)).unwrap();
        assert_eq!(schema.columns.iter().map(|c| c.name.as_str()).collect::<Vec<_>>(), vec!["grp", "cnt", "total", "mean", "lo", "hi"]);
        assert_eq!(rows.len(), 2);
        // First-seen order: a then b.
        assert_eq!(rows[0][0].as_str().unwrap(), "a");
        assert_eq!(rows[0][1], Value::Int(4), "COUNT(*) counts the NULL row");
        assert_eq!(rows[0][2], Value::Int(6), "SUM skips NULL");
        assert_eq!(rows[0][3], Value::Float(2.0), "AVG skips NULL");
        assert_eq!(rows[0][4], Value::Int(1));
        assert_eq!(rows[0][5], Value::Int(3));
        assert_eq!(rows[1][2], Value::Int(30));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
        let empty = Box::new(Values::new(schema, vec![]));
        let agg = HashAggregate::new(
            empty,
            vec![],
            vec![],
            vec![spec(AggFunc::Count, None, false, "cnt"), spec(AggFunc::Sum, Some("x"), false, "s")],
        );
        let (_, rows) = collect(Box::new(agg)).unwrap();
        assert_eq!(rows.len(), 1, "global aggregate always yields one row");
        assert_eq!(rows[0][0], Value::Int(0));
        assert!(rows[0][1].is_null(), "SUM of nothing is NULL");
    }

    #[test]
    fn grouped_aggregate_on_empty_input_yields_nothing() {
        let schema = Schema::new(vec![Column::new("g", DataType::Int), Column::new("x", DataType::Int)]);
        let empty = Box::new(Values::new(schema, vec![]));
        let agg = HashAggregate::new(
            empty,
            vec![parse_expression("g").unwrap()],
            vec!["g".into()],
            vec![spec(AggFunc::Count, None, false, "cnt")],
        );
        let (_, rows) = collect(Box::new(agg)).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn count_distinct() {
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
        let rows = vec![
            vec![Value::Int(1)],
            vec![Value::Int(1)],
            vec![Value::Int(2)],
            vec![Value::Null],
        ];
        let v = Box::new(Values::new(schema, rows));
        let agg = HashAggregate::new(
            v,
            vec![],
            vec![],
            vec![
                spec(AggFunc::Count, Some("x"), true, "distinct_x"),
                spec(AggFunc::Count, Some("x"), false, "all_x"),
            ],
        );
        let (_, out) = collect(Box::new(agg)).unwrap();
        assert_eq!(out[0][0], Value::Int(2));
        assert_eq!(out[0][1], Value::Int(3), "plain COUNT(x) skips NULL");
    }

    #[test]
    fn sum_over_expression() {
        let agg = HashAggregate::new(
            input(),
            vec![],
            vec![],
            vec![spec(AggFunc::Sum, Some("x * 2"), false, "s")],
        );
        let (_, rows) = collect(Box::new(agg)).unwrap();
        assert_eq!(rows[0][0], Value::Int(72));
    }

    #[test]
    fn sum_promotes_to_float_on_mixed() {
        let schema = Schema::new(vec![Column::new("x", DataType::Float)]);
        let rows = vec![vec![Value::Int(1)], vec![Value::Float(2.5)]];
        let v = Box::new(Values::new(schema, rows));
        let agg = HashAggregate::new(v, vec![], vec![], vec![spec(AggFunc::Sum, Some("x"), false, "s")]);
        let (_, out) = collect(Box::new(agg)).unwrap();
        assert_eq!(out[0][0], Value::Float(3.5));
    }

    #[test]
    fn min_max_on_text() {
        let schema = Schema::new(vec![Column::new("d", DataType::Text)]);
        let rows = vec![
            vec![Value::Text("1995-03-15".into())],
            vec![Value::Text("1994-01-01".into())],
            vec![Value::Text("1996-06-30".into())],
        ];
        let v = Box::new(Values::new(schema, rows));
        let agg = HashAggregate::new(
            v,
            vec![],
            vec![],
            vec![spec(AggFunc::Min, Some("d"), false, "lo"), spec(AggFunc::Max, Some("d"), false, "hi")],
        );
        let (_, out) = collect(Box::new(agg)).unwrap();
        assert_eq!(out[0][0].as_str().unwrap(), "1994-01-01");
        assert_eq!(out[0][1].as_str().unwrap(), "1996-06-30");
    }

    #[test]
    fn null_group_keys_group_together() {
        let schema = Schema::new(vec![Column::new("g", DataType::Int)]);
        let rows = vec![vec![Value::Null], vec![Value::Null], vec![Value::Int(1)]];
        let v = Box::new(Values::new(schema, rows));
        let agg = HashAggregate::new(
            v,
            vec![parse_expression("g").unwrap()],
            vec!["g".into()],
            vec![spec(AggFunc::Count, None, false, "cnt")],
        );
        let (_, out) = collect(Box::new(agg)).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0][1], Value::Int(2), "two NULL-keyed rows in one group");
    }
}
