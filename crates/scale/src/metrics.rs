//! Live federation counters (attachable to an `ironsafe-obs` registry).

use ironsafe_obs::{Counter, Registry};

/// Counters the federation coordinator maintains across queries.
#[derive(Debug, Clone, Default)]
pub struct ScaleMetrics {
    /// Replica promotions completed after a quarantine.
    pub failover_promoted: Counter,
    /// Pages re-read while re-verifying a promoted replica's partition.
    pub failover_reverified_pages: Counter,
    /// Rows fed through the deterministic gid merge.
    pub merge_rows: Counter,
    /// Partial-aggregation tuples shipped by shards.
    pub partial_tuples: Counter,
    /// Physical fragment executions (logical fragments × serving shards).
    pub shard_fragments: Counter,
    /// Nodes quarantined (attestation, freshness or crash failures).
    pub shard_quarantined: Counter,
}

impl ScaleMetrics {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        ScaleMetrics::default()
    }

    /// Attach every counter to `registry` under its manifest name.
    pub fn register(&self, registry: &Registry) {
        registry.register_counter("scale.failover.promoted", &self.failover_promoted);
        registry
            .register_counter("scale.failover.reverified_pages", &self.failover_reverified_pages);
        registry.register_counter("scale.merge.rows", &self.merge_rows);
        registry.register_counter("scale.partial.tuples", &self.partial_tuples);
        registry.register_counter("scale.shard.fragments", &self.shard_fragments);
        registry.register_counter("scale.shard.quarantined", &self.shard_quarantined);
    }
}
