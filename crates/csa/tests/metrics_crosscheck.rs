//! Regression test: the cost model's `pages_read_storage` must agree with
//! the live `storage.page.read` counter that the `SecurePager` itself
//! maintains. Both observe the same `read_page` calls through entirely
//! different plumbing (PagerStats delta vs. a registered obs Counter), so
//! any drift means one of the two accounting paths lost an event.
//!
//! NOTE: runs at SF 0.002 rather than the paper's 0.1 so the secure pager's
//! Merkle rebuild stays fast enough for CI; the invariant being checked is
//! scale-independent.

use ironsafe_csa::cost::CostParams;
use ironsafe_csa::system::{CsaSystem, SystemConfig};
use ironsafe_tpch::queries::query;
use ironsafe_obs::Registry;

#[test]
fn q1_pages_read_matches_secure_pager_counter() {
    let data = ironsafe_tpch::generate(0.002, 42);
    let mut sys = CsaSystem::build(SystemConfig::IronSafe, &data, CostParams::default())
        .expect("system builds");

    let registry = Registry::new();
    sys.storage_db().register_metrics(&registry);
    let before = registry
        .snapshot()
        .counter("storage.page.read")
        .expect("secure pager registers storage.page.read");

    let report = sys.run_query(&query(1).expect("q1 known")).expect("q1 runs");

    let after = registry
        .snapshot()
        .counter("storage.page.read")
        .expect("counter still registered");

    assert!(report.pages_read_storage > 0, "q1 must actually touch pages");
    assert_eq!(
        after - before,
        report.pages_read_storage,
        "live counter delta must equal the cost model's page-read count"
    );
}

#[test]
fn decrypt_counter_tracks_reads_on_secure_config() {
    let data = ironsafe_tpch::generate(0.002, 42);
    let mut sys = CsaSystem::build(SystemConfig::IronSafe, &data, CostParams::default())
        .expect("system builds");

    let registry = Registry::new();
    sys.storage_db().register_metrics(&registry);
    let before = registry.snapshot();

    sys.run_query(&query(6).expect("q6 known")).expect("q6 runs");

    let after = registry.snapshot();
    let reads = after.counter("storage.page.read").unwrap() - before.counter("storage.page.read").unwrap();
    let decrypts =
        after.counter("storage.page.decrypt").unwrap() - before.counter("storage.page.decrypt").unwrap();
    // Every secure page read decrypts exactly one page payload.
    assert_eq!(reads, decrypts);
}

#[test]
fn injected_device_fault_is_recovered_and_counted_without_drifting_counters() {
    use ironsafe_faults::{FaultPlan, FaultSite};

    let data = ironsafe_tpch::generate(0.002, 42);
    let mut sys = CsaSystem::build(SystemConfig::IronSafe, &data, CostParams::default())
        .expect("system builds");
    let baseline = sys
        .run_query(&query(6).expect("q6 known"))
        .expect("fault-free q6 runs")
        .result
        .rows()
        .to_vec();

    // One transient device-read error early in the scan; the pager's
    // bounded retry must absorb it.
    let plan = FaultPlan::seeded(7).with_nth(FaultSite::DeviceRead, 3);
    sys.set_fault_plan(plan.clone());

    let registry = Registry::new();
    sys.storage_db().register_metrics(&registry);
    plan.register_metrics(&registry);
    let before = registry.snapshot();

    let report = sys.run_query(&query(6).expect("q6 known")).expect("q6 survives the fault");
    assert_eq!(report.result.rows(), &baseline[..], "recovered run must be bit-identical");

    let after = registry.snapshot();
    let delta = |name: &str| after.counter(name).unwrap() - before.counter(name).unwrap();
    assert!(delta("faults.injected") >= 1, "the scheduled fault must fire");
    assert!(delta("faults.retried") >= 1, "the fault must be retried");
    assert!(delta("faults.recovered") >= 1, "the retry must succeed");
    assert_eq!(delta("faults.exhausted"), 0, "one transient fault never exhausts the budget");

    // The crosscheck invariant must hold *through* the retry: failed
    // attempts roll their stats back, so the live counter still agrees
    // with the cost model's committed page-read count.
    assert_eq!(delta("storage.page.read"), report.pages_read_storage);
    assert_eq!(delta("storage.page.read"), delta("storage.page.decrypt"));
    // …and the verified-node-cache tallies account for every freshness
    // check exactly once, retries notwithstanding.
    assert_eq!(
        delta("storage.merkle.cache.hit") + delta("storage.merkle.cache.miss"),
        delta("storage.page.hmac_verify"),
        "every verified read is classified as exactly one cache hit or miss"
    );
}

/// Every freshness-verified read on the (cache-enabled, single-session)
/// secure pager is classified as exactly one verified-node-cache hit or
/// miss, and a repeated scan on an unchanged root is all hits.
#[test]
fn merkle_cache_counters_partition_verified_reads() {
    let data = ironsafe_tpch::generate(0.002, 42);
    let mut sys = CsaSystem::build(SystemConfig::IronSafe, &data, CostParams::default())
        .expect("system builds");

    let registry = Registry::new();
    sys.storage_db().register_metrics(&registry);
    let before = registry.snapshot();
    sys.run_query(&query(6).expect("q6 known")).expect("q6 runs");
    let mid = registry.snapshot();
    sys.run_query(&query(6).expect("q6 known")).expect("warm q6 runs");
    let after = registry.snapshot();

    let d = |a: &ironsafe_obs::MetricsSnapshot, b: &ironsafe_obs::MetricsSnapshot, n: &str| {
        b.counter(n).unwrap() - a.counter(n).unwrap()
    };
    let cold_hits = d(&before, &mid, "storage.merkle.cache.hit");
    let cold_misses = d(&before, &mid, "storage.merkle.cache.miss");
    assert_eq!(
        cold_hits + cold_misses,
        d(&before, &mid, "storage.page.hmac_verify"),
        "hit/miss partition the verified reads"
    );
    assert!(cold_misses > 0, "cold scan must authenticate paths");
    let warm_hits = d(&mid, &after, "storage.merkle.cache.hit");
    let warm_misses = d(&mid, &after, "storage.merkle.cache.miss");
    assert_eq!(warm_misses, 0, "unchanged root: repeat scan is all hits");
    assert_eq!(warm_hits, d(&mid, &after, "storage.page.hmac_verify"));
}

/// The WAL/MVCC counters crosscheck against the write path's own
/// accounting: `wal.txn` counts exactly the accepted statements,
/// `wal.group_commit` the flushes, and a pinned reader's pre-image
/// retention shows up in `mvcc.retain`/`mvcc.read.retained`.
#[test]
fn wal_and_mvcc_counters_track_the_write_path() {
    use ironsafe_csa::SharedCsaSystem;

    let data = ironsafe_tpch::generate(0.002, 42);
    let sys = CsaSystem::build(SystemConfig::StorageOnlySecure, &data, CostParams::default())
        .expect("system builds");
    let shared = SharedCsaSystem::new(sys);
    shared.set_group_size(2);
    shared.attach_wal(0xA11).expect("secure base journals");

    let registry = Registry::new();
    shared.register_wal_metrics(&registry);
    let before = registry.snapshot();
    let key = [5u8; 32];

    for k in 0..4 {
        let del = ironsafe_sql::parser::parse_statement(&format!(
            "DELETE FROM region WHERE r_regionkey = {k}"
        ))
        .unwrap();
        shared.run_statement(&del, key).unwrap();
    }

    let after = registry.snapshot();
    let delta = |name: &str| after.counter(name).unwrap() - before.counter(name).unwrap_or(0);
    assert_eq!(delta("wal.txn"), 4, "every accepted statement is a WAL transaction");
    assert_eq!(delta("wal.group_commit"), 2, "4 txns at group size 2 = 2 flushes");
    assert_eq!(delta("wal.append"), 2, "one commit record per flush");
    assert!(delta("wal.append.bytes") > 0, "records carry post-images");
    assert!(delta("mvcc.retain") > 0, "flushes retain overwritten pre-images");
    assert_eq!(delta("mvcc.pin"), 0, "no reader pinned during the writes");

    // A pin taken now, surviving across a later flush, reads retained
    // pre-images.
    let sel = ironsafe_sql::parser::parse_statement("SELECT COUNT(*) FROM region").unwrap();
    shared.run_statement(&sel, key).unwrap();
    let pinned = registry.snapshot();
    assert_eq!(
        pinned.counter("mvcc.pin").unwrap() - after.counter("mvcc.pin").unwrap(),
        1,
        "one snapshot pin per read"
    );
}

#[test]
fn plain_pager_registers_no_storage_counters() {
    let data = ironsafe_tpch::generate(0.002, 42);
    let sys = CsaSystem::build(SystemConfig::HostOnlyNonSecure, &data, CostParams::default())
        .expect("system builds");
    let registry = Registry::new();
    sys.storage_db().register_metrics(&registry);
    assert!(registry.snapshot().counter("storage.page.read").is_none());
}
