//! HMAC-SHA256 (RFC 2104 / FIPS 198-1).
//!
//! HMAC is the workhorse MAC of IronSafe: it authenticates encrypted pages,
//! forms Merkle-tree nodes, binds the Merkle root to the RPMB, and keys the
//! simulated hardware attestation responses.

use crate::ct::ct_eq;
use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Streaming HMAC-SHA256.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    /// Key XORed with the opad, kept to finish the outer hash.
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Create an HMAC instance keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let d = crate::sha256::sha256(key);
            k[..DIGEST_LEN].copy_from_slice(&d);
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 { inner, opad_key: opad }
    }

    /// Absorb message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produce the 32-byte tag.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// Verify `tag` against the absorbed message in constant time.
    pub fn verify(self, tag: &[u8]) -> bool {
        let computed = self.finalize();
        tag.len() == DIGEST_LEN && ct_eq(&computed, tag)
    }
}

/// One-shot HMAC-SHA256.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = HmacSha256::new(key);
    h.update(data);
    h.finalize()
}

/// One-shot HMAC over the concatenation of `parts`.
pub fn hmac_sha256_concat(key: &[u8], parts: &[&[u8]]) -> [u8; DIGEST_LEN] {
    let mut h = HmacSha256::new(key);
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_correct_and_rejects_wrong() {
        let tag = hmac_sha256(b"k", b"msg");
        let mut h = HmacSha256::new(b"k");
        h.update(b"msg");
        assert!(h.verify(&tag));

        let mut bad = tag;
        bad[0] ^= 1;
        let mut h = HmacSha256::new(b"k");
        h.update(b"msg");
        assert!(!h.verify(&bad));

        let mut h = HmacSha256::new(b"k");
        h.update(b"msg");
        assert!(!h.verify(&tag[..31]), "short tag must be rejected");
    }

    #[test]
    fn different_keys_differ() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }

    #[test]
    fn concat_equals_contiguous() {
        assert_eq!(
            hmac_sha256_concat(b"key", &[b"ab", b"cd"]),
            hmac_sha256(b"key", b"abcd")
        );
    }
}
