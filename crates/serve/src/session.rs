//! Session lifecycle management over the trusted monitor.
//!
//! The monitor owns the authoritative session table (keys, states,
//! audit trail); this module wraps it behind a shared handle with a
//! monotonic logical clock, so the server and its workers can open,
//! touch, revoke and idle-expire sessions concurrently without caring
//! that the monitor itself is a `&mut self` API.

use ironsafe_monitor::monitor::QueryRequest;
use ironsafe_monitor::{Authorization, MonitorError, SessionState, TrustedMonitor};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// An open serving session, as handed to a client.
#[derive(Debug, Clone)]
pub struct SessionHandle {
    /// Monitor-issued session id.
    pub id: u64,
    /// Channel key bound to this session (used for split execution).
    pub key: [u8; 32],
    /// Client identity key the session was opened for.
    pub client: String,
}

/// Shared, clock-bearing wrapper around the trusted monitor's session
/// machinery.
pub struct SessionManager {
    monitor: Arc<Mutex<TrustedMonitor>>,
    clock: AtomicI64,
    idle_timeout: i64,
}

impl SessionManager {
    /// Wrap `monitor`; sessions idle for `idle_timeout` logical ticks
    /// are expired by [`expire_idle`](SessionManager::expire_idle).
    pub fn new(monitor: Arc<Mutex<TrustedMonitor>>, idle_timeout: i64) -> Self {
        SessionManager { monitor, clock: AtomicI64::new(1), idle_timeout }
    }

    /// Advance and return the logical clock. Every session event gets a
    /// distinct tick, which keeps the monitor's audit timestamps ordered
    /// without consulting wall time (determinism).
    pub fn now(&self) -> i64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Open a session for `client`.
    pub fn open(&self, client: &str) -> SessionHandle {
        let now = self.now();
        let (id, key) = self.monitor.lock().open_session(client, now);
        SessionHandle { id, key, client: client.to_string() }
    }

    /// Mark the session used now; errors if it is revoked/expired/gone.
    pub fn touch(&self, session_id: u64) -> Result<(), MonitorError> {
        let now = self.now();
        self.monitor.lock().touch_session(session_id, now)
    }

    /// Administratively revoke the session.
    pub fn revoke(&self, session_id: u64) -> Result<(), MonitorError> {
        let now = self.now();
        self.monitor.lock().revoke_session(session_id, now)
    }

    /// Expire every session idle for at least the configured timeout;
    /// returns the ids that flipped to `Expired`.
    pub fn expire_idle(&self) -> Vec<u64> {
        let now = self.now();
        self.monitor.lock().expire_idle_sessions(now, self.idle_timeout)
    }

    /// The session's current state, if it exists.
    pub fn state(&self, session_id: u64) -> Option<SessionState> {
        self.monitor.lock().session_state(session_id)
    }

    /// Authorize one SQL statement through the monitor (policy check +
    /// rewrite + per-query key), stamped with the current logical time.
    pub fn authorize(
        &self,
        client: &str,
        database: &str,
        sql: &str,
    ) -> Result<Authorization, MonitorError> {
        let now = self.now();
        self.monitor.lock().authorize(&QueryRequest {
            client_key: client.to_string(),
            database: database.to_string(),
            sql: sql.to_string(),
            exec_policy: String::new(),
            access_time: now,
        })
    }

    /// Release a per-query session minted by
    /// [`authorize`](SessionManager::authorize).
    pub fn cleanup(&self, session_id: u64) {
        let _ = self.monitor.lock().cleanup_session(session_id);
    }

    /// The wrapped monitor (audit/regulator interface).
    pub fn monitor(&self) -> &Arc<Mutex<TrustedMonitor>> {
        &self.monitor
    }
}
