//! Catalog persistence.
//!
//! The catalog (table definitions + heap page lists) serializes into a
//! chain of reserved pages rooted at page 0, so a database survives a
//! power cycle: reopen the (secure) pager from the medium, then
//! [`read_catalog`] rebuilds the in-memory catalog. Under the secure
//! pager the catalog pages get the same encryption + Merkle + freshness
//! protection as data pages — a rolled-back catalog is detected exactly
//! like rolled-back data.

use crate::catalog::{Catalog, TableInfo};
use crate::heap::{HeapFile, SharedPager};
use crate::schema::{Column, Schema};
use crate::value::DataType;
use crate::{Result, SqlError};
use ironsafe_storage::pager::PageId;

/// The catalog root always lives at page 0.
pub const CATALOG_ROOT: PageId = 0;

const MAGIC: &[u8; 6] = b"ISCAT1";
/// Sentinel "no next page".
const NO_NEXT: u64 = u64::MAX;
/// Per-page header: next pointer + chunk length.
const CHAIN_HEADER: usize = 12;

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn get_str(buf: &[u8], pos: &mut usize) -> Result<String> {
    let err = || SqlError::Eval("corrupt catalog encoding".into());
    let len = u16::from_be_bytes(buf.get(*pos..*pos + 2).ok_or_else(err)?.try_into().expect("2")) as usize;
    *pos += 2;
    let s = buf.get(*pos..*pos + len).ok_or_else(err)?;
    *pos += len;
    String::from_utf8(s.to_vec()).map_err(|_| err())
}

fn ty_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Text => 2,
    }
}

fn tag_ty(tag: u8) -> Result<DataType> {
    match tag {
        0 => Ok(DataType::Int),
        1 => Ok(DataType::Float),
        2 => Ok(DataType::Text),
        _ => Err(SqlError::Eval("corrupt catalog: bad type tag".into())),
    }
}

/// Serialize the catalog.
pub fn encode_catalog(catalog: &Catalog) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(MAGIC);
    let tables: Vec<&TableInfo> = catalog.tables().collect();
    out.extend_from_slice(&(tables.len() as u32).to_be_bytes());
    for t in tables {
        put_str(&mut out, &t.name);
        out.extend_from_slice(&(t.schema.len() as u16).to_be_bytes());
        for c in &t.schema.columns {
            put_str(&mut out, &c.name);
            out.push(ty_tag(c.ty));
        }
        out.extend_from_slice(&t.heap.row_count.to_be_bytes());
        out.extend_from_slice(&(t.heap.pages.len() as u32).to_be_bytes());
        for p in &t.heap.pages {
            out.extend_from_slice(&p.to_be_bytes());
        }
    }
    out
}

/// Deserialize a catalog.
pub fn decode_catalog(buf: &[u8]) -> Result<Catalog> {
    let err = || SqlError::Eval("corrupt catalog encoding".into());
    if buf.len() < 10 || &buf[..6] != MAGIC {
        return Err(SqlError::Eval("not an IronSafe catalog (bad magic)".into()));
    }
    let mut pos = 6;
    let n_tables = u32::from_be_bytes(buf[pos..pos + 4].try_into().expect("4")) as usize;
    pos += 4;
    let mut catalog = Catalog::new();
    for _ in 0..n_tables {
        let name = get_str(buf, &mut pos)?;
        let ncols = u16::from_be_bytes(buf.get(pos..pos + 2).ok_or_else(err)?.try_into().expect("2")) as usize;
        pos += 2;
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let cname = get_str(buf, &mut pos)?;
            let tag = *buf.get(pos).ok_or_else(err)?;
            pos += 1;
            columns.push(Column::new(cname, tag_ty(tag)?));
        }
        let row_count = u64::from_be_bytes(buf.get(pos..pos + 8).ok_or_else(err)?.try_into().expect("8"));
        pos += 8;
        let npages = u32::from_be_bytes(buf.get(pos..pos + 4).ok_or_else(err)?.try_into().expect("4")) as usize;
        pos += 4;
        let mut pages = Vec::with_capacity(npages);
        for _ in 0..npages {
            pages.push(u64::from_be_bytes(buf.get(pos..pos + 8).ok_or_else(err)?.try_into().expect("8")));
            pos += 8;
        }
        catalog.create_table(&name, Schema::new(columns))?;
        catalog.table_mut(&name)?.heap = HeapFile { pages, row_count };
    }
    Ok(catalog)
}

/// Write `bytes` into the catalog page chain rooted at [`CATALOG_ROOT`],
/// reusing `existing` chain pages and allocating more as needed. Returns
/// the full chain so the caller can remember it for the next write.
pub fn write_chain(pager: &SharedPager, existing: &[PageId], bytes: &[u8]) -> Result<Vec<PageId>> {
    let mut pager = pager.lock();
    let payload = pager.payload_size();
    let chunk = payload - CHAIN_HEADER;
    let n_pages = bytes.len().div_ceil(chunk).max(1);
    let mut chain: Vec<PageId> = existing.to_vec();
    if chain.is_empty() {
        debug_assert_eq!(pager.num_pages(), 0, "catalog root must be the first page");
        chain.push(pager.allocate_page()?);
        debug_assert_eq!(chain[0], CATALOG_ROOT);
    }
    while chain.len() < n_pages {
        chain.push(pager.allocate_page()?);
    }
    let mut page = vec![0u8; payload];
    for i in 0..n_pages {
        let start = i * chunk;
        let end = (start + chunk).min(bytes.len());
        let next = if i + 1 < n_pages { chain[i + 1] } else { NO_NEXT };
        page.iter_mut().for_each(|b| *b = 0);
        page[..8].copy_from_slice(&next.to_be_bytes());
        page[8..12].copy_from_slice(&((end - start) as u32).to_be_bytes());
        page[CHAIN_HEADER..CHAIN_HEADER + end - start].copy_from_slice(&bytes[start..end]);
        pager.write_page(chain[i], &page)?;
    }
    // Truncate stale tail links by rewriting the (now unused) pages empty.
    for &p in &chain[n_pages..] {
        page.iter_mut().for_each(|b| *b = 0);
        page[..8].copy_from_slice(&NO_NEXT.to_be_bytes());
        pager.write_page(p, &page)?;
    }
    Ok(chain)
}

/// Read the catalog byte chain rooted at [`CATALOG_ROOT`]. Also returns
/// the chain page ids.
pub fn read_chain(pager: &SharedPager) -> Result<(Vec<u8>, Vec<PageId>)> {
    let mut pager = pager.lock();
    let payload = pager.payload_size();
    let mut bytes = Vec::new();
    let mut chain = Vec::new();
    let mut page = vec![0u8; payload];
    let mut current = CATALOG_ROOT;
    loop {
        pager.read_page(current, &mut page)?;
        chain.push(current);
        let next = u64::from_be_bytes(page[..8].try_into().expect("8"));
        let len = u32::from_be_bytes(page[8..12].try_into().expect("4")) as usize;
        if CHAIN_HEADER + len > payload {
            return Err(SqlError::Eval("corrupt catalog chain: bad chunk length".into()));
        }
        bytes.extend_from_slice(&page[CHAIN_HEADER..CHAIN_HEADER + len]);
        if next == NO_NEXT {
            break;
        }
        if chain.len() > 1_000_000 {
            return Err(SqlError::Eval("corrupt catalog chain: cycle".into()));
        }
        current = next;
    }
    Ok((bytes, chain))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::shared;
    use ironsafe_storage::pager::PlainPager;

    fn sample_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            "lineitem",
            Schema::new(vec![
                Column::new("l_orderkey", DataType::Int),
                Column::new("l_quantity", DataType::Float),
                Column::new("l_comment", DataType::Text),
            ]),
        )
        .unwrap();
        c.table_mut("lineitem").unwrap().heap = HeapFile { pages: vec![3, 4, 9], row_count: 120 };
        c.create_table("empty", Schema::new(vec![Column::new("x", DataType::Int)])).unwrap();
        c
    }

    #[test]
    fn encode_decode_roundtrip() {
        let c = sample_catalog();
        let bytes = encode_catalog(&c);
        let back = decode_catalog(&bytes).unwrap();
        let t = back.table("lineitem").unwrap();
        assert_eq!(t.schema.len(), 3);
        assert_eq!(t.schema.columns[1].ty, DataType::Float);
        assert_eq!(t.heap.pages, vec![3, 4, 9]);
        assert_eq!(t.heap.row_count, 120);
        assert!(back.has_table("empty"));
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(decode_catalog(b"NOTACATALOG").is_err());
        assert!(decode_catalog(b"").is_err());
    }

    #[test]
    fn truncated_bytes_rejected() {
        let bytes = encode_catalog(&sample_catalog());
        for cut in [7, 10, bytes.len() - 1] {
            assert!(decode_catalog(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn chain_roundtrip_small_and_multi_page() {
        let pager = shared(PlainPager::new());
        // Small payload.
        let chain = write_chain(&pager, &[], b"hello catalog").unwrap();
        assert_eq!(chain, vec![CATALOG_ROOT]);
        let (bytes, read_pages) = read_chain(&pager).unwrap();
        assert_eq!(bytes, b"hello catalog");
        assert_eq!(read_pages, chain);

        // Grow to a multi-page payload, reusing the root.
        let big: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        let chain = write_chain(&pager, &chain, &big).unwrap();
        assert!(chain.len() > 1);
        let (bytes, _) = read_chain(&pager).unwrap();
        assert_eq!(bytes, big);

        // Shrink again: stale tail pages must not resurface.
        let chain2 = write_chain(&pager, &chain, b"tiny").unwrap();
        assert_eq!(chain2.len(), chain.len(), "chain keeps its pages for reuse");
        let (bytes, read_pages) = read_chain(&pager).unwrap();
        assert_eq!(bytes, b"tiny");
        assert_eq!(read_pages.len(), 1);
    }
}
