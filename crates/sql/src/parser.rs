//! Recursive-descent SQL parser.

use crate::ast::*;
use crate::token::{tokenize, Token};
use crate::value::{DataType, Value};
use crate::{Result, SqlError};

/// Parse a semicolon-separated script into statements.
pub fn parse(sql: &str) -> Result<Vec<Statement>> {
    let toks = tokenize(sql)?;
    let mut p = Parser { toks, pos: 0 };
    let mut out = Vec::new();
    loop {
        while p.eat_token(&Token::Semi) {}
        if p.at_end() {
            break;
        }
        out.push(p.statement()?);
    }
    Ok(out)
}

/// Parse exactly one statement.
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let mut stmts = parse(sql)?;
    match stmts.len() {
        1 => Ok(stmts.remove(0)),
        n => Err(SqlError::Parse(format!("expected one statement, found {n}"))),
    }
}

/// Parse a standalone expression (used in policies and tests).
pub fn parse_expression(sql: &str) -> Result<Expr> {
    let toks = tokenize(sql)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.expr()?;
    if !p.at_end() {
        return Err(SqlError::Parse(format!("trailing tokens after expression: {:?}", p.peek())));
    }
    Ok(e)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Result<Token> {
        let t = self.toks.get(self.pos).cloned().ok_or_else(|| SqlError::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn eat_token(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_token(&mut self, t: &Token) -> Result<()> {
        if self.eat_token(t) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!("expected {t:?}, found {:?}", self.peek())))
        }
    }

    /// Case-insensitive keyword check.
    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!("expected `{kw}`, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s.to_ascii_lowercase()),
            other => Err(SqlError::Parse(format!("expected identifier, found {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.peek_kw("SELECT") {
            Ok(Statement::Select(self.select()?))
        } else if self.eat_kw("CREATE") {
            self.expect_kw("TABLE")?;
            self.create_table()
        } else if self.eat_kw("INSERT") {
            self.expect_kw("INTO")?;
            self.insert()
        } else if self.eat_kw("UPDATE") {
            self.update()
        } else if self.eat_kw("DELETE") {
            self.expect_kw("FROM")?;
            self.delete()
        } else if self.eat_kw("DROP") {
            self.expect_kw("TABLE")?;
            Ok(Statement::DropTable { name: self.ident()? })
        } else {
            Err(SqlError::Parse(format!("unexpected token {:?}", self.peek())))
        }
    }

    fn create_table(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        self.expect_token(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ty = self.data_type()?;
            columns.push((col, ty));
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        self.expect_token(&Token::RParen)?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn data_type(&mut self) -> Result<DataType> {
        let name = self.ident()?;
        let ty = match name.as_str() {
            "int" | "integer" | "bigint" | "smallint" => DataType::Int,
            "float" | "real" | "double" | "decimal" | "numeric" => DataType::Float,
            "text" | "varchar" | "char" | "date" | "string" => DataType::Text,
            other => return Err(SqlError::Parse(format!("unknown type `{other}`"))),
        };
        // Optional precision, e.g. VARCHAR(25) or DECIMAL(15, 2).
        if self.eat_token(&Token::LParen) {
            loop {
                match self.next()? {
                    Token::Int(_) => {}
                    other => return Err(SqlError::Parse(format!("expected precision, found {other:?}"))),
                }
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(&Token::RParen)?;
        }
        Ok(ty)
    }

    fn insert(&mut self) -> Result<Statement> {
        let table = self.ident()?;
        let columns = if self.eat_token(&Token::LParen) {
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(&Token::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("VALUES")?;
        let mut values = Vec::new();
        loop {
            self.expect_token(&Token::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(&Token::RParen)?;
            values.push(row);
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, columns, values })
    }

    fn update(&mut self) -> Result<Statement> {
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_token(&Token::Eq)?;
            sets.push((col, self.expr()?));
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        Ok(Statement::Update { table, sets, where_clause })
    }

    fn delete(&mut self) -> Result<Statement> {
        let table = self.ident()?;
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        Ok(Statement::Delete { table, where_clause })
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("SELECT")?;
        let mut projections = Vec::new();
        loop {
            if self.eat_token(&Token::Star) {
                projections.push(SelectItem::Star);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.ident()?)
                } else if let Some(Token::Ident(s)) = self.peek() {
                    // Implicit alias, but never steal a clause keyword.
                    let up = s.to_ascii_uppercase();
                    if ["FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT"].contains(&up.as_str()) {
                        None
                    } else {
                        Some(self.ident()?)
                    }
                } else {
                    None
                };
                projections.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }

        let mut from = Vec::new();
        if self.eat_kw("FROM") {
            loop {
                let name = self.ident()?;
                let alias = if self.eat_kw("AS") {
                    self.ident()?
                } else if let Some(Token::Ident(s)) = self.peek() {
                    let up = s.to_ascii_uppercase();
                    if ["WHERE", "GROUP", "HAVING", "ORDER", "LIMIT"].contains(&up.as_str()) {
                        name.clone()
                    } else {
                        self.ident()?
                    }
                } else {
                    name.clone()
                };
                from.push(TableRef { name, alias });
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }

        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };

        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }

        let having = if self.eat_kw("HAVING") { Some(self.expr()?) } else { None };

        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let e = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push((e, desc));
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }

        let limit = if self.eat_kw("LIMIT") {
            match self.next()? {
                Token::Int(n) if n >= 0 => Some(n as u64),
                other => return Err(SqlError::Parse(format!("expected LIMIT count, found {other:?}"))),
            }
        } else {
            None
        };

        Ok(SelectStmt { projections, from, where_clause, group_by, having, order_by, limit })
    }

    // ---- expressions, precedence climbing ----

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::bin(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::bin(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            let e = self.not_expr()?;
            Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(e) })
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // Postfix predicate forms.
        let negated = self.eat_kw("NOT");
        if self.eat_kw("BETWEEN") {
            let low = self.additive()?;
            self.expect_kw("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between { expr: Box::new(left), low: Box::new(low), high: Box::new(high), negated });
        }
        if self.eat_kw("IN") {
            self.expect_token(&Token::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(&Token::RParen)?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if self.eat_kw("LIKE") {
            match self.next()? {
                Token::Str(pattern) => {
                    return Ok(Expr::Like { expr: Box::new(left), pattern, negated });
                }
                other => return Err(SqlError::Parse(format!("LIKE needs a string pattern, found {other:?}"))),
            }
        }
        if negated {
            return Err(SqlError::Parse("dangling NOT before comparison".into()));
        }
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::NotEq) => Some(BinOp::NotEq),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::LtEq) => Some(BinOp::LtEq),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::GtEq) => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(Expr::bin(op, left, right));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::bin(op, left, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = Expr::bin(op, left, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_token(&Token::Minus) {
            let e = self.unary()?;
            // Constant-fold negative literals for cleanliness.
            return Ok(match e {
                Expr::Literal(Value::Int(i)) => Expr::Literal(Value::Int(-i)),
                Expr::Literal(Value::Float(f)) => Expr::Literal(Value::Float(-f)),
                other => Expr::Unary { op: UnaryOp::Neg, expr: Box::new(other) },
            });
        }
        if self.eat_token(&Token::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.next()? {
            Token::Int(i) => Ok(Expr::Literal(Value::Int(i))),
            Token::Float(f) => Ok(Expr::Literal(Value::Float(f))),
            Token::Str(s) => Ok(Expr::Literal(Value::Text(s))),
            Token::LParen => {
                let e = self.expr()?;
                self.expect_token(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(id) => {
                let up = id.to_ascii_uppercase();
                match up.as_str() {
                    "NULL" => Ok(Expr::Literal(Value::Null)),
                    "TRUE" => Ok(Expr::Literal(Value::Int(1))),
                    "FALSE" => Ok(Expr::Literal(Value::Int(0))),
                    "CASE" => self.case_expr(),
                    "DATE" => {
                        // `DATE 'YYYY-MM-DD'` — dates are text.
                        match self.next()? {
                            Token::Str(s) => Ok(Expr::Literal(Value::Text(s))),
                            other => Err(SqlError::Parse(format!("DATE needs a string, found {other:?}"))),
                        }
                    }
                    "SUBSTR" | "SUBSTRING" | "LENGTH" | "YEAR" | "ABS" | "ROUND" => {
                        self.expect_token(&Token::LParen)?;
                        let mut args = Vec::new();
                        if !self.eat_token(&Token::RParen) {
                            loop {
                                args.push(self.expr()?);
                                if !self.eat_token(&Token::Comma) {
                                    break;
                                }
                            }
                            self.expect_token(&Token::RParen)?;
                        }
                        let name = if up == "SUBSTRING" { "SUBSTR".to_string() } else { up };
                        Ok(Expr::Func { name, args })
                    }
                    "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" => {
                        let func = match up.as_str() {
                            "COUNT" => AggFunc::Count,
                            "SUM" => AggFunc::Sum,
                            "AVG" => AggFunc::Avg,
                            "MIN" => AggFunc::Min,
                            _ => AggFunc::Max,
                        };
                        self.expect_token(&Token::LParen)?;
                        if self.eat_token(&Token::Star) {
                            self.expect_token(&Token::RParen)?;
                            return Ok(Expr::Agg { func, arg: None, distinct: false });
                        }
                        let distinct = self.eat_kw("DISTINCT");
                        let arg = self.expr()?;
                        self.expect_token(&Token::RParen)?;
                        Ok(Expr::Agg { func, arg: Some(Box::new(arg)), distinct })
                    }
                    "SELECT" | "FROM" | "WHERE" | "GROUP" | "HAVING" | "ORDER" | "LIMIT" | "BY"
                    | "AS" | "SET" | "VALUES" | "INTO" => {
                        Err(SqlError::Parse(format!("unexpected keyword `{up}` in expression")))
                    }
                    _ => {
                        // Column reference, possibly qualified.
                        if self.eat_token(&Token::Dot) {
                            let col = self.ident()?;
                            Ok(Expr::Column(format!("{}.{}", id.to_ascii_lowercase(), col)))
                        } else {
                            Ok(Expr::Column(id.to_ascii_lowercase()))
                        }
                    }
                }
            }
            other => Err(SqlError::Parse(format!("unexpected token {other:?} in expression"))),
        }
    }

    fn case_expr(&mut self) -> Result<Expr> {
        let mut when_then = Vec::new();
        while self.eat_kw("WHEN") {
            let cond = self.expr()?;
            self.expect_kw("THEN")?;
            let val = self.expr()?;
            when_then.push((cond, val));
        }
        if when_then.is_empty() {
            return Err(SqlError::Parse("CASE needs at least one WHEN arm".into()));
        }
        let else_expr = if self.eat_kw("ELSE") { Some(Box::new(self.expr()?)) } else { None };
        self.expect_kw("END")?;
        Ok(Expr::Case { when_then, else_expr })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table() {
        let s = parse_statement("CREATE TABLE t (a INT, b VARCHAR(25), c DECIMAL(15,2), d DATE)").unwrap();
        assert_eq!(
            s,
            Statement::CreateTable {
                name: "t".into(),
                columns: vec![
                    ("a".into(), DataType::Int),
                    ("b".into(), DataType::Text),
                    ("c".into(), DataType::Float),
                    ("d".into(), DataType::Text),
                ],
            }
        );
    }

    #[test]
    fn insert_multi_row() {
        let s = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match s {
            Statement::Insert { table, columns, values } => {
                assert_eq!(table, "t");
                assert_eq!(columns, Some(vec!["a".into(), "b".into()]));
                assert_eq!(values.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn select_full_clause_set() {
        let s = parse_statement(
            "SELECT a, SUM(b * c) AS total FROM t, u WHERE a = 1 AND b < 5 \
             GROUP BY a HAVING SUM(b * c) > 10 ORDER BY total DESC, a LIMIT 7",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.projections.len(), 2);
                assert_eq!(sel.from.len(), 2);
                assert!(sel.where_clause.is_some());
                assert_eq!(sel.group_by.len(), 1);
                assert!(sel.having.is_some());
                assert_eq!(sel.order_by.len(), 2);
                assert!(sel.order_by[0].1, "first key DESC");
                assert!(!sel.order_by[1].1, "second key ASC");
                assert_eq!(sel.limit, Some(7));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn operator_precedence() {
        // 1 + 2 * 3 = 1 + (2 * 3)
        let e = parse_expression("1 + 2 * 3").unwrap();
        assert_eq!(
            e,
            Expr::bin(BinOp::Add, Expr::int(1), Expr::bin(BinOp::Mul, Expr::int(2), Expr::int(3)))
        );
        // a OR b AND c = a OR (b AND c)
        let e = parse_expression("a OR b AND c").unwrap();
        assert_eq!(
            e,
            Expr::bin(BinOp::Or, Expr::col("a"), Expr::bin(BinOp::And, Expr::col("b"), Expr::col("c")))
        );
    }

    #[test]
    fn between_in_like() {
        let e = parse_expression("x BETWEEN 1 AND 10").unwrap();
        assert!(matches!(e, Expr::Between { negated: false, .. }));
        let e = parse_expression("x NOT BETWEEN 1 AND 10").unwrap();
        assert!(matches!(e, Expr::Between { negated: true, .. }));
        let e = parse_expression("x IN (1, 2, 3)").unwrap();
        assert!(matches!(e, Expr::InList { negated: false, .. }));
        let e = parse_expression("x NOT LIKE '%y%'").unwrap();
        assert!(matches!(e, Expr::Like { negated: true, .. }));
    }

    #[test]
    fn is_null_forms() {
        assert!(matches!(parse_expression("x IS NULL").unwrap(), Expr::IsNull { negated: false, .. }));
        assert!(matches!(parse_expression("x IS NOT NULL").unwrap(), Expr::IsNull { negated: true, .. }));
    }

    #[test]
    fn case_expression() {
        let e = parse_expression("CASE WHEN a = 1 THEN 'one' WHEN a = 2 THEN 'two' ELSE 'many' END").unwrap();
        match e {
            Expr::Case { when_then, else_expr } => {
                assert_eq!(when_then.len(), 2);
                assert!(else_expr.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn aggregates() {
        assert!(matches!(
            parse_expression("COUNT(*)").unwrap(),
            Expr::Agg { func: AggFunc::Count, arg: None, .. }
        ));
        assert!(matches!(
            parse_expression("COUNT(DISTINCT x)").unwrap(),
            Expr::Agg { func: AggFunc::Count, distinct: true, .. }
        ));
        assert!(matches!(
            parse_expression("AVG(x + 1)").unwrap(),
            Expr::Agg { func: AggFunc::Avg, .. }
        ));
    }

    #[test]
    fn qualified_columns() {
        assert_eq!(parse_expression("t.col").unwrap(), Expr::Column("t.col".into()));
    }

    #[test]
    fn date_literal() {
        assert_eq!(
            parse_expression("DATE '1994-01-01'").unwrap(),
            Expr::Literal(Value::Text("1994-01-01".into()))
        );
    }

    #[test]
    fn negative_literals_fold() {
        assert_eq!(parse_expression("-5").unwrap(), Expr::int(-5));
        assert_eq!(parse_expression("-2.5").unwrap(), Expr::Literal(Value::Float(-2.5)));
    }

    #[test]
    fn update_delete_drop() {
        assert!(matches!(
            parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE c = 'x'").unwrap(),
            Statement::Update { .. }
        ));
        assert!(matches!(
            parse_statement("DELETE FROM t WHERE a < 5").unwrap(),
            Statement::Delete { .. }
        ));
        assert!(matches!(parse_statement("DROP TABLE t").unwrap(), Statement::DropTable { .. }));
    }

    #[test]
    fn table_aliases() {
        let s = parse_statement("SELECT a FROM lineitem l, orders AS o WHERE l.a = o.b").unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.from[0].alias, "l");
                assert_eq!(sel.from[1].alias, "o");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multiple_statements() {
        let stmts = parse("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;").unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn garbage_rejected() {
        assert!(parse_statement("SELEKT foo").is_err());
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_expression("1 +").is_err());
        assert!(parse_expression("(1").is_err());
    }
}
