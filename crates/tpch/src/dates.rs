//! Civil-date arithmetic for ISO-8601 text dates.
//!
//! The engine stores dates as `YYYY-MM-DD` strings (lexicographic order is
//! chronological order); the generator needs day-level arithmetic, so this
//! module converts between day numbers and ISO strings using the classic
//! Howard Hinnant `days_from_civil` algorithm.

/// Days since 1970-01-01 for a civil date.
pub fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64; // [0, 399]
    let mp = (m + 9) % 12; // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy as u64; // [0, 146096]
    era * 146097 + doe as i64 - 719468
}

/// Civil date `(y, m, d)` from days since 1970-01-01.
pub fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = (z - era * 146097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Day number → `YYYY-MM-DD`.
pub fn iso_from_days(days: i64) -> String {
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// `YYYY-MM-DD` → day number. Panics on malformed input (generator-side
/// only; the engine never parses dates).
pub fn days_from_iso(iso: &str) -> i64 {
    let y: i64 = iso[0..4].parse().expect("year");
    let m: u32 = iso[5..7].parse().expect("month");
    let d: u32 = iso[8..10].parse().expect("day");
    days_from_civil(y, m, d)
}

/// First order date in the TPC-H population (1992-01-01).
pub const START_DATE: &str = "1992-01-01";
/// Last order date in the TPC-H population (1998-08-02).
pub const END_DATE: &str = "1998-08-02";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn known_dates() {
        assert_eq!(iso_from_days(days_from_iso("1992-01-01")), "1992-01-01");
        assert_eq!(iso_from_days(days_from_iso("1998-08-02")), "1998-08-02");
        // Leap day.
        assert_eq!(iso_from_days(days_from_iso("1996-02-29")), "1996-02-29");
        // Day after leap day.
        assert_eq!(iso_from_days(days_from_iso("1996-02-29") + 1), "1996-03-01");
    }

    #[test]
    fn roundtrip_every_day_in_population_range() {
        let start = days_from_iso(START_DATE);
        let end = days_from_iso(END_DATE);
        assert!(end > start);
        for day in start..=end {
            let iso = iso_from_days(day);
            assert_eq!(days_from_iso(&iso), day, "{iso}");
        }
    }

    #[test]
    fn iso_order_is_chronological() {
        let a = iso_from_days(days_from_iso("1995-12-31"));
        let b = iso_from_days(days_from_iso("1996-01-01"));
        assert!(a < b);
    }
}
