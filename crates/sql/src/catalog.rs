//! The table catalog.

use crate::heap::HeapFile;
use crate::schema::Schema;
use crate::{Result, SqlError};
use std::collections::BTreeMap;

/// Metadata and storage handle for one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableInfo {
    /// Table name (lowercase).
    pub name: String,
    /// Column layout.
    pub schema: Schema,
    /// Row storage.
    pub heap: HeapFile,
}

/// The set of tables in a database.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, TableInfo>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a table; errors if it exists.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(SqlError::Plan(format!("table `{key}` already exists")));
        }
        self.tables.insert(key.clone(), TableInfo { name: key, schema, heap: HeapFile::new() });
        Ok(())
    }

    /// Drop a table; errors if missing.
    pub fn drop_table(&mut self, name: &str) -> Result<TableInfo> {
        self.tables
            .remove(&name.to_ascii_lowercase())
            .ok_or_else(|| SqlError::Plan(format!("unknown table `{name}`")))
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<&TableInfo> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| SqlError::Plan(format!("unknown table `{name}`")))
    }

    /// Mutable lookup.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut TableInfo> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| SqlError::Plan(format!("unknown table `{name}`")))
    }

    /// Does the table exist?
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    /// Iterate tables in name order.
    pub fn tables(&self) -> impl Iterator<Item = &TableInfo> {
        self.tables.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::new(vec![Column::new("id", DataType::Int)])
    }

    #[test]
    fn create_lookup_drop() {
        let mut c = Catalog::new();
        c.create_table("T1", schema()).unwrap();
        assert!(c.has_table("t1"));
        assert!(c.has_table("T1"), "case-insensitive");
        assert_eq!(c.table("t1").unwrap().schema.len(), 1);
        c.drop_table("t1").unwrap();
        assert!(!c.has_table("t1"));
    }

    #[test]
    fn duplicate_create_rejected() {
        let mut c = Catalog::new();
        c.create_table("t", schema()).unwrap();
        assert!(c.create_table("T", schema()).is_err());
    }

    #[test]
    fn missing_table_errors() {
        let c = Catalog::new();
        assert!(c.table("ghost").is_err());
        let mut c = Catalog::new();
        assert!(c.drop_table("ghost").is_err());
    }
}
