//! Golden parity: a federated query is bit-identical at any shard count
//! and any DOP — rows, cost breakdowns, and (under range partitioning)
//! summed per-shard pager deltas.

use ironsafe_csa::cost::CostParams;
use ironsafe_csa::system::{CsaSystem, SystemConfig};
use ironsafe_scale::{FederatedCsaSystem, FederatedReport, FederationConfig};
use ironsafe_tpch::queries::{paper_queries, PaperQuery};

const SF: f64 = 0.002;
const SEED: u64 = 42;
const KEY: [u8; 32] = [7u8; 32];

const ALL_CONFIGS: [SystemConfig; 5] = [
    SystemConfig::HostOnlyNonSecure,
    SystemConfig::HostOnlySecure,
    SystemConfig::VanillaCs,
    SystemConfig::IronSafe,
    SystemConfig::StorageOnlySecure,
];

fn queries() -> Vec<PaperQuery> {
    paper_queries().into_iter().filter(|q| q.id == 1 || q.id == 6).collect()
}

fn summed(report: &FederatedReport) -> (u64, u64, u64, u64, u64, u64) {
    report.per_shard.iter().fold((0, 0, 0, 0, 0, 0), |acc, d| {
        (
            acc.0 + d.stats.page_reads,
            acc.1 + d.stats.page_writes,
            acc.2 + d.stats.decrypts,
            acc.3 + d.stats.encrypts,
            acc.4 + d.stats.merkle_nodes,
            acc.5 + d.stats.rpmb_ops,
        )
    })
}

/// Run `queries()` × DOP {1, 4} on one federation, in a fixed order so
/// cross-query node state (Merkle caches) evolves identically on every
/// federation being compared.
fn run_suite(fed: &FederatedCsaSystem) -> Vec<FederatedReport> {
    let mut out = Vec::new();
    for q in &queries() {
        for dop in [1usize, 4] {
            let (report, _) = fed.run_query_federated(q, KEY, dop).unwrap();
            out.push(report);
        }
    }
    out
}

fn assert_parity(config: SystemConfig, shard_counts: &[usize]) {
    let data = ironsafe_tpch::generate(SF, SEED);
    let baseline = {
        let fed = FederatedCsaSystem::build(FederationConfig::new(1, config), &data).unwrap();
        run_suite(&fed)
    };

    // The merged stream recovers canonical scan order, so federated rows
    // must equal what the non-federated single-node system produces.
    let mut plain = CsaSystem::build(config, &data, CostParams::default()).unwrap();
    for (i, q) in queries().iter().enumerate() {
        let report = plain.run_query(q).unwrap();
        assert_eq!(
            baseline[i * 2].result, report.result,
            "{config:?} q{}: federated(1) rows != single-node rows",
            q.id
        );
    }

    for &shards in shard_counts {
        let fed = FederatedCsaSystem::build(FederationConfig::new(shards, config), &data).unwrap();
        let runs = run_suite(&fed);
        for (run, base) in runs.iter().zip(&baseline) {
            let label = format!("{config:?} q{} shards={shards}", run.query_id);
            assert_eq!(run.result, base.result, "{label}: rows diverged");
            assert_eq!(run.breakdown, base.breakdown, "{label}: breakdown diverged");
            assert_eq!(run.rows_shipped, base.rows_shipped, "{label}: rows_shipped diverged");
            assert_eq!(run.bytes_shipped, base.bytes_shipped, "{label}: bytes diverged");

            // Page-aligned range partitioning conserves the physical
            // page work exactly. Merkle/RPMB work is *not* conserved
            // (per-shard trees are shallower but verified-node cache hit
            // patterns differ), so it only gets an envelope: within 5%
            // of, and usually below, the single tree's work.
            let (reads, writes, decrypts, encrypts, merkle, rpmb) = summed(run);
            let (b_reads, b_writes, b_decrypts, b_encrypts, b_merkle, b_rpmb) = summed(base);
            assert_eq!(reads, b_reads, "{label}: page reads not conserved");
            assert_eq!(writes, b_writes, "{label}: page writes not conserved");
            assert_eq!(decrypts, b_decrypts, "{label}: decrypts not conserved");
            assert_eq!(encrypts, b_encrypts, "{label}: encrypts not conserved");
            assert!(
                merkle as f64 <= b_merkle as f64 * 1.05,
                "{label}: merkle work grew past envelope ({merkle} vs {b_merkle})"
            );
            assert!(
                rpmb as f64 <= b_rpmb as f64 * 1.05,
                "{label}: rpmb work grew past envelope ({rpmb} vs {b_rpmb})"
            );
        }
    }
}

/// Deep sweep on the paper's own system: 1/2/4 shards, DOP 1/4.
#[test]
fn ironsafe_parity_deep() {
    assert_parity(SystemConfig::IronSafe, &[2, 4]);
}

/// Every Table 2 configuration holds parity at 2 and 4 shards.
#[test]
fn all_configs_hold_parity() {
    for config in ALL_CONFIGS {
        if config == SystemConfig::IronSafe {
            continue; // covered by the deep test
        }
        assert_parity(config, &[2, 4]);
    }
}
