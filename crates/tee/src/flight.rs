//! TEE-resident flight recorder: a fixed-capacity ring of recent
//! events for post-mortem analysis.
//!
//! The paper's storage TEE has no debugger and no console; when a
//! chaos run ends in a fault exhaustion or an integrity/freshness
//! violation, the only forensic record is what the enclave kept for
//! itself. The recorder is a bounded ring (oldest events overwritten)
//! whose capacity is derived from the enclave memory budget exactly
//! like [`crate::sgx::epc::verified_node_cache_capacity`] sizes the
//! verified-node cache: a fixed per-entry byte cost against a slice of
//! the EPC, floored at a working minimum.
//!
//! Determinism: events carry a monotone sequence number and
//! caller-supplied detail derived only from deterministic state (page
//! ids, fault sites, arrival counts) — never wall-clock time — so the
//! dump for a given chaos seed is byte-identical run to run.

/// Enclave-memory budget of one ring entry: sequence number, kind tag
/// and a small bounded detail string, rounded to 64 bytes.
pub const FLIGHT_EVENT_BYTES: usize = 64;

/// Size a flight recorder against `budget_bytes` of enclave memory,
/// one [`FLIGHT_EVENT_BYTES`] per event, floored at 64 entries so a
/// pathological budget still keeps a usable post-mortem window.
pub fn flight_recorder_capacity(budget_bytes: u64) -> usize {
    ((budget_bytes as usize) / FLIGHT_EVENT_BYTES).max(64)
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotone sequence number (counts every event ever recorded,
    /// including ones the ring has since overwritten).
    pub seq: u64,
    /// Event class, e.g. `"read_batch"`, `"fault"`, `"violation"`.
    pub kind: &'static str,
    /// Deterministic detail (page ids, fault site, error text).
    pub detail: String,
}

/// Fixed-capacity ring of recent [`FlightEvent`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Vec<FlightEvent>,
    capacity: usize,
    next_seq: u64,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder { ring: Vec::new(), capacity, next_seq: 0 }
    }

    /// A recorder sized against `budget_bytes` of enclave memory.
    pub fn with_budget(budget_bytes: u64) -> Self {
        Self::new(flight_recorder_capacity(budget_bytes))
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever recorded (≥ the number still retained).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// Append an event, evicting the oldest when the ring is full.
    pub fn record(&mut self, kind: &'static str, detail: String) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let event = FlightEvent { seq, kind, detail };
        if self.ring.len() == self.capacity {
            // Keep the vector in oldest-first order: index `seq %
            // capacity` is exactly the slot the oldest event occupies.
            self.ring[(seq % self.capacity as u64) as usize] = event;
        } else {
            self.ring.push(event);
        }
        seq
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        let mut out = self.ring.clone();
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Drain the ring into a deterministic dump, oldest first, one
    /// `seq kind detail` line per event. This is what lands in the
    /// monitor audit trail on a fault exhaustion or integrity/
    /// freshness violation; the recorder restarts empty afterwards
    /// (sequence numbers keep counting, so consecutive dumps never
    /// repeat an event).
    pub fn dump(&mut self) -> Vec<String> {
        let events = self.events();
        self.ring.clear();
        events.into_iter().map(|e| format!("#{} {} {}", e.seq, e.kind, e.detail)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_derivation_mirrors_verified_node_cache() {
        assert_eq!(flight_recorder_capacity(64 * 1024), 64 * 1024 / FLIGHT_EVENT_BYTES);
        // Floor for pathological budgets.
        assert_eq!(flight_recorder_capacity(0), 64);
        assert_eq!(flight_recorder_capacity(1), 64);
        // Monotone in the budget.
        assert!(flight_recorder_capacity(32 * 1024) <= flight_recorder_capacity(96 * 1024));
    }

    #[test]
    fn ring_keeps_most_recent_events_in_order() {
        let mut r = FlightRecorder::new(3);
        for i in 0..5u64 {
            r.record("read_batch", format!("pages={i}"));
        }
        assert_eq!(r.recorded(), 5);
        let events = r.events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest events overwritten, order preserved"
        );
    }

    #[test]
    fn dump_drains_and_sequences_continue() {
        let mut r = FlightRecorder::new(4);
        r.record("fault", "site=storage.device.read page=7".into());
        r.record("violation", "freshness stale root".into());
        let dump = r.dump();
        assert_eq!(
            dump,
            vec![
                "#0 fault site=storage.device.read page=7".to_string(),
                "#1 violation freshness stale root".to_string(),
            ]
        );
        assert!(r.events().is_empty(), "dump drains the ring");
        r.record("read_batch", "pages=0..4".into());
        assert_eq!(r.dump(), vec!["#2 read_batch pages=0..4".to_string()]);
    }

    #[test]
    fn identical_event_streams_dump_identically() {
        let run = || {
            let mut r = FlightRecorder::new(8);
            for i in 0..20u64 {
                r.record("read_batch", format!("batch={i} pages={}", i * 3));
            }
            r.record("fault", "site=storage.freshness.stale".into());
            r.dump()
        };
        assert_eq!(run(), run(), "dumps are byte-deterministic per event stream");
    }
}
