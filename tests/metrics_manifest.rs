//! Workspace metric-name coverage: every counter, gauge and histogram
//! any subsystem exports must be declared in `ironsafe_obs::manifest`,
//! and every declared name must actually be exported by some subsystem.
//! A typo'd registration or an orphaned manifest row fails here, and
//! the DESIGN.md metric table is pinned to the generated one so the
//! docs regenerate instead of rotting.

use ironsafe_crypto::group::Group;
use ironsafe_crypto::schnorr::KeyPair;
use ironsafe_csa::{CostParams, CsaSystem, SecureChannel, SystemConfig};
use ironsafe_faults::FaultPlan;
use ironsafe_monitor::{MonitorConfig, TrustedMonitor};
use ironsafe_obs::manifest::{design_table, manifest_contains, unlisted_names, METRIC_MANIFEST};
use ironsafe_obs::{Counter, Registry};
use ironsafe_serve::ServeMetrics;
use ironsafe_tee::image::SoftwareImage;
use ironsafe_tee::sgx::{AttestationService, EnclaveConfig, EnclaveSupervisor, SgxPlatform};
use ironsafe_tee::trustzone::Rpmb;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Register every subsystem's metrics into one registry, the way a
/// fully assembled deployment would.
fn register_workspace(registry: &Registry) {
    // Storage + morsel execution: a real secure system registers the
    // pager's `storage.*` cells and the executor's `exec.morsel.*`; the
    // compressed page store adds the `storage.compress.*` family.
    let data = ironsafe_tpch::generate(0.002, 42);
    let sys =
        CsaSystem::build_with_compression(SystemConfig::IronSafe, &data, CostParams::default(), true)
            .expect("system builds");
    sys.storage_db().register_metrics(registry);
    sys.register_exec_metrics(registry);
    // Adaptive planner counters (`plan.*`).
    sys.register_plan_metrics(registry);

    // MVCC snapshot registry + encrypted group-commit WAL (a shared
    // serving deployment registers these via
    // `SharedCsaSystem::register_wal_metrics`).
    ironsafe_storage::Snapshots::new().metrics().register(registry);
    ironsafe_storage::Wal::new(&[0u8; 16], 0).metrics().register(registry);

    // Serving layer.
    ServeMetrics::new().register(registry);

    // Federation coordinator counters (`scale.*`).
    ironsafe_scale::ScaleMetrics::new().register(registry);

    // Trusted monitor decision counters.
    let group = Group::modp_1024();
    let mut rng = StdRng::seed_from_u64(7);
    let image = SoftwareImage::new("host-engine", 5, b"engine".to_vec());
    let monitor = TrustedMonitor::new(
        &group,
        7,
        AttestationService::new(&group),
        KeyPair::generate(&group, &mut rng).public,
        MonitorConfig {
            expected_host_measurement: image.measure(),
            expected_nw_measurement: image.measure(),
            latest_fw: 5,
        },
    );
    monitor.register_metrics(registry);

    // TEE: supervised enclave (transitions, restarts, EPC) and RPMB.
    let platform = Arc::new(SgxPlatform::from_seed(&group, b"coverage-platform"));
    let supervisor =
        EnclaveSupervisor::new(platform, image, EnclaveConfig::default(), FaultPlan::none());
    supervisor.register_metrics(registry);
    Rpmb::new(8).register_metrics(registry);

    // Host<->storage secure channel.
    SecureChannel::new(&[0u8; 32]).register_metrics(registry);

    // Fault plan sweep counters plus the chaos harness's per-surface
    // recovery counters (exported under `faults.surface.*`).
    FaultPlan::none().register_metrics(registry);
    for surface in ["channel", "device", "enclave", "rpmb"] {
        for event in ["injected", "recovered"] {
            registry.register_counter(&format!("faults.surface.{surface}.{event}"), &Counter::new());
        }
    }
}

#[test]
fn every_exported_metric_is_declared_and_vice_versa() {
    let registry = Registry::new();
    register_workspace(&registry);
    let snapshot = registry.snapshot();

    // Direction 1: nothing escapes the manifest.
    let missing = unlisted_names(&snapshot);
    assert!(missing.is_empty(), "exported metrics not in the manifest: {missing:?}");

    // Direction 2: no orphaned manifest rows — every declared name is
    // exported by some subsystem registered above.
    let exported = |name: &str| {
        snapshot.counters.iter().map(|(n, _)| n.as_str()).any(|n| n == name)
            || snapshot.gauges.iter().map(|(n, _)| n.as_str()).any(|n| n == name)
            || snapshot.histograms.iter().map(|(n, _)| n.as_str()).any(|n| n == name)
    };
    let orphans: Vec<&str> =
        METRIC_MANIFEST.iter().map(|d| d.name).filter(|n| !exported(n)).collect();
    assert!(orphans.is_empty(), "manifest rows no subsystem exports: {orphans:?}");
    assert!(manifest_contains("serve.slo.service_ns"));
}

#[test]
fn design_doc_metric_table_matches_generated_one() {
    let design = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md"))
        .expect("DESIGN.md at the workspace root");
    let table = design_table();
    assert!(
        design.contains(&table),
        "DESIGN.md metric table is stale — paste the output of \
         `ironsafe_obs::manifest::design_table()` into the Telemetry section"
    );
}
