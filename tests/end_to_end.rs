//! End-to-end integration: the full Figure 2 workflow over the complete
//! stack (SGX + TrustZone models, secure storage, monitor, policy, CSA).

use ironsafe::{Client, Deployment};

fn deployment() -> Deployment {
    let mut dep = Deployment::builder().seed(42).build().expect("attestation succeeds");
    dep.create_database(
        "crm",
        "read :- sessionKeyIs(producer) | sessionKeyIs(consumer)\n\
         write :- sessionKeyIs(producer)",
    );
    dep
}

#[test]
fn produce_share_consume_workflow() {
    let mut dep = deployment();
    let producer = Client::new("producer");
    let consumer = Client::new("consumer");

    // Producer (controller A, the airline) stores customer records.
    dep.submit(&producer, "crm", "CREATE TABLE bookings (c_id INT, flight TEXT, arrival DATE)", "")
        .unwrap();
    dep.submit(
        &producer,
        "crm",
        "INSERT INTO bookings VALUES (1, 'LH441', '1997-05-02'), (2, 'LH442', '1997-05-03'), (3, 'LH441', '1997-05-02')",
        "",
    )
    .unwrap();

    // Consumer (controller B, the hotel) asks for one customer's arrival.
    let resp = dep
        .submit(&consumer, "crm", "SELECT arrival FROM bookings WHERE c_id = 2", "")
        .unwrap();
    assert_eq!(resp.result.rows().len(), 1);
    assert_eq!(resp.result.rows()[0][0].as_str().unwrap(), "1997-05-03");

    // The proof of compliance verifies against the monitor key.
    assert!(resp.verify_proof(&dep));

    // The consumer cannot write.
    assert!(dep.submit(&consumer, "crm", "DELETE FROM bookings", "").is_err());

    // A stranger cannot read.
    assert!(dep.submit(&Client::new("stranger"), "crm", "SELECT arrival FROM bookings", "").is_err());

    // The audit chain covers all of it and verifies.
    let audit = dep.monitor().audit();
    assert!(audit.verify());
    assert!(audit.entries().len() >= 6, "attestations + grants + denies logged");
}

#[test]
fn query_goes_through_secure_storage() {
    let mut dep = deployment();
    let producer = Client::new("producer");
    dep.submit(&producer, "crm", "CREATE TABLE t (a INT, b FLOAT)", "").unwrap();
    let values: Vec<String> = (0..500).map(|i| format!("({i}, {i}.5)")).collect();
    dep.submit(&producer, "crm", &format!("INSERT INTO t VALUES {}", values.join(", ")), "")
        .unwrap();

    let resp = dep
        .submit(&producer, "crm", "SELECT COUNT(*), SUM(b) FROM t WHERE a >= 250", "")
        .unwrap();
    assert_eq!(resp.result.rows()[0][0].as_i64().unwrap(), 250);
    // The report proves the read went through the secure path.
    assert!(resp.report.pages_read_storage > 0);
    assert!(resp.report.breakdown.freshness_ns > 0.0, "per-read Merkle checks happened");
    assert!(resp.report.breakdown.crypto_ns > 0.0, "pages were decrypted");
}

#[test]
fn split_execution_ships_less_than_table_size() {
    let mut dep = deployment();
    let producer = Client::new("producer");
    dep.submit(&producer, "crm", "CREATE TABLE big (k INT, payload TEXT)", "").unwrap();
    let values: Vec<String> = (0..2000).map(|i| format!("({i}, '{}')", "x".repeat(50))).collect();
    dep.submit(&producer, "crm", &format!("INSERT INTO big VALUES {}", values.join(", ")), "")
        .unwrap();

    // Highly selective query: the storage-side filter should prune almost
    // everything before the network.
    let resp = dep
        .submit(&producer, "crm", "SELECT payload FROM big WHERE k = 1234", "")
        .unwrap();
    assert_eq!(resp.result.rows().len(), 1);
    let table_bytes = 2000 * 60;
    assert!(
        resp.report.bytes_shipped < table_bytes / 10,
        "shipped {} of ~{} bytes",
        resp.report.bytes_shipped,
        table_bytes
    );
}

#[test]
fn execution_policies_steer_placement() {
    let mut dep = Deployment::builder().region("EU").build().unwrap();
    dep.create_database("db", "read :- sessionKeyIs(a)\nwrite :- sessionKeyIs(a)");
    let a = Client::new("a");
    dep.submit(&a, "db", "CREATE TABLE t (x INT)", "").unwrap();
    dep.submit(&a, "db", "INSERT INTO t VALUES (1)", "").unwrap();

    // Compatible exec policy: fine.
    let ok = dep.submit(&a, "db", "SELECT x FROM t", "exec :- storageLocIs(EU) & hostLocIs(EU)");
    assert!(ok.is_ok());
    // Impossible host constraint: rejected outright.
    let err = dep.submit(&a, "db", "SELECT x FROM t", "exec :- hostLocIs(ANTARCTICA)");
    assert!(err.is_err());
}

#[test]
fn deployment_is_deterministic_per_seed() {
    let mut d1 = Deployment::builder().seed(7).build().unwrap();
    let mut d2 = Deployment::builder().seed(7).build().unwrap();
    for d in [&mut d1, &mut d2] {
        d.create_database("db", "read :- sessionKeyIs(a)\nwrite :- sessionKeyIs(a)");
    }
    let a = Client::new("a");
    let r1 = d1.submit(&a, "db", "CREATE TABLE t (x INT)", "").unwrap();
    let r2 = d2.submit(&a, "db", "CREATE TABLE t (x INT)", "").unwrap();
    assert_eq!(r1.result, r2.result);
}
