//! GDPR anti-pattern use-cases (§4.3) end-to-end: policies really change
//! which rows a consumer can see, and every obligation is discharged.

use ironsafe::sql::Value;
use ironsafe::tpch::gdpr::{gen_people_with_policy, PEOPLE_DDL_POLICY};
use ironsafe::{Client, Deployment};

fn deployment_with_people(policy: &str) -> (Deployment, Client, Client) {
    let mut dep = Deployment::builder().seed(11).build().unwrap();
    let mut full_policy = policy.to_string();
    full_policy.push_str("\nwrite :- sessionKeyIs(Ka)");
    dep.create_database("gdpr", &full_policy);
    let owner = Client::new("Ka");
    let consumer = Client::new("Kb");
    dep.submit(&owner, "gdpr", PEOPLE_DDL_POLICY, "").unwrap();
    dep.system_mut()
        .storage_db_mut()
        .insert_rows("people", gen_people_with_policy(200, 5))
        .unwrap();
    (dep, owner, consumer)
}

#[test]
fn anti_pattern_1_timely_deletion() {
    // Records carry expiries 10..210; at T=110 exactly half are expired.
    let (mut dep, owner, consumer) =
        deployment_with_people("read :- sessionKeyIs(Ka) | sessionKeyIs(Kb) & le(T, TIMESTAMP)");
    dep.set_time(110);

    // The owner sees everything.
    let all = dep.submit(&owner, "gdpr", "SELECT COUNT(*) FROM people", "").unwrap();
    assert_eq!(all.result.rows()[0][0], Value::Int(200));

    // The consumer's query is rewritten: expired records are invisible.
    let visible = dep.submit(&consumer, "gdpr", "SELECT COUNT(*) FROM people", "").unwrap();
    assert_eq!(visible.result.rows()[0][0], Value::Int(100), "expired rows filtered out");

    // Time moves on; fewer records remain visible.
    dep.set_time(170);
    let later = dep.submit(&consumer, "gdpr", "SELECT COUNT(*) FROM people", "").unwrap();
    assert_eq!(later.result.rows()[0][0], Value::Int(40));
}

#[test]
fn anti_pattern_2_prevent_indiscriminate_use() {
    let (mut dep, _owner, consumer) = deployment_with_people("read :- reuseMap(m)");
    // The consumer is service bit 2: only rows with bit 2 set opt in.
    dep.register_service_bit(&consumer, 2);

    // Ground truth: how many rows opted in to bit 2?
    let expected = {
        let db = dep.system_mut().storage_db_mut();
        let r = db.execute("SELECT COUNT(*) FROM people WHERE (__reuse / 4) % 2 = 1").unwrap();
        r.rows()[0][0].as_i64().unwrap()
    };
    assert!(expected > 0 && expected < 200);

    let visible = dep.submit(&consumer, "gdpr", "SELECT COUNT(*) FROM people", "").unwrap();
    assert_eq!(visible.result.rows()[0][0].as_i64().unwrap(), expected);
}

#[test]
fn anti_pattern_3_transparent_sharing() {
    let (mut dep, _owner, consumer) =
        deployment_with_people("read :- logUpdate(sharing, K, Q)");
    let q1 = "SELECT p_arrival FROM people WHERE p_flight = 'LH0042'";
    let q2 = "SELECT p_email FROM people WHERE p_id = 7";
    dep.submit(&consumer, "gdpr", q1, "").unwrap();
    dep.submit(&consumer, "gdpr", q2, "").unwrap();

    // The regulator pulls the sharing log: both queries, attributed.
    let audit = dep.monitor().audit();
    assert!(audit.verify());
    let shared: Vec<_> = audit.stream("sharing");
    assert_eq!(shared.len(), 2);
    assert!(shared.iter().all(|e| e.client_key == "Kb"));
    assert!(shared[0].message.contains("p_arrival"));
    assert!(shared[1].message.contains("p_email"));
}

#[test]
fn anti_pattern_4_risk_assessment_via_attestation() {
    // The policy demands attested firmware ≥ 3 on both nodes; the
    // deployment runs firmware 5 so access is granted — and a policy
    // demanding a future version is refused.
    let (mut dep, _owner, consumer) = deployment_with_people(
        "read :- sessionKeyIs(Kb) & fwVersionStorage(3) & fwVersionHost(3)",
    );
    assert!(dep.submit(&consumer, "gdpr", "SELECT COUNT(*) FROM people", "").is_ok());

    let mut dep2 = Deployment::builder().seed(12).firmware(2, 2).build().unwrap();
    dep2.create_database(
        "gdpr",
        "read :- sessionKeyIs(Kb) & fwVersionStorage(3) & fwVersionHost(3)\nwrite :- sessionKeyIs(Ka)",
    );
    dep2.submit(&Client::new("Ka"), "gdpr", PEOPLE_DDL_POLICY, "").unwrap();
    assert!(
        dep2.submit(&consumer, "gdpr", "SELECT COUNT(*) FROM people", "").is_err(),
        "old firmware fails the policy"
    );
}

#[test]
fn anti_pattern_5_breaches_leave_evidence() {
    let (mut dep, _owner, consumer) =
        deployment_with_people("read :- sessionKeyIs(Kb) & logUpdate(breach_audit, K, Q)");
    // Legitimate access is logged.
    dep.submit(&consumer, "gdpr", "SELECT p_email FROM people WHERE p_id < 3", "").unwrap();
    // An intruder's attempt is denied *and* logged.
    let intruder = Client::new("Mx");
    assert!(dep.submit(&intruder, "gdpr", "SELECT p_email FROM people", "").is_err());

    let audit = dep.monitor().audit();
    assert!(audit.verify());
    assert_eq!(audit.stream("breach_audit").len(), 1);
    assert!(audit
        .entries()
        .iter()
        .any(|e| e.client_key == "Mx" && e.message.starts_with("DENY")));
}

#[test]
fn policy_filters_compose() {
    // Expiry AND reuse AND logging, all at once.
    let (mut dep, _owner, consumer) = deployment_with_people(
        "read :- sessionKeyIs(Kb) & le(T, TIMESTAMP) & reuseMap(m) & logUpdate(l, K, Q)",
    );
    dep.register_service_bit(&consumer, 1);
    dep.set_time(110);
    let expected = {
        let db = dep.system_mut().storage_db_mut();
        let r = db
            .execute("SELECT COUNT(*) FROM people WHERE __expiry >= 110 AND (__reuse / 2) % 2 = 1")
            .unwrap();
        r.rows()[0][0].as_i64().unwrap()
    };
    let visible = dep.submit(&consumer, "gdpr", "SELECT COUNT(*) FROM people", "").unwrap();
    assert_eq!(visible.result.rows()[0][0].as_i64().unwrap(), expected);
    assert_eq!(dep.monitor().audit().stream("l").len(), 1);
}
