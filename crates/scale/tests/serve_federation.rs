//! The serving layer over a federation: `QueryServer` binds to
//! `FederatedCsaSystem` through the `QueryBackend` seam, and serves
//! reports bit-identical to direct federated execution — sessions,
//! admission and audit untouched.

use ironsafe_crypto::group::Group;
use ironsafe_crypto::schnorr::KeyPair;
use ironsafe_csa::{QueryBackend, SystemConfig};
use ironsafe_monitor::{MonitorConfig, TrustedMonitor};
use ironsafe_policy::parse_policy;
use ironsafe_scale::{FederatedCsaSystem, FederationConfig};
use ironsafe_serve::{Job, QueryServer, ServeConfig};
use ironsafe_tee::image::SoftwareImage;
use ironsafe_tee::sgx::{AttestationService, EnclaveConfig, Quote, SgxPlatform};
use ironsafe_tee::trustzone::{AttestationTa, BootImages, Manufacturer, SecureBoot, SignedImage};
use ironsafe_tpch::queries::{paper_queries, PaperQuery};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// The serve test fixture: one attested host, one attested storage
/// node, a registered database `db` readable by `Ka`/`Kb`.
fn attested_monitor() -> TrustedMonitor {
    let group = Group::modp_1024();
    let mut rng = StdRng::seed_from_u64(31);

    let platform = SgxPlatform::from_seed(&group, b"host-platform");
    let host_image = SoftwareImage::new("host-engine", 5, b"engine".to_vec());
    let enclave = platform.create_enclave(&host_image, EnclaveConfig::default());
    let mut ias = AttestationService::new(&group);
    ias.register_platform(&platform);

    let mfr = Manufacturer::from_seed(&group, b"acme");
    let device = mfr.make_device("storage-0", 8, &mut rng);
    let vendor = KeyPair::derive(&group, b"acme", b"tz-manufacturer-root");
    let images = BootImages {
        trusted_firmware: SignedImage::sign(
            &group,
            &vendor.secret,
            SoftwareImage::new("atf", 2, b"atf".to_vec()),
            &mut rng,
        ),
        trusted_os: SignedImage::sign(
            &group,
            &vendor.secret,
            SoftwareImage::new("optee", 34, b"optee".to_vec()),
            &mut rng,
        ),
        normal_world: SoftwareImage::new("nw", 3, b"kernel+engine".to_vec()),
    };
    let booted = SecureBoot::boot(&device, &mfr.root_public(), &images, &mut rng).unwrap();

    let config = MonitorConfig {
        expected_host_measurement: host_image.measure(),
        expected_nw_measurement: booted.nw_measurement,
        latest_fw: 5,
    };
    let mut monitor = TrustedMonitor::new(&group, 77, ias, mfr.root_public(), config);

    let host_keys = KeyPair::generate(&group, &mut rng);
    let commitment = ironsafe_crypto::sha256::sha256(&host_keys.public.to_bytes(&group));
    let quote = Quote::generate(&platform, &enclave, &commitment, &mut rng);
    monitor.attest_host("host-0", "EU", &quote, &host_keys.public).unwrap();
    let challenge = monitor.storage_challenge();
    let resp = AttestationTa::new(&booted).respond(challenge, &mut rng);
    monitor.attest_storage("storage-0", "EU", &resp).unwrap();

    monitor.register_database(
        "db",
        parse_policy("read :- sessionKeyIs(Ka) | sessionKeyIs(Kb)\nwrite :- sessionKeyIs(Ka)")
            .unwrap(),
    );
    monitor
}

fn federation(shards: usize) -> Arc<FederatedCsaSystem> {
    let data = ironsafe_tpch::generate(0.002, 42);
    Arc::new(
        FederatedCsaSystem::build(FederationConfig::new(shards, SystemConfig::IronSafe), &data)
            .unwrap(),
    )
}

fn query(id: u8) -> PaperQuery {
    paper_queries().into_iter().find(|q| q.id == id).unwrap()
}

/// A federation serves paper queries through the server, and the served
/// reports match direct federated execution and a 1-shard federation
/// bit-for-bit.
#[test]
fn server_over_federation_matches_direct_execution() {
    let fed = federation(2);
    let single = federation(1);
    let srv = QueryServer::start_with_backend(
        Arc::clone(&fed) as Arc<dyn QueryBackend>,
        Arc::new(Mutex::new(attested_monitor())),
        ServeConfig { workers: 2, ..Default::default() },
    );
    let session = srv.open_session("client-0", "db");

    for qid in [1u8, 6] {
        let q = query(qid);
        let served = srv
            .submit(session.id, Job::Query(q.clone()))
            .unwrap()
            .wait()
            .outcome
            .expect("federated query must succeed through the server");
        // The server derives a per-request session key the test cannot
        // predict, but results and breakdowns are key-independent by
        // construction — any key reproduces them.
        let (direct, _) = single.run_query_federated(&q, [0u8; 32], 1).unwrap();
        assert_eq!(served.result, direct.result, "q{qid}: served rows != 1-shard rows");
        assert_eq!(
            served.breakdown, direct.breakdown,
            "q{qid}: served breakdown != 1-shard breakdown"
        );
    }
    srv.shutdown();
}

/// Ad-hoc SQL rides the monitor path (policy check, rewrite, audit) and
/// still executes federated.
#[test]
fn ad_hoc_sql_is_served_federated() {
    let fed = federation(2);
    let srv = QueryServer::start_with_backend(
        Arc::clone(&fed) as Arc<dyn QueryBackend>,
        Arc::new(Mutex::new(attested_monitor())),
        ServeConfig { workers: 2, ..Default::default() },
    );
    let session = srv.open_session("Ka", "db");
    let report = srv
        .submit(session.id, Job::Sql("SELECT COUNT(*) FROM lineitem".to_string()))
        .unwrap()
        .wait()
        .outcome
        .expect("ad-hoc SELECT must succeed");
    let n = match &report.result {
        ironsafe_sql::QueryResult::Rows { rows, .. } => rows[0][0].clone(),
        other => panic!("expected rows, got {other:?}"),
    };
    // The federation saw the query: its merge counter moved.
    assert!(fed.metrics().merge_rows.get() > 0, "merge never ran");
    let data = ironsafe_tpch::generate(0.002, 42);
    let lineitem = data.tables().iter().find(|(t, _)| *t == "lineitem").unwrap().1.len();
    assert_eq!(n, ironsafe_sql::value::Value::Int(lineitem as i64));
    srv.shutdown();
}
