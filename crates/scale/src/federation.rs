//! The federation coordinator: shard-parallel fan-out, deterministic
//! merge, canonical cost accounting and replica failover.
//!
//! ## Determinism contract
//!
//! Result rows are bit-identical at any shard count and any DOP because
//! every fragment projects the hidden `__gid` column and the coordinator
//! k-way merges shard streams by ascending gid — recovering the exact
//! row order a single node would have produced — before anything
//! order-sensitive happens (partial-aggregate replay, host temp-table
//! load, channel serialization).
//!
//! [`CostBreakdown`]s are bit-identical across shard counts because the
//! coordinator charges the cost model **only from conserved
//! quantities**: total scanned rows, the merged (placement-invariant)
//! shipped stream sealed once through one canonical channel, summed
//! per-shard pager deltas (conserved under page-aligned range
//! partitioning), logical fragment count, and a canonical Merkle depth
//! computed from the single-node page count. Genuinely N-dependent costs
//! (extra per-shard fragment instantiations, extra sessions, failover
//! re-verification) are reported separately as
//! [`FederatedReport::fanout_overhead_ns`], never folded into the
//! breakdown. Note the freshness charge uses the *canonical* tree depth:
//! real per-shard trees are shallower (that is the sharding dividend),
//! so the model is conservative at N > 1; observed per-shard
//! `merkle_nodes`/`rpmb_ops` are still reported truthfully in
//! [`ShardDelta`].
//!
//! ## Failover protocol
//!
//! Fragments fan out one thread per shard with per-shard seeded fault
//! plans (shared plan state across threads would be racy). Failures are
//! resolved *after* the join, serially in shard order, so quarantine
//! audit entries land in a deterministic order: quarantine the active
//! node (counter + audit chain, and the attached monitor's chain),
//! promote the next replica after checking its attestation record and
//! re-verifying its partition row counts through the secure read path,
//! then re-run the fragment. An exhausted chain returns
//! [`ScaleError::ShardUnavailable`]; nothing in this path panics.

use crate::config::FederationConfig;
use crate::metrics::ScaleMetrics;
use crate::node::ShardNode;
use crate::partitioner::{gid_schema, TablePartition, GID_COLUMN};
use crate::{Result, ScaleError};
use ironsafe_csa::cost::CostBreakdown;
use ironsafe_csa::net::channel_pair;
use ironsafe_csa::partition::{partition_select, render_select, Partition, StorageQuery};
use ironsafe_csa::{QueryReport, SystemConfig};
use ironsafe_faults::{FaultPlan, FaultSite};
use ironsafe_monitor::{AuditLog, TrustedMonitor};
use ironsafe_obs::{Span, Trace, TraceCtx, TraceSnapshot};
use ironsafe_sql::ast::{Expr, SelectItem, SelectStmt, Statement};
use ironsafe_sql::exec::{AggPlan, Dop, ExecOptions};
use ironsafe_sql::schema::{Row, Schema};
use ironsafe_sql::value::Value;
use ironsafe_sql::{Database, QueryResult};
use ironsafe_storage::pager::{PagerStats, PlainPager};
use ironsafe_tee::sgx::epc::EpcSimulator;
use ironsafe_tpch::queries::{PaperQuery, QueryStage};
use ironsafe_tpch::TpchData;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Observed per-shard execution facts for one query.
#[derive(Debug, Clone)]
pub struct ShardDelta {
    /// Shard index.
    pub shard: usize,
    /// The node that ended the query serving this shard.
    pub node: String,
    /// The serving node's pager-stats delta for this query.
    pub stats: PagerStats,
    /// Rows this shard contributed to the merged streams.
    pub rows_shipped: u64,
}

/// A federated query's result and accounting.
#[derive(Debug, Clone)]
pub struct FederatedReport {
    /// Per-node system configuration.
    pub config: SystemConfig,
    /// TPC-H query number (0 for ad-hoc statements).
    pub query_id: u8,
    /// Shard count the query ran at.
    pub shards: usize,
    /// The result (bit-identical at any shard count).
    pub result: QueryResult,
    /// Canonical simulated-time breakdown (bit-identical at any shard
    /// count and DOP).
    pub breakdown: CostBreakdown,
    /// N-dependent coordination cost kept out of the breakdown: extra
    /// per-shard fragment instantiations beyond the logical fragments,
    /// extra per-shard channel sessions, and failover re-verification.
    pub fanout_overhead_ns: f64,
    /// Per-shard observed facts (pager deltas sum to the single-node
    /// delta under range partitioning; Merkle/RPMB counts shrink with N
    /// — the sharding dividend).
    pub per_shard: Vec<ShardDelta>,
    /// Summed pages read across serving nodes.
    pub pages_read_storage: u64,
    /// Rows shipped shard→coordinator (merged stream length).
    pub rows_shipped: u64,
    /// Bytes through the canonical channel.
    pub bytes_shipped: u64,
}

impl FederatedReport {
    /// Total simulated time excluding fan-out overhead.
    pub fn total_ns(&self) -> f64 {
        self.breakdown.total_ns()
    }

    /// Collapse into the single-node report shape the serving layer and
    /// benchmarks consume.
    pub fn to_query_report(&self) -> QueryReport {
        QueryReport {
            config: self.config,
            query_id: self.query_id,
            result: self.result.clone(),
            breakdown: self.breakdown,
            pages_read_storage: self.pages_read_storage,
            pages_shipped: self.bytes_shipped.div_ceil(4096),
            rows_shipped: self.rows_shipped,
            bytes_shipped: self.bytes_shipped,
        }
    }
}

/// Everything `run_stages` hands back for report assembly.
struct RunFacts {
    result: QueryResult,
    delta_sum: PagerStats,
    per_shard: Vec<ShardDelta>,
    bytes: u64,
    rows_shipped: u64,
    fanout_overhead_ns: f64,
}

/// A federation of shard-partitioned, independently attested storage
/// nodes behind one coordinator.
pub struct FederatedCsaSystem {
    config: FederationConfig,
    /// Base (gid-less) schemas in load order.
    schemas: Vec<(String, Schema)>,
    /// Routing specs (shard row vectors are dropped after node load).
    partitions: Vec<TablePartition>,
    /// `nodes[shard]` is that shard's failover chain (0 = primary).
    nodes: Vec<Vec<ShardNode>>,
    /// Index of each shard's currently serving node.
    active: Vec<AtomicUsize>,
    /// Coordinator-side per-shard fault plans (crash injection).
    shard_plans: Vec<Mutex<FaultPlan>>,
    /// Heap pages of the gid-augmented data set packed on one node —
    /// the N-invariant input to the canonical freshness charge.
    canonical_pages: u64,
    audit: AuditLog,
    monitor: Mutex<Option<Arc<Mutex<TrustedMonitor>>>>,
    metrics: ScaleMetrics,
    /// Logical audit clock (monotonic across queries).
    clock: AtomicI64,
    /// Serializes queries so per-query pager-stat deltas are exact.
    query_lock: Mutex<()>,
}

impl FederatedCsaSystem {
    /// Validate `config`, partition `data`, and build every shard's
    /// replica chain. All topology errors surface before any node I/O.
    pub fn build(config: FederationConfig, data: &TpchData) -> Result<FederatedCsaSystem> {
        config.validate()?;
        // Schemas come from DDL alone so key validation precedes I/O.
        let mut scratch = Database::new(PlainPager::new());
        for ddl in ironsafe_tpch::schema::DDL {
            scratch.execute(ddl)?;
        }
        let loaded = data.tables();
        for table in config.partition_keys.keys() {
            if !loaded.iter().any(|(n, _)| n == table) {
                return Err(ScaleError::UnknownTable(table.clone()));
            }
        }
        let mut schemas = Vec::with_capacity(loaded.len());
        for (name, _) in &loaded {
            let schema = scratch.catalog().table(name)?.schema.clone();
            let key = config.partition_keys.get(*name).ok_or_else(|| {
                ScaleError::MissingPartitionKey {
                    table: name.to_string(),
                    key: "(none configured)".to_string(),
                }
            })?;
            if schema.resolve(key).is_err() {
                return Err(ScaleError::MissingPartitionKey {
                    table: name.to_string(),
                    key: key.clone(),
                });
            }
            schemas.push((name.to_string(), schema));
        }

        let mut partitions = Vec::with_capacity(loaded.len());
        for ((name, rows), (_, schema)) in loaded.iter().zip(&schemas) {
            let key = &config.partition_keys[*name];
            partitions.push(TablePartition::build(
                name,
                schema,
                rows,
                key,
                config.mode,
                config.shards,
            )?);
        }
        let canonical_pages = partitions.iter().map(|p| p.canonical_pages).sum();

        let secure = config.system.secure();
        let mut nodes = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let tables: Vec<(String, Schema, Vec<Row>)> = partitions
                .iter()
                .map(|part| {
                    (part.table.clone(), gid_schema(&part.schema), part.shard_rows[shard].clone())
                })
                .collect();
            let mut chain = Vec::with_capacity(config.replicas + 1);
            for replica in 0..=config.replicas {
                chain.push(ShardNode::build(
                    shard,
                    replica,
                    secure,
                    config.compressed,
                    &config.params,
                    &tables,
                )?);
            }
            nodes.push(chain);
        }
        for part in &mut partitions {
            part.shard_rows = Vec::new();
        }

        let shards = config.shards;
        Ok(FederatedCsaSystem {
            active: (0..shards).map(|_| AtomicUsize::new(0)).collect(),
            shard_plans: (0..shards).map(|_| Mutex::new(FaultPlan::none())).collect(),
            config,
            schemas,
            partitions,
            nodes,
            canonical_pages,
            audit: AuditLog::new(),
            monitor: Mutex::new(None),
            metrics: ScaleMetrics::new(),
            clock: AtomicI64::new(0),
            query_lock: Mutex::new(()),
        })
    }

    /// The federation's configuration.
    pub fn config(&self) -> &FederationConfig {
        &self.config
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.config.shards
    }

    /// The coordinator's own tamper-evident audit chain (quarantine and
    /// promotion events).
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// Live federation counters.
    pub fn metrics(&self) -> &ScaleMetrics {
        &self.metrics
    }

    /// Mirror quarantine/promotion audit events into `monitor`'s chain.
    pub fn attach_monitor(&self, monitor: Arc<Mutex<TrustedMonitor>>) {
        *self.monitor.lock() = Some(monitor);
    }

    /// Attach the federation counters to `registry`.
    pub fn register_metrics(&self, registry: &ironsafe_obs::Registry) {
        self.metrics.register(registry);
    }

    /// Index of the node currently serving `shard`.
    pub fn active_replica(&self, shard: usize) -> usize {
        self.active[shard].load(Ordering::SeqCst)
    }

    /// A shard-chain node (primary = replica 0).
    pub fn node(&self, shard: usize, replica: usize) -> &ShardNode {
        &self.nodes[shard][replica]
    }

    /// Install a coordinator-side fault plan for `shard` (crash
    /// injection) and mirror it onto the shard's *currently serving*
    /// node's pager (device/integrity/freshness sites). Replicas keep
    /// clean plans, so promotion actually recovers.
    pub fn set_shard_fault_plan(&self, shard: usize, plan: FaultPlan) {
        self.active_node(shard).set_fault_plan(plan.clone());
        *self.shard_plans[shard].lock() = plan;
    }

    /// Drain every serving node's TEE-resident flight recorder, shard
    /// order.
    pub fn take_flight_dump(&self) -> Vec<String> {
        let mut out = Vec::new();
        for shard in 0..self.config.shards {
            out.extend(self.active_node(shard).take_flight_dump());
        }
        out
    }

    fn active_node(&self, shard: usize) -> &ShardNode {
        &self.nodes[shard][self.active[shard].load(Ordering::SeqCst)]
    }

    fn partition(&self, table: &str) -> Result<&TablePartition> {
        self.partitions
            .iter()
            .find(|p| p.table == table)
            .ok_or_else(|| ScaleError::UnknownTable(table.to_string()))
    }

    fn audit_event(&self, message: &str) {
        let ts = self.clock.fetch_add(1, Ordering::SeqCst);
        self.audit.append(ts, "federation", "coordinator", message);
        if let Some(mon) = self.monitor.lock().as_ref() {
            mon.lock().audit().append(ts, "federation", "coordinator", message);
        }
    }

    fn quarantine(&self, shard: usize, replica: usize, reason: &str) {
        self.metrics.shard_quarantined.inc();
        let node_id = self.nodes[shard][replica].id.clone();
        self.audit_event(&format!("shard {shard}: quarantined {node_id} ({reason})"));
    }

    /// Run one paper query across the federation.
    pub fn run_query_federated(
        &self,
        q: &PaperQuery,
        session_key: [u8; 32],
        dop: usize,
    ) -> Result<(FederatedReport, TraceSnapshot)> {
        let _serial = self.query_lock.lock();
        let secure = self.config.system.secure();
        let shards = self.config.shards;
        let mut exec = ExecOptions::serial();
        exec.dop = Dop::new(dop);
        exec.vectorized = self.config.vectorized;

        let trace = Trace::new();
        let facts = {
            let _active = trace.install();
            let _ctx = TraceCtx::query(q.id as u64).install();
            let _query_span = Span::enter(&format!("query/q{}", q.id));
            self.run_stages(q, session_key, secure, &exec, shards)?
        };
        let snapshot = trace.snapshot();
        let breakdown = CostBreakdown::from_trace(&snapshot);
        Ok((
            FederatedReport {
                config: self.config.system,
                query_id: q.id,
                shards,
                result: facts.result,
                breakdown,
                fanout_overhead_ns: facts.fanout_overhead_ns,
                per_shard: facts.per_shard,
                pages_read_storage: facts.delta_sum.page_reads,
                rows_shipped: facts.rows_shipped,
                bytes_shipped: facts.bytes,
            },
            snapshot,
        ))
    }

    /// Run one ad-hoc statement (`SELECT` only — federated DML/DDL is
    /// unsupported and returns a typed error).
    pub fn run_statement_federated(
        &self,
        stmt: &Statement,
        session_key: [u8; 32],
        dop: usize,
    ) -> Result<(FederatedReport, TraceSnapshot)> {
        match stmt {
            Statement::Select(sel) => {
                let q = PaperQuery {
                    id: 0,
                    name: "ad-hoc",
                    stages: vec![QueryStage { sql: render_select(sel), into: None }],
                };
                self.run_query_federated(&q, session_key, dop)
            }
            _ => Err(ScaleError::Unsupported("federated DML/DDL")),
        }
    }

    fn run_stages(
        &self,
        q: &PaperQuery,
        session_key: [u8; 32],
        secure: bool,
        exec: &ExecOptions,
        shards: usize,
    ) -> Result<RunFacts> {
        let p = self.config.params.clone();
        let (mut tx, mut rx) = channel_pair(&session_key);
        let mut host_db = Database::new(PlainPager::new());
        let mut epc = EpcSimulator::new(p.epc_limit_bytes);

        let mut base: Vec<PagerStats> =
            (0..shards).map(|s| self.active_node(s).stats()).collect();
        let mut delta_acc: Vec<PagerStats> = vec![PagerStats::default(); shards];
        let mut shard_rows_shipped: Vec<u64> = vec![0; shards];

        let mut scanned_rows = 0u64;
        let mut rows_shipped = 0u64;
        let mut rows_serialized = 0u64;
        let mut host_input_rows = 0u64;
        let mut host_ops = 0u64;
        let mut frag_logical = 0u64;
        let mut frag_physical = 0u64;
        let mut reverified_pages = 0u64;
        let mut result: Option<QueryResult> = None;

        for (stage_no, stage) in q.stages.iter().enumerate() {
            let _stage_span = Span::enter(&format!("stage{stage_no}/federated_exec"));
            let stmt = ironsafe_sql::parser::parse_statement(&stage.sql)?;
            let sel = match stmt {
                Statement::Select(s) => s,
                other => {
                    // Non-SELECT stages run on the coordinator's host db.
                    host_db.execute_statement(&other)?;
                    continue;
                }
            };
            let lookup = |name: &str| -> Option<Schema> {
                self.schemas.iter().find(|(t, _)| t == name).map(|(_, s)| s.clone())
            };
            let Partition { storage, host } = partition_select(&sel, &lookup);

            // Partial-aggregation pushdown: a single fragment whose host
            // statement aggregates over just that fragment's output, and
            // the configured depth allows shard-side aggregation. At
            // `PushdownDepth::Rows` the shards return qualifying rows and
            // the fan-in re-aggregates — same merged answer, more fan-in
            // traffic.
            let agg_plan = if self.config.pushdown == ironsafe_csa::PushdownDepth::PartialAggregate
                && storage.len() == 1
                && host.from.len() == 1
                && host.from[0].name == storage[0].table
            {
                AggPlan::from_select(&host, &self.frag_schema(&storage[0])?)?
            } else {
                None
            };

            let mut shipped_tables: Vec<String> = Vec::new();
            let stage_bytes_before = tx.bytes_sent;
            let mut agg_result: Option<QueryResult> = None;

            for frag in &storage {
                let _frag_span = Span::enter(&format!("fragment/{}", frag.table));
                frag_logical += 1;
                scanned_rows += self.partition(&frag.table)?.total_rows;

                // Fan out with the hidden gid projected for the merge.
                let mut frag_stmt = frag.stmt.clone();
                frag_stmt.projections.push(SelectItem::Expr {
                    expr: Expr::Column(GID_COLUMN.to_string()),
                    alias: None,
                });
                let agg = agg_plan.as_ref();

                let frag_ref = &frag_stmt;
                let outcomes: Vec<std::result::Result<Vec<Row>, String>> =
                    crossbeam::thread::scope(|s| {
                        let handles: Vec<_> = (0..shards)
                            .map(|shard| {
                                s.spawn(move |_| self.serve_fragment(shard, frag_ref, exec, agg))
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| {
                                h.join().unwrap_or_else(|_| {
                                    Err("shard thread panicked".to_string())
                                })
                            })
                            .collect()
                    })
                    .unwrap_or_else(|_| {
                        (0..shards).map(|_| Err("shard scope panicked".to_string())).collect()
                    });
                frag_physical += shards as u64;
                self.metrics.shard_fragments.add(shards as u64);

                // Failover: resolved after the join, serially in shard
                // order, so quarantine audit order is deterministic.
                let mut streams: Vec<Vec<Row>> = Vec::with_capacity(shards);
                for (shard, initial) in outcomes.into_iter().enumerate() {
                    let mut outcome = initial;
                    let rows = loop {
                        match outcome {
                            Ok(rows) => break rows,
                            Err(reason) => {
                                let failed = self.active[shard].load(Ordering::SeqCst);
                                self.quarantine(shard, failed, &reason);
                                let next = failed + 1;
                                if next >= self.nodes[shard].len() {
                                    return Err(ScaleError::ShardUnavailable { shard, reason });
                                }
                                self.active[shard].store(next, Ordering::SeqCst);
                                let cand = &self.nodes[shard][next];
                                if !cand.attested() {
                                    outcome =
                                        Err(format!("{}: attestation rejected", cand.id));
                                    continue;
                                }
                                match cand.reverify() {
                                    Err(r) => {
                                        outcome = Err(r);
                                        continue;
                                    }
                                    Ok(pages) => {
                                        reverified_pages += pages;
                                        self.metrics.failover_promoted.inc();
                                        self.metrics.failover_reverified_pages.add(pages);
                                        self.audit_event(&format!(
                                            "shard {shard}: promoted {} after re-verifying \
                                             {} tables ({pages} pages)",
                                            cand.id,
                                            cand.row_counts.len()
                                        ));
                                        base[shard] = cand.stats();
                                        frag_physical += 1;
                                        self.metrics.shard_fragments.inc();
                                        outcome =
                                            self.serve_fragment(shard, &frag_stmt, exec, agg);
                                    }
                                }
                            }
                        }
                    };
                    shard_rows_shipped[shard] += rows.len() as u64;
                    streams.push(rows);
                }

                // Account each serving node's work for this fragment.
                for shard in 0..shards {
                    let cur = self.active_node(shard).stats();
                    delta_acc[shard] = add_stats(delta_acc[shard], sub_stats(cur, base[shard]));
                    base[shard] = cur;
                }

                let merged = merge_by_gid(streams);
                self.metrics.merge_rows.add(merged.len() as u64);
                let mut rows = merged;
                for r in &mut rows {
                    r.pop(); // strip the hidden gid
                }

                match agg {
                    Some(plan) => {
                        rows_shipped += rows.len() as u64;
                        rows_serialized += rows.len() as u64;
                        host_input_rows += rows.len() as u64;
                        self.metrics.partial_tuples.add(rows.len() as u64);
                        let pschema = plan.partial_schema();
                        for chunk in rows.chunks(4096) {
                            let record = tx.seal_rows(&pschema, chunk);
                            let back = rx.recv_rows(&record).map_err(ScaleError::Csa)?;
                            debug_assert_eq!(back.len(), chunk.len());
                        }
                        let (schema, out_rows) = {
                            let _host_span = Span::enter("host/replay_aggregate");
                            plan.finish(rows)?
                        };
                        agg_result = Some(QueryResult::Rows { schema, rows: out_rows });
                    }
                    None => {
                        rows_shipped += rows.len() as u64;
                        rows_serialized += rows.len() as u64;
                        let schema = self.frag_schema(frag)?;
                        for chunk in rows.chunks(4096) {
                            let record = tx.seal_rows(&schema, chunk);
                            let back = rx.recv_rows(&record).map_err(ScaleError::Csa)?;
                            debug_assert_eq!(back.len(), chunk.len());
                        }
                        if host_db.catalog().has_table(&frag.table) {
                            host_db.execute(&format!("DROP TABLE {}", frag.table))?;
                        }
                        host_db.create_table(&frag.table, schema)?;
                        host_db.insert_rows(&frag.table, rows)?;
                        shipped_tables.push(frag.table.clone());
                    }
                }
            }

            host_ops += complexity(&host);
            let stage_out = if agg_plan.is_some() {
                if secure {
                    // The replay's working set is the sealed tuple
                    // stream — conserved bytes, so conserved faults.
                    let stage_bytes = tx.bytes_sent - stage_bytes_before;
                    epc.access_range(
                        2_000_000 + (stage_no as u64) * 262_144,
                        stage_bytes.div_ceil(4096),
                    );
                }
                agg_result
                    .ok_or(ScaleError::Unsupported("aggregate stage produced no result"))?
            } else {
                host_input_rows += shipped_tables
                    .iter()
                    .map(|t| host_db.catalog().table(t).map(|i| i.heap.row_count).unwrap_or(0))
                    .sum::<u64>();
                if secure {
                    // The coordinator's enclave touches every temp page.
                    for t in &shipped_tables {
                        if let Ok(info) = host_db.catalog().table(t) {
                            for &page in &info.heap.pages {
                                epc.access(1_000_000 + page);
                            }
                        }
                    }
                }
                let _host_span = Span::enter("host/join_aggregate");
                host_db.select_with(&host, exec)?
            };
            match &stage.into {
                Some(name) => {
                    host_db.create_table(name, stage_out.schema())?;
                    host_db.insert_rows(name, stage_out.rows().to_vec())?;
                }
                None => result = Some(stage_out),
            }
            for t in shipped_tables {
                host_db.execute(&format!("DROP TABLE {t}"))?;
            }
        }

        let delta_sum = delta_acc.iter().copied().fold(PagerStats::default(), add_stats);
        let bytes = tx.bytes_sent;
        // Canonical charges: identical inputs at any shard count, in the
        // same span order the single-node split path uses.
        let mem_penalty = p.storage_mem_penalty(bytes);
        charge("storage/compute", "ndp", p.storage_compute_ns(scanned_rows, 1) * mem_penalty);
        charge(
            "storage/serialize",
            "ndp",
            rows_serialized as f64 * p.serialize_row_ns as f64 * p.storage_cpu_factor
                / p.storage_parallel(),
        );
        charge("storage/fragment_setup", "ndp", frag_logical as f64 * p.fragment_setup_ns as f64);
        charge("host/compute", "ndp", p.host_compute_ns(host_input_rows, host_ops.max(1)));
        charge(
            "storage/device_io",
            "ndp",
            delta_sum.page_reads as f64 * p.device_read_ns_per_page,
        );
        charge("net/ship_rows", "ndp", p.net_ns(bytes, tx.messages.max(1)));
        if secure {
            charge(
                "crypto/pages",
                "crypto",
                (delta_sum.decrypts * p.decrypt_ns_per_page
                    + delta_sum.encrypts * p.encrypt_ns_per_page) as f64,
            );
            // Canonical freshness: every verified page walks the depth
            // of the *single-node* Merkle tree, plus one RPMB round per
            // logical fragment. Real per-shard trees are shallower, so
            // this is conservative at N > 1.
            let depth = ceil_log2(self.canonical_pages.max(2));
            charge(
                "freshness/verify",
                "freshness",
                (delta_sum.page_reads * depth * p.merkle_node_ns
                    + frag_logical * p.rpmb_op_ns) as f64,
            );
            charge(
                "tee/transitions",
                "transitions",
                (tx.messages * 2 * p.enclave_transition_ns) as f64,
            );
            charge("tee/epc_paging", "epc", epc.faults() as f64 * p.epc_fault_ns as f64);
            let other = Span::enter("channel/other");
            other.add_sim_ns("other", p.session_setup_ns as f64);
            other.add_sim_ns("other", bytes as f64 * 0.05);
        }
        let fanout_overhead_ns = (frag_physical.saturating_sub(frag_logical)) as f64
            * p.fragment_setup_ns as f64
            + shards.saturating_sub(1) as f64 * p.session_setup_ns as f64
            + reverified_pages as f64 * p.device_read_ns_per_page;

        let per_shard: Vec<ShardDelta> = (0..shards)
            .map(|s| ShardDelta {
                shard: s,
                node: self.active_node(s).id.clone(),
                stats: delta_acc[s],
                rows_shipped: shard_rows_shipped[s],
            })
            .collect();
        Ok(RunFacts {
            result: result.ok_or(ScaleError::Unsupported("query has no output stage"))?,
            delta_sum,
            per_shard,
            bytes,
            rows_shipped,
            fanout_overhead_ns,
        })
    }

    /// Run one fragment on `shard`'s serving node. Returns rows with the
    /// gid as trailing column (partial-agg tuples likewise carry their
    /// source row's gid), or the failure reason for the failover path.
    fn serve_fragment(
        &self,
        shard: usize,
        frag_stmt: &SelectStmt,
        exec: &ExecOptions,
        agg: Option<&AggPlan>,
    ) -> std::result::Result<Vec<Row>, String> {
        if self.shard_plans[shard].lock().should_fire(FaultSite::EnclaveCrash) {
            return Err("injected enclave crash".to_string());
        }
        let node = self.active_node(shard);
        if !node.attested() {
            return Err(format!("{}: attestation rejected", node.id));
        }
        let result =
            node.with_db(|db| db.select_with(frag_stmt, exec)).map_err(|e| e.to_string())?;
        let schema = result.schema();
        match agg {
            None => Ok(result.rows().to_vec()),
            Some(plan) => {
                let rows = result.rows();
                let mut out = Vec::with_capacity(rows.len());
                // Both halves produce identical tuples (the sql crate's
                // `batch_partial_matches_row_partial` pins that); the
                // batch half evaluates each expression once per fragment
                // instead of re-binding per row.
                let partials: Vec<Option<Row>> = if exec.vectorized {
                    plan.eval_partial_batch(&schema, rows).map_err(|e| e.to_string())?
                } else {
                    rows.iter()
                        .map(|row| plan.eval_partial(&schema, row).map_err(|e| e.to_string()))
                        .collect::<std::result::Result<_, _>>()?
                };
                for (row, partial) in rows.iter().zip(partials) {
                    let gid = row
                        .last()
                        .cloned()
                        .ok_or_else(|| "fragment row missing gid".to_string())?;
                    if let Some(mut tuple) = partial {
                        tuple.push(gid);
                        out.push(tuple);
                    }
                }
                Ok(out)
            }
        }
    }

    /// Output schema of a storage fragment (base column order and types,
    /// without the hidden gid).
    fn frag_schema(&self, frag: &StorageQuery) -> Result<Schema> {
        let base = &self
            .schemas
            .iter()
            .find(|(t, _)| *t == frag.table)
            .ok_or_else(|| ScaleError::UnknownTable(frag.table.clone()))?
            .1;
        let mut columns = Vec::with_capacity(frag.columns.len());
        for c in &frag.columns {
            let i = base
                .resolve(c)
                .map_err(|e| ScaleError::Csa(ironsafe_csa::CsaError::Sql(e)))?;
            columns.push(base.columns[i].clone());
        }
        Ok(Schema::new(columns))
    }
}

/// Attribute one simulated cost term to a named accounting span (same
/// span-per-term shape the single-node system uses, so
/// [`CostBreakdown::from_trace`] sums categories in charge order).
fn charge(name: &str, category: &'static str, ns: f64) {
    let span = Span::enter(name);
    span.add_sim_ns(category, ns);
}

fn complexity(stmt: &SelectStmt) -> u64 {
    let joins = stmt.from.len().saturating_sub(1) as u64;
    let has_agg = !stmt.group_by.is_empty()
        || stmt.projections.iter().any(|p| match p {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            SelectItem::Star => false,
        });
    let has_sort = !stmt.order_by.is_empty();
    1 + joins + has_agg as u64 + has_sort as u64
}

fn ceil_log2(n: u64) -> u64 {
    debug_assert!(n >= 2);
    (64 - (n - 1).leading_zeros()) as u64
}

fn add_stats(a: PagerStats, b: PagerStats) -> PagerStats {
    PagerStats {
        page_reads: a.page_reads + b.page_reads,
        page_writes: a.page_writes + b.page_writes,
        decrypts: a.decrypts + b.decrypts,
        encrypts: a.encrypts + b.encrypts,
        merkle_nodes: a.merkle_nodes + b.merkle_nodes,
        rpmb_ops: a.rpmb_ops + b.rpmb_ops,
    }
}

fn sub_stats(after: PagerStats, before: PagerStats) -> PagerStats {
    PagerStats {
        page_reads: after.page_reads - before.page_reads,
        page_writes: after.page_writes - before.page_writes,
        decrypts: after.decrypts - before.decrypts,
        encrypts: after.encrypts - before.encrypts,
        merkle_nodes: after.merkle_nodes - before.merkle_nodes,
        rpmb_ops: after.rpmb_ops - before.rpmb_ops,
    }
}

fn gid_of(row: &Row) -> i64 {
    match row.last() {
        Some(Value::Int(g)) => *g,
        other => unreachable!("fragment rows carry a trailing Int gid, got {other:?}"),
    }
}

/// K-way merge of per-shard streams by ascending trailing gid. Each
/// stream is already gid-ascending (shard-local scan order), so this
/// recovers the canonical global row order exactly.
fn merge_by_gid(mut streams: Vec<Vec<Row>>) -> Vec<Row> {
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut idx = vec![0usize; streams.len()];
    let mut out = Vec::with_capacity(total);
    loop {
        let mut best: Option<(usize, i64)> = None;
        for (s, rows) in streams.iter().enumerate() {
            if idx[s] < rows.len() {
                let g = gid_of(&rows[idx[s]]);
                if best.is_none_or(|(_, bg)| g < bg) {
                    best = Some((s, g));
                }
            }
        }
        match best {
            None => break,
            Some((s, _)) => {
                out.push(std::mem::take(&mut streams[s][idx[s]]));
                idx[s] += 1;
            }
        }
    }
    out
}
