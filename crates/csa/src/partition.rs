//! Query partitioning between host and storage.
//!
//! The paper adapts a MySQL-style partitioner with simple heuristics
//! (§5, §8): storage-side fragments are per-table *filter + project*
//! queries (what the weak CPU near the data does well); the host runs the
//! joins, group-bys and aggregations over the shipped, already-filtered
//! intermediates. This module implements exactly that split:
//!
//! * every single-table conjunct of the WHERE clause is pushed to that
//!   table's storage fragment;
//! * each fragment projects only the columns the rest of the query needs;
//! * the host statement keeps the original shape, minus the pushed-down
//!   conjuncts, reading from same-named temp tables.

use ironsafe_sql::ast::{Expr, SelectItem, SelectStmt, TableRef};
use ironsafe_sql::plan::{join_conjuncts, split_conjuncts};
use ironsafe_sql::schema::Schema;

/// A per-table storage-side fragment.
#[derive(Debug, Clone)]
pub struct StorageQuery {
    /// Base table scanned on the storage node.
    pub table: String,
    /// Fragment: `SELECT needed_cols FROM table WHERE pushed_conjuncts`.
    pub stmt: SelectStmt,
    /// Names of the projected columns (the host temp table's schema).
    pub columns: Vec<String>,
    /// How this table's data reaches the host.
    pub mode: OffloadDecision,
}

/// A partitioned query.
#[derive(Debug, Clone)]
pub struct Partition {
    /// One fragment per offloadable base table.
    pub storage: Vec<StorageQuery>,
    /// The statement the host runs over the shipped intermediates.
    pub host: SelectStmt,
}

fn columns_of(stmt: &SelectStmt) -> Vec<String> {
    let mut cols = Vec::new();
    for item in &stmt.projections {
        if let SelectItem::Expr { expr, .. } = item {
            expr.referenced_columns(&mut cols);
        }
    }
    for e in stmt
        .where_clause
        .iter()
        .chain(stmt.group_by.iter())
        .chain(stmt.having.iter())
        .chain(stmt.order_by.iter().map(|(e, _)| e))
    {
        e.referenced_columns(&mut cols);
    }
    cols.sort();
    cols.dedup();
    cols
}

/// Does `schema` own every column referenced by `expr`?
fn fully_resolvable(expr: &Expr, schema: &Schema) -> bool {
    let mut cols = Vec::new();
    expr.referenced_columns(&mut cols);
    !cols.is_empty() && cols.iter().all(|c| schema.resolve(c).is_ok())
}

/// Partition `stmt`. `lookup` resolves *storage-resident* base tables to
/// their schemas; FROM entries it does not know (e.g. temp tables from an
/// earlier stage) stay host-local.
pub fn partition_select(
    stmt: &SelectStmt,
    lookup: &dyn Fn(&str) -> Option<Schema>,
) -> Partition {
    let mut conjuncts = Vec::new();
    if let Some(w) = &stmt.where_clause {
        split_conjuncts(w, &mut conjuncts);
    }

    let all_columns = columns_of(stmt);
    let mut storage = Vec::new();
    let mut pushed = vec![false; conjuncts.len()];

    for tref in &stmt.from {
        let Some(schema) = lookup(&tref.name) else { continue };
        // Columns of this table the query touches.
        let needed: Vec<String> = all_columns
            .iter()
            .filter(|c| schema.resolve(c).is_ok())
            .map(|c| {
                let idx = schema.resolve(c).expect("checked");
                schema.columns[idx].name.clone()
            })
            .collect();
        let needed = {
            let mut n = needed;
            n.dedup();
            if n.is_empty() {
                // Referenced by nothing (degenerate cross join): ship the
                // first column so row multiplicity is preserved.
                vec![schema.columns[0].name.clone()]
            } else {
                n
            }
        };
        // Conjuncts that live entirely on this table.
        let mut table_preds = Vec::new();
        for (i, c) in conjuncts.iter().enumerate() {
            if !pushed[i] && fully_resolvable(c, &schema) {
                table_preds.push(c.clone());
                pushed[i] = true;
            }
        }
        let fragment = SelectStmt {
            projections: needed
                .iter()
                .map(|c| SelectItem::Expr { expr: Expr::Column(c.clone()), alias: None })
                .collect(),
            from: vec![TableRef { name: tref.name.clone(), alias: tref.alias.clone() }],
            where_clause: join_conjuncts(table_preds),
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
        };
        storage.push(StorageQuery {
            table: tref.name.clone(),
            stmt: fragment,
            columns: needed,
            mode: OffloadDecision::Offload,
        });
    }

    // Host statement: original minus pushed-down conjuncts.
    let residual: Vec<Expr> = conjuncts
        .into_iter()
        .zip(pushed.iter())
        .filter(|(_, p)| !**p)
        .map(|(c, _)| c)
        .collect();
    let mut host = stmt.clone();
    host.where_clause = join_conjuncts(residual);
    Partition { storage, host }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ironsafe_sql::ast::{expr_to_sql, Statement};
    use ironsafe_sql::parser::parse_statement;
    use ironsafe_sql::schema::Column;
    use ironsafe_sql::value::DataType;

    fn lookup(name: &str) -> Option<Schema> {
        match name {
            "lineitem" => Some(Schema::new(vec![
                Column::new("l_orderkey", DataType::Int),
                Column::new("l_quantity", DataType::Float),
                Column::new("l_shipdate", DataType::Text),
                Column::new("l_extendedprice", DataType::Float),
                Column::new("l_comment", DataType::Text),
            ])),
            "orders" => Some(Schema::new(vec![
                Column::new("o_orderkey", DataType::Int),
                Column::new("o_orderdate", DataType::Text),
                Column::new("o_totalprice", DataType::Float),
            ])),
            _ => None,
        }
    }

    fn select(sql: &str) -> SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn single_table_filter_pushed_down() {
        let stmt = select("SELECT SUM(l_extendedprice) FROM lineitem WHERE l_shipdate < '1995-01-01'");
        let p = partition_select(&stmt, &lookup);
        assert_eq!(p.storage.len(), 1);
        let frag = &p.storage[0];
        assert_eq!(frag.table, "lineitem");
        let w = expr_to_sql(frag.stmt.where_clause.as_ref().unwrap());
        assert!(w.contains("l_shipdate"), "{w}");
        assert!(p.host.where_clause.is_none(), "conjunct fully pushed");
        // Fragment projects only what the query needs.
        assert_eq!(frag.columns, vec!["l_extendedprice", "l_shipdate"]);
    }

    #[test]
    fn join_predicates_stay_on_host() {
        let stmt = select(
            "SELECT o_totalprice FROM lineitem, orders \
             WHERE l_orderkey = o_orderkey AND l_quantity > 30 AND o_orderdate < '1996-01-01'",
        );
        let p = partition_select(&stmt, &lookup);
        assert_eq!(p.storage.len(), 2);
        let li = p.storage.iter().find(|s| s.table == "lineitem").unwrap();
        let w = expr_to_sql(li.stmt.where_clause.as_ref().unwrap());
        assert!(w.contains("l_quantity"), "{w}");
        assert!(!w.contains("o_orderkey"), "join pred not pushed: {w}");
        let host_w = expr_to_sql(p.host.where_clause.as_ref().unwrap());
        assert!(host_w.contains("l_orderkey = o_orderkey") || host_w.contains("(l_orderkey = o_orderkey)"), "{host_w}");
        assert!(!host_w.contains("l_quantity"), "pushed conjunct removed from host: {host_w}");
    }

    #[test]
    fn unknown_tables_stay_host_local() {
        let stmt = select("SELECT o_totalprice FROM temp_results, orders WHERE big_okey = o_orderkey");
        let p = partition_select(&stmt, &lookup);
        assert_eq!(p.storage.len(), 1);
        assert_eq!(p.storage[0].table, "orders");
    }

    #[test]
    fn no_filter_means_full_shipping_fragment() {
        let stmt = select("SELECT COUNT(*) FROM lineitem GROUP BY l_orderkey");
        let p = partition_select(&stmt, &lookup);
        let frag = &p.storage[0];
        assert!(frag.stmt.where_clause.is_none());
        assert_eq!(frag.columns, vec!["l_orderkey"]);
    }

    #[test]
    fn or_predicate_on_one_table_is_pushed() {
        let stmt = select("SELECT l_quantity FROM lineitem WHERE l_quantity < 5 OR l_quantity > 45");
        let p = partition_select(&stmt, &lookup);
        assert!(p.storage[0].stmt.where_clause.is_some());
        assert!(p.host.where_clause.is_none());
    }

    #[test]
    fn fragments_are_valid_sql() {
        let stmt = select(
            "SELECT l_orderkey, SUM(l_extendedprice) FROM lineitem, orders \
             WHERE l_orderkey = o_orderkey AND l_shipdate > '1995-03-15' \
             GROUP BY l_orderkey ORDER BY l_orderkey LIMIT 10",
        );
        let p = partition_select(&stmt, &lookup);
        for frag in &p.storage {
            // Fragments must be parseable when rendered (they are shipped
            // as SQL text to the storage engine).
            let sql = crate::partition::render_select(&frag.stmt);
            parse_statement(&sql).unwrap_or_else(|e| panic!("fragment `{sql}`: {e}"));
        }
        let host_sql = crate::partition::render_select(&p.host);
        parse_statement(&host_sql).unwrap();
    }
}

/// Render a `SelectStmt` back to SQL text (what actually crosses the wire
/// to the storage engine).
pub fn render_select(stmt: &SelectStmt) -> String {
    use ironsafe_sql::ast::expr_to_sql;
    let mut sql = String::from("SELECT ");
    let projs: Vec<String> = stmt
        .projections
        .iter()
        .map(|p| match p {
            SelectItem::Star => "*".to_string(),
            SelectItem::Expr { expr, alias } => match alias {
                Some(a) => format!("{} AS {a}", expr_to_sql(expr)),
                None => expr_to_sql(expr),
            },
        })
        .collect();
    sql.push_str(&projs.join(", "));
    if !stmt.from.is_empty() {
        sql.push_str(" FROM ");
        let tables: Vec<String> = stmt
            .from
            .iter()
            .map(|t| if t.alias != t.name { format!("{} {}", t.name, t.alias) } else { t.name.clone() })
            .collect();
        sql.push_str(&tables.join(", "));
    }
    if let Some(w) = &stmt.where_clause {
        sql.push_str(" WHERE ");
        sql.push_str(&expr_to_sql(w));
    }
    if !stmt.group_by.is_empty() {
        sql.push_str(" GROUP BY ");
        let keys: Vec<String> = stmt.group_by.iter().map(expr_to_sql).collect();
        sql.push_str(&keys.join(", "));
    }
    if let Some(h) = &stmt.having {
        sql.push_str(" HAVING ");
        sql.push_str(&expr_to_sql(h));
    }
    if !stmt.order_by.is_empty() {
        sql.push_str(" ORDER BY ");
        let keys: Vec<String> = stmt
            .order_by
            .iter()
            .map(|(e, desc)| format!("{}{}", expr_to_sql(e), if *desc { " DESC" } else { "" }))
            .collect();
        sql.push_str(&keys.join(", "));
    }
    if let Some(n) = stmt.limit {
        sql.push_str(&format!(" LIMIT {n}"));
    }
    sql
}

/// Per-table offload decision for [`partition_select_strategic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffloadDecision {
    /// Push the table's filters + projection to the storage engine.
    Offload,
    /// Ship the table's raw pages; the host applies the filters.
    ShipPages,
}

/// Like [`partition_select`], but consults `decide` per table: tables the
/// callback declines keep their predicates on the host and their fragment
/// carries no pushdown (the runner ships raw pages instead).
///
/// This is the hook behind the *adaptive* partitioner — the paper's §8
/// future work: "a compiler that automatically partitions queries between
/// the host and storage systems".
pub fn partition_select_strategic(
    stmt: &SelectStmt,
    lookup: &dyn Fn(&str) -> Option<Schema>,
    decide: &dyn Fn(&str, &SelectStmt) -> OffloadDecision,
) -> Partition {
    let base = partition_select(stmt, lookup);
    let mut declined_preds: Vec<Expr> = Vec::new();
    let storage = base
        .storage
        .into_iter()
        .map(|mut frag| {
            if decide(&frag.table, &frag.stmt) == OffloadDecision::ShipPages {
                frag.mode = OffloadDecision::ShipPages;
                // Take the pushed conjuncts back to the host.
                if let Some(w) = frag.stmt.where_clause.take() {
                    let mut cs = Vec::new();
                    split_conjuncts(&w, &mut cs);
                    declined_preds.extend(cs);
                }
            }
            frag
        })
        .collect();
    let mut host = base.host;
    if !declined_preds.is_empty() {
        let mut cs = Vec::new();
        if let Some(w) = host.where_clause.take() {
            split_conjuncts(&w, &mut cs);
        }
        cs.extend(declined_preds);
        host.where_clause = join_conjuncts(cs);
    }
    Partition { storage, host }
}

#[cfg(test)]
mod strategic_tests {
    use super::*;
    use ironsafe_sql::ast::{expr_to_sql, Statement};
    use ironsafe_sql::parser::parse_statement;
    use ironsafe_sql::schema::Column;
    use ironsafe_sql::value::DataType;

    fn lookup(name: &str) -> Option<Schema> {
        match name {
            "lineitem" => Some(Schema::new(vec![
                Column::new("l_orderkey", DataType::Int),
                Column::new("l_quantity", DataType::Float),
            ])),
            "orders" => Some(Schema::new(vec![
                Column::new("o_orderkey", DataType::Int),
                Column::new("o_comment", DataType::Text),
            ])),
            _ => None,
        }
    }

    fn select(sql: &str) -> SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn declined_tables_keep_predicates_on_host() {
        let stmt = select(
            "SELECT COUNT(*) FROM lineitem, orders \
             WHERE l_orderkey = o_orderkey AND l_quantity < 10 AND o_comment LIKE '%x%'",
        );
        let p = partition_select_strategic(&stmt, &lookup, &|table, _| {
            if table == "orders" {
                OffloadDecision::ShipPages // weak filter: don't push
            } else {
                OffloadDecision::Offload
            }
        });
        let li = p.storage.iter().find(|s| s.table == "lineitem").unwrap();
        assert!(li.stmt.where_clause.is_some(), "lineitem filter pushed");
        let ord = p.storage.iter().find(|s| s.table == "orders").unwrap();
        assert!(ord.stmt.where_clause.is_none(), "orders filter withdrawn");
        let host_w = expr_to_sql(p.host.where_clause.as_ref().unwrap());
        assert!(host_w.contains("o_comment"), "declined predicate back on host: {host_w}");
        assert!(!host_w.contains("l_quantity"), "offloaded predicate stays pushed: {host_w}");
    }

    #[test]
    fn all_offload_matches_static_partitioner() {
        let stmt = select("SELECT l_quantity FROM lineitem WHERE l_quantity < 10");
        let a = partition_select(&stmt, &lookup);
        let b = partition_select_strategic(&stmt, &lookup, &|_, _| OffloadDecision::Offload);
        assert_eq!(a.storage[0].stmt, b.storage[0].stmt);
        assert_eq!(a.host.where_clause, b.host.where_clause);
    }
}
