//! Shard pushdown depth changes traffic, never answers.
//!
//! `PushdownDepth::PartialAggregate` (the default) lets shards return
//! partial aggregation states when the query shape allows it;
//! `PushdownDepth::Rows` makes them return qualifying rows and the
//! fan-in re-aggregate. The merged result must be bit-identical at
//! either depth and any shard count, and the rows depth must ship at
//! least as many rows as the partial-aggregate depth.

use ironsafe_csa::{system::SystemConfig, PushdownDepth};
use ironsafe_scale::{FederatedCsaSystem, FederationConfig};
use ironsafe_tpch::queries::{paper_queries, PaperQuery};

const SF: f64 = 0.002;
const SEED: u64 = 42;
const KEY: [u8; 32] = [7u8; 32];

fn queries() -> Vec<PaperQuery> {
    paper_queries().into_iter().filter(|q| q.id == 1 || q.id == 6).collect()
}

#[test]
fn rows_depth_matches_partial_aggregate_answers() {
    let data = ironsafe_tpch::generate(SF, SEED);
    for shards in [1usize, 2, 3] {
        let agg = FederatedCsaSystem::build(
            FederationConfig::new(shards, SystemConfig::IronSafe),
            &data,
        )
        .unwrap();
        let rows = FederatedCsaSystem::build(
            FederationConfig::new(shards, SystemConfig::IronSafe)
                .with_pushdown(PushdownDepth::Rows),
            &data,
        )
        .unwrap();
        for q in &queries() {
            for dop in [1usize, 4] {
                let (a, _) = agg.run_query_federated(q, KEY, dop).unwrap();
                let (r, _) = rows.run_query_federated(q, KEY, dop).unwrap();
                let label = format!("q{} shards={shards} dop={dop}", q.id);
                assert_eq!(a.result, r.result, "{label}: depth changed the answer");
                assert!(
                    r.rows_shipped >= a.rows_shipped,
                    "{label}: rows depth shipped fewer rows ({} vs {})",
                    r.rows_shipped,
                    a.rows_shipped
                );
            }
        }
    }
}

#[test]
fn depth_is_observable_through_the_partial_tuple_counter() {
    // At the default depth Q1's aggregation is evaluated shard-side
    // (partial tuples cross the fan-in); at `Rows` depth the shards ship
    // qualifying fragment rows and no partial tuple ever exists.
    let data = ironsafe_tpch::generate(SF, SEED);
    let q1 = paper_queries().into_iter().find(|q| q.id == 1).unwrap();
    let tuples_for = |depth: PushdownDepth| {
        let fed = FederatedCsaSystem::build(
            FederationConfig::new(2, SystemConfig::IronSafe).with_pushdown(depth),
            &data,
        )
        .unwrap();
        let registry = ironsafe_obs::Registry::new();
        fed.register_metrics(&registry);
        fed.run_query_federated(&q1, KEY, 1).unwrap();
        registry.snapshot().counter("scale.partial.tuples").unwrap_or(0)
    };
    assert!(
        tuples_for(PushdownDepth::PartialAggregate) > 0,
        "default depth must aggregate shard-side"
    );
    assert_eq!(
        tuples_for(PushdownDepth::Rows),
        0,
        "rows depth must not create partial tuples"
    );
}
