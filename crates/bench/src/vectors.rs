//! The `paperbench vectors` harness: vectorized execution × page
//! compression sweep, exported as the `BENCH_8.json` snapshot.
//!
//! The snapshot has two sections. `"invariants"` holds only quantities
//! the engine pins deterministically: one cell per (query, execution
//! mode, storage format) with the simulated total, physical pager
//! counters and a result digest — the digest is identical across all
//! four mode combinations (vectorization and compression never change
//! the answer), and the scalar/vector pairs share identical physical
//! counters (vectorization never changes what is read). A `"reductions"`
//! array derives the compress-before-encrypt dividend per query:
//! encrypted bytes and MAC verifications saved on the scan path. It is
//! byte-deterministic, so `--check` regenerates it and compares it byte
//! for byte against the committed file (the vectorization regression
//! gate). `"wallclock"` holds measured scalar-vs-vector speedups;
//! wall-clock numbers vary run to run and are exempt from the gate.

use crate::figures::SEED;
use ironsafe_csa::{CostParams, CsaSystem, SystemConfig};
use ironsafe_tpch::generate;
use ironsafe_tpch::queries::PaperQuery;
use std::time::Instant;

/// Default scale factor for the deterministic invariants sweep.
pub const VECTORS_SF: f64 = 0.002;

/// Scale factor for the wall-clock speedup loop (larger, so per-query
/// execution time dominates fixed per-run overheads).
pub const VECTORS_WALL_SF: f64 = 0.01;

/// One (query, execution mode, storage format) cell of the sweep.
#[derive(Debug, Clone)]
pub struct VectorCell {
    /// TPC-H query id.
    pub query_id: u8,
    /// Vectorized (column-batch) operators, or the scalar baseline.
    pub vectorized: bool,
    /// Compress-before-encrypt pages, or the raw page store.
    pub compressed: bool,
    /// Simulated total (identical for scalar and vector on the same
    /// storage format).
    pub total_ns: f64,
    /// Physical page reads during the query.
    pub pages_read: u64,
    /// Physical decrypt+MAC-verify operations during the query.
    pub decrypts: u64,
    /// Merkle nodes visited during the query.
    pub merkle_nodes: u64,
    /// Result rows.
    pub rows: u64,
    /// SHA-256 (truncated) over the rendered result rows.
    pub result_digest: String,
}

/// The compress-before-encrypt dividend for one query's scan path.
#[derive(Debug, Clone)]
pub struct CompressionDividend {
    /// TPC-H query id.
    pub query_id: u8,
    /// Encrypted bytes read (decrypts × physical payload), raw pages.
    pub encrypted_bytes_raw: u64,
    /// Encrypted bytes read, compressed pages.
    pub encrypted_bytes_compressed: u64,
    /// Percentage of MAC verifications (and encrypted bytes — same
    /// physical block size) saved by compression.
    pub mac_reduction_pct: f64,
}

/// Measured scalar-vs-vector serving time for one query at DOP 1.
#[derive(Debug, Clone)]
pub struct VectorWallclock {
    /// TPC-H query id.
    pub query_id: u8,
    /// Timed runs per mode.
    pub runs: usize,
    /// Best-of-runs scalar latency, milliseconds.
    pub scalar_ms: f64,
    /// Best-of-runs vectorized latency, milliseconds.
    pub vector_ms: f64,
    /// `scalar_ms / vector_ms`.
    pub speedup: f64,
}

fn digest(result: &ironsafe_sql::QueryResult) -> String {
    let rendered = format!("{result:?}");
    let hash = ironsafe_crypto::sha256::sha256(rendered.as_bytes());
    hash[..8].iter().map(|b| format!("{b:02x}")).collect()
}

fn paper_query(id: u8) -> PaperQuery {
    ironsafe_tpch::queries::query(id).expect("known query")
}

/// Run the deterministic sweep on IronSafe (scs): every query id under
/// {scalar, vector} × {raw, compressed}, asserting the parity contract
/// as it goes, and derive the per-query compression dividend.
pub fn vectors_sweep(sf: f64, ids: &[u8]) -> (Vec<VectorCell>, Vec<CompressionDividend>) {
    let data = generate(sf, SEED);
    let mut cells = Vec::new();
    let mut payload = 0usize;
    for compressed in [false, true] {
        for vectorized in [false, true] {
            let mut sys = CsaSystem::build_with_compression(
                SystemConfig::IronSafe,
                &data,
                CostParams::default(),
                compressed,
            )
            .expect("system builds");
            sys.set_vectorized(vectorized);
            payload = ironsafe_storage::PAGE_PAYLOAD;
            for &id in ids {
                let q = paper_query(id);
                let before = sys.storage_db().pager_stats();
                let report = sys.run_query(&q).unwrap_or_else(|e| {
                    panic!("Q{id} vectorized={vectorized} compressed={compressed}: {e}")
                });
                let after = sys.storage_db().pager_stats();
                cells.push(VectorCell {
                    query_id: id,
                    vectorized,
                    compressed,
                    total_ns: report.breakdown.total_ns(),
                    pages_read: after.page_reads - before.page_reads,
                    decrypts: after.decrypts - before.decrypts,
                    merkle_nodes: after.merkle_nodes - before.merkle_nodes,
                    rows: report.result.rows().len() as u64,
                    result_digest: digest(&report.result),
                });
            }
        }
    }

    // The contract, enforced inside the harness: one digest per query
    // across all four combinations; scalar and vector twins share the
    // same physical counters and simulated total.
    let mut dividends = Vec::new();
    for &id in ids {
        let of = |vectorized: bool, compressed: bool| {
            cells
                .iter()
                .find(|c| c.query_id == id && c.vectorized == vectorized && c.compressed == compressed)
                .expect("cell")
        };
        let (sr, vr, sc, vc) = (of(false, false), of(true, false), of(false, true), of(true, true));
        for c in [vr, sc, vc] {
            assert_eq!(c.result_digest, sr.result_digest, "Q{id}: result drifted across modes");
        }
        for (scalar, vector) in [(sr, vr), (sc, vc)] {
            assert_eq!(vector.total_ns, scalar.total_ns, "Q{id}: vectorization changed sim cost");
            assert_eq!(vector.pages_read, scalar.pages_read, "Q{id}: vectorization changed reads");
            assert_eq!(vector.decrypts, scalar.decrypts, "Q{id}: vectorization changed decrypts");
        }
        let reduction = 100.0 * (1.0 - sc.decrypts as f64 / sr.decrypts.max(1) as f64);
        assert!(
            reduction >= 30.0,
            "Q{id}: compression saved only {reduction:.1}% of MACs (need >= 30%)"
        );
        dividends.push(CompressionDividend {
            query_id: id,
            encrypted_bytes_raw: sr.decrypts * payload as u64,
            encrypted_bytes_compressed: sc.decrypts * payload as u64,
            mac_reduction_pct: reduction,
        });
    }
    (cells, dividends)
}

/// Time scalar vs vectorized serving at DOP 1 on the non-secure
/// host-only configuration (raw pages, no crypto), so the measured
/// ratio isolates the execution engine. Best-of-`runs` latencies.
pub fn vectors_wallclock(sf: f64, ids: &[u8]) -> Vec<VectorWallclock> {
    let data = generate(sf, SEED);
    let runs = 5usize;
    let mut out = Vec::new();
    let mut scalar_sys =
        CsaSystem::build(SystemConfig::HostOnlyNonSecure, &data, CostParams::default())
            .expect("system builds");
    let mut vector_sys =
        CsaSystem::build(SystemConfig::HostOnlyNonSecure, &data, CostParams::default())
            .expect("system builds");
    vector_sys.set_vectorized(true);
    for &id in ids {
        let q = paper_query(id);
        let time_best = |sys: &mut CsaSystem| {
            sys.run_query(&q).expect("warmup run");
            let mut best = f64::INFINITY;
            for _ in 0..runs {
                let t = Instant::now();
                sys.run_query(&q).expect("timed run");
                best = best.min(t.elapsed().as_secs_f64() * 1e3);
            }
            best
        };
        let scalar_ms = time_best(&mut scalar_sys);
        let vector_ms = time_best(&mut vector_sys);
        out.push(VectorWallclock {
            query_id: id,
            runs,
            scalar_ms,
            vector_ms,
            speedup: scalar_ms / vector_ms,
        });
    }
    out
}

/// The byte-deterministic `"invariants"` JSON block (also embedded
/// verbatim in [`vectors_json`]) — what the `--check` gate compares.
pub fn vectors_invariants_json(
    sf: f64,
    cells: &[VectorCell],
    dividends: &[CompressionDividend],
) -> String {
    let mut s = String::from("  \"invariants\": {\n");
    s.push_str(&format!("    \"sf\": {sf},\n    \"seed\": {SEED},\n    \"cells\": [\n"));
    for (i, c) in cells.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"query_id\":{},\"vectorized\":{},\"compressed\":{},\"total_ns\":{},\
             \"pages_read\":{},\"decrypts\":{},\"merkle_nodes\":{},\"rows\":{},\"result_digest\":\"{}\"}}{}\n",
            c.query_id,
            c.vectorized,
            c.compressed,
            c.total_ns,
            c.pages_read,
            c.decrypts,
            c.merkle_nodes,
            c.rows,
            c.result_digest,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    s.push_str("    ],\n    \"reductions\": [\n");
    for (i, d) in dividends.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"query_id\":{},\"encrypted_bytes_raw\":{},\"encrypted_bytes_compressed\":{},\
             \"mac_reduction_pct\":{:.2}}}{}\n",
            d.query_id,
            d.encrypted_bytes_raw,
            d.encrypted_bytes_compressed,
            d.mac_reduction_pct,
            if i + 1 == dividends.len() { "" } else { "," }
        ));
    }
    s.push_str("    ]\n  }");
    s
}

/// The full `BENCH_8.json` snapshot: the deterministic invariants block
/// plus the (run-dependent) wall-clock section.
pub fn vectors_json(
    sf: f64,
    cells: &[VectorCell],
    dividends: &[CompressionDividend],
    wallclock: &[VectorWallclock],
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&vectors_invariants_json(sf, cells, dividends));
    s.push_str(",\n  \"wallclock\": [\n");
    for (i, w) in wallclock.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"query_id\":{},\"runs\":{},\"scalar_ms\":{:.3},\"vector_ms\":{:.3},\"speedup\":{:.2}}}{}\n",
            w.query_id,
            w.runs,
            w.scalar_ms,
            w.vector_ms,
            w.speedup,
            if i + 1 == wallclock.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ironsafe_obs::export::looks_like_valid_json;

    #[test]
    fn invariants_block_is_deterministic_and_gate_compatible() {
        let (cells_a, div_a) = vectors_sweep(VECTORS_SF, &[6]);
        let (cells_b, div_b) = vectors_sweep(VECTORS_SF, &[6]);
        let a = vectors_invariants_json(VECTORS_SF, &cells_a, &div_a);
        let b = vectors_invariants_json(VECTORS_SF, &cells_b, &div_b);
        assert_eq!(a, b, "invariants block must be byte-deterministic");
        let wall = vec![VectorWallclock {
            query_id: 6,
            runs: 1,
            scalar_ms: 2.0,
            vector_ms: 1.0,
            speedup: 2.0,
        }];
        let full = vectors_json(VECTORS_SF, &cells_a, &div_a, &wall);
        assert!(looks_like_valid_json(&full), "{full}");
        assert!(full.contains(&a), "snapshot must embed the invariants block verbatim");
    }
}
