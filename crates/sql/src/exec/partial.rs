//! Distributed partial aggregation: pre-evaluate per-row aggregate
//! inputs anywhere, replay the serial accumulator in one place.
//!
//! The morsel-parallel aggregate already splits aggregation into two
//! halves: workers *pre-evaluate* each row (group-key bytes, group
//! values, aggregate inputs) and a single-threaded merge replays the
//! serial [`GroupAcc`](super::aggregate::GroupAcc) state machine in row
//! order, which is what keeps parallel results bit-identical to serial
//! (group first-seen order, NULL gating, DISTINCT dedup and the
//! non-associative float accumulation order are all properties of the
//! replay order). This module exposes that same split across *process
//! boundaries*: a storage shard evaluates [`AggPlan::eval_partial`] over
//! its local rows and ships the resulting tuples; the coordinator feeds
//! every shard's tuples — merged back into canonical row order — through
//! [`AggPlan::finish`], which replays the accumulator and applies the
//! post-aggregation pipeline (HAVING → ORDER BY → projection → LIMIT)
//! exactly as the single-node planner would.
//!
//! Because the replay consumes raw per-row inputs rather than merged
//! per-shard partial states, the result is bit-identical to a
//! single-node run at any shard count — floating-point sums are applied
//! in the same order, DISTINCT sets dedup globally, and group output
//! order is the global first-seen order.

use crate::ast::{Expr, SelectStmt};
use crate::exec::aggregate::{agg_output_schema, GroupAcc};
use crate::exec::{collect, AggSpec, BoxOp, Filter, Limit, Project, Sort, Values};
use crate::expr::eval;
use crate::plan::{collect_aggs, expand_projections, output_schema, rewrite_post_agg};
use crate::schema::{Column, Row, Schema};
use crate::value::{DataType, Value};
use crate::Result;

/// A single-table aggregation decomposed for distributed execution.
///
/// Built from the statement a coordinator would otherwise run over one
/// shipped intermediate table; shards evaluate tuples against the
/// fragment's output schema, the coordinator replays them.
#[derive(Debug, Clone)]
pub struct AggPlan {
    /// Group-by expressions, evaluated against the fragment schema.
    group_by: Vec<Expr>,
    /// One spec per distinct aggregate node, named `__agg{i}`.
    specs: Vec<AggSpec>,
    /// The original aggregate nodes, for post-agg rewriting.
    agg_nodes: Vec<Expr>,
    /// Residual row filter (predicates the partitioner left on the
    /// coordinator statement), applied before tuple evaluation.
    residual: Option<Expr>,
    /// Final projection expressions (pre-rewrite).
    proj_exprs: Vec<Expr>,
    /// Final projection output names.
    proj_names: Vec<String>,
    /// HAVING predicate (pre-rewrite).
    having: Option<Expr>,
    /// ORDER BY keys with descending flags (pre-rewrite, aliases
    /// already substituted).
    order_keys: Vec<(Expr, bool)>,
    /// LIMIT row count.
    limit: Option<u64>,
}

impl AggPlan {
    /// Decompose `stmt` for distributed aggregation, or `None` when the
    /// statement is not a single-table aggregation fully resolvable
    /// against `input` (the fragment's output schema) — callers fall
    /// back to shipping raw rows.
    pub fn from_select(stmt: &SelectStmt, input: &Schema) -> Result<Option<AggPlan>> {
        if stmt.from.len() != 1 {
            return Ok(None);
        }
        let proj_items = expand_projections(stmt, input)?;
        let has_agg = !stmt.group_by.is_empty()
            || proj_items.iter().any(|(e, _)| e.contains_aggregate())
            || stmt.having.as_ref().is_some_and(|h| h.contains_aggregate());
        if !has_agg {
            return Ok(None);
        }
        let (proj_exprs, proj_names): (Vec<Expr>, Vec<String>) = proj_items.into_iter().unzip();
        // ORDER BY may reference projection aliases: substitute them the
        // way the planner does.
        let mut order_keys: Vec<(Expr, bool)> = stmt.order_by.clone();
        for (e, _) in &mut order_keys {
            if let Expr::Column(name) = e {
                if let Some(i) = proj_names.iter().position(|n| n == name) {
                    if input.resolve(name).is_err() {
                        *e = proj_exprs[i].clone();
                    }
                }
            }
        }
        // Every referenced column must resolve against the fragment
        // schema, or the shards cannot evaluate the tuples.
        let mut cols = Vec::new();
        for e in proj_exprs
            .iter()
            .chain(stmt.group_by.iter())
            .chain(stmt.having.iter())
            .chain(stmt.where_clause.iter())
            .chain(order_keys.iter().map(|(e, _)| e))
        {
            e.referenced_columns(&mut cols);
        }
        for c in &cols {
            if input.resolve(c).is_err() {
                return Ok(None);
            }
        }
        let mut agg_nodes: Vec<Expr> = Vec::new();
        for e in proj_exprs.iter().chain(stmt.having.iter()).chain(order_keys.iter().map(|(e, _)| e)) {
            collect_aggs(e, &mut agg_nodes);
        }
        let specs: Vec<AggSpec> = agg_nodes
            .iter()
            .enumerate()
            .map(|(i, e)| match e {
                Expr::Agg { func, arg, distinct } => AggSpec {
                    func: *func,
                    arg: arg.as_deref().cloned(),
                    distinct: *distinct,
                    name: format!("__agg{i}"),
                },
                _ => unreachable!("collect_aggs yields Agg nodes"),
            })
            .collect();
        Ok(Some(AggPlan {
            group_by: stmt.group_by.clone(),
            specs,
            agg_nodes,
            residual: stmt.where_clause.clone(),
            proj_exprs,
            proj_names,
            having: stmt.having.clone(),
            order_keys,
            limit: stmt.limit,
        }))
    }

    /// Number of group-by expressions (tuple prefix width).
    pub fn group_width(&self) -> usize {
        self.group_by.len()
    }

    /// Number of aggregate input values (tuple suffix width).
    pub fn agg_width(&self) -> usize {
        self.specs.len()
    }

    /// Schema of the shipped partial tuples: the evaluated group keys
    /// followed by the evaluated aggregate inputs. Declared types are
    /// metadata only (values carry their own tags on the wire).
    pub fn partial_schema(&self) -> Schema {
        let mut columns = Vec::with_capacity(self.group_by.len() + self.specs.len());
        for i in 0..self.group_by.len() {
            columns.push(Column::new(format!("__grp{i}"), DataType::Text));
        }
        for (i, _) in self.specs.iter().enumerate() {
            columns.push(Column::new(format!("__aggin{i}"), DataType::Float));
        }
        Schema::new(columns)
    }

    /// Shard-side half: evaluate one fragment row into a partial tuple
    /// `[group values..., aggregate inputs...]`, or `None` when the
    /// residual filter rejects the row. `COUNT(*)` inputs materialize as
    /// `Int(1)`, mirroring the serial operator.
    pub fn eval_partial(&self, schema: &Schema, row: &Row) -> Result<Option<Row>> {
        if let Some(p) = &self.residual {
            if !eval(p, schema, row)?.is_truthy() {
                return Ok(None);
            }
        }
        let mut tuple = Vec::with_capacity(self.group_by.len() + self.specs.len());
        for e in &self.group_by {
            tuple.push(eval(e, schema, row)?);
        }
        for spec in &self.specs {
            tuple.push(match &spec.arg {
                None => Value::Int(1),
                Some(e) => eval(e, schema, row)?,
            });
        }
        Ok(Some(tuple))
    }

    /// Vectorized shard-side half: [`AggPlan::eval_partial`] for a whole
    /// slice of fragment rows at once. Rows are pivoted into a
    /// [`ColumnBatch`](crate::batch::ColumnBatch), the residual filter
    /// runs vector-at-a-time over a selection bitmap, and group keys /
    /// aggregate inputs evaluate once per expression per batch with
    /// pre-bound column indexes (the row half re-resolves column names
    /// on every row). Slot `i` of the output is bit-identical to
    /// `eval_partial(schema, &rows[i])` — `None` where the residual
    /// filter rejects the row.
    pub fn eval_partial_batch(&self, schema: &Schema, rows: &[Row]) -> Result<Vec<Option<Row>>> {
        use crate::batch::ColumnBatch;
        use crate::expr::{bind, eval_vec, filter_vec, BoundExpr};
        use crate::value::RawValue;

        let residual = self.residual.as_ref().map(|p| bind(p, schema)).transpose()?;
        let groups: Vec<BoundExpr> =
            self.group_by.iter().map(|e| bind(e, schema)).collect::<Result<_>>()?;
        let args: Vec<Option<BoundExpr>> = self
            .specs
            .iter()
            .map(|spec| spec.arg.as_ref().map(|e| bind(e, schema)).transpose())
            .collect::<Result<_>>()?;

        let mut batch = ColumnBatch::new(schema.len());
        for row in rows {
            for (c, v) in row.iter().enumerate() {
                batch.push_cell(c, RawValue::of(v));
            }
            batch.finish_row()?;
        }
        let mut sel = vec![true; batch.len()];
        if let Some(p) = &residual {
            filter_vec(p, &batch, &mut sel)?;
        }
        let mut vecs: Vec<Vec<Value>> = Vec::with_capacity(groups.len() + args.len());
        for e in &groups {
            vecs.push(eval_vec(e, &batch, &sel)?);
        }
        for arg in &args {
            vecs.push(match arg {
                None => vec![Value::Int(1); batch.len()], // COUNT(*) counts rows
                Some(e) => eval_vec(e, &batch, &sel)?,
            });
        }
        let mut out = Vec::with_capacity(batch.len());
        for (lane, live) in sel.iter().enumerate() {
            if !*live {
                out.push(None);
                continue;
            }
            out.push(Some(
                vecs.iter_mut()
                    .map(|v| std::mem::replace(&mut v[lane], Value::Null))
                    .collect(),
            ));
        }
        Ok(out)
    }

    /// Coordinator-side half: replay partial tuples *in canonical row
    /// order* through the serial accumulator, then apply HAVING, ORDER
    /// BY, projection and LIMIT. Returns the final output schema and
    /// rows — bit-identical to running the original statement over the
    /// undivided table.
    pub fn finish(&self, tuples: impl IntoIterator<Item = Row>) -> Result<(Schema, Vec<Row>)> {
        let gw = self.group_by.len();
        let mut acc = GroupAcc::new(&self.specs, gw == 0);
        let mut key = Vec::new();
        for tuple in tuples {
            key.clear();
            for v in &tuple[..gw] {
                v.key_bytes(&mut key);
            }
            acc.update(&self.specs, &key, &tuple[..gw], &tuple[gw..])?;
        }
        let group_names: Vec<String> = (0..gw).map(|i| format!("__grp{i}")).collect();
        let grouped_schema = agg_output_schema(&group_names, &self.specs);
        let mut current: BoxOp = Box::new(Values::new(grouped_schema, acc.finish()));
        let rw = |e: &Expr| rewrite_post_agg(e, &self.group_by, &self.agg_nodes);
        if let Some(h) = &self.having {
            current = Box::new(Filter::new(current, rw(h)));
        }
        if !self.order_keys.is_empty() {
            let keys = self.order_keys.iter().map(|(e, d)| (rw(e), *d)).collect();
            current = Box::new(Sort::new(current, keys));
        }
        let exprs: Vec<Expr> = self.proj_exprs.iter().map(rw).collect();
        let schema = output_schema(&exprs, &self.proj_names, current.schema());
        current = Box::new(Project::new(current, exprs, schema));
        if let Some(n) = self.limit {
            current = Box::new(Limit::new(current, n));
        }
        collect(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Statement;
    use crate::parser::parse_statement;

    fn select(sql: &str) -> SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    fn fragment_schema() -> Schema {
        Schema::new(vec![
            Column::new("g", DataType::Text),
            Column::new("x", DataType::Int),
            Column::new("y", DataType::Float),
        ])
    }

    fn fragment_rows() -> Vec<Row> {
        vec![
            vec![Value::Text("a".into()), Value::Int(1), Value::Float(0.5)],
            vec![Value::Text("b".into()), Value::Int(10), Value::Float(1.5)],
            vec![Value::Text("a".into()), Value::Int(2), Value::Float(2.5)],
            vec![Value::Text("b".into()), Value::Int(20), Value::Float(3.5)],
            vec![Value::Text("a".into()), Value::Int(3), Value::Null],
        ]
    }

    /// Run the serial planner end to end as the oracle.
    fn oracle(sql: &str) -> (Schema, Vec<Row>) {
        let mut db = crate::Database::new(ironsafe_storage::pager::PlainPager::new());
        db.create_table("t", fragment_schema()).unwrap();
        db.insert_rows("t", fragment_rows()).unwrap();
        match db.execute(sql).unwrap() {
            crate::QueryResult::Rows { schema, rows } => (schema, rows),
            other => panic!("expected rows, got {other:?}"),
        }
    }

    fn replayed(sql: &str, split_at: usize) -> (Schema, Vec<Row>) {
        let stmt = select(sql);
        let schema = fragment_schema();
        let plan = AggPlan::from_select(&stmt, &schema).unwrap().expect("aggregation shape");
        // Split rows across two "shards", evaluate each side separately,
        // then replay in original row order.
        let rows = fragment_rows();
        let (left, right) = rows.split_at(split_at);
        let mut tuples = Vec::new();
        for row in left.iter().chain(right.iter()) {
            if let Some(t) = plan.eval_partial(&schema, row).unwrap() {
                tuples.push(t);
            }
        }
        plan.finish(tuples).unwrap()
    }

    #[test]
    fn grouped_replay_matches_serial_planner() {
        let sql = "SELECT g, COUNT(*) AS cnt, SUM(y) AS total, AVG(x) AS mean \
                   FROM t GROUP BY g ORDER BY g";
        let (oschema, orows) = oracle(sql);
        for split in 0..=5 {
            let (schema, rows) = replayed(sql, split);
            assert_eq!(schema.columns.len(), oschema.columns.len());
            assert_eq!(rows, orows, "split at {split} diverged");
        }
    }

    #[test]
    fn global_aggregate_with_filter_matches() {
        let sql = "SELECT SUM(x * 2) AS s, COUNT(*) AS n FROM t WHERE x < 15";
        let (_, orows) = oracle(sql);
        let (_, rows) = replayed(sql, 2);
        assert_eq!(rows, orows);
    }

    #[test]
    fn having_and_limit_survive_replay() {
        let sql = "SELECT g, SUM(x) AS s FROM t GROUP BY g HAVING SUM(x) > 5 \
                   ORDER BY s DESC LIMIT 1";
        let (_, orows) = oracle(sql);
        let (_, rows) = replayed(sql, 3);
        assert_eq!(rows, orows);
    }

    #[test]
    fn distinct_dedups_globally_across_shards() {
        let sql = "SELECT COUNT(DISTINCT x) AS d FROM t";
        let (_, orows) = oracle(sql);
        // Duplicate values land on both sides of the split; the replay
        // must still count each distinct value once.
        let (_, rows) = replayed(sql, 1);
        assert_eq!(rows, orows);
    }

    #[test]
    fn batch_partial_matches_row_partial() {
        let schema = fragment_schema();
        let rows = fragment_rows();
        for sql in [
            "SELECT g, COUNT(*) AS c, SUM(y * 1.1) AS s FROM t GROUP BY g",
            "SELECT SUM(x * 2) AS s, COUNT(*) AS n FROM t WHERE x < 15",
            "SELECT g, AVG(x) AS m FROM t WHERE y IS NOT NULL GROUP BY g",
        ] {
            let plan =
                AggPlan::from_select(&select(sql), &schema).unwrap().expect("aggregation shape");
            let row_tuples: Vec<Option<Row>> =
                rows.iter().map(|r| plan.eval_partial(&schema, r).unwrap()).collect();
            let batch_tuples = plan.eval_partial_batch(&schema, &rows).unwrap();
            assert_eq!(batch_tuples, row_tuples, "`{sql}` diverged");
        }
    }

    #[test]
    fn non_aggregate_statements_are_rejected() {
        let stmt = select("SELECT g, x FROM t");
        assert!(AggPlan::from_select(&stmt, &fragment_schema()).unwrap().is_none());
        let stmt = select("SELECT a.g, SUM(b.x) FROM a, b GROUP BY a.g");
        assert!(AggPlan::from_select(&stmt, &fragment_schema()).unwrap().is_none());
    }

    #[test]
    fn unresolvable_columns_fall_back() {
        let stmt = select("SELECT missing, SUM(x) FROM t GROUP BY missing");
        assert!(AggPlan::from_select(&stmt, &fragment_schema()).unwrap().is_none());
    }
}
