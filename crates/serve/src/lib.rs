//! # ironsafe-serve
//!
//! The concurrent multi-session query server layered over the IronSafe
//! stack. Everything below this crate executes one query at a time for
//! one caller; this crate turns that into a *server*:
//!
//! * [`SessionManager`] wraps the trusted monitor's session-key
//!   machinery into an explicit lifecycle — open → active →
//!   revoked/expired — with an idle-timeout sweep, so every request is
//!   checked against a live session and refusals come back as clean
//!   per-request errors.
//! * [`QueryServer`] owns a worker pool pulling from **bounded
//!   per-session queues**. Admission control rejects early
//!   ([`AdmitError::QueueFull`] when a session outruns its queue,
//!   [`AdmitError::Busy`] when the server-wide backlog is at its limit)
//!   instead of blocking unboundedly; dispatch is fair round-robin
//!   across sessions; shutdown drains every admitted query before the
//!   workers exit.
//! * All sessions execute against **one** shared
//!   [`SharedCsaSystem`](ironsafe_csa::SharedCsaSystem) and one loaded
//!   dataset — the copy-on-write read views introduced in
//!   `ironsafe-storage` make concurrent execution produce bit-identical
//!   results and [`CostBreakdown`](ironsafe_csa::CostBreakdown)s to
//!   serial runs, which is what makes the server's replies and
//!   simulated-time totals deterministic under any thread interleaving.
//!
//! Telemetry: `serve.sessions.active`, `serve.queue.depth`,
//! `serve.query.{admitted,rejected,completed}` (see [`ServeMetrics`])
//! plus a per-session span root for every executed query.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod server;
pub mod session;

pub use metrics::ServeMetrics;
pub use server::{
    AdmitError, Job, QueryResponse, QueryServer, ServeConfig, ServeError, Ticket,
};
pub use session::{SessionHandle, SessionManager};
