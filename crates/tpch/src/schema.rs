//! TPC-H table definitions (DDL for the engine's dialect).

/// `CREATE TABLE` statements for all eight TPC-H tables, in
/// load-friendly order (dimensions first).
pub const DDL: &[&str] = &[
    "CREATE TABLE region (r_regionkey INT, r_name TEXT, r_comment TEXT)",
    "CREATE TABLE nation (n_nationkey INT, n_name TEXT, n_regionkey INT, n_comment TEXT)",
    "CREATE TABLE supplier (s_suppkey INT, s_name TEXT, s_address TEXT, s_nationkey INT, \
     s_phone TEXT, s_acctbal FLOAT, s_comment TEXT)",
    "CREATE TABLE customer (c_custkey INT, c_name TEXT, c_address TEXT, c_nationkey INT, \
     c_phone TEXT, c_acctbal FLOAT, c_mktsegment TEXT, c_comment TEXT)",
    "CREATE TABLE part (p_partkey INT, p_name TEXT, p_mfgr TEXT, p_brand TEXT, p_type TEXT, \
     p_size INT, p_container TEXT, p_retailprice FLOAT, p_comment TEXT)",
    "CREATE TABLE partsupp (ps_partkey INT, ps_suppkey INT, ps_availqty INT, \
     ps_supplycost FLOAT, ps_comment TEXT)",
    "CREATE TABLE orders (o_orderkey INT, o_custkey INT, o_orderstatus TEXT, \
     o_totalprice FLOAT, o_orderdate DATE, o_orderpriority TEXT, o_clerk TEXT, \
     o_shippriority INT, o_comment TEXT)",
    "CREATE TABLE lineitem (l_orderkey INT, l_partkey INT, l_suppkey INT, l_linenumber INT, \
     l_quantity FLOAT, l_extendedprice FLOAT, l_discount FLOAT, l_tax FLOAT, \
     l_returnflag TEXT, l_linestatus TEXT, l_shipdate DATE, l_commitdate DATE, \
     l_receiptdate DATE, l_shipinstruct TEXT, l_shipmode TEXT, l_comment TEXT)",
];

/// The eight table names, load order.
pub const TABLES: &[&str] =
    &["region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"];

/// Base (SF = 1) row counts per table, spec order of [`TABLES`].
pub const BASE_ROWS: &[u64] = &[5, 25, 10_000, 150_000, 200_000, 800_000, 1_500_000, 6_000_000];

/// TPC-H region names.
pub const REGIONS: &[&str] = &["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// TPC-H nation names with their region index.
pub const NATIONS: &[(&str, usize)] = &[
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("ROMANIA", 3),
    ("RUSSIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
    ("CHINA", 2),
];

/// Market segments.
pub const SEGMENTS: &[&str] = &["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"];

/// Order priorities.
pub const PRIORITIES: &[&str] = &["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// Ship modes.
pub const SHIP_MODES: &[&str] = &["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// Ship instructions.
pub const SHIP_INSTRUCT: &[&str] =
    &["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"];

/// Part type components (spec: syllable1 syllable2 syllable3).
pub const TYPE_S1: &[&str] = &["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
/// Part type second syllable.
pub const TYPE_S2: &[&str] = &["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
/// Part type third syllable.
pub const TYPE_S3: &[&str] = &["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

/// Containers.
pub const CONTAINERS: &[&str] = &[
    "SM CASE", "SM BOX", "SM PACK", "SM PKG", "MED BAG", "MED BOX", "MED PKG", "MED PACK",
    "LG CASE", "LG BOX", "LG PACK", "LG PKG", "JUMBO BAG", "JUMBO BOX", "JUMBO PACK", "JUMBO PKG",
    "WRAP CASE", "WRAP BOX", "WRAP BAG",
];

/// Part name words (spec P_NAME vocabulary, abbreviated).
pub const PART_NAMES: &[&str] = &[
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black", "blanched", "blue",
    "blush", "brown", "burlywood", "chartreuse", "chocolate", "coral", "cornsilk", "cream",
    "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest", "frosted",
    "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew", "hot", "indian", "ivory",
    "khaki", "lace", "lavender", "lawn", "lemon", "light", "lime", "linen", "magenta", "maroon",
    "medium", "metallic", "midnight", "mint", "misty", "moccasin", "navajo", "navy", "olive",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddl_parses_in_engine() {
        for ddl in DDL {
            ironsafe_sql::parser::parse_statement(ddl).unwrap();
        }
    }

    #[test]
    fn inventory_is_consistent() {
        assert_eq!(TABLES.len(), DDL.len());
        assert_eq!(TABLES.len(), BASE_ROWS.len());
        assert_eq!(NATIONS.len(), 25);
        assert_eq!(REGIONS.len(), 5);
        assert!(NATIONS.iter().all(|(_, r)| *r < REGIONS.len()));
    }
}
