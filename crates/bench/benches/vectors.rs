//! Vectorization microbenches: Q1/Q6-style predicate evaluation per-row
//! vs over a column batch, and secure page reads through the raw store
//! vs the compress-before-encrypt store at equal logical byte volume.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ironsafe_crypto::group::Group;
use ironsafe_sql::batch::ColumnBatch;
use ironsafe_sql::expr::{bind, eval_bound, filter_vec};
use ironsafe_sql::parser::parse_expression;
use ironsafe_sql::schema::{Column, Schema};
use ironsafe_sql::value::{DataType, RawValue, Value};
use ironsafe_sql::Row;
use ironsafe_storage::codec::PAGE_PAYLOAD;
use ironsafe_storage::pager::Pager;
use ironsafe_storage::{CompressedPager, SecurePager, COMPRESSED_PAGE_FACTOR};
use ironsafe_tee::trustzone::Manufacturer;
use rand::SeedableRng;

const ROWS: usize = 4096;

/// A lineitem-shaped slice: the columns Q1 and Q6 actually touch.
fn lineitem_schema() -> Schema {
    Schema::new(vec![
        Column::new("l_quantity", DataType::Float),
        Column::new("l_extendedprice", DataType::Float),
        Column::new("l_discount", DataType::Float),
        Column::new("l_shipdate", DataType::Text),
        Column::new("l_returnflag", DataType::Text),
    ])
}

fn lineitem_rows() -> Vec<Row> {
    (0..ROWS as i64)
        .map(|i| {
            vec![
                Value::Float((i % 50) as f64 + 1.0),
                Value::Float(900.0 + (i % 1000) as f64),
                Value::Float((i % 11) as f64 * 0.01),
                Value::Text(format!("199{}-{:02}-{:02}", i % 6 + 2, i % 12 + 1, i % 28 + 1)),
                Value::Text(["A", "N", "R"][(i % 3) as usize].to_string()),
            ]
        })
        .collect()
}

fn batch_of(rows: &[Row]) -> ColumnBatch {
    let mut batch = ColumnBatch::new(rows[0].len());
    for row in rows {
        for (c, v) in row.iter().enumerate() {
            batch.push_cell(c, RawValue::of(v));
        }
        batch.finish_row().unwrap();
    }
    batch
}

fn bench_predicates(c: &mut Criterion) {
    let schema = lineitem_schema();
    let rows = lineitem_rows();
    let batch = batch_of(&rows);
    let preds = [
        ("q1_shipdate", "l_shipdate <= '1998-09-02'"),
        (
            "q6_conjunction",
            "l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01' \
             AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24",
        ),
    ];
    let mut g = c.benchmark_group("vector_predicates");
    g.throughput(Throughput::Elements(ROWS as u64));
    for (name, sql) in preds {
        let bound = bind(&parse_expression(sql).unwrap(), &schema).unwrap();
        g.bench_function(format!("{name}/scalar"), |b| {
            b.iter(|| {
                let mut kept = 0usize;
                for row in &rows {
                    if eval_bound(&bound, row).unwrap().is_truthy() {
                        kept += 1;
                    }
                }
                black_box(kept)
            })
        });
        g.bench_function(format!("{name}/vector"), |b| {
            b.iter(|| {
                let mut sel = vec![true; batch.len()];
                filter_vec(&bound, &batch, &mut sel).unwrap();
                black_box(sel.iter().filter(|s| **s).count())
            })
        });
    }
    g.finish();
}

fn secure() -> SecurePager {
    let group = Group::modp_1024();
    let mfr = Manufacturer::from_seed(&group, b"bench");
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let device = mfr.make_device("bench-dev", 8, &mut rng);
    SecurePager::create(device, 0).unwrap()
}

/// A repetitive (TPC-H-like) payload the dictionary codec bites on.
fn compressible(len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| b"1995-06-17|ironsafe|"[(i / 24) % 20])
        .collect()
}

fn bench_compressed_reads(c: &mut Criterion) {
    // Same logical byte volume both ways: LOGICAL raw pages vs
    // LOGICAL / factor compressed logical pages.
    const LOGICAL: usize = 32;
    let mut raw = secure();
    let raw_ids: Vec<u64> = (0..LOGICAL)
        .map(|_| {
            let id = raw.allocate_page().unwrap();
            raw.write_page(id, &compressible(PAGE_PAYLOAD)).unwrap();
            id
        })
        .collect();
    raw.commit().unwrap();

    let mut comp = CompressedPager::new(secure());
    let comp_payload = comp.payload_size();
    let comp_ids: Vec<u64> = (0..LOGICAL / COMPRESSED_PAGE_FACTOR)
        .map(|_| {
            let id = comp.allocate_page().unwrap();
            comp.write_page(id, &compressible(comp_payload)).unwrap();
            id
        })
        .collect();
    comp.commit().unwrap();

    let mut g = c.benchmark_group("vector_compressed_reads");
    g.throughput(Throughput::Bytes((LOGICAL * PAGE_PAYLOAD) as u64));
    let mut raw_buf = vec![0u8; LOGICAL * PAGE_PAYLOAD];
    g.bench_function("raw_read_pages", |b| {
        b.iter(|| raw.read_pages(&raw_ids, &mut raw_buf).unwrap())
    });
    let mut comp_buf = vec![0u8; comp_payload];
    g.bench_function("compressed_read_pages", |b| {
        b.iter(|| {
            for id in &comp_ids {
                comp.read_page(*id, &mut comp_buf).unwrap();
            }
            black_box(comp_buf[0])
        })
    });
    g.finish();
}

criterion_group!(benches, bench_predicates, bench_compressed_reads);
criterion_main!(benches);
