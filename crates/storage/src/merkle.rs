//! Incremental Merkle tree over page MACs.
//!
//! The paper builds an HMAC-based Merkle tree whose leaves are the per-page
//! MACs; the root (further MAC'd with a HUK-derived key) goes to the RPMB.
//! This implementation supports appends, in-place leaf updates, per-read
//! path verification, and a configurable arity (the binary-vs-wide trade
//! is one of the ablation benches).

use ironsafe_crypto::hmac::{hmac_sha256_concat, HmacSha256};

/// A 32-byte node hash.
pub type NodeHash = [u8; 32];

/// Incremental Merkle tree.
#[derive(Clone)]
pub struct MerkleTree {
    key: [u8; 32],
    arity: usize,
    /// `levels[0]` are the leaves; the last level has exactly one node.
    levels: Vec<Vec<NodeHash>>,
    /// Nodes visited by verify/update operations (cost-model input).
    node_visits: u64,
}

impl std::fmt::Debug for MerkleTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MerkleTree(leaves: {}, arity: {}, depth: {})", self.num_leaves(), self.arity, self.levels.len())
    }
}

impl MerkleTree {
    /// An empty tree keyed with `key`, with the given fan-out (≥ 2).
    pub fn new(key: [u8; 32], arity: usize) -> Self {
        assert!(arity >= 2, "Merkle arity must be at least 2");
        MerkleTree { key, arity, levels: vec![Vec::new()], node_visits: 0 }
    }

    /// Binary tree (the paper's configuration).
    pub fn binary(key: [u8; 32]) -> Self {
        Self::new(key, 2)
    }

    /// Leaf count.
    pub fn num_leaves(&self) -> usize {
        self.levels[0].len()
    }

    /// Tree depth (number of levels).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Cumulative node visits (verifications + updates).
    pub fn node_visits(&self) -> u64 {
        self.node_visits
    }

    /// Zero the visit counter.
    pub fn reset_counters(&mut self) {
        self.node_visits = 0;
    }

    /// Restore the visit counter to an earlier snapshot — used by the
    /// secure pager to keep batch reads stats-atomic: a failed batch
    /// rolls its partial Merkle work back out of the counters.
    pub fn restore_node_visits(&mut self, snapshot: u64) {
        self.node_visits = snapshot;
    }

    fn leaf_hash(&self, index: u64, page_mac: &[u8; 32]) -> NodeHash {
        hmac_sha256_concat(&self.key, &[b"merkle-leaf", &index.to_be_bytes(), page_mac])
    }

    fn node_hash(&self, level: usize, children: &[NodeHash]) -> NodeHash {
        let mut h = HmacSha256::new(&self.key);
        h.update(b"merkle-node");
        h.update(&(level as u32).to_be_bytes());
        for c in children {
            h.update(c);
        }
        h.finalize()
    }

    /// Append a leaf for a new page; returns its index.
    pub fn append(&mut self, page_mac: &[u8; 32]) -> u64 {
        let index = self.levels[0].len() as u64;
        let leaf = self.leaf_hash(index, page_mac);
        self.levels[0].push(leaf);
        self.rebuild_path(index as usize);
        index
    }

    /// Update the leaf for an existing page after a page write.
    pub fn update(&mut self, index: u64, page_mac: &[u8; 32]) {
        let i = index as usize;
        assert!(i < self.levels[0].len(), "leaf index out of range");
        self.levels[0][i] = self.leaf_hash(index, page_mac);
        self.rebuild_path(i);
    }

    /// Recompute ancestors of leaf `i` (growing levels as needed) until the
    /// top level has a single node.
    fn rebuild_path(&mut self, mut i: usize) {
        let mut level = 0;
        while self.levels[level].len() > 1 {
            let cur_len = self.levels[level].len();
            let parent = i / self.arity;
            let start = parent * self.arity;
            let end = (start + self.arity).min(cur_len);
            let hash = self.node_hash(level, &self.levels[level][start..end]);
            self.node_visits += (end - start) as u64 + 1;
            if level + 1 == self.levels.len() {
                self.levels.push(Vec::new());
            }
            let up = &mut self.levels[level + 1];
            if parent >= up.len() {
                debug_assert_eq!(parent, up.len(), "appends only extend by one parent");
                up.push(hash);
            } else {
                up[parent] = hash;
            }
            level += 1;
            i = parent;
        }
    }

    /// The root hash (`None` for an empty tree).
    pub fn root(&self) -> Option<NodeHash> {
        if self.num_leaves() == 0 {
            return None;
        }
        let top = self.levels.last().expect("at least one level");
        debug_assert_eq!(top.len(), 1);
        Some(top[0])
    }

    /// Verify that `page_mac` is the authentic MAC for leaf `index` by
    /// recomputing the path to the root and comparing with `expected_root`.
    ///
    /// Counts the visited nodes — this is the per-read freshness check that
    /// dominates the paper's Figure 8/9c breakdowns.
    pub fn verify(&mut self, index: u64, page_mac: &[u8; 32], expected_root: &NodeHash) -> bool {
        let i = index as usize;
        if i >= self.levels[0].len() {
            return false;
        }
        let mut hash = self.leaf_hash(index, page_mac);
        self.node_visits += 1;
        if self.levels[0][i] != hash {
            return false;
        }
        let mut idx = i;
        for level in 0..self.levels.len() - 1 {
            let cur = &self.levels[level];
            let parent = idx / self.arity;
            let start = parent * self.arity;
            let end = (start + self.arity).min(cur.len());
            let mut children: Vec<NodeHash> = cur[start..end].to_vec();
            children[idx - start] = hash;
            hash = self.node_hash(level, &children);
            self.node_visits += (end - start) as u64 + 1;
            idx = parent;
        }
        ironsafe_crypto::ct_eq(&hash, expected_root)
    }

    /// Rebuild the whole tree from a list of page MACs (used when loading a
    /// database from the untrusted medium).
    pub fn rebuild_from_macs(key: [u8; 32], arity: usize, macs: &[[u8; 32]]) -> Self {
        let mut t = Self::new(key, arity);
        if macs.is_empty() {
            return t;
        }
        t.levels[0] = macs
            .iter()
            .enumerate()
            .map(|(i, m)| t.leaf_hash(i as u64, m))
            .collect();
        let mut level = 0;
        while t.levels[level].len() > 1 {
            let cur_len = t.levels[level].len();
            let mut up = Vec::with_capacity(cur_len.div_ceil(t.arity));
            for chunk_start in (0..cur_len).step_by(t.arity) {
                let end = (chunk_start + t.arity).min(cur_len);
                let h = t.node_hash(level, &t.levels[level][chunk_start..end]);
                up.push(h);
            }
            t.levels.push(up);
            level += 1;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(i: u8) -> [u8; 32] {
        [i; 32]
    }

    #[test]
    fn empty_tree_has_no_root() {
        let t = MerkleTree::binary([0; 32]);
        assert_eq!(t.root(), None);
    }

    #[test]
    fn single_leaf_root_changes_with_leaf() {
        let mut t = MerkleTree::binary([0; 32]);
        t.append(&mac(1));
        let r1 = t.root().unwrap();
        t.update(0, &mac(2));
        assert_ne!(t.root().unwrap(), r1);
    }

    #[test]
    fn append_matches_rebuild() {
        for n in 1..40usize {
            let macs: Vec<[u8; 32]> = (0..n).map(|i| mac(i as u8)).collect();
            let mut inc = MerkleTree::binary([7; 32]);
            for m in &macs {
                inc.append(m);
            }
            let bulk = MerkleTree::rebuild_from_macs([7; 32], 2, &macs);
            assert_eq!(inc.root(), bulk.root(), "n = {n}");
        }
    }

    #[test]
    fn append_matches_rebuild_wide_arity() {
        for arity in [3usize, 4, 8, 16] {
            let macs: Vec<[u8; 32]> = (0..33).map(|i| mac(i as u8)).collect();
            let mut inc = MerkleTree::new([7; 32], arity);
            for m in &macs {
                inc.append(m);
            }
            let bulk = MerkleTree::rebuild_from_macs([7; 32], arity, &macs);
            assert_eq!(inc.root(), bulk.root(), "arity = {arity}");
        }
    }

    #[test]
    fn verify_accepts_genuine_leaves() {
        let macs: Vec<[u8; 32]> = (0..17).map(|i| mac(i as u8)).collect();
        let mut t = MerkleTree::rebuild_from_macs([1; 32], 2, &macs);
        let root = t.root().unwrap();
        for (i, m) in macs.iter().enumerate() {
            assert!(t.verify(i as u64, m, &root), "leaf {i}");
        }
    }

    #[test]
    fn verify_rejects_wrong_mac() {
        let macs: Vec<[u8; 32]> = (0..8).map(|i| mac(i as u8)).collect();
        let mut t = MerkleTree::rebuild_from_macs([1; 32], 2, &macs);
        let root = t.root().unwrap();
        assert!(!t.verify(3, &mac(99), &root));
    }

    #[test]
    fn verify_rejects_displaced_leaf() {
        // The MAC of leaf 2 presented at index 5 must fail.
        let macs: Vec<[u8; 32]> = (0..8).map(|i| mac(i as u8)).collect();
        let mut t = MerkleTree::rebuild_from_macs([1; 32], 2, &macs);
        let root = t.root().unwrap();
        assert!(!t.verify(5, &mac(2), &root));
    }

    #[test]
    fn verify_rejects_stale_root() {
        let mut t = MerkleTree::binary([1; 32]);
        t.append(&mac(1));
        t.append(&mac(2));
        let old_root = t.root().unwrap();
        t.update(0, &mac(3));
        assert!(!t.verify(0, &mac(3), &old_root), "rollback detected");
        let new_root = t.root().unwrap();
        assert!(t.verify(0, &mac(3), &new_root));
    }

    #[test]
    fn update_only_affects_root_not_siblings() {
        let macs: Vec<[u8; 32]> = (0..16).map(|i| mac(i as u8)).collect();
        let mut t = MerkleTree::rebuild_from_macs([1; 32], 2, &macs);
        t.update(7, &mac(70));
        let root = t.root().unwrap();
        for (i, m) in macs.iter().enumerate() {
            if i == 7 {
                assert!(t.verify(7, &mac(70), &root));
            } else {
                assert!(t.verify(i as u64, m, &root), "sibling {i} still valid");
            }
        }
    }

    #[test]
    fn different_keys_different_roots() {
        let macs: Vec<[u8; 32]> = (0..4).map(|i| mac(i as u8)).collect();
        let a = MerkleTree::rebuild_from_macs([1; 32], 2, &macs);
        let b = MerkleTree::rebuild_from_macs([2; 32], 2, &macs);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn node_visits_accumulate() {
        let macs: Vec<[u8; 32]> = (0..64).map(|i| mac(i as u8)).collect();
        let mut t = MerkleTree::rebuild_from_macs([1; 32], 2, &macs);
        t.reset_counters();
        let root = t.root().unwrap();
        t.verify(0, &mac(0), &root);
        let binary_visits = t.node_visits();
        assert!(binary_visits > 6, "binary tree over 64 leaves is 6 levels deep");

        let mut wide = MerkleTree::rebuild_from_macs([1; 32], 16, &macs);
        wide.reset_counters();
        let wroot = wide.root().unwrap();
        wide.verify(0, &mac(0), &wroot);
        assert!(wide.depth() < t.depth(), "wide tree is shallower");
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn incremental_equals_bulk(
                macs in proptest::collection::vec(any::<[u8; 32]>(), 1..100),
                arity in 2usize..8,
            ) {
                let mut inc = MerkleTree::new([9; 32], arity);
                for m in &macs {
                    inc.append(m);
                }
                let bulk = MerkleTree::rebuild_from_macs([9; 32], arity, &macs);
                prop_assert_eq!(inc.root(), bulk.root());
            }

            #[test]
            fn all_leaves_verify_after_random_updates(
                mut macs in proptest::collection::vec(any::<[u8; 32]>(), 2..50),
                updates in proptest::collection::vec((any::<usize>(), any::<[u8; 32]>()), 0..20),
            ) {
                let mut t = MerkleTree::rebuild_from_macs([3; 32], 2, &macs);
                for (idx, m) in updates {
                    let i = idx % macs.len();
                    macs[i] = m;
                    t.update(i as u64, &m);
                }
                let root = t.root().unwrap();
                for (i, m) in macs.iter().enumerate() {
                    prop_assert!(t.verify(i as u64, m, &root));
                }
            }
        }
    }
}
