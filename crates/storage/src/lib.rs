//! # ironsafe-storage
//!
//! The secure storage framework of IronSafe (§4.1 of the paper): protects
//! data at rest on an *untrusted* storage medium with confidentiality,
//! integrity and freshness.
//!
//! Layering (bottom-up):
//!
//! * [`blockdev`] — a simulated block device of 4 KiB blocks with I/O
//!   counters and attacker-facing raw access (tamper/rollback/clone) used
//!   by the security tests.
//! * [`codec`] — the per-page cryptographic format: `IV ‖ AES-CBC
//!   ciphertext ‖ HMAC`, mirroring SQLCipher's page layout the paper
//!   builds on.
//! * [`merkle`] — an incremental Merkle tree (configurable arity) over the
//!   page MACs, detecting displacement and suppression of pages.
//! * [`freshness`] — binds the Merkle root to the device RPMB with a
//!   HUK-derived key, defeating rollback and forking attacks.
//! * [`pager`] — the [`Pager`](pager::Pager) abstraction the SQL engine
//!   reads and writes through, with a plaintext implementation
//!   ([`pager::PlainPager`]) and the full secure implementation
//!   ([`secure_pager::SecurePager`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blockdev;
pub mod codec;
pub mod compress;
pub mod freshness;
pub mod merkle;
pub mod mvcc;
pub mod pager;
pub mod secure_pager;
pub mod view;
pub mod wal;

pub use blockdev::{BlockDevice, BLOCK_SIZE};
pub use codec::{PageCodec, PAGE_PAYLOAD};
pub use compress::{CompressMetrics, CompressedPager, COMPRESSED_PAGE_FACTOR};
pub use merkle::{MerkleTree, NodeCacheStats};
pub use mvcc::{MvccMetrics, SnapshotPin, Snapshots};
pub use pager::{PageId, Pager, PagerStats, PlainPager};
pub use secure_pager::SecurePager;
pub use view::{PageCache, PendingTxns, SharedPending, ViewPager};
pub use wal::{
    Checkpoint, CommitRecord, RecoveredState, RecoveryInfo, TailReport, TailVerdict, Wal,
    WalMedium, WalMetrics,
};

/// Errors raised by the storage stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Page id out of range.
    PageOutOfRange(u64),
    /// A page failed decryption or MAC verification (tampering).
    IntegrityViolation(&'static str),
    /// The Merkle root did not match the RPMB-protected value (rollback).
    FreshnessViolation(&'static str),
    /// Buffer of the wrong size handed to the pager.
    BadBufferSize {
        /// Required size.
        expected: usize,
        /// Provided size.
        got: usize,
    },
    /// Underlying TEE error (RPMB etc.).
    Tee(ironsafe_tee::TeeError),
    /// The block device failed an I/O request (torn read, bus reset).
    DeviceIo(&'static str),
    /// The write-ahead log ends in a partial frame (crash mid-append).
    /// Recovery discards the torn tail; the committed prefix is intact.
    WalTorn(&'static str),
    /// A write-ahead-log record failed chain-MAC verification or decode
    /// (offline tampering, or a truncation that removed committed state).
    WalCorrupt(&'static str),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::PageOutOfRange(p) => write!(f, "page {p} out of range"),
            StorageError::IntegrityViolation(m) => write!(f, "integrity violation: {m}"),
            StorageError::FreshnessViolation(m) => write!(f, "freshness violation: {m}"),
            StorageError::BadBufferSize { expected, got } => {
                write!(f, "bad buffer size: expected {expected}, got {got}")
            }
            StorageError::Tee(e) => write!(f, "TEE error: {e}"),
            StorageError::DeviceIo(m) => write!(f, "device I/O error: {m}"),
            StorageError::WalTorn(m) => write!(f, "WAL torn: {m}"),
            StorageError::WalCorrupt(m) => write!(f, "WAL corrupt: {m}"),
        }
    }
}

impl ironsafe_faults::Transient for StorageError {
    /// Device I/O errors and integrity violations are retried: a torn
    /// read or in-transit bit flip clears on a re-read of the pristine
    /// medium (persistent tampering keeps failing and surfaces once the
    /// retry budget is spent). Freshness violations are *never*
    /// transient — a stale root is a rollback/fork event the RPMB
    /// protocol exists to make permanent and loud. TEE errors delegate.
    fn is_transient(&self) -> bool {
        match self {
            StorageError::DeviceIo(_) | StorageError::IntegrityViolation(_) => true,
            StorageError::Tee(e) => e.is_transient(),
            // A torn WAL tail is a *crash artifact*, not a flaky bus:
            // retrying the append would duplicate the partial frame. The
            // recovery path, not the retry loop, owns these.
            StorageError::PageOutOfRange(_)
            | StorageError::FreshnessViolation(_)
            | StorageError::WalTorn(_)
            | StorageError::WalCorrupt(_)
            | StorageError::BadBufferSize { .. } => false,
        }
    }
}

impl std::error::Error for StorageError {}

impl From<ironsafe_tee::TeeError> for StorageError {
    fn from(e: ironsafe_tee::TeeError) -> Self {
        StorageError::Tee(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, StorageError>;
