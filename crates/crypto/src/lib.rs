//! # ironsafe-crypto
//!
//! From-scratch cryptographic primitives used throughout IronSafe.
//!
//! The paper's implementation leans on OpenSSL (via SQLCipher) for page
//! encryption and on vendor-provided attestation keys. To keep this
//! reproduction self-contained, every primitive the system needs is
//! implemented here:
//!
//! * [`sha256`] — SHA-256 (FIPS 180-4).
//! * [`sha512`] / [`hmac512`] — SHA-512 and HMAC-SHA512; the paper's page
//!   MACs are HMAC-SHA512 (via SQLCipher), which the page codec stores
//!   truncated to 32 bytes.
//! * [`hmac`] — HMAC-SHA256 (RFC 2104) used for Merkle nodes and
//!   RPMB authentication.
//! * [`hkdf`] — HKDF-SHA256 (RFC 5869) used to derive per-purpose keys from
//!   the hardware-unique key and session secrets.
//! * [`aes`] — AES-128 block cipher with [`modes`] CTR and CBC, used for
//!   page encryption (CBC + per-page IV, mirroring SQLCipher) and channel
//!   encryption (CTR).
//! * [`bignum`] / [`group`] / [`schnorr`] — a little-endian big-unsigned
//!   integer with Montgomery multiplication, classic MODP groups, and
//!   Schnorr signatures used for attestation quotes and certificate chains.
//! * [`cert`] — a minimal X.509-like certificate chain model rooted in a
//!   manufacturer key (the TrustZone ROTPK) or an attestation service key.
//!
//! None of this code is intended to resist side channels on real silicon —
//! it is a faithful, correct software model for a simulated platform — but
//! the algorithms themselves are the real ones, verified against published
//! test vectors in the unit tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod bignum;
pub mod cert;
pub mod ct;
pub mod group;
pub mod hkdf;
pub mod hmac;
pub mod hmac512;
pub mod modes;
pub mod schnorr;
pub mod sha256;
pub mod sha512;

pub use aes::Aes128;
pub use bignum::BigUint;
pub use cert::{Certificate, CertificateChain, SubjectInfo};
pub use ct::ct_eq;
pub use group::Group;
pub use hkdf::hkdf_sha256;
pub use hmac::HmacSha256;
pub use hmac512::HmacSha512;
pub use schnorr::{KeyPair, PublicKey, SecretKey, Signature};
pub use sha256::Sha256;
pub use sha512::Sha512;

/// Errors produced by cryptographic operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A MAC or signature failed verification.
    VerificationFailed,
    /// Ciphertext was malformed (wrong length, missing IV, bad padding...).
    MalformedCiphertext(&'static str),
    /// A key had the wrong length or was otherwise unusable.
    InvalidKey(&'static str),
    /// A certificate chain failed validation.
    InvalidCertificate(&'static str),
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoError::VerificationFailed => write!(f, "verification failed"),
            CryptoError::MalformedCiphertext(m) => write!(f, "malformed ciphertext: {m}"),
            CryptoError::InvalidKey(m) => write!(f, "invalid key: {m}"),
            CryptoError::InvalidCertificate(m) => write!(f, "invalid certificate: {m}"),
        }
    }
}

impl std::error::Error for CryptoError {}

/// Convenience alias for fallible crypto operations.
pub type Result<T> = std::result::Result<T, CryptoError>;
