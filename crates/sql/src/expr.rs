//! Expression evaluation against a row.
//!
//! Two evaluators share one set of semantic helpers:
//!
//! * [`eval`] walks the parsed [`Expr`] tree, resolving column names
//!   against the [`Schema`] on every row — simple, and fine for the
//!   volcano operators.
//! * [`bind`] + [`eval_bound`] split that work: binding resolves every
//!   column reference to its row index **once per scan**, so per-row
//!   evaluation skips name resolution (case folding plus a linear
//!   column search) entirely. The morsel workers use this path.
//!
//! All operator semantics (three-valued logic, arithmetic promotion,
//! built-in functions, `LIKE`) live in shared helpers, so the two
//! evaluators cannot drift apart.

use crate::ast::{BinOp, Expr, UnaryOp};
use crate::schema::{Row, Schema};
use crate::value::Value;
use crate::{Result, SqlError};
use std::cmp::Ordering;

/// Evaluate `expr` against `row` described by `schema`.
///
/// Aggregate calls are *not* valid here — the aggregation operator
/// replaces them with computed columns before evaluation.
pub fn eval(expr: &Expr, schema: &Schema, row: &Row) -> Result<Value> {
    let ev = |e: &Expr| eval(e, schema, row);
    match expr {
        Expr::Column(name) => {
            let idx = schema.resolve(name)?;
            Ok(row[idx].clone())
        }
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Unary { op, expr } => unary_value(*op, ev(expr)?),
        Expr::Binary { op, left, right } => eval_binary_with(*op, &**left, &**right, &ev),
        Expr::Between { expr, low, high, negated } => {
            Ok(between_values(ev(expr)?, ev(low)?, ev(high)?, *negated))
        }
        Expr::InList { expr, list, negated } => in_list_with(ev(expr)?, list, *negated, &ev),
        Expr::Like { expr, pattern, negated } => like_value(ev(expr)?, pattern, *negated),
        Expr::IsNull { expr, negated } => Ok(Value::Int((ev(expr)?.is_null() ^ negated) as i64)),
        Expr::Case { when_then, else_expr } => case_with(when_then, else_expr.as_deref(), &ev),
        Expr::Func { name, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(ev(a)?);
            }
            eval_func(name, &vals)
        }
        Expr::Agg { .. } => Err(SqlError::Eval("aggregate outside aggregation context".into())),
    }
}

/// An [`Expr`] with every column reference pre-resolved to its row
/// index. Built by [`bind`], evaluated by [`eval_bound`].
#[derive(Debug, Clone)]
pub enum BoundExpr {
    /// Column reference, resolved to a row index.
    Col(usize),
    /// Literal value.
    Literal(Value),
    /// Unary operator application.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        expr: Box<BoundExpr>,
    },
    /// Binary operator application.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        left: Box<BoundExpr>,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Lower bound (inclusive).
        low: Box<BoundExpr>,
        /// Upper bound (inclusive).
        high: Box<BoundExpr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr [NOT] IN (list…)`.
    InList {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Candidate values.
        list: Vec<BoundExpr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern`.
    Like {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// The pattern (`%`/`_` wildcards).
        pattern: String,
        /// True for `NOT LIKE`.
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `CASE WHEN … THEN … [ELSE …] END`.
    Case {
        /// `(condition, result)` arms, tried in order.
        when_then: Vec<(BoundExpr, BoundExpr)>,
        /// `ELSE` result; `NULL` when absent.
        else_expr: Option<Box<BoundExpr>>,
    },
    /// Built-in scalar function call.
    Func {
        /// Function name (upper-case).
        name: String,
        /// Argument expressions.
        args: Vec<BoundExpr>,
    },
}

/// Resolve every column reference in `expr` against `schema`, producing
/// a [`BoundExpr`] that evaluates without per-row name lookups.
///
/// Errors on unknown or ambiguous columns and on aggregate calls — the
/// same conditions [`eval`] would report, just surfaced at bind time.
pub fn bind(expr: &Expr, schema: &Schema) -> Result<BoundExpr> {
    Ok(match expr {
        Expr::Column(name) => BoundExpr::Col(schema.resolve(name)?),
        Expr::Literal(v) => BoundExpr::Literal(v.clone()),
        Expr::Unary { op, expr } => {
            BoundExpr::Unary { op: *op, expr: Box::new(bind(expr, schema)?) }
        }
        Expr::Binary { op, left, right } => BoundExpr::Binary {
            op: *op,
            left: Box::new(bind(left, schema)?),
            right: Box::new(bind(right, schema)?),
        },
        Expr::Between { expr, low, high, negated } => BoundExpr::Between {
            expr: Box::new(bind(expr, schema)?),
            low: Box::new(bind(low, schema)?),
            high: Box::new(bind(high, schema)?),
            negated: *negated,
        },
        Expr::InList { expr, list, negated } => BoundExpr::InList {
            expr: Box::new(bind(expr, schema)?),
            list: list.iter().map(|e| bind(e, schema)).collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Like { expr, pattern, negated } => BoundExpr::Like {
            expr: Box::new(bind(expr, schema)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => {
            BoundExpr::IsNull { expr: Box::new(bind(expr, schema)?), negated: *negated }
        }
        Expr::Case { when_then, else_expr } => BoundExpr::Case {
            when_then: when_then
                .iter()
                .map(|(c, v)| Ok((bind(c, schema)?, bind(v, schema)?)))
                .collect::<Result<_>>()?,
            else_expr: match else_expr {
                Some(e) => Some(Box::new(bind(e, schema)?)),
                None => None,
            },
        },
        Expr::Func { name, args } => BoundExpr::Func {
            name: name.clone(),
            args: args.iter().map(|a| bind(a, schema)).collect::<Result<_>>()?,
        },
        Expr::Agg { .. } => {
            return Err(SqlError::Eval("aggregate outside aggregation context".into()))
        }
    })
}

/// Evaluate a [`BoundExpr`] against `row`. Semantically identical to
/// [`eval`] on the expression it was bound from (shared helpers), minus
/// the per-row column-name resolution.
pub fn eval_bound(expr: &BoundExpr, row: &Row) -> Result<Value> {
    let ev = |e: &BoundExpr| eval_bound(e, row);
    match expr {
        BoundExpr::Col(idx) => Ok(row[*idx].clone()),
        BoundExpr::Literal(v) => Ok(v.clone()),
        BoundExpr::Unary { op, expr } => unary_value(*op, ev(expr)?),
        BoundExpr::Binary { op, left, right } => eval_binary_with(*op, &**left, &**right, &ev),
        BoundExpr::Between { expr, low, high, negated } => {
            Ok(between_values(ev(expr)?, ev(low)?, ev(high)?, *negated))
        }
        BoundExpr::InList { expr, list, negated } => in_list_with(ev(expr)?, list, *negated, &ev),
        BoundExpr::Like { expr, pattern, negated } => like_value(ev(expr)?, pattern, *negated),
        BoundExpr::IsNull { expr, negated } => {
            Ok(Value::Int((ev(expr)?.is_null() ^ negated) as i64))
        }
        BoundExpr::Case { when_then, else_expr } => {
            case_with(when_then, else_expr.as_deref(), &ev)
        }
        BoundExpr::Func { name, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(ev(a)?);
            }
            eval_func(name, &vals)
        }
    }
}

/// Apply a unary operator to an already-evaluated operand.
fn unary_value(op: UnaryOp, v: Value) -> Result<Value> {
    match op {
        UnaryOp::Neg => match v {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(SqlError::Eval(format!("cannot negate {other:?}"))),
        },
        UnaryOp::Not => {
            if v.is_null() {
                Ok(Value::Null)
            } else {
                Ok(Value::Int(!v.is_truthy() as i64))
            }
        }
    }
}

/// Binary operator over lazily-evaluated operands — `AND`/`OR` apply SQL
/// three-valued logic with short-circuiting; everything else evaluates
/// both sides and defers to [`binary_values`]. Generic over the node
/// type so [`eval`] and [`eval_bound`] share one implementation.
fn eval_binary_with<E>(
    op: BinOp,
    left: &E,
    right: &E,
    ev: &impl Fn(&E) -> Result<Value>,
) -> Result<Value> {
    match op {
        BinOp::And => {
            let l = ev(left)?;
            if !l.is_null() && !l.is_truthy() {
                return Ok(Value::Int(0));
            }
            let r = ev(right)?;
            if !r.is_null() && !r.is_truthy() {
                return Ok(Value::Int(0));
            }
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Int(1))
        }
        BinOp::Or => {
            let l = ev(left)?;
            if !l.is_null() && l.is_truthy() {
                return Ok(Value::Int(1));
            }
            let r = ev(right)?;
            if !r.is_null() && r.is_truthy() {
                return Ok(Value::Int(1));
            }
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Int(0))
        }
        _ => binary_values(op, ev(left)?, ev(right)?),
    }
}

/// Non-logical binary operator over already-evaluated operands.
fn binary_values(op: BinOp, l: Value, r: Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => arith(op, &l, &r),
        BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
            let ord = l
                .compare(&r)
                .ok_or_else(|| SqlError::Eval(format!("cannot compare {l:?} and {r:?}")))?;
            Ok(Value::Int(cmp_holds(op, ord) as i64))
        }
        BinOp::And | BinOp::Or => unreachable!("short-circuited by eval_binary_with"),
    }
}

/// Does comparison operator `op` hold for ordering `ord`? Shared by the
/// row evaluators ([`binary_values`]) and the vectorized comparison
/// kernels so the two cannot disagree.
fn cmp_holds(op: BinOp, ord: Ordering) -> bool {
    match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::NotEq => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::LtEq => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::GtEq => ord != Ordering::Less,
        _ => unreachable!("not a comparison operator"),
    }
}

/// `BETWEEN` over already-evaluated operands (NULL if any side is
/// incomparable).
fn between_values(v: Value, lo: Value, hi: Value, negated: bool) -> Value {
    match (v.compare(&lo), v.compare(&hi)) {
        (Some(a), Some(b)) => {
            let inside = a != Ordering::Less && b != Ordering::Greater;
            Value::Int((inside ^ negated) as i64)
        }
        _ => Value::Null,
    }
}

/// `IN (list…)` with short-circuit on the first match; generic over the
/// node type for the same reason as [`eval_binary_with`].
fn in_list_with<E>(
    v: Value,
    list: &[E],
    negated: bool,
    ev: &impl Fn(&E) -> Result<Value>,
) -> Result<Value> {
    if v.is_null() {
        return Ok(Value::Null);
    }
    let mut found = false;
    for item in list {
        let iv = ev(item)?;
        if v.compare(&iv) == Some(Ordering::Equal) {
            found = true;
            break;
        }
    }
    Ok(Value::Int((found ^ negated) as i64))
}

/// `LIKE` over an already-evaluated operand.
fn like_value(v: Value, pattern: &str, negated: bool) -> Result<Value> {
    match v {
        Value::Null => Ok(Value::Null),
        Value::Text(s) => Ok(Value::Int((like_match(pattern, &s) ^ negated) as i64)),
        other => Err(SqlError::Eval(format!("LIKE needs text, got {other:?}"))),
    }
}

/// `CASE` with lazily-evaluated arms.
fn case_with<E>(
    when_then: &[(E, E)],
    else_expr: Option<&E>,
    ev: &impl Fn(&E) -> Result<Value>,
) -> Result<Value> {
    for (cond, val) in when_then {
        if ev(cond)?.is_truthy() {
            return ev(val);
        }
    }
    match else_expr {
        Some(e) => ev(e),
        None => Ok(Value::Null),
    }
}

fn arith(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    // Int op Int stays Int (except division, which is exact only when even).
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return match op {
            BinOp::Add => Ok(Value::Int(a.wrapping_add(*b))),
            BinOp::Sub => Ok(Value::Int(a.wrapping_sub(*b))),
            BinOp::Mul => Ok(Value::Int(a.wrapping_mul(*b))),
            BinOp::Div => {
                if *b == 0 {
                    Err(SqlError::Eval("division by zero".into()))
                } else if a % b == 0 {
                    Ok(Value::Int(a / b))
                } else {
                    Ok(Value::Float(*a as f64 / *b as f64))
                }
            }
            BinOp::Mod => {
                if *b == 0 {
                    Err(SqlError::Eval("modulo by zero".into()))
                } else {
                    Ok(Value::Int(a % b))
                }
            }
            _ => unreachable!(),
        };
    }
    let a = l.as_f64()?;
    let b = r.as_f64()?;
    match op {
        BinOp::Add => Ok(Value::Float(a + b)),
        BinOp::Sub => Ok(Value::Float(a - b)),
        BinOp::Mul => Ok(Value::Float(a * b)),
        BinOp::Div => {
            if b == 0.0 {
                Err(SqlError::Eval("division by zero".into()))
            } else {
                Ok(Value::Float(a / b))
            }
        }
        BinOp::Mod => {
            if b == 0.0 {
                Err(SqlError::Eval("modulo by zero".into()))
            } else {
                Ok(Value::Float(a % b))
            }
        }
        _ => unreachable!(),
    }
}

/// Evaluate a built-in scalar function over already-evaluated arguments.
fn eval_func(name: &str, args: &[Value]) -> Result<Value> {
    // NULL in, NULL out for every built-in.
    if args.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }
    match name {
        "SUBSTR" => {
            // SUBSTR(s, start [, len]) — 1-based start, char-wise.
            if args.len() != 2 && args.len() != 3 {
                return Err(SqlError::Eval("SUBSTR takes 2 or 3 arguments".into()));
            }
            let s = args[0].as_str()?;
            let start = args[1].as_i64()?.max(1) as usize - 1;
            let chars: Vec<char> = s.chars().collect();
            let end = match args.get(2) {
                Some(l) => (start + l.as_i64()?.max(0) as usize).min(chars.len()),
                None => chars.len(),
            };
            let start = start.min(chars.len());
            Ok(Value::Text(chars[start..end].iter().collect()))
        }
        "LENGTH" => {
            if args.len() != 1 {
                return Err(SqlError::Eval("LENGTH takes 1 argument".into()));
            }
            Ok(Value::Int(args[0].as_str()?.chars().count() as i64))
        }
        "YEAR" => {
            // YEAR('YYYY-MM-DD') — the four leading digits as an integer.
            if args.len() != 1 {
                return Err(SqlError::Eval("YEAR takes 1 argument".into()));
            }
            let s = args[0].as_str()?;
            let y: i64 = s
                .get(..4)
                .and_then(|p| p.parse().ok())
                .ok_or_else(|| SqlError::Eval(format!("YEAR: `{s}` is not an ISO date")))?;
            Ok(Value::Int(y))
        }
        "ABS" => {
            if args.len() != 1 {
                return Err(SqlError::Eval("ABS takes 1 argument".into()));
            }
            match &args[0] {
                Value::Int(i) => Ok(Value::Int(i.abs())),
                v => Ok(Value::Float(v.as_f64()?.abs())),
            }
        }
        "ROUND" => {
            // ROUND(x [, digits])
            if args.is_empty() || args.len() > 2 {
                return Err(SqlError::Eval("ROUND takes 1 or 2 arguments".into()));
            }
            let x = args[0].as_f64()?;
            let digits = match args.get(1) {
                Some(d) => d.as_i64()?,
                None => 0,
            };
            let m = 10f64.powi(digits as i32);
            Ok(Value::Float((x * m).round() / m))
        }
        other => Err(SqlError::Eval(format!("unknown function `{other}`"))),
    }
}

/// SQL `LIKE` matcher: `%` matches any run, `_` matches one character.
pub fn like_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    like_rec(&p, &t)
}

fn like_rec(p: &[char], t: &[char]) -> bool {
    match p.first() {
        None => t.is_empty(),
        Some('%') => {
            // Collapse consecutive %.
            let rest = &p[1..];
            if rest.is_empty() {
                return true;
            }
            for skip in 0..=t.len() {
                if like_rec(rest, &t[skip..]) {
                    return true;
                }
            }
            false
        }
        Some('_') => !t.is_empty() && like_rec(&p[1..], &t[1..]),
        Some(c) => t.first() == Some(c) && like_rec(&p[1..], &t[1..]),
    }
}

// ---------------------------------------------------------------------------
// Vectorized evaluation over column batches.
//
// The third evaluator: [`eval_vec`] / [`eval_truth_vec`] run a
// [`BoundExpr`] over a whole [`ColumnBatch`] at a time, visiting only
// the lanes an `active` bitmap keeps live. Comparisons, BETWEEN, LIKE
// and IS NULL read column lanes in place (no `String` clone per text
// cell — the big win over `eval_bound`'s `row[idx].clone()`); AND/OR
// propagate shrinking active sets so the right-hand side is only
// evaluated where the scalar evaluator would have evaluated it,
// reproducing short-circuit *error* semantics exactly; every remaining
// node falls back to per-lane [`eval_bound`] on a materialized scratch
// row. Semantic helpers ([`cmp_holds`], [`unary_value`], [`arith`],
// `LaneVal::compare` ≡ `Value::compare`) are shared with the row
// evaluators, so all three agree value-for-value.

use crate::batch::{ColumnBatch, ColumnData, LaneVal};

/// Truth-vector byte: predicate is false for the lane.
pub const T_FALSE: u8 = 0;
/// Truth-vector byte: predicate is true for the lane.
pub const T_TRUE: u8 = 1;
/// Truth-vector byte: predicate is NULL (unknown) for the lane.
pub const T_NULL: u8 = 2;

fn truth_of(v: &Value) -> u8 {
    if v.is_null() {
        T_NULL
    } else if v.is_truthy() {
        T_TRUE
    } else {
        T_FALSE
    }
}

/// A resolved operand of a vectorized kernel: a borrowed column, a
/// broadcast constant, or a computed sub-expression vector.
enum VecOp<'a> {
    Col(&'a ColumnData),
    Const(Value),
    Owned(Vec<Value>),
}

impl<'a> VecOp<'a> {
    fn resolve(e: &BoundExpr, batch: &'a ColumnBatch, active: &[bool]) -> Result<VecOp<'a>> {
        Ok(match e {
            BoundExpr::Col(i) => VecOp::Col(batch.column(*i)),
            BoundExpr::Literal(v) => VecOp::Const(v.clone()),
            _ => VecOp::Owned(eval_vec(e, batch, active)?),
        })
    }

    fn lane(&self, i: usize) -> LaneVal<'_> {
        match self {
            VecOp::Col(c) => c.lane(i),
            VecOp::Const(v) => LaneVal::of(v),
            VecOp::Owned(v) => LaneVal::of(&v[i]),
        }
    }
}

fn incomparable(a: LaneVal<'_>, b: LaneVal<'_>) -> SqlError {
    SqlError::Eval(format!("cannot compare {:?} and {:?}", a.to_value(), b.to_value()))
}

/// Evaluate `e` as a predicate over `batch`, producing one truth byte
/// ([`T_FALSE`]/[`T_TRUE`]/[`T_NULL`]) per lane. Only lanes with
/// `active[i]` set are evaluated (inactive lanes report [`T_FALSE`] and
/// can never raise an error) — exactly the rows the scalar filter would
/// have reached.
pub fn eval_truth_vec(e: &BoundExpr, batch: &ColumnBatch, active: &[bool]) -> Result<Vec<u8>> {
    let n = batch.len();
    debug_assert_eq!(active.len(), n);
    match e {
        BoundExpr::Binary { op: BinOp::And, left, right } => {
            let l = eval_truth_vec(left, batch, active)?;
            // The scalar evaluator skips the rhs only when the lhs is
            // known-false; replicate that with a shrunk active set so
            // rhs errors surface on exactly the same lanes.
            let rhs_active: Vec<bool> =
                (0..n).map(|i| active[i] && l[i] != T_FALSE).collect();
            let r = eval_truth_vec(right, batch, &rhs_active)?;
            let mut out = vec![T_FALSE; n];
            for i in 0..n {
                if !active[i] {
                    continue;
                }
                out[i] = if l[i] == T_FALSE || r[i] == T_FALSE {
                    T_FALSE
                } else if l[i] == T_NULL || r[i] == T_NULL {
                    T_NULL
                } else {
                    T_TRUE
                };
            }
            Ok(out)
        }
        BoundExpr::Binary { op: BinOp::Or, left, right } => {
            let l = eval_truth_vec(left, batch, active)?;
            let rhs_active: Vec<bool> =
                (0..n).map(|i| active[i] && l[i] != T_TRUE).collect();
            let r = eval_truth_vec(right, batch, &rhs_active)?;
            let mut out = vec![T_FALSE; n];
            for i in 0..n {
                if !active[i] {
                    continue;
                }
                out[i] = if l[i] == T_TRUE || r[i] == T_TRUE {
                    T_TRUE
                } else if l[i] == T_NULL || r[i] == T_NULL {
                    T_NULL
                } else {
                    T_FALSE
                };
            }
            Ok(out)
        }
        BoundExpr::Binary {
            op:
                op @ (BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq),
            left,
            right,
        } => {
            let l = VecOp::resolve(left, batch, active)?;
            let r = VecOp::resolve(right, batch, active)?;
            let mut out = vec![T_FALSE; n];
            for i in 0..n {
                if !active[i] {
                    continue;
                }
                let (a, b) = (l.lane(i), r.lane(i));
                out[i] = if a.is_null() || b.is_null() {
                    T_NULL
                } else {
                    let ord = a.compare(b).ok_or_else(|| incomparable(a, b))?;
                    if cmp_holds(*op, ord) {
                        T_TRUE
                    } else {
                        T_FALSE
                    }
                };
            }
            Ok(out)
        }
        BoundExpr::Between { expr, low, high, negated } => {
            let v = VecOp::resolve(expr, batch, active)?;
            let lo = VecOp::resolve(low, batch, active)?;
            let hi = VecOp::resolve(high, batch, active)?;
            let mut out = vec![T_FALSE; n];
            for i in 0..n {
                if !active[i] {
                    continue;
                }
                let a = v.lane(i);
                // `between_values` semantics: NULL (never an error) when
                // either comparison is undefined.
                out[i] = match (a.compare(lo.lane(i)), a.compare(hi.lane(i))) {
                    (Some(x), Some(y)) => {
                        let inside = x != Ordering::Less && y != Ordering::Greater;
                        if inside ^ negated {
                            T_TRUE
                        } else {
                            T_FALSE
                        }
                    }
                    _ => T_NULL,
                };
            }
            Ok(out)
        }
        BoundExpr::IsNull { expr, negated } => {
            let v = VecOp::resolve(expr, batch, active)?;
            let mut out = vec![T_FALSE; n];
            for i in 0..n {
                if active[i] && (v.lane(i).is_null() ^ negated) {
                    out[i] = T_TRUE;
                }
            }
            Ok(out)
        }
        BoundExpr::Like { expr, pattern, negated } => {
            let v = VecOp::resolve(expr, batch, active)?;
            let mut out = vec![T_FALSE; n];
            for i in 0..n {
                if !active[i] {
                    continue;
                }
                out[i] = match v.lane(i) {
                    LaneVal::Null => T_NULL,
                    LaneVal::Str(s) => {
                        if like_match(pattern, s) ^ negated {
                            T_TRUE
                        } else {
                            T_FALSE
                        }
                    }
                    other => {
                        return Err(SqlError::Eval(format!(
                            "LIKE needs text, got {:?}",
                            other.to_value()
                        )))
                    }
                };
            }
            Ok(out)
        }
        _ => {
            let vals = eval_vec(e, batch, active)?;
            Ok((0..n)
                .map(|i| if active[i] { truth_of(&vals[i]) } else { T_FALSE })
                .collect())
        }
    }
}

/// Evaluate `e` to one [`Value`] per lane of `batch`, visiting only
/// `active` lanes (inactive lanes hold unspecified filler and must not
/// be read). Lane `i`'s value — and whether evaluation errors — is
/// identical to `eval_bound(e, &row_i)`.
pub fn eval_vec(e: &BoundExpr, batch: &ColumnBatch, active: &[bool]) -> Result<Vec<Value>> {
    let n = batch.len();
    debug_assert_eq!(active.len(), n);
    match e {
        BoundExpr::Col(idx) => Ok((0..n)
            .map(|i| if active[i] { batch.value_at(*idx, i) } else { Value::Null })
            .collect()),
        BoundExpr::Literal(v) => Ok(vec![v.clone(); n]),
        BoundExpr::Unary { op, expr } => {
            let mut vals = eval_vec(expr, batch, active)?;
            for (i, v) in vals.iter_mut().enumerate() {
                if active[i] {
                    *v = unary_value(*op, std::mem::replace(v, Value::Null))?;
                }
            }
            Ok(vals)
        }
        BoundExpr::Binary {
            op: op @ (BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod),
            left,
            right,
        } => {
            let l = VecOp::resolve(left, batch, active)?;
            let r = VecOp::resolve(right, batch, active)?;
            let mut out = vec![Value::Null; n];
            for (i, slot) in out.iter_mut().enumerate() {
                if !active[i] {
                    continue;
                }
                let (a, b) = (l.lane(i), r.lane(i));
                if !a.is_null() && !b.is_null() {
                    // Int/Float lanes convert without allocating; text
                    // reaches `arith` only to produce its type error.
                    *slot = arith(*op, &a.to_value(), &b.to_value())?;
                }
            }
            Ok(out)
        }
        // Predicate forms produce Int(0/1)/NULL — route through the
        // truth kernel and widen.
        BoundExpr::Binary { .. }
        | BoundExpr::Between { .. }
        | BoundExpr::IsNull { .. }
        | BoundExpr::Like { .. } => {
            let truth = eval_truth_vec(e, batch, active)?;
            Ok(truth
                .into_iter()
                .map(|t| if t == T_NULL { Value::Null } else { Value::Int(t as i64) })
                .collect())
        }
        // Lazy-arm and list forms keep scalar evaluation order: fall
        // back to per-lane `eval_bound` on a materialized scratch row.
        BoundExpr::InList { .. } | BoundExpr::Case { .. } | BoundExpr::Func { .. } => {
            let mut out = vec![Value::Null; n];
            let mut row = Row::new();
            for (i, slot) in out.iter_mut().enumerate() {
                if active[i] {
                    batch.read_row(i, &mut row);
                    *slot = eval_bound(e, &row)?;
                }
            }
            Ok(out)
        }
    }
}

/// Apply predicate `pred` to `batch`, clearing every selection lane the
/// predicate does not evaluate to true on (NULL drops the row, matching
/// the scalar filter's `is_truthy` test).
pub fn filter_vec(pred: &BoundExpr, batch: &ColumnBatch, sel: &mut [bool]) -> Result<()> {
    let truth = eval_truth_vec(pred, batch, sel)?;
    for (s, t) in sel.iter_mut().zip(truth) {
        *s = *s && t == T_TRUE;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expression;
    use crate::schema::Column;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Float),
            Column::new("s", DataType::Text),
            Column::new("n", DataType::Int),
        ])
    }

    fn row() -> Row {
        vec![Value::Int(10), Value::Float(2.5), Value::Text("hello".into()), Value::Null]
    }

    fn run(src: &str) -> Value {
        eval(&parse_expression(src).unwrap(), &schema(), &row()).unwrap()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(run("a + 5"), Value::Int(15));
        assert_eq!(run("a * b"), Value::Float(25.0));
        assert_eq!(run("a / 4"), Value::Float(2.5));
        assert_eq!(run("a / 5"), Value::Int(2));
        assert_eq!(run("a % 3"), Value::Int(1));
        assert_eq!(run("-a"), Value::Int(-10));
    }

    #[test]
    fn division_by_zero_errors() {
        let e = parse_expression("a / 0").unwrap();
        assert!(eval(&e, &schema(), &row()).is_err());
    }

    #[test]
    fn comparisons() {
        assert_eq!(run("a = 10"), Value::Int(1));
        assert_eq!(run("a <> 10"), Value::Int(0));
        assert_eq!(run("b < 3"), Value::Int(1));
        assert_eq!(run("s = 'hello'"), Value::Int(1));
        assert_eq!(run("s < 'world'"), Value::Int(1));
    }

    #[test]
    fn null_propagation() {
        assert!(run("n + 1").is_null());
        assert!(run("n = n").is_null());
        assert!(run("NOT n").is_null());
    }

    #[test]
    fn three_valued_logic() {
        // NULL AND FALSE = FALSE; NULL AND TRUE = NULL.
        assert_eq!(run("n = 1 AND a = 99"), Value::Int(0));
        assert!(run("n = 1 AND a = 10").is_null());
        // NULL OR TRUE = TRUE; NULL OR FALSE = NULL.
        assert_eq!(run("n = 1 OR a = 10"), Value::Int(1));
        assert!(run("n = 1 OR a = 99").is_null());
    }

    #[test]
    fn between_in() {
        assert_eq!(run("a BETWEEN 5 AND 15"), Value::Int(1));
        assert_eq!(run("a BETWEEN 11 AND 15"), Value::Int(0));
        assert_eq!(run("a NOT BETWEEN 11 AND 15"), Value::Int(1));
        assert_eq!(run("a IN (1, 10, 100)"), Value::Int(1));
        assert_eq!(run("a NOT IN (1, 10, 100)"), Value::Int(0));
        assert_eq!(run("s IN ('x', 'hello')"), Value::Int(1));
    }

    #[test]
    fn is_null_checks() {
        assert_eq!(run("n IS NULL"), Value::Int(1));
        assert_eq!(run("n IS NOT NULL"), Value::Int(0));
        assert_eq!(run("a IS NULL"), Value::Int(0));
    }

    #[test]
    fn case_expr() {
        assert_eq!(run("CASE WHEN a = 10 THEN 'ten' ELSE 'other' END"), Value::Text("ten".into()));
        assert_eq!(run("CASE WHEN a = 11 THEN 'x' END"), Value::Null);
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "hello"));
        assert!(like_match("h%", "hello"));
        assert!(like_match("%llo", "hello"));
        assert!(like_match("%ell%", "hello"));
        assert!(like_match("h_llo", "hello"));
        assert!(like_match("%", ""));
        assert!(!like_match("h_llo", "hllo"));
        assert!(!like_match("hello", "hell"));
        assert!(!like_match("", "x"));
        assert!(like_match("%%x%%", "aaxbb"));
    }

    #[test]
    fn like_in_sql() {
        assert_eq!(run("s LIKE 'hel%'"), Value::Int(1));
        assert_eq!(run("s NOT LIKE '%z%'"), Value::Int(1));
    }

    #[test]
    fn aggregate_outside_context_errors() {
        let e = parse_expression("SUM(a)").unwrap();
        assert!(eval(&e, &schema(), &row()).is_err());
    }

    #[test]
    fn date_comparison_as_text() {
        let schema = Schema::new(vec![Column::new("d", DataType::Text)]);
        let row = vec![Value::Text("1995-06-17".into())];
        let e = parse_expression("d BETWEEN '1995-01-01' AND '1995-12-31'").unwrap();
        assert_eq!(eval(&e, &schema, &row).unwrap(), Value::Int(1));
    }

    #[test]
    fn bound_eval_matches_tree_eval_on_every_form() {
        // One expression per variant family, evaluated both ways over
        // rows covering NULLs, negatives and text.
        let exprs = [
            "a + 5 * b - 2",
            "-a % 3",
            "a / 4",
            "n + 1",
            "NOT (a = 10)",
            "n = 1 AND a = 10",
            "n = 1 OR a = 99",
            "a BETWEEN 5 AND 15",
            "n BETWEEN 1 AND 2",
            "a NOT IN (1, 10, 100)",
            "n IN (1, 2)",
            "s LIKE 'hel%'",
            "s NOT LIKE '%z%'",
            "n IS NULL",
            "s IS NOT NULL",
            "CASE WHEN a > 5 THEN s ELSE 'small' END",
            "CASE WHEN a > 99 THEN 'big' END",
            "SUBSTR(s, 2, 3)",
            "LENGTH(s)",
            "ABS(0 - a)",
            "ROUND(b * 1.337, 2)",
        ];
        let schema = schema();
        let rows = [
            row(),
            vec![Value::Int(-3), Value::Float(0.0), Value::Text("zz".into()), Value::Int(7)],
            vec![Value::Null, Value::Null, Value::Null, Value::Null],
        ];
        for src in exprs {
            let e = parse_expression(src).unwrap();
            let b = bind(&e, &schema).unwrap();
            for r in &rows {
                let tree = eval(&e, &schema, r);
                let bound = eval_bound(&b, r);
                match (tree, bound) {
                    (Ok(x), Ok(y)) => assert_eq!(x, y, "`{src}` diverged on {r:?}"),
                    (Err(_), Err(_)) => {}
                    (t, b) => panic!("`{src}` on {r:?}: tree {t:?} vs bound {b:?}"),
                }
            }
        }
    }

    #[test]
    fn bind_rejects_unknown_columns_and_aggregates() {
        let schema = schema();
        assert!(bind(&parse_expression("missing + 1").unwrap(), &schema).is_err());
        assert!(bind(&parse_expression("SUM(a)").unwrap(), &schema).is_err());
    }
}

#[cfg(test)]
mod func_tests {
    use super::*;
    use crate::parser::parse_expression;
    use crate::schema::{Column, Schema};
    use crate::value::DataType;

    fn run(src: &str) -> Value {
        let schema = Schema::new(vec![Column::new("d", DataType::Text), Column::new("x", DataType::Float)]);
        let row = vec![Value::Text("1995-06-17".into()), Value::Float(-2.7173)];
        eval(&parse_expression(src).unwrap(), &schema, &row).unwrap()
    }

    #[test]
    fn year_extracts_leading_digits() {
        assert_eq!(run("YEAR(d)"), Value::Int(1995));
    }

    #[test]
    fn substr_is_one_based_and_clamped() {
        assert_eq!(run("SUBSTR(d, 1, 4)"), Value::Text("1995".into()));
        assert_eq!(run("SUBSTR(d, 6, 2)"), Value::Text("06".into()));
        assert_eq!(run("SUBSTR(d, 9)"), Value::Text("17".into()));
        assert_eq!(run("SUBSTR(d, 100, 5)"), Value::Text(String::new()));
    }

    #[test]
    fn length_abs_round() {
        assert_eq!(run("LENGTH(d)"), Value::Int(10));
        assert_eq!(run("ABS(x)"), Value::Float(2.7173));
        assert_eq!(run("ROUND(x, 2)"), Value::Float(-2.72));
        assert_eq!(run("ROUND(x)"), Value::Float(-3.0));
        assert_eq!(run("ABS(0 - 5)"), Value::Int(5));
    }

    #[test]
    fn null_propagates_through_functions() {
        let schema = Schema::new(vec![Column::new("n", DataType::Text)]);
        let row = vec![Value::Null];
        let v = eval(&parse_expression("YEAR(n)").unwrap(), &schema, &row).unwrap();
        assert!(v.is_null());
    }

    #[test]
    fn unknown_function_rejected_at_parse() {
        // Unknown names parse as column refs and fail resolution later;
        // known-but-misused arities fail at eval.
        let schema = Schema::new(vec![Column::new("d", DataType::Text)]);
        let row = vec![Value::Text("x".into())];
        assert!(eval(&parse_expression("SUBSTR(d)").unwrap(), &schema, &row).is_err());
    }

    #[test]
    fn functions_inside_aggregates_via_db() {
        use crate::db::Database;
        use ironsafe_storage::pager::PlainPager;
        let mut db = Database::new(PlainPager::new());
        db.execute("CREATE TABLE t (d DATE, v FLOAT)").unwrap();
        db.execute("INSERT INTO t VALUES ('1995-01-01', 10.0), ('1995-06-01', 20.0), ('1996-01-01', 40.0)").unwrap();
        let r = db
            .execute("SELECT YEAR(d) AS y, SUM(v) FROM t GROUP BY YEAR(d) ORDER BY y")
            .unwrap();
        assert_eq!(r.rows().len(), 2);
        assert_eq!(r.rows()[0][0], Value::Int(1995));
        assert_eq!(r.rows()[0][1], Value::Float(30.0));
    }
}

#[cfg(test)]
mod vec_tests {
    use super::*;
    use crate::batch::ColumnBatch;
    use crate::parser::parse_expression;
    use crate::schema::{Column, Schema};
    use crate::value::{encode_value, DataType};
    use proptest::prelude::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Float),
            Column::new("s", DataType::Text),
            Column::new("n", DataType::Int),
        ])
    }

    /// Expressions covering every `BoundExpr` form, including ones that
    /// can error (division by zero, LIKE on non-text, incomparable
    /// types) on some rows.
    const EXPRS: &[&str] = &[
        "a + 5 * b - 2",
        "-a % 3",
        "a / 4",
        "a / n",
        "b * b",
        "n + 1",
        "NOT (a = 10)",
        "a = 10",
        "s <> 'hello'",
        "a < b OR s = 'zz'",
        "n = 1 AND a = 10",
        "n = 1 AND s = 'nope'",
        "n = 1 OR a = 99",
        "a > 0 AND 10 / a > 0",
        "a = 0 OR 10 / a > 0",
        "s = a",
        "a BETWEEN 5 AND 15",
        "b BETWEEN n AND 100",
        "s BETWEEN 'a' AND 'm'",
        "a NOT BETWEEN 11 AND 15",
        "a IN (1, 10, 100)",
        "s IN ('x', 'hello')",
        "n NOT IN (1, 2)",
        "s LIKE 'hel%'",
        "s NOT LIKE '%z%'",
        "b LIKE 'x%'",
        "n IS NULL",
        "s IS NOT NULL",
        "CASE WHEN a > 5 THEN s ELSE 'small' END",
        "CASE WHEN a > 99 THEN 'big' END",
        "SUBSTR(s, 2, 3)",
        "LENGTH(s)",
        "ABS(0 - a)",
        "ROUND(b * 1.337, 2)",
        "YEAR(s)",
    ];

    fn batch_of(rows: &[Row]) -> ColumnBatch {
        let mut payload = Vec::new();
        let mut batch = ColumnBatch::new(4);
        for row in rows {
            payload.clear();
            for v in row {
                encode_value(v, &mut payload);
            }
            let mut pos = 0;
            for c in 0..row.len() {
                let raw = crate::value::decode_value_raw(&payload, &mut pos).unwrap();
                batch.push_cell(c, raw);
            }
            batch.finish_row().unwrap();
        }
        batch
    }

    fn bits(v: &Value) -> Vec<u8> {
        let mut out = Vec::new();
        encode_value(v, &mut out);
        out
    }

    /// Core equivalence check: on every active lane, `eval_vec` must
    /// produce the bit-identical value `eval_bound` produces on the
    /// materialized row — and if any active lane errors under the
    /// scalar evaluator, the vectorized call must error too.
    fn assert_vec_matches_scalar(src: &str, rows: &[Row], active: &[bool]) {
        let bound = bind(&parse_expression(src).unwrap(), &schema()).unwrap();
        let batch = batch_of(rows);
        let scalar: Vec<Result<Value>> =
            rows.iter().map(|r| eval_bound(&bound, r)).collect();
        let scalar_err =
            scalar.iter().zip(active).any(|(r, a)| *a && r.is_err());
        match eval_vec(&bound, &batch, active) {
            Err(_) => assert!(
                scalar_err,
                "`{src}` errored vectorized but not scalar on {rows:?} ({active:?})"
            ),
            Ok(vals) => {
                assert!(
                    !scalar_err,
                    "`{src}` errored scalar but not vectorized on {rows:?} ({active:?})"
                );
                for (i, on) in active.iter().enumerate() {
                    if !on {
                        continue;
                    }
                    let want = scalar[i].as_ref().unwrap();
                    assert_eq!(
                        bits(&vals[i]),
                        bits(want),
                        "`{src}` lane {i}: vec {:?} vs scalar {want:?}",
                        vals[i]
                    );
                }
                // And the truth kernel must agree with scalar truthiness.
                if let Ok(truth) = eval_truth_vec(&bound, &batch, active) {
                    for (i, on) in active.iter().enumerate() {
                        if !on {
                            continue;
                        }
                        let want = truth_of(scalar[i].as_ref().unwrap());
                        assert_eq!(truth[i], want, "`{src}` truth lane {i}");
                    }
                }
            }
        }
    }

    #[test]
    fn eval_vec_matches_eval_bound_on_fixed_rows() {
        let rows: Vec<Row> = vec![
            vec![Value::Int(10), Value::Float(2.5), Value::Text("hello".into()), Value::Null],
            vec![Value::Int(-3), Value::Float(0.0), Value::Text("zz".into()), Value::Int(7)],
            vec![Value::Null, Value::Null, Value::Null, Value::Null],
            vec![Value::Int(0), Value::Float(-1.5), Value::Text("1995-06-17".into()), Value::Int(1)],
        ];
        let all = vec![true; rows.len()];
        for src in EXPRS {
            assert_vec_matches_scalar(src, &rows, &all);
        }
    }

    #[test]
    fn inactive_lanes_are_never_evaluated() {
        // Lane 1 divides by zero; masking it must mask the error, just
        // as the scalar filter never reaches a row upstream dropped.
        let rows: Vec<Row> = vec![
            vec![Value::Int(10), Value::Float(1.0), Value::Text("x".into()), Value::Int(2)],
            vec![Value::Int(5), Value::Float(1.0), Value::Text("x".into()), Value::Int(0)],
        ];
        let bound = bind(&parse_expression("a / n").unwrap(), &schema()).unwrap();
        let batch = batch_of(&rows);
        assert!(eval_vec(&bound, &batch, &[true, true]).is_err());
        let vals = eval_vec(&bound, &batch, &[true, false]).unwrap();
        assert_eq!(vals[0], Value::Int(5));
    }

    #[test]
    fn and_or_short_circuit_masks_rhs_errors() {
        // Scalar AND skips the rhs when the lhs is false — `a = 0 AND
        // 10 / a > 0` never divides by zero. The vectorized path must
        // shrink the rhs active set the same way.
        let rows: Vec<Row> = vec![
            vec![Value::Int(0), Value::Float(1.0), Value::Text("x".into()), Value::Int(1)],
            vec![Value::Int(2), Value::Float(1.0), Value::Text("x".into()), Value::Int(1)],
        ];
        let all = [true, true];
        assert_vec_matches_scalar("a = 0 AND 10 / a > 0", &rows, &all);
        assert_vec_matches_scalar("a <> 0 OR 10 / a > 0", &rows, &all);
    }

    #[test]
    fn filter_vec_matches_scalar_filter() {
        let rows: Vec<Row> = vec![
            vec![Value::Int(10), Value::Float(2.5), Value::Text("hello".into()), Value::Null],
            vec![Value::Int(4), Value::Float(9.0), Value::Text("world".into()), Value::Int(1)],
            vec![Value::Null, Value::Float(1.0), Value::Text("hell".into()), Value::Int(2)],
        ];
        let src = "a > 5 AND s LIKE 'hel%'";
        let bound = bind(&parse_expression(src).unwrap(), &schema()).unwrap();
        let batch = batch_of(&rows);
        let mut sel = vec![true; rows.len()];
        filter_vec(&bound, &batch, &mut sel).unwrap();
        let want: Vec<bool> =
            rows.iter().map(|r| eval_bound(&bound, r).unwrap().is_truthy()).collect();
        assert_eq!(sel, want);
    }

    fn value_strategy() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            (-20i64..20).prop_map(Value::Int),
            (-4i64..4).prop_map(|i| Value::Float(i as f64 * 0.5)),
            (0usize..7).prop_map(|i| {
                let words = ["", "a", "zz", "hel", "hello", "world", "1995-06-17"];
                Value::Text(words[i].to_string())
            }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// `eval_vec` ≡ `eval_bound` on arbitrary batches and
        /// selections, for every expression form.
        #[test]
        fn prop_eval_vec_equals_eval_bound(
            cells in proptest::collection::vec((value_strategy(), value_strategy(), value_strategy(), value_strategy()), 1..12),
            mask in proptest::collection::vec(any::<bool>(), 12),
        ) {
            let rows: Vec<Row> = cells
                .into_iter()
                .map(|(a, b, s, n)| vec![a, b, s, n])
                .collect();
            let active: Vec<bool> = (0..rows.len()).map(|i| mask[i]).collect();
            for src in EXPRS {
                assert_vec_matches_scalar(src, &rows, &active);
            }
        }
    }
}
