//! Merkle-tree benchmarks, including the arity ablation called out in
//! DESIGN.md: wider nodes trade fewer levels (shorter freshness paths)
//! for bigger per-node HMACs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ironsafe_storage::merkle::MerkleTree;

fn macs(n: usize) -> Vec<[u8; 32]> {
    (0..n).map(|i| [(i % 251) as u8; 32]).collect()
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("merkle_build");
    for n in [1_000usize, 10_000] {
        let leaves = macs(n);
        g.bench_with_input(BenchmarkId::new("bulk", n), &leaves, |b, leaves| {
            b.iter(|| MerkleTree::rebuild_from_macs([7; 32], 2, std::hint::black_box(leaves)))
        });
    }
    g.finish();
}

fn bench_verify_arity_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("merkle_verify_arity");
    let leaves = macs(10_000);
    for arity in [2usize, 4, 8, 16] {
        let mut tree = MerkleTree::rebuild_from_macs([7; 32], arity, &leaves);
        let root = tree.root().unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(arity), &arity, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 997) % 10_000;
                assert!(tree.verify(i, &leaves[i as usize], std::hint::black_box(&root)));
            })
        });
    }
    g.finish();
}

fn bench_verify_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("merkle_verify_batch");
    let leaves = macs(10_000);
    // 64 contiguous pages — one morsel-sized secure read.
    let ids: Vec<u64> = (1_024..1_088).collect();
    let entry_macs: Vec<[u8; 32]> = ids.iter().map(|&i| leaves[i as usize]).collect();
    for arity in [2usize, 4, 8, 16] {
        let mut tree = MerkleTree::rebuild_from_macs([7; 32], arity, &leaves);
        let root = tree.root().unwrap();
        // Per-page baseline: the same 64 leaves, one full climb each.
        g.bench_with_input(BenchmarkId::new("per_page", arity), &arity, |b, _| {
            b.iter(|| {
                for &i in &ids {
                    assert!(tree.verify(i, &leaves[i as usize], std::hint::black_box(&root)));
                }
            })
        });
        // Shared-path batch: climb every touched sibling group once.
        g.bench_with_input(BenchmarkId::new("batched", arity), &arity, |b, _| {
            b.iter(|| {
                assert!(tree.verify_batch(&ids, &entry_macs, std::hint::black_box(&root)))
            })
        });
    }
    g.finish();
}

fn bench_verify_cached(c: &mut Criterion) {
    let mut g = c.benchmark_group("merkle_verify_cached");
    let leaves = macs(10_000);
    for arity in [2usize, 16] {
        let mut tree = MerkleTree::rebuild_from_macs([7; 32], arity, &leaves);
        tree.set_cache_enabled(true);
        let root = tree.root().unwrap();
        // Warm the verified-node cache over the whole tree.
        let all: Vec<u64> = (0..10_000).collect();
        assert!(tree.verify_batch(&all, &leaves, &root));
        g.bench_with_input(BenchmarkId::from_parameter(arity), &arity, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 997) % 10_000;
                assert!(tree.verify(i, &leaves[i as usize], std::hint::black_box(&root)));
            })
        });
    }
    g.finish();
}

fn bench_update(c: &mut Criterion) {
    let leaves = macs(10_000);
    let mut tree = MerkleTree::rebuild_from_macs([7; 32], 2, &leaves);
    c.bench_function("merkle_update_10k", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 997) % 10_000;
            tree.update(i, std::hint::black_box(&[9u8; 32]));
        })
    });
}

criterion_group!(
    benches,
    bench_build,
    bench_verify_arity_ablation,
    bench_verify_batch,
    bench_verify_cached,
    bench_update
);
criterion_main!(benches);
