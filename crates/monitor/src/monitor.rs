//! The trusted monitor proper.

use crate::audit::AuditLog;
use crate::proof::ProofOfCompliance;
use crate::{MonitorError, Result};
use ironsafe_crypto::cert::{Certificate, SubjectInfo};
use ironsafe_crypto::group::Group;
use ironsafe_crypto::schnorr::{KeyPair, PublicKey};
use ironsafe_obs::{Counter, Registry, Span};
use ironsafe_policy::eval::{evaluate, EvalContext, Obligation};
use ironsafe_policy::rewrite::{rewrite_statement, RewriteContext};
use ironsafe_policy::{parse_policy, Perm, PolicySet};
use ironsafe_sql::ast::Statement;
use ironsafe_tee::image::Measurement;
use ironsafe_tee::sgx::{AttestationService, Quote};
use ironsafe_tee::trustzone::ta::verify_attestation;
use ironsafe_tee::trustzone::AttestationResponse;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// What the monitor pins as the trusted software stack.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Expected MRENCLAVE of the host engine.
    pub expected_host_measurement: Measurement,
    /// Expected normal-world measurement of the storage system.
    pub expected_nw_measurement: Measurement,
    /// Highest firmware version known (resolves `fwVersion...(latest)`).
    pub latest_fw: u32,
}

/// An attested node.
#[derive(Debug, Clone)]
pub struct NodeInfo {
    /// Node identifier.
    pub id: String,
    /// Deployment region (e.g. `"EU"`).
    pub location: String,
    /// Attested firmware version.
    pub fw_version: u32,
    /// Attested measurement.
    pub measurement: Measurement,
}

/// Where the query may run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Placement {
    /// Split execution between an attested host and storage node.
    HostAndStorage {
        /// Host node id.
        host: String,
        /// Storage node id.
        storage: String,
    },
    /// Host-only (no storage node satisfied the execution policy).
    HostOnly {
        /// Host node id.
        host: String,
    },
}

/// A granted query authorization.
#[derive(Debug, Clone)]
pub struct Authorization {
    /// The policy-rewritten statement the engines must execute.
    pub statement: Statement,
    /// Compliant node placement.
    pub placement: Placement,
    /// Session identifier (for cleanup/revocation).
    pub session_id: u64,
    /// Session key for the host↔storage secure channel.
    pub session_key: [u8; 32],
    /// Signed proof of compliance for the client.
    pub proof: ProofOfCompliance,
    /// Obligations that were discharged (informational).
    pub obligations: Vec<Obligation>,
}

/// A client query request, as forwarded by the host (Figure 5).
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Client identity key.
    pub client_key: String,
    /// Target database (selects the owner's access policy).
    pub database: String,
    /// The SQL text.
    pub sql: String,
    /// The client's execution policy (may be empty).
    pub exec_policy: String,
    /// Logical access time `T`.
    pub access_time: i64,
}

/// Lifecycle state of a monitor session (open → active use →
/// revoked/expired). Closed sessions are kept until `cleanup_session`
/// so refusals can name the reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Usable: queries under this session are admitted.
    Active,
    /// Administratively revoked; every further use is refused.
    Revoked,
    /// Idle-timeout fired; every further use is refused.
    Expired,
}

struct Session {
    #[allow(dead_code)]
    key: [u8; 32],
    client: String,
    state: SessionState,
    last_used: i64,
}

/// The trusted monitor service.
pub struct TrustedMonitor {
    group: Group,
    keys: KeyPair,
    ias: AttestationService,
    tz_root: PublicKey,
    config: MonitorConfig,
    hosts: Vec<NodeInfo>,
    storages: Vec<NodeInfo>,
    policies: HashMap<String, PolicySet>,
    service_bits: HashMap<String, u32>,
    pending_challenges: Vec<[u8; 32]>,
    sessions: HashMap<u64, Session>,
    next_session: u64,
    audit: AuditLog,
    rng: StdRng,
    grants: Counter,
    denies: Counter,
}

impl TrustedMonitor {
    /// Boot a monitor with its trust anchors.
    pub fn new(
        group: &Group,
        seed: u64,
        ias: AttestationService,
        tz_root: PublicKey,
        config: MonitorConfig,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = KeyPair::generate(group, &mut rng);
        TrustedMonitor {
            group: group.clone(),
            keys,
            ias,
            tz_root,
            config,
            hosts: Vec::new(),
            storages: Vec::new(),
            policies: HashMap::new(),
            service_bits: HashMap::new(),
            pending_challenges: Vec::new(),
            sessions: HashMap::new(),
            next_session: 1,
            audit: AuditLog::new(),
            rng,
            grants: Counter::new(),
            denies: Counter::new(),
        }
    }

    /// Attach the monitor's decision counters to `registry` as
    /// `monitor.query.grant` / `monitor.query.deny`.
    pub fn register_metrics(&self, registry: &Registry) {
        registry.register_counter("monitor.query.grant", &self.grants);
        registry.register_counter("monitor.query.deny", &self.denies);
    }

    /// The monitor's public key (what clients and regulators pin).
    pub fn public_key(&self) -> PublicKey {
        self.keys.public.clone()
    }

    /// Figure 4a: verify a host quote and certify its session public key.
    ///
    /// The quote's report data must commit to `host_session_key`
    /// (hash of its serialized form), binding the certified key to the
    /// attested enclave.
    pub fn attest_host(
        &mut self,
        id: &str,
        location: &str,
        quote: &Quote,
        host_session_key: &PublicKey,
    ) -> Result<Certificate> {
        // Wall-time span feeding the Table 4 attestation-phase timings.
        let _span = Span::enter("monitor/attest_host");
        let verification = self
            .ias
            .verify_quote(quote)
            .map_err(|e| MonitorError::Attestation(format!("host quote: {e}")))?;
        if verification.measurement != self.config.expected_host_measurement {
            self.audit.append(0, "monitor", id, "host attestation REJECTED: unexpected measurement");
            return Err(MonitorError::Attestation("host measurement not trusted".into()));
        }
        let commitment =
            ironsafe_crypto::sha256::sha256(&host_session_key.to_bytes(&self.group));
        if quote.report_data != commitment {
            self.audit.append(0, "monitor", id, "host attestation REJECTED: key commitment mismatch");
            return Err(MonitorError::Attestation("report data does not commit to session key".into()));
        }
        self.hosts.retain(|h| h.id != id);
        self.hosts.push(NodeInfo {
            id: id.to_string(),
            location: location.to_string(),
            fw_version: verification.fw_version,
            measurement: verification.measurement,
        });
        self.audit.append(0, "monitor", id, "host attested");
        Ok(Certificate::issue(
            &self.group,
            &self.keys.secret,
            SubjectInfo {
                name: id.to_string(),
                role: "host-engine".to_string(),
                fw_version: verification.fw_version,
                measurement: verification.measurement.as_bytes().to_vec(),
            },
            host_session_key.clone(),
            &mut self.rng,
        ))
    }

    /// Figure 4b step 1: create a fresh challenge for a storage node.
    pub fn storage_challenge(&mut self) -> [u8; 32] {
        let _span = Span::enter("monitor/storage_challenge");
        let mut c = [0u8; 32];
        self.rng.fill(&mut c);
        self.pending_challenges.push(c);
        c
    }

    /// Figure 4b steps 2–4: verify the storage node's response.
    pub fn attest_storage(
        &mut self,
        id: &str,
        location: &str,
        response: &AttestationResponse,
    ) -> Result<()> {
        let _span = Span::enter("monitor/attest_storage");
        let pos = self
            .pending_challenges
            .iter()
            .position(|c| *c == response.challenge)
            .ok_or_else(|| MonitorError::Attestation("unknown or replayed challenge".into()))?;
        self.pending_challenges.remove(pos);
        let (measurement, fw) =
            verify_attestation(&self.group, &self.tz_root, &response.challenge, response)
                .map_err(|e| MonitorError::Attestation(format!("storage: {e}")))?;
        if measurement != self.config.expected_nw_measurement {
            self.audit.append(0, "monitor", id, "storage attestation REJECTED: untrusted normal world");
            return Err(MonitorError::Attestation("storage normal world not trusted".into()));
        }
        self.storages.retain(|s| s.id != id);
        self.storages.push(NodeInfo {
            id: id.to_string(),
            location: location.to_string(),
            fw_version: fw,
            measurement,
        });
        self.audit.append(0, "monitor", id, "storage attested");
        Ok(())
    }

    /// Attested nodes (hosts, storages).
    pub fn attested_nodes(&self) -> (&[NodeInfo], &[NodeInfo]) {
        (&self.hosts, &self.storages)
    }

    /// Install (or replace) the owner's access policy for a database.
    pub fn register_database(&mut self, database: &str, access_policy: PolicySet) {
        self.policies.insert(database.to_string(), access_policy);
    }

    /// Bind a client identity to its bit in reuse bitmaps.
    pub fn register_service_bit(&mut self, client_key: &str, bit: u32) {
        self.service_bits.insert(client_key.to_string(), bit);
    }

    fn eval_context(&self, client: &str, host: &NodeInfo, storage: Option<&NodeInfo>) -> EvalContext {
        EvalContext {
            session_key: client.to_string(),
            host_loc: host.location.clone(),
            storage_loc: storage.map(|s| s.location.clone()),
            fw_host: host.fw_version,
            fw_storage: storage.map(|s| s.fw_version),
            latest_fw: self.config.latest_fw,
        }
    }

    /// Figure 5: authorize (and rewrite) a client query.
    pub fn authorize(&mut self, req: &QueryRequest) -> Result<Authorization> {
        let _span = Span::enter("monitor/authorize");
        let mut statement = match ironsafe_sql::parser::parse_statement(&req.sql) {
            Ok(s) => s,
            Err(e) => {
                // Crafted/malformed queries are recorded before rejection.
                self.audit.append(
                    req.access_time,
                    "monitor",
                    &req.client_key,
                    &format!("REJECTED malformed query: {}", req.sql),
                );
                self.denies.inc();
                return Err(MonitorError::Sql(e));
            }
        };
        let exec_policy = parse_policy(&req.exec_policy)?;

        // 1. Find a compliant placement: prefer host+storage, fall back to
        //    host-only when no storage node satisfies the exec policy.
        let mut placement: Option<(usize, Option<usize>)> = None;
        'outer: for (hi, host) in self.hosts.iter().enumerate() {
            for (si, storage) in self.storages.iter().enumerate() {
                let ctx = self.eval_context(&req.client_key, host, Some(storage));
                if !exec_policy.mentions(Perm::Exec)
                    || evaluate(&exec_policy, Perm::Exec, &ctx).allowed
                {
                    placement = Some((hi, Some(si)));
                    break 'outer;
                }
            }
        }
        if placement.is_none() {
            for (hi, host) in self.hosts.iter().enumerate() {
                let ctx = self.eval_context(&req.client_key, host, None);
                if !exec_policy.mentions(Perm::Exec)
                    || evaluate(&exec_policy, Perm::Exec, &ctx).allowed
                {
                    placement = Some((hi, None));
                    break;
                }
            }
        }
        let (hi, si) = placement.ok_or_else(|| {
            self.audit.append(
                req.access_time,
                "monitor",
                &req.client_key,
                "DENY: no attested node satisfies the execution policy",
            );
            self.denies.inc();
            MonitorError::PolicyViolation("no compliant execution environment".into())
        })?;
        let host = self.hosts[hi].clone();
        let storage = si.map(|i| self.storages[i].clone());

        // 2. Owner access policy.
        let access_policy = self
            .policies
            .get(&req.database)
            .ok_or_else(|| MonitorError::Unknown(format!("database `{}`", req.database)))?
            .clone();
        let perm = match &statement {
            Statement::Select(_) => Perm::Read,
            _ => Perm::Write,
        };
        let ctx = self.eval_context(&req.client_key, &host, storage.as_ref());
        let decision = evaluate(&access_policy, perm, &ctx);
        if !decision.allowed {
            self.audit.append(
                req.access_time,
                "monitor",
                &req.client_key,
                &format!("DENY {perm}: {}", req.sql),
            );
            self.denies.inc();
            return Err(MonitorError::PolicyViolation(format!(
                "client `{}` lacks {perm} permission on `{}`",
                req.client_key, req.database
            )));
        }

        // 3. Rewrite the query to discharge data obligations.
        let service_bit = self.service_bits.get(&req.client_key).copied().unwrap_or(0);
        let rw_ctx = RewriteContext { access_time: req.access_time, service_bit };
        rewrite_statement(&mut statement, &decision.obligations, &rw_ctx, 365, 0)?;

        // 4. Discharge log obligations.
        for ob in &decision.obligations {
            if let Obligation::Log { log } = ob {
                self.audit.append(req.access_time, log, &req.client_key, &req.sql);
            }
        }
        self.audit.append(
            req.access_time,
            "monitor",
            &req.client_key,
            &format!("GRANT {perm}: {}", req.sql),
        );
        self.grants.inc();

        // 5. Session key management.
        let mut session_key = [0u8; 32];
        self.rng.fill(&mut session_key);
        let session_id = self.next_session;
        self.next_session += 1;
        self.sessions.insert(
            session_id,
            Session {
                key: session_key,
                client: req.client_key.clone(),
                state: SessionState::Active,
                last_used: req.access_time,
            },
        );

        // 6. Proof of compliance.
        let storage_id = storage.as_ref().map(|s| s.id.clone()).unwrap_or_default();
        let proof = ProofOfCompliance::issue(
            &self.keys.secret,
            &req.sql,
            &req.exec_policy,
            &host.id,
            &storage_id,
            req.access_time,
            self.audit.head(),
            &mut self.rng,
        );

        let placement = match storage {
            Some(s) => Placement::HostAndStorage { host: host.id, storage: s.id },
            None => Placement::HostOnly { host: host.id },
        };
        Ok(Authorization {
            statement,
            placement,
            session_id,
            session_key,
            proof,
            obligations: decision.obligations,
        })
    }

    /// Open a long-lived serving session for `client`, returning the
    /// session id and its channel key. Unlike the per-query sessions
    /// minted inside [`authorize`](TrustedMonitor::authorize), these are
    /// the front-door sessions the serving layer tracks across many
    /// queries; they stay usable until revoked or idle-expired.
    pub fn open_session(&mut self, client: &str, now: i64) -> (u64, [u8; 32]) {
        let mut key = [0u8; 32];
        self.rng.fill(&mut key);
        let session_id = self.next_session;
        self.next_session += 1;
        self.sessions.insert(
            session_id,
            Session {
                key,
                client: client.to_string(),
                state: SessionState::Active,
                last_used: now,
            },
        );
        self.audit.append(now, "monitor", client, &format!("session {session_id} opened"));
        (session_id, key)
    }

    /// Record use of a session at logical time `now`, refusing closed
    /// sessions. The serving layer calls this before every query so a
    /// revoked or idle-expired session yields a clean per-request error.
    pub fn touch_session(&mut self, session_id: u64, now: i64) -> Result<()> {
        let session = self
            .sessions
            .get_mut(&session_id)
            .ok_or_else(|| MonitorError::Unknown(format!("session {session_id}")))?;
        match session.state {
            SessionState::Active => {
                session.last_used = now;
                Ok(())
            }
            SessionState::Revoked => Err(MonitorError::SessionClosed { session_id, reason: "revoked" }),
            SessionState::Expired => Err(MonitorError::SessionClosed { session_id, reason: "expired" }),
        }
    }

    /// Administratively revoke a session (key compromise, policy change).
    /// Later uses are refused with [`MonitorError::SessionClosed`].
    pub fn revoke_session(&mut self, session_id: u64, now: i64) -> Result<()> {
        let session = self
            .sessions
            .get_mut(&session_id)
            .ok_or_else(|| MonitorError::Unknown(format!("session {session_id}")))?;
        session.state = SessionState::Revoked;
        let client = session.client.clone();
        self.audit.append(now, "monitor", &client, &format!("session {session_id} revoked"));
        Ok(())
    }

    /// Expire every active session idle for at least `idle_timeout`
    /// logical ticks; returns the expired ids. The serving layer runs
    /// this as its idle-timeout sweep.
    pub fn expire_idle_sessions(&mut self, now: i64, idle_timeout: i64) -> Vec<u64> {
        let mut expired = Vec::new();
        for (id, session) in self.sessions.iter_mut() {
            if session.state == SessionState::Active && now - session.last_used >= idle_timeout {
                session.state = SessionState::Expired;
                expired.push(*id);
            }
        }
        expired.sort_unstable();
        for id in &expired {
            let client = self.sessions[id].client.clone();
            self.audit.append(now, "monitor", &client, &format!("session {id} expired (idle)"));
        }
        expired
    }

    /// Revoke a session's key and log the cleanup (the paper's session
    /// cleanup protocol deletes host/storage temporaries).
    pub fn cleanup_session(&mut self, session_id: u64) -> Result<()> {
        let session = self
            .sessions
            .remove(&session_id)
            .ok_or_else(|| MonitorError::Unknown(format!("session {session_id}")))?;
        self.audit.append(0, "monitor", &session.client, &format!("session {session_id} cleaned up"));
        Ok(())
    }

    /// Is the session present and active (not revoked/expired)?
    pub fn session_active(&self, session_id: u64) -> bool {
        matches!(self.sessions.get(&session_id), Some(s) if s.state == SessionState::Active)
    }

    /// The session's lifecycle state, if it exists.
    pub fn session_state(&self, session_id: u64) -> Option<SessionState> {
        self.sessions.get(&session_id).map(|s| s.state)
    }

    /// The audit log (regulator interface).
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ironsafe_tee::image::SoftwareImage;
    use ironsafe_tee::sgx::{EnclaveConfig, SgxPlatform};
    use ironsafe_tee::trustzone::{
        AttestationTa, BootImages, Manufacturer, SecureBoot, SignedImage,
    };

    struct Fixture {
        monitor: TrustedMonitor,
        platform: SgxPlatform,
        enclave: ironsafe_tee::sgx::Enclave,
        host_keys: KeyPair,
        booted: ironsafe_tee::trustzone::BootedSystem,
        rng: StdRng,
        group: Group,
    }

    fn fixture() -> Fixture {
        let group = Group::modp_1024();
        let mut rng = StdRng::seed_from_u64(31);

        // Host side.
        let platform = SgxPlatform::from_seed(&group, b"host-platform");
        let host_image = SoftwareImage::new("host-engine", 5, b"engine".to_vec());
        let enclave = platform.create_enclave(&host_image, EnclaveConfig::default());
        let mut ias = AttestationService::new(&group);
        ias.register_platform(&platform);

        // Storage side.
        let mfr = Manufacturer::from_seed(&group, b"acme");
        let device = mfr.make_device("storage-0", 8, &mut rng);
        let vendor = KeyPair::derive(&group, b"acme", b"tz-manufacturer-root");
        let images = BootImages {
            trusted_firmware: SignedImage::sign(&group, &vendor.secret, SoftwareImage::new("atf", 2, b"atf".to_vec()), &mut rng),
            trusted_os: SignedImage::sign(&group, &vendor.secret, SoftwareImage::new("optee", 34, b"optee".to_vec()), &mut rng),
            normal_world: SoftwareImage::new("nw", 3, b"kernel+engine".to_vec()),
        };
        let booted = SecureBoot::boot(&device, &mfr.root_public(), &images, &mut rng).unwrap();

        let config = MonitorConfig {
            expected_host_measurement: host_image.measure(),
            expected_nw_measurement: booted.nw_measurement,
            latest_fw: 5,
        };
        let monitor = TrustedMonitor::new(&group, 77, ias, mfr.root_public(), config);
        let host_keys = KeyPair::generate(&group, &mut rng);
        Fixture { monitor, platform, enclave, host_keys, booted, rng, group }
    }

    fn attest_both(f: &mut Fixture) {
        let commitment = ironsafe_crypto::sha256::sha256(&f.host_keys.public.to_bytes(&f.group));
        let quote = Quote::generate(&f.platform, &f.enclave, &commitment, &mut f.rng);
        f.monitor.attest_host("host-0", "EU", &quote, &f.host_keys.public).unwrap();
        let challenge = f.monitor.storage_challenge();
        let resp = AttestationTa::new(&f.booted).respond(challenge, &mut f.rng);
        f.monitor.attest_storage("storage-0", "EU", &resp).unwrap();
    }

    fn basic_policy() -> PolicySet {
        parse_policy("read :- sessionKeyIs(Ka) | sessionKeyIs(Kb)\nwrite :- sessionKeyIs(Ka)").unwrap()
    }

    fn request(client: &str, sql: &str, exec: &str) -> QueryRequest {
        QueryRequest {
            client_key: client.into(),
            database: "db".into(),
            sql: sql.into(),
            exec_policy: exec.into(),
            access_time: 100,
        }
    }

    #[test]
    fn full_attestation_and_grant_flow() {
        let mut f = fixture();
        attest_both(&mut f);
        f.monitor.register_database("db", basic_policy());
        let auth = f.monitor.authorize(&request("Ka", "SELECT 1", "")).unwrap();
        assert_eq!(
            auth.placement,
            Placement::HostAndStorage { host: "host-0".into(), storage: "storage-0".into() }
        );
        assert!(auth.proof.verify(&f.group, &f.monitor.public_key(), "SELECT 1", ""));
        assert!(f.monitor.session_active(auth.session_id));
        f.monitor.cleanup_session(auth.session_id).unwrap();
        assert!(!f.monitor.session_active(auth.session_id));
        assert!(f.monitor.audit().verify());
    }

    #[test]
    fn host_certificate_chains_to_monitor() {
        let mut f = fixture();
        let commitment = ironsafe_crypto::sha256::sha256(&f.host_keys.public.to_bytes(&f.group));
        let quote = Quote::generate(&f.platform, &f.enclave, &commitment, &mut f.rng);
        let cert = f.monitor.attest_host("host-0", "EU", &quote, &f.host_keys.public).unwrap();
        assert!(cert.verify(&f.group, &f.monitor.public_key()).is_ok());
        assert_eq!(cert.subject.role, "host-engine");
    }

    #[test]
    fn wrong_key_commitment_rejected() {
        let mut f = fixture();
        let quote = Quote::generate(&f.platform, &f.enclave, b"not-a-commitment", &mut f.rng);
        assert!(matches!(
            f.monitor.attest_host("host-0", "EU", &quote, &f.host_keys.public),
            Err(MonitorError::Attestation(_))
        ));
    }

    #[test]
    fn tampered_host_engine_rejected() {
        let mut f = fixture();
        let evil = f.platform.create_enclave(
            &SoftwareImage::new("host-engine", 5, b"backdoored".to_vec()),
            EnclaveConfig::default(),
        );
        let commitment = ironsafe_crypto::sha256::sha256(&f.host_keys.public.to_bytes(&f.group));
        let quote = Quote::generate(&f.platform, &evil, &commitment, &mut f.rng);
        assert!(f.monitor.attest_host("host-0", "EU", &quote, &f.host_keys.public).is_err());
    }

    #[test]
    fn replayed_storage_challenge_rejected() {
        let mut f = fixture();
        let challenge = f.monitor.storage_challenge();
        let resp = AttestationTa::new(&f.booted).respond(challenge, &mut f.rng);
        f.monitor.attest_storage("storage-0", "EU", &resp).unwrap();
        // Replay of the same response: the challenge was consumed.
        assert!(matches!(
            f.monitor.attest_storage("storage-0", "EU", &resp),
            Err(MonitorError::Attestation(_))
        ));
    }

    #[test]
    fn access_policy_enforced_per_permission() {
        let mut f = fixture();
        attest_both(&mut f);
        f.monitor.register_database("db", basic_policy());
        // Kb can read but not write.
        assert!(f.monitor.authorize(&request("Kb", "SELECT 1", "")).is_ok());
        assert!(matches!(
            f.monitor.authorize(&request("Kb", "DELETE FROM t", "")),
            Err(MonitorError::PolicyViolation(_))
        ));
        // Unknown client denied everything, and the denial is logged.
        assert!(f.monitor.authorize(&request("Kz", "SELECT 1", "")).is_err());
        let denies = f
            .monitor
            .audit()
            .entries()
            .into_iter()
            .filter(|e| e.message.starts_with("DENY"))
            .count();
        assert_eq!(denies, 2);
    }

    #[test]
    fn exec_policy_forces_host_only_fallback() {
        let mut f = fixture();
        attest_both(&mut f);
        f.monitor.register_database("db", basic_policy());
        // Storage is in EU; the client demands US storage. No storage node
        // complies, so the monitor falls back to host-only execution.
        let auth = f
            .monitor
            .authorize(&request("Ka", "SELECT 1", "exec :- storageLocIs(US) & hostLocIs(EU)"))
            .unwrap();
        assert_eq!(auth.placement, Placement::HostOnly { host: "host-0".into() });
    }

    #[test]
    fn exec_policy_unsatisfiable_rejected() {
        let mut f = fixture();
        attest_both(&mut f);
        f.monitor.register_database("db", basic_policy());
        assert!(matches!(
            f.monitor.authorize(&request("Ka", "SELECT 1", "exec :- hostLocIs(MARS)")),
            Err(MonitorError::PolicyViolation(_))
        ));
    }

    #[test]
    fn expiry_obligation_rewrites_query() {
        let mut f = fixture();
        attest_both(&mut f);
        let policy = parse_policy("read :- sessionKeyIs(Kb) & le(T, TIMESTAMP)").unwrap();
        f.monitor.register_database("db", policy);
        let auth = f.monitor.authorize(&request("Kb", "SELECT p_name FROM people", "")).unwrap();
        match &auth.statement {
            Statement::Select(sel) => {
                let w = ironsafe_sql::ast::expr_to_sql(sel.where_clause.as_ref().unwrap());
                assert!(w.contains("__expiry >= 100"), "{w}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn log_obligation_lands_in_named_stream() {
        let mut f = fixture();
        attest_both(&mut f);
        let policy = parse_policy("read :- logUpdate(sharing, K, Q)").unwrap();
        f.monitor.register_database("db", policy);
        f.monitor.authorize(&request("Kb", "SELECT p_arrival FROM people", "")).unwrap();
        let shared = f.monitor.audit().stream("sharing");
        assert_eq!(shared.len(), 1);
        assert_eq!(shared[0].client_key, "Kb");
        assert!(shared[0].message.contains("p_arrival"));
    }

    #[test]
    fn malformed_query_logged_and_rejected() {
        let mut f = fixture();
        attest_both(&mut f);
        f.monitor.register_database("db", basic_policy());
        let r = f.monitor.authorize(&request("Ka", "SELECT ' FROM -- injection", ""));
        assert!(r.is_err());
        assert!(f
            .monitor
            .audit()
            .entries()
            .iter()
            .any(|e| e.message.contains("REJECTED malformed")));
        assert!(f.monitor.audit().verify());
    }

    #[test]
    fn no_attested_nodes_means_no_authorization() {
        let mut f = fixture();
        f.monitor.register_database("db", basic_policy());
        assert!(f.monitor.authorize(&request("Ka", "SELECT 1", "")).is_err());
    }

    #[test]
    fn unknown_database_rejected() {
        let mut f = fixture();
        attest_both(&mut f);
        assert!(matches!(
            f.monitor.authorize(&request("Ka", "SELECT 1", "")),
            Err(MonitorError::Unknown(_))
        ));
    }

    #[test]
    fn placement_picks_the_policy_compliant_storage_node() {
        // Two storage nodes in different regions; the exec policy selects
        // the EU one even though the US one attested first.
        let mut f = fixture();
        attest_both(&mut f); // host-0 + storage-0 in EU
        // Attest a second storage node in US (same trusted stack).
        let challenge = f.monitor.storage_challenge();
        let resp = AttestationTa::new(&f.booted).respond(challenge, &mut f.rng);
        f.monitor.attest_storage("storage-us", "US", &resp).unwrap();
        f.monitor.register_database("db", basic_policy());

        let auth = f
            .monitor
            .authorize(&request("Ka", "SELECT 1", "exec :- storageLocIs(US)"))
            .unwrap();
        assert_eq!(
            auth.placement,
            Placement::HostAndStorage { host: "host-0".into(), storage: "storage-us".into() }
        );
        let auth = f
            .monitor
            .authorize(&request("Ka", "SELECT 1", "exec :- storageLocIs(EU)"))
            .unwrap();
        assert_eq!(
            auth.placement,
            Placement::HostAndStorage { host: "host-0".into(), storage: "storage-0".into() }
        );
    }

    #[test]
    fn reattestation_replaces_node_facts() {
        let mut f = fixture();
        attest_both(&mut f);
        // The same node re-attests from a new location (migration).
        let challenge = f.monitor.storage_challenge();
        let resp = AttestationTa::new(&f.booted).respond(challenge, &mut f.rng);
        f.monitor.attest_storage("storage-0", "US", &resp).unwrap();
        let (_, storages) = f.monitor.attested_nodes();
        assert_eq!(storages.len(), 1, "re-attestation replaces, not duplicates");
        assert_eq!(storages[0].location, "US");
    }

    #[test]
    fn revoked_session_refused_with_reason() {
        let mut f = fixture();
        let (id, _key) = f.monitor.open_session("Ka", 10);
        assert!(f.monitor.session_active(id));
        f.monitor.touch_session(id, 11).unwrap();
        f.monitor.revoke_session(id, 12).unwrap();
        assert!(!f.monitor.session_active(id));
        assert_eq!(f.monitor.session_state(id), Some(SessionState::Revoked));
        assert!(matches!(
            f.monitor.touch_session(id, 13),
            Err(MonitorError::SessionClosed { reason: "revoked", .. })
        ));
        assert!(f.monitor.audit().entries().iter().any(|e| e.message.contains("revoked")));
        assert!(f.monitor.audit().verify());
    }

    #[test]
    fn idle_sessions_expire_and_are_refused() {
        let mut f = fixture();
        let (idle, _) = f.monitor.open_session("Ka", 0);
        let (busy, _) = f.monitor.open_session("Kb", 0);
        f.monitor.touch_session(busy, 90).unwrap();
        let expired = f.monitor.expire_idle_sessions(100, 50);
        assert_eq!(expired, vec![idle]);
        assert_eq!(f.monitor.session_state(idle), Some(SessionState::Expired));
        assert!(f.monitor.session_active(busy));
        assert!(matches!(
            f.monitor.touch_session(idle, 101),
            Err(MonitorError::SessionClosed { reason: "expired", .. })
        ));
        // Touching keeps a session alive across later sweeps.
        f.monitor.touch_session(busy, 120).unwrap();
        assert!(f.monitor.expire_idle_sessions(140, 50).is_empty());
        assert!(f.monitor.audit().entries().iter().any(|e| e.message.contains("expired (idle)")));
    }

    #[test]
    fn unknown_session_operations_are_clean_errors() {
        let mut f = fixture();
        assert!(matches!(f.monitor.touch_session(999, 0), Err(MonitorError::Unknown(_))));
        assert!(matches!(f.monitor.revoke_session(999, 0), Err(MonitorError::Unknown(_))));
        assert_eq!(f.monitor.session_state(999), None);
    }

    #[test]
    fn session_keys_are_unique() {
        let mut f = fixture();
        attest_both(&mut f);
        f.monitor.register_database("db", basic_policy());
        let a = f.monitor.authorize(&request("Ka", "SELECT 1", "")).unwrap();
        let b = f.monitor.authorize(&request("Ka", "SELECT 1", "")).unwrap();
        assert_ne!(a.session_key, b.session_key);
        assert_ne!(a.session_id, b.session_id);
    }
}
