//! SQL tokenizer.

use crate::{Result, SqlError};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (kept verbatim; parser matches
    /// case-insensitively).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `*`
    Star,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
}

/// Tokenize SQL text.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '%' => {
                out.push(Token::Percent);
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::NotEq);
                    i += 2;
                } else {
                    return Err(SqlError::Lex("unexpected `!`".into()));
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::LtEq);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Token::NotEq);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::GtEq);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(SqlError::Lex("unterminated string literal".into()));
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Multi-byte UTF-8 passes through unchanged.
                        let ch_len = utf8_len(bytes[i]);
                        s.push_str(
                            std::str::from_utf8(&bytes[i..i + ch_len])
                                .map_err(|_| SqlError::Lex("invalid UTF-8 in string".into()))?,
                        );
                        i += ch_len;
                    }
                }
                out.push(Token::Str(s));
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &sql[start..i];
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| SqlError::Lex(format!("bad float `{text}`")))?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| SqlError::Lex(format!("bad integer `{text}`")))?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Token::Ident(sql[start..i].to_string()));
            }
            other => return Err(SqlError::Lex(format!("unexpected character `{other}`"))),
        }
    }
    Ok(out)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_select() {
        let toks = tokenize("SELECT a, b FROM t WHERE a >= 10.5;").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("SELECT".into()),
                Token::Ident("a".into()),
                Token::Comma,
                Token::Ident("b".into()),
                Token::Ident("FROM".into()),
                Token::Ident("t".into()),
                Token::Ident("WHERE".into()),
                Token::Ident("a".into()),
                Token::GtEq,
                Token::Float(10.5),
                Token::Semi,
            ]
        );
    }

    #[test]
    fn operators() {
        let toks = tokenize("<> != <= >= < > = + - * / %").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::NotEq,
                Token::NotEq,
                Token::LtEq,
                Token::GtEq,
                Token::Lt,
                Token::Gt,
                Token::Eq,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::Percent,
            ]
        );
    }

    #[test]
    fn string_with_escaped_quote() {
        let toks = tokenize("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's".into())]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("SELECT 1 -- comment here\n, 2").unwrap();
        assert_eq!(toks, vec![Token::Ident("SELECT".into()), Token::Int(1), Token::Comma, Token::Int(2)]);
    }

    #[test]
    fn negative_handled_at_parser_level() {
        // `-5` lexes as Minus, Int(5); the parser folds unary minus.
        let toks = tokenize("-5").unwrap();
        assert_eq!(toks, vec![Token::Minus, Token::Int(5)]);
    }

    #[test]
    fn dotted_identifiers() {
        let toks = tokenize("t.col").unwrap();
        assert_eq!(
            toks,
            vec![Token::Ident("t".into()), Token::Dot, Token::Ident("col".into())]
        );
    }

    #[test]
    fn unicode_string_literal() {
        let toks = tokenize("'héllo — wörld'").unwrap();
        assert_eq!(toks, vec![Token::Str("héllo — wörld".into())]);
    }

    #[test]
    fn bad_char_errors() {
        assert!(tokenize("SELECT @x").is_err());
    }
}
