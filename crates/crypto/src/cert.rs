//! Minimal certificate chains.
//!
//! IronSafe's trust roots are modelled as in the paper:
//!
//! * The storage system's secure boot produces a **certificate chain** rooted
//!   in the manufacturer's root-of-trust public key (ROTPK): ROM firmware →
//!   trusted firmware → trusted OS → normal-world image. Each stage signs
//!   the next stage's public key and measurement.
//! * The SGX side has an attestation-service key (the IAS/CAS stand-in) that
//!   certifies quote-signing keys.
//! * The trusted monitor certifies per-session host keys after attestation.
//!
//! A [`Certificate`] binds a subject (name, role, firmware version,
//! measurement) to a public key with an issuer signature;
//! a [`CertificateChain`] verifies the links down from a trusted root.

use crate::group::Group;
use crate::schnorr::{PublicKey, SecretKey, Signature};
use crate::{CryptoError, Result};

/// Identity and claims carried by a certificate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubjectInfo {
    /// Human-readable subject name (e.g. `"storage-node-0/trusted-os"`).
    pub name: String,
    /// Role string (e.g. `"rom"`, `"trusted-firmware"`, `"normal-world"`).
    pub role: String,
    /// Firmware/software version of the subject.
    pub fw_version: u32,
    /// Measurement (hash) of the subject image; empty when not applicable.
    pub measurement: Vec<u8>,
}

impl SubjectInfo {
    /// Canonical byte encoding signed by the issuer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.name.len() + self.role.len() + self.measurement.len() + 16);
        for field in [self.name.as_bytes(), self.role.as_bytes(), &self.measurement] {
            out.extend_from_slice(&(field.len() as u32).to_be_bytes());
            out.extend_from_slice(field);
        }
        out.extend_from_slice(&self.fw_version.to_be_bytes());
        out
    }
}

/// A public key bound to a subject by an issuer's signature.
#[derive(Clone, Debug)]
pub struct Certificate {
    /// The subject's identity and claims.
    pub subject: SubjectInfo,
    /// The subject's public key.
    pub public_key: PublicKey,
    /// Issuer signature over `subject ‖ public_key`.
    pub signature: Signature,
}

impl Certificate {
    /// Issue a certificate for `(subject, public_key)` signed by `issuer`.
    pub fn issue<R: rand::Rng + ?Sized>(
        group: &Group,
        issuer: &SecretKey,
        subject: SubjectInfo,
        public_key: PublicKey,
        rng: &mut R,
    ) -> Self {
        let msg = Self::signed_bytes(group, &subject, &public_key);
        let signature = issuer.sign(&msg, rng);
        Certificate { subject, public_key, signature }
    }

    fn signed_bytes(group: &Group, subject: &SubjectInfo, pk: &PublicKey) -> Vec<u8> {
        let mut msg = b"ironsafe-cert-v1".to_vec();
        msg.extend_from_slice(&subject.encode());
        msg.extend_from_slice(&pk.to_bytes(group));
        msg
    }

    /// Verify the issuer's signature with `issuer_key`.
    pub fn verify(&self, group: &Group, issuer_key: &PublicKey) -> Result<()> {
        let msg = Self::signed_bytes(group, &self.subject, &self.public_key);
        issuer_key.verify(group, &msg, &self.signature)
    }
}

/// An ordered chain: `certs[0]` is signed by the root, `certs[i+1]` by
/// `certs[i]`'s key.
#[derive(Clone, Debug, Default)]
pub struct CertificateChain {
    /// Certificates from closest-to-root to leaf.
    pub certs: Vec<Certificate>,
}

impl CertificateChain {
    /// Empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a link.
    pub fn push(&mut self, cert: Certificate) {
        self.certs.push(cert);
    }

    /// The leaf certificate (last link), if any.
    pub fn leaf(&self) -> Option<&Certificate> {
        self.certs.last()
    }

    /// Verify every link starting from `root`. Returns the leaf on success.
    pub fn verify(&self, group: &Group, root: &PublicKey) -> Result<&Certificate> {
        if self.certs.is_empty() {
            return Err(CryptoError::InvalidCertificate("empty chain"));
        }
        let mut issuer = root;
        for cert in &self.certs {
            cert.verify(group, issuer)?;
            issuer = &cert.public_key;
        }
        Ok(self.certs.last().expect("non-empty"))
    }

    /// Locate a link by role (e.g. the normal-world measurement cert).
    pub fn find_role(&self, role: &str) -> Option<&Certificate> {
        self.certs.iter().find(|c| c.subject.role == role)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schnorr::KeyPair;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(4)
    }

    fn subject(name: &str, role: &str, v: u32) -> SubjectInfo {
        SubjectInfo { name: name.into(), role: role.into(), fw_version: v, measurement: vec![0xaa; 32] }
    }

    #[test]
    fn single_cert_verifies() {
        let g = Group::modp_1024();
        let mut r = rng();
        let root = KeyPair::generate(&g, &mut r);
        let leaf = KeyPair::generate(&g, &mut r);
        let cert = Certificate::issue(&g, &root.secret, subject("tf", "trusted-firmware", 3), leaf.public.clone(), &mut r);
        assert!(cert.verify(&g, &root.public).is_ok());
        let other = KeyPair::generate(&g, &mut r);
        assert!(cert.verify(&g, &other.public).is_err());
    }

    #[test]
    fn three_link_boot_chain() {
        let g = Group::modp_1024();
        let mut r = rng();
        let rotpk = KeyPair::generate(&g, &mut r);
        let tf = KeyPair::generate(&g, &mut r);
        let tos = KeyPair::generate(&g, &mut r);
        let nw = KeyPair::generate(&g, &mut r);

        let mut chain = CertificateChain::new();
        chain.push(Certificate::issue(&g, &rotpk.secret, subject("atf", "trusted-firmware", 1), tf.public.clone(), &mut r));
        chain.push(Certificate::issue(&g, &tf.secret, subject("optee", "trusted-os", 34), tos.public.clone(), &mut r));
        chain.push(Certificate::issue(&g, &tos.secret, subject("linux", "normal-world", 5), nw.public.clone(), &mut r));

        let leaf = chain.verify(&g, &rotpk.public).unwrap();
        assert_eq!(leaf.subject.role, "normal-world");
        assert_eq!(chain.find_role("trusted-os").unwrap().subject.fw_version, 34);
    }

    #[test]
    fn broken_middle_link_rejected() {
        let g = Group::modp_1024();
        let mut r = rng();
        let rotpk = KeyPair::generate(&g, &mut r);
        let tf = KeyPair::generate(&g, &mut r);
        let impostor = KeyPair::generate(&g, &mut r);
        let nw = KeyPair::generate(&g, &mut r);

        let mut chain = CertificateChain::new();
        chain.push(Certificate::issue(&g, &rotpk.secret, subject("atf", "trusted-firmware", 1), tf.public.clone(), &mut r));
        // Signed by an impostor, not by tf.
        chain.push(Certificate::issue(&g, &impostor.secret, subject("linux", "normal-world", 5), nw.public.clone(), &mut r));
        assert!(chain.verify(&g, &rotpk.public).is_err());
    }

    #[test]
    fn tampered_subject_rejected() {
        let g = Group::modp_1024();
        let mut r = rng();
        let root = KeyPair::generate(&g, &mut r);
        let leaf = KeyPair::generate(&g, &mut r);
        let mut cert = Certificate::issue(&g, &root.secret, subject("x", "normal-world", 7), leaf.public, &mut r);
        cert.subject.fw_version = 99; // attacker claims a newer firmware
        assert!(cert.verify(&g, &root.public).is_err());
    }

    #[test]
    fn empty_chain_rejected() {
        let g = Group::modp_1024();
        let mut r = rng();
        let root = KeyPair::generate(&g, &mut r);
        let err = CertificateChain::new().verify(&g, &root.public).unwrap_err();
        assert_eq!(err, CryptoError::InvalidCertificate("empty chain"));
    }

    #[test]
    fn subject_encoding_is_injective_across_fields() {
        // "ab"+"c" must not collide with "a"+"bc".
        let s1 = SubjectInfo { name: "ab".into(), role: "c".into(), fw_version: 0, measurement: vec![] };
        let s2 = SubjectInfo { name: "a".into(), role: "bc".into(), fw_version: 0, measurement: vec![] };
        assert_ne!(s1.encode(), s2.encode());
    }
}
