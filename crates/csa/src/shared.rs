//! Shared ownership of one [`CsaSystem`] across concurrent sessions.
//!
//! The serving layer (`ironsafe-serve`) runs many sessions against a
//! single system and a single loaded dataset — the paper's Fig. 12
//! setting, minus the N private copies. [`SharedCsaSystem`] is the
//! concurrency boundary that makes that safe, and since the MVCC rework
//! it is *non-blocking*: readers never queue behind a writer.
//!
//! * **Reads** (`SELECT`, paper queries) pin the committed epoch and
//!   execute on a throwaway snapshot view
//!   ([`CsaSystem::read_view_at`]). Pages a later flush overwrites are
//!   served from the MVCC retained-version store, so the view keeps
//!   reading the state it opened at while writers commit the next one —
//!   with bit-identical results and
//!   [`CostBreakdown`](crate::CostBreakdown)s to a quiesced run.
//! * **Writes** (DML/DDL) serialize among themselves on the write-path
//!   lock, execute on a copy-on-write writer view, and land in a
//!   group-commit buffer. Every `group_size` transactions the buffer is
//!   flushed: pre-images are retained for pinned readers, the pages are
//!   applied to the base store, journaled in the encrypted WAL (when
//!   attached), and the Merkle root + WAL chain head are bound in **one**
//!   RPMB write for the whole group.
//!
//! The only lock a reader takes that a writer also takes is the brief
//! `published` mutex protecting the (epoch, catalog) pair — never held
//! across I/O. The `inner` `RwLock` is now read-locked by *both* paths;
//! its write side is reserved for [`SharedCsaSystem::with_system_mut`]
//! (loaders, experiments).
//!
//! Crash safety: a flush that fails mid-way — injected
//! [`FaultSite::CrashCommit`], WAL tear, RPMB failure — **poisons** the
//! system (fail-stop with typed errors; in-flight pinned readers finish
//! consistently on their retained snapshots). Recovery is a fresh
//! [`SharedCsaSystem::recover`] over the surviving TrustZone device and
//! WAL medium: the committed prefix is replayed, torn/unbound tails are
//! discarded, and the rebuilt state is freshness-verified against the
//! RPMB before serving.
//!
//! Lock order (outermost first): `write` → `inner` → `published` →
//! snapshot registry → base pager.

use crate::cost::CostParams;
use crate::system::{CsaSystem, QueryReport, SystemConfig};
use crate::{CsaError, Result};
use ironsafe_faults::{retry_with, FaultPlan, FaultSite};
use ironsafe_obs::{Registry, TraceSnapshot};
use ironsafe_sql::ast::Statement;
use ironsafe_sql::catalog::Catalog;
use ironsafe_sql::Database;
use ironsafe_storage::wal::{Checkpoint, CommitRecord, Wal, WalMedium};
use ironsafe_storage::{
    BlockDevice, PagerStats, PendingTxns, SecurePager, SharedPending, Snapshots, StorageError,
    TailVerdict, BLOCK_SIZE,
};
use ironsafe_tee::trustzone::TrustZoneDevice;
use ironsafe_tpch::queries::PaperQuery;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The reader-visible committed state: epoch and catalog move together,
/// atomically with the snapshot registry's publish.
struct Published {
    catalog: Catalog,
    epoch: u64,
}

/// The single-writer group-commit state.
struct WritePath {
    /// Accepted-but-unflushed transactions (writer views read through
    /// this, so statement N+1 sees statement N before the flush).
    pending: SharedPending,
    /// Transactions buffered since the last flush.
    buffered: usize,
    /// Flush every N transactions (1 = flush per statement).
    group_size: usize,
    /// The write path's running catalog — ahead of the published one by
    /// the buffered transactions.
    catalog: Catalog,
    /// The encrypted write-ahead log, once attached.
    wal: Option<Wal>,
    /// IV seed the WAL was attached with (reused when the log is
    /// re-checkpointed after `with_system_mut`).
    wal_seed: u64,
}

/// What [`SharedCsaSystem::recover`] found in the log.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryReport {
    /// Committed epoch the system resumed at.
    pub epoch: u64,
    /// Commit records replayed onto the rebuilt store.
    pub replayed: usize,
    /// Chain-valid records past the RPMB bind, discarded whole.
    pub discarded: usize,
    /// How the log's tail ended (clean / uncommitted / torn / corrupt).
    pub verdict: TailVerdict,
}

impl RecoveryReport {
    /// Deterministic one-line rendering for the monitor audit trail
    /// (`recovery` stream). Recovery is a security-relevant event: the
    /// line attests which committed prefix the system resumed from and
    /// what it threw away, hash-chained like every other audit entry.
    pub fn audit_line(&self) -> String {
        format!(
            "wal recovery: epoch={} replayed={} discarded={} tail={:?}",
            self.epoch, self.replayed, self.discarded, self.verdict
        )
    }
}

/// A [`CsaSystem`] shared across threads via `Arc`, with MVCC snapshot
/// reads and a group-commit write path (see module docs).
pub struct SharedCsaSystem {
    inner: RwLock<CsaSystem>,
    published: Mutex<Published>,
    snapshots: Snapshots,
    write: Mutex<WritePath>,
    /// Set when a flush died mid-way: the base store may hold a partial
    /// group, so everything fail-stops until recovery.
    poisoned: AtomicBool,
}

fn stats_delta(before: PagerStats, after: PagerStats) -> PagerStats {
    PagerStats {
        page_reads: after.page_reads - before.page_reads,
        page_writes: after.page_writes - before.page_writes,
        decrypts: after.decrypts - before.decrypts,
        encrypts: after.encrypts - before.encrypts,
        merkle_nodes: after.merkle_nodes - before.merkle_nodes,
        rpmb_ops: after.rpmb_ops - before.rpmb_ops,
    }
}

impl SharedCsaSystem {
    /// Wrap an already-built system for shared use.
    ///
    /// Disables the base pager's verified-node cache: the shared
    /// decrypted-page cache records each page's first-read pager-stats
    /// delta and replays it on later hits, so per-page deltas must be
    /// independent of which session happened to read first — a warm
    /// Merkle-node cache would make them interleaving-dependent. The
    /// serving layer trades the freshness fast path for deterministic
    /// per-session accounting (single-session systems keep it on).
    pub fn new(system: CsaSystem) -> Self {
        system.storage_db().pager().lock().set_merkle_cache_enabled(false);
        let catalog = system.storage_db().catalog().clone();
        let pages = system.storage_db().pager().lock().num_pages();
        let snapshots = Snapshots::new();
        snapshots.publish(1, pages);
        SharedCsaSystem {
            inner: RwLock::new(system),
            published: Mutex::new(Published { catalog: catalog.clone(), epoch: 1 }),
            snapshots,
            write: Mutex::new(WritePath {
                pending: Arc::new(Mutex::new(PendingTxns::default())),
                buffered: 0,
                group_size: 1,
                catalog,
                wal: None,
                wal_seed: 0,
            }),
            poisoned: AtomicBool::new(false),
        }
    }

    fn check_poison(&self) -> Result<()> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(CsaError::Storage(StorageError::DeviceIo(
                "system poisoned by a failed group-commit flush (recover from the WAL)",
            )));
        }
        Ok(())
    }

    /// True once a failed flush fail-stopped the system.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// The committed epoch readers currently pin.
    pub fn committed_epoch(&self) -> u64 {
        self.published.lock().epoch
    }

    /// The MVCC snapshot registry (diagnostics, metric registration).
    pub fn snapshots(&self) -> &Snapshots {
        &self.snapshots
    }

    /// Flush every `n` accepted transactions (clamped to ≥ 1). The
    /// default of 1 flushes per statement — the pre-WAL behavior every
    /// existing visibility test assumes.
    pub fn set_group_size(&self, n: usize) {
        self.write.lock().group_size = n.max(1);
    }

    /// Run a paper query on an isolated snapshot view, under a
    /// per-request session key. Returns the report plus the run's
    /// telemetry trace. Never blocks on concurrent writers.
    pub fn run_query(
        &self,
        q: &PaperQuery,
        session_key: [u8; 32],
    ) -> Result<(QueryReport, Option<TraceSnapshot>)> {
        self.run_query_with_dop(q, session_key, 1)
    }

    /// [`SharedCsaSystem::run_query`] at an explicit degree of
    /// parallelism. DOP > 1 runs the view's read-only fragments on the
    /// morsel worker pool; reports stay bit-identical to DOP 1.
    pub fn run_query_with_dop(
        &self,
        q: &PaperQuery,
        session_key: [u8; 32],
        dop: usize,
    ) -> Result<(QueryReport, Option<TraceSnapshot>)> {
        self.check_poison()?;
        let guard = self.inner.read();
        let mut view = self.open_snapshot_view(&guard);
        view.set_session_key(session_key);
        view.set_dop(dop);
        let report = view.run_query(q)?;
        Ok((report, view.take_last_trace()))
    }

    /// Pin the committed epoch and open a snapshot view on it. The pin
    /// and the catalog are taken under one `published` lock, so the pair
    /// is always a consistent commit.
    fn open_snapshot_view(&self, guard: &CsaSystem) -> CsaSystem {
        let (pin, catalog) = {
            let p = self.published.lock();
            (self.snapshots.pin(), p.catalog.clone())
        };
        guard.read_view_at(pin, catalog)
    }

    /// Pin the current committed epoch and hand back a long-lived
    /// snapshot view on it. The view keeps serving that epoch — rows and
    /// simulated costs bit-identical to a quiesced run — across any
    /// number of later commits; dropping it releases the retained page
    /// versions.
    pub fn pin_read_view(&self) -> Result<CsaSystem> {
        self.check_poison()?;
        let guard = self.inner.read();
        Ok(self.open_snapshot_view(&guard))
    }

    /// Run one statement: `SELECT`s execute concurrently on snapshot
    /// views; DML/DDL serialize on the write path, execute on a writer
    /// view, and commit through the group buffer.
    pub fn run_statement(
        &self,
        stmt: &Statement,
        session_key: [u8; 32],
    ) -> Result<(QueryReport, Option<TraceSnapshot>)> {
        self.run_statement_with_dop(stmt, session_key, 1)
    }

    /// [`SharedCsaSystem::run_statement`] at an explicit degree of
    /// parallelism (`SELECT`s only; writes always run serially).
    pub fn run_statement_with_dop(
        &self,
        stmt: &Statement,
        session_key: [u8; 32],
        dop: usize,
    ) -> Result<(QueryReport, Option<TraceSnapshot>)> {
        self.check_poison()?;
        if matches!(stmt, Statement::Select(_)) {
            let guard = self.inner.read();
            let mut view = self.open_snapshot_view(&guard);
            view.set_session_key(session_key);
            view.set_dop(dop);
            let report = view.run_statement(stmt)?;
            return Ok((report, view.take_last_trace()));
        }
        // The write path: readers keep running under `inner.read()`; only
        // other writers wait here.
        let mut w = self.write.lock();
        let guard = self.inner.read();
        let mut view = guard.write_view(w.pending.clone(), w.catalog.clone());
        view.set_session_key(session_key);
        // A failed statement dies with its overlay — the group buffer
        // never sees a partial transaction.
        let mut report = view.run_statement(stmt)?;
        let trace = view.take_last_trace();
        let (pages, next_id) = view
            .storage_db()
            .pager()
            .lock()
            .take_txn_pages()
            .expect("writer views always carry an overlay");
        w.catalog = view.storage_db().catalog().clone();
        w.pending.lock().merge(pages, next_id);
        w.buffered += 1;
        if w.buffered >= w.group_size {
            self.flush_locked(&mut w, &guard, Some(&mut report))?;
        }
        Ok((report, trace))
    }

    /// Install a fault plan on the base system *and* the attached WAL
    /// (chaos harnesses drive the `storage.wal.*` / `storage.commit.crash`
    /// sites through here). Unlike [`SharedCsaSystem::with_system_mut`],
    /// this neither flushes nor re-checkpoints — the plan simply governs
    /// whatever runs next.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        let mut w = self.write.lock();
        if let Some(wal) = w.wal.as_mut() {
            wal.set_fault_plan(plan.clone());
        }
        self.inner.write().set_fault_plan(plan);
    }

    /// Force the group buffer out now (drain hooks, shutdown). A no-op
    /// when nothing is buffered.
    pub fn flush(&self) -> Result<()> {
        self.check_poison()?;
        let mut w = self.write.lock();
        let guard = self.inner.read();
        self.flush_locked(&mut w, &guard, None)
    }

    /// Flush the buffered group: retain pre-images for pinned readers,
    /// apply to the base store, journal in the WAL, bind root + WAL head
    /// in one RPMB write, publish the next epoch. Any failure poisons
    /// the system (the base may hold a partial group; recovery replays
    /// the WAL's committed prefix instead).
    fn flush_locked(
        &self,
        w: &mut WritePath,
        sys: &CsaSystem,
        report: Option<&mut QueryReport>,
    ) -> Result<()> {
        if w.buffered == 0 {
            return Ok(());
        }
        let res = self.flush_apply(w, sys, report);
        if res.is_err() {
            self.poisoned.store(true, Ordering::Release);
        }
        res
    }

    fn flush_apply(
        &self,
        w: &mut WritePath,
        sys: &CsaSystem,
        report: Option<&mut QueryReport>,
    ) -> Result<()> {
        let writes = w.pending.lock().drain_sorted();
        let txns = w.buffered as u64;
        w.buffered = 0;
        let next_epoch = self.published.lock().epoch + 1;
        let plan = sys.fault_plan().clone();
        let retry = sys.retry_policy();
        let cache = sys.read_cache();
        let pager = sys.storage_db().pager();
        let journal = w.wal.is_some();
        let wal_bytes_before = w.wal.as_ref().map_or(0, |wal| wal.metrics().bytes.get());

        let stats_before;
        let mut post: Vec<(u64, Vec<u8>)> = Vec::with_capacity(writes.len());
        {
            // One base-lock critical section for the whole apply: pinned
            // readers either see the pre-flush base (their pre-images are
            // retained before each overwrite) or wait out the group —
            // never a half-applied page.
            let mut b = pager.lock();
            stats_before = b.stats();
            let mut num = b.num_pages();
            for (id, data) in &writes {
                if plan.should_fire(FaultSite::CrashCommit) {
                    return Err(CsaError::Storage(StorageError::DeviceIo(
                        "injected crash during group-commit apply",
                    )));
                }
                if *id < num {
                    // Retain the pre-image (and its first-read cost) for
                    // every pin below the epoch this flush publishes.
                    if let Some((img, delta)) = cache.entry(*id) {
                        self.snapshots.retain(*id, img.into(), delta, next_epoch);
                    } else {
                        let mut buf = vec![0u8; b.payload_size()];
                        let before = b.stats();
                        b.read_page(*id, &mut buf)?;
                        let delta = stats_delta(before, b.stats());
                        self.snapshots.retain(*id, buf.into(), delta, next_epoch);
                    }
                    cache.invalidate(*id);
                    b.write_page(*id, data)?;
                } else {
                    let got = b.allocate_page()?;
                    debug_assert_eq!(got, *id, "group buffer allocates densely past the base");
                    num = got + 1;
                    b.write_page(*id, data)?;
                }
                if journal {
                    post.push((*id, b.export_block(*id).expect("journaling base exports blocks")));
                }
            }
        }

        if let Some(wal) = w.wal.as_mut() {
            let rec = CommitRecord {
                epoch: next_epoch,
                root: pager.lock().current_root(),
                writes: post,
                catalog: ironsafe_sql::meta::encode_catalog(&w.catalog),
            };
            let head = retry_with(&plan, &retry, || wal.append_commit(&rec))
                .map_err(CsaError::Storage)?;
            if plan.should_fire(FaultSite::CrashCommit) {
                return Err(CsaError::Storage(StorageError::DeviceIo(
                    "injected crash between WAL append and RPMB bind",
                )));
            }
            // The commit point: root MAC + WAL chain head in ONE RPMB
            // write for the whole group.
            pager.lock().commit_bound(&head).map_err(CsaError::Storage)?;
            wal.metrics().group_commits.inc();
            wal.metrics().txns.add(txns);
        } else {
            if plan.should_fire(FaultSite::CrashCommit) {
                return Err(CsaError::Storage(StorageError::DeviceIo(
                    "injected crash before commit",
                )));
            }
            pager.lock().commit().map_err(CsaError::Storage)?;
        }

        // Publish: new pins land on the next epoch; versions nobody
        // pinned are collected immediately.
        {
            let pages = pager.lock().num_pages();
            let mut p = self.published.lock();
            p.catalog = w.catalog.clone();
            p.epoch = next_epoch;
            self.snapshots.publish(next_epoch, pages);
        }

        // Price the deferred device work into the triggering statement's
        // report — the flush's base-pager I/O, crypto and freshness costs
        // plus the WAL append, amortized over the group by construction.
        if let Some(report) = report {
            let d = stats_delta(stats_before, pager.lock().stats());
            let wal_bytes =
                w.wal.as_ref().map_or(0, |wal| wal.metrics().bytes.get()) - wal_bytes_before;
            let p = sys.params();
            report.breakdown.ndp_ns += (d.page_reads + d.page_writes) as f64
                * p.device_read_ns_per_page
                + (wal_bytes as f64 / BLOCK_SIZE as f64) * p.device_read_ns_per_page;
            report.breakdown.crypto_ns +=
                (d.decrypts * p.decrypt_ns_per_page + d.encrypts * p.encrypt_ns_per_page) as f64;
            report.breakdown.freshness_ns +=
                (d.merkle_nodes * p.merkle_node_ns + d.rpmb_ops * p.rpmb_op_ns) as f64;
        }
        Ok(())
    }

    /// Attach an encrypted group-commit WAL: flushes anything buffered,
    /// then writes a checkpoint record (the full medium image the log's
    /// deltas hang off) and binds its chain head in the RPMB. Requires a
    /// base pager with a database key (the secure pager).
    pub fn attach_wal(&self, rng_seed: u64) -> Result<()> {
        self.check_poison()?;
        let mut w = self.write.lock();
        let guard = self.inner.read();
        self.flush_locked(&mut w, &guard, None)?;
        let res = self.checkpoint_wal_locked(&mut w, &guard, rng_seed);
        if res.is_err() {
            self.poisoned.store(true, Ordering::Release);
        }
        res
    }

    fn checkpoint_wal_locked(
        &self,
        w: &mut WritePath,
        sys: &CsaSystem,
        rng_seed: u64,
    ) -> Result<()> {
        let pager = sys.storage_db().pager();
        let mut wal = pager.lock().make_wal(rng_seed).ok_or(CsaError::Storage(
            StorageError::DeviceIo("base pager has no database key to derive WAL keys from"),
        ))?;
        wal.set_fault_plan(sys.fault_plan().clone());
        let (blocks, root) = {
            let b = pager.lock();
            let blocks = (0..b.num_pages())
                .map(|id| b.export_block(id).expect("journaling base exports blocks"))
                .collect();
            (blocks, b.current_root())
        };
        let cp = Checkpoint {
            epoch: self.published.lock().epoch,
            root,
            blocks,
            catalog: ironsafe_sql::meta::encode_catalog(&w.catalog),
        };
        let plan = sys.fault_plan().clone();
        let retry = sys.retry_policy();
        let head =
            retry_with(&plan, &retry, || wal.append_checkpoint(&cp)).map_err(CsaError::Storage)?;
        pager.lock().commit_bound(&head).map_err(CsaError::Storage)?;
        w.wal = Some(wal);
        w.wal_seed = rng_seed;
        Ok(())
    }

    /// Attach the `mvcc.*` and (when a WAL is attached) `wal.*` counters
    /// to `registry`. Call after [`SharedCsaSystem::attach_wal`].
    pub fn register_wal_metrics(&self, registry: &Registry) {
        self.snapshots.metrics().register(registry);
        if let Some(wal) = self.write.lock().wal.as_ref() {
            wal.metrics().register(registry);
        }
    }

    /// Power-off simulation for crash harnesses: flush *nothing* (the
    /// crash takes the buffer with it), tear the base pager down to its
    /// surviving hardware, and surrender the WAL medium. Recover with
    /// [`SharedCsaSystem::recover`].
    pub fn teardown(self) -> (Option<(TrustZoneDevice, BlockDevice)>, Option<WalMedium>) {
        let SharedCsaSystem { inner, write, .. } = self;
        let mut w = write.into_inner();
        let medium = w.wal.take().map(Wal::into_medium);
        let sys = inner.into_inner();
        let parts = sys.storage_db().pager().lock().take_parts();
        (parts, medium)
    }

    /// Crash recovery: rebuild a serving system from the surviving
    /// TrustZone device and WAL medium. The log's committed prefix (up
    /// to the RPMB-bound chain head) is replayed bit-identically;
    /// torn/unbound/corrupt tails are discarded and reported. The
    /// recovered system gets a fresh WAL with a new checkpoint
    /// (checkpoint-on-recovery), so the old log can be retired.
    pub fn recover(
        config: SystemConfig,
        params: CostParams,
        tz: TrustZoneDevice,
        medium: &WalMedium,
        rng_seed: u64,
        wal_seed: u64,
        group_size: usize,
    ) -> Result<(Self, RecoveryReport)> {
        let (pager, info) = SecurePager::recover(tz, medium, rng_seed).map_err(CsaError::Storage)?;
        let catalog = ironsafe_sql::meta::decode_catalog(&info.catalog)?;
        let db = Database::from_parts(ironsafe_sql::heap::shared(pager), catalog);
        let sys = CsaSystem::from_database(config, db, params);
        let shared = SharedCsaSystem::new(sys);
        // Resume the recovered epoch sequence (new() published epoch 1).
        {
            let pages = shared.inner.read().storage_db().pager().lock().num_pages();
            let mut p = shared.published.lock();
            p.epoch = p.epoch.max(info.epoch);
            shared.snapshots.publish(p.epoch, pages);
        }
        shared.set_group_size(group_size);
        shared.attach_wal(wal_seed)?;
        // Surface what recovery did on the fresh log's counters, so a
        // registry attached post-recovery reports the replay/discard tallies.
        if let Some(wal) = shared.write.lock().wal.as_ref() {
            wal.metrics().replayed.add(info.replayed as u64);
            wal.metrics().discarded.add(info.tail.uncommitted as u64);
        }
        let report = RecoveryReport {
            epoch: shared.committed_epoch(),
            replayed: info.replayed,
            discarded: info.tail.uncommitted,
            verdict: info.tail.verdict,
        };
        Ok((shared, report))
    }

    /// Drain the base pager's TEE-resident flight recorder: the
    /// deterministic forensic event lines recorded by faulted or
    /// violating page accesses, including ones taken through read
    /// views (views delegate their recorder to the shared base). The
    /// serving layer appends these to the monitor audit trail when an
    /// execution fails.
    pub fn take_flight_dump(&self) -> Vec<String> {
        self.inner.read().storage_db().pager().lock().take_flight_dump()
    }

    /// Inspect the underlying system (catalog walks, config checks).
    /// Sees the *published* state plus whatever the group buffer holds —
    /// callers that need transactional consistency should read through
    /// [`SharedCsaSystem::run_statement`] instead.
    pub fn with_system<R>(&self, f: impl FnOnce(&CsaSystem) -> R) -> R {
        f(&self.inner.read())
    }

    /// Exclusive access for loaders and experiments. Buffered
    /// transactions are flushed first so `f` sees fully-applied state;
    /// afterwards the published catalog/epoch are reseeded from whatever
    /// `f` left behind, the page cache is cleared, and an attached WAL
    /// is re-checkpointed (the old log no longer describes the store).
    pub fn with_system_mut<R>(&self, f: impl FnOnce(&mut CsaSystem) -> R) -> R {
        let mut w = self.write.lock();
        if w.buffered > 0 && !self.is_poisoned() {
            let guard = self.inner.read();
            let _ = self.flush_locked(&mut w, &guard, None);
        }
        let r = {
            let mut guard = self.inner.write();
            let r = f(&mut guard);
            let catalog = guard.storage_db().catalog().clone();
            let pages = guard.storage_db().pager().lock().num_pages();
            guard.read_cache().clear();
            {
                let mut p = self.published.lock();
                p.epoch += 1;
                p.catalog = catalog.clone();
                self.snapshots.publish(p.epoch, pages);
            }
            w.catalog = catalog;
            *w.pending.lock() = PendingTxns::default();
            w.buffered = 0;
            r
        };
        if w.wal.is_some() && !self.is_poisoned() {
            let seed = w.wal_seed;
            let guard = self.inner.read();
            if self.checkpoint_wal_locked(&mut w, &guard, seed).is_err() {
                self.poisoned.store(true, Ordering::Release);
            }
        }
        r
    }

    /// Unwrap back into the owned system (flushing the group buffer).
    pub fn into_inner(self) -> CsaSystem {
        {
            let mut w = self.write.lock();
            if w.buffered > 0 && !self.is_poisoned() {
                let guard = self.inner.read();
                let _ = self.flush_locked(&mut w, &guard, None);
            }
        }
        self.inner.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostParams;
    use crate::system::SystemConfig;
    use ironsafe_tpch::queries::paper_queries;
    use std::sync::Arc;

    fn small_system(config: SystemConfig) -> SharedCsaSystem {
        let data = ironsafe_tpch::generate(0.002, 42);
        SharedCsaSystem::new(CsaSystem::build(config, &data, CostParams::default()).unwrap())
    }

    #[test]
    fn view_runs_match_serial_runs() {
        let shared = small_system(SystemConfig::StorageOnlySecure);
        let queries = paper_queries();
        let q = queries.iter().find(|q| q.id == 6).unwrap();
        let key = [7u8; 32];
        let (first, _) = shared.run_query(q, key).unwrap();
        let (second, _) = shared.run_query(q, key).unwrap();
        assert_eq!(first.result, second.result);
        assert_eq!(first.breakdown, second.breakdown);
        // Serial execution on the owned system agrees bit-for-bit.
        let mut owned = shared.into_inner();
        owned.set_session_key(key);
        let serial = owned.run_query(q).unwrap();
        assert_eq!(serial.result, first.result);
        assert_eq!(serial.breakdown, first.breakdown);
    }

    #[test]
    fn concurrent_views_are_deterministic() {
        let shared = Arc::new(small_system(SystemConfig::IronSafe));
        let queries = paper_queries();
        let ids = [1u8, 6, 12];
        let baseline: Vec<_> = ids
            .iter()
            .map(|id| {
                let q = queries.iter().find(|q| q.id == *id).unwrap();
                shared.run_query(q, [9u8; 32]).unwrap().0
            })
            .collect();
        crossbeam::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..3 {
                for id in ids {
                    let shared = Arc::clone(&shared);
                    let q = queries.iter().find(|q| q.id == id).unwrap();
                    handles.push(s.spawn(move |_| (id, shared.run_query(q, [9u8; 32]).unwrap().0)));
                }
            }
            for h in handles {
                let (id, report) = h.join().unwrap();
                let expect = &baseline[ids.iter().position(|i| *i == id).unwrap()];
                assert_eq!(report.result, expect.result, "q{id} result drifted");
                assert_eq!(report.breakdown, expect.breakdown, "q{id} costs drifted");
            }
        })
        .unwrap();
    }

    #[test]
    fn writes_invalidate_reader_state() {
        let shared = small_system(SystemConfig::StorageOnlySecure);
        let before = shared.with_system(|sys| {
            sys.storage_db().catalog().table("region").unwrap().heap.row_count
        });
        let stmt =
            ironsafe_sql::parser::parse_statement("DELETE FROM region WHERE r_regionkey = 0")
                .unwrap();
        shared.run_statement(&stmt, [1u8; 32]).unwrap();
        // A read view created after the write sees the new row count.
        let sel = ironsafe_sql::parser::parse_statement("SELECT COUNT(*) FROM region").unwrap();
        let (report, _) = shared.run_statement(&sel, [1u8; 32]).unwrap();
        match report.result {
            ironsafe_sql::QueryResult::Rows { rows, .. } => {
                assert_eq!(
                    rows[0][0],
                    ironsafe_sql::Value::Int(before as i64 - 1),
                    "view must see committed delete"
                );
            }
            other => panic!("expected rows, got {other:?}"),
        }
    }

    /// A reader pinned before a committed write keeps serving the old
    /// epoch; a reader pinned after sees the new one. The pinned run's
    /// rows and costs are bit-identical to a quiesced run of the same
    /// query at that epoch.
    #[test]
    fn pinned_reader_is_isolated_from_interleaved_writes() {
        let shared = small_system(SystemConfig::StorageOnlySecure);
        let sel = ironsafe_sql::parser::parse_statement("SELECT COUNT(*) FROM region").unwrap();
        let key = [4u8; 32];
        // Quiesced baseline at the initial epoch.
        let (baseline, _) = shared.run_statement(&sel, key).unwrap();

        // Pin a view *before* the write commits.
        let guard = shared.inner.read();
        let mut pinned = shared.open_snapshot_view(&guard);
        pinned.set_session_key(key);
        drop(guard);

        let del = ironsafe_sql::parser::parse_statement("DELETE FROM region").unwrap();
        shared.run_statement(&del, key).unwrap();

        // The pinned view still serves the pre-write epoch, rows and
        // costs bit-identical to the quiesced baseline.
        let pinned_report = pinned.run_statement(&sel).unwrap();
        assert_eq!(pinned_report.result, baseline.result, "snapshot rows drifted");
        assert_eq!(pinned_report.breakdown, baseline.breakdown, "snapshot costs drifted");

        // A fresh reader sees the committed delete.
        let (after, _) = shared.run_statement(&sel, key).unwrap();
        match after.result {
            ironsafe_sql::QueryResult::Rows { rows, .. } => {
                assert_eq!(rows[0][0], ironsafe_sql::Value::Int(0));
            }
            other => panic!("expected rows, got {other:?}"),
        }
    }

    /// Group commit: with `group_size` N, statements buffer until the
    /// Nth, readers see nothing until the flush, then everything at once.
    #[test]
    fn group_commit_defers_visibility_until_flush() {
        let shared = small_system(SystemConfig::StorageOnlySecure);
        shared.set_group_size(3);
        let key = [2u8; 32];
        let sel = ironsafe_sql::parser::parse_statement("SELECT COUNT(*) FROM region").unwrap();
        let rows_of = |r: &QueryReport| match &r.result {
            ironsafe_sql::QueryResult::Rows { rows, .. } => match rows[0][0] {
                ironsafe_sql::Value::Int(n) => n,
                ref other => panic!("expected int, got {other:?}"),
            },
            other => panic!("expected rows, got {other:?}"),
        };
        let before = rows_of(&shared.run_statement(&sel, key).unwrap().0);
        let epoch0 = shared.committed_epoch();
        for k in 0..2 {
            let del = ironsafe_sql::parser::parse_statement(&format!(
                "DELETE FROM region WHERE r_regionkey = {k}"
            ))
            .unwrap();
            shared.run_statement(&del, key).unwrap();
            // Buffered, not committed: readers still see everything.
            assert_eq!(rows_of(&shared.run_statement(&sel, key).unwrap().0), before);
            assert_eq!(shared.committed_epoch(), epoch0, "no epoch before the flush");
        }
        // Third statement fills the group and flushes it.
        let del =
            ironsafe_sql::parser::parse_statement("DELETE FROM region WHERE r_regionkey = 2")
                .unwrap();
        shared.run_statement(&del, key).unwrap();
        assert_eq!(shared.committed_epoch(), epoch0 + 1, "one epoch for the whole group");
        assert_eq!(rows_of(&shared.run_statement(&sel, key).unwrap().0), before - 3);
    }

    /// Writer statements inside one group see their predecessors through
    /// the pending buffer (read-your-group-writes).
    #[test]
    fn writer_sees_buffered_predecessors() {
        let shared = small_system(SystemConfig::StorageOnlySecure);
        shared.set_group_size(10);
        let key = [3u8; 32];
        shared
            .run_statement(
                &ironsafe_sql::parser::parse_statement("CREATE TABLE t (a INT)").unwrap(),
                key,
            )
            .unwrap();
        shared
            .run_statement(
                &ironsafe_sql::parser::parse_statement("INSERT INTO t (a) VALUES (1)").unwrap(),
                key,
            )
            .unwrap();
        // UPDATE must observe the buffered INSERT.
        let (report, _) = shared
            .run_statement(
                &ironsafe_sql::parser::parse_statement("UPDATE t SET a = 2 WHERE a = 1").unwrap(),
                key,
            )
            .unwrap();
        match report.result {
            ironsafe_sql::QueryResult::Count(n) => assert_eq!(n, 1, "buffered row not visible"),
            other => panic!("expected affected count, got {other:?}"),
        }
        shared.flush().unwrap();
        let (after, _) = shared
            .run_statement(
                &ironsafe_sql::parser::parse_statement("SELECT COUNT(*) FROM t WHERE a = 2")
                    .unwrap(),
                key,
            )
            .unwrap();
        match after.result {
            ironsafe_sql::QueryResult::Rows { rows, .. } => {
                assert_eq!(rows[0][0], ironsafe_sql::Value::Int(1));
            }
            other => panic!("expected rows, got {other:?}"),
        }
    }

    /// The WAL round trip at the system level: attach, commit groups,
    /// crash (teardown without flushing), recover, and the recovered
    /// system answers queries over exactly the committed state.
    #[test]
    fn wal_recovery_restores_committed_state() {
        let shared = small_system(SystemConfig::StorageOnlySecure);
        shared.attach_wal(77).unwrap();
        let key = [6u8; 32];
        let del =
            ironsafe_sql::parser::parse_statement("DELETE FROM region WHERE r_regionkey = 0")
                .unwrap();
        shared.run_statement(&del, key).unwrap();
        let sel = ironsafe_sql::parser::parse_statement("SELECT COUNT(*) FROM region").unwrap();
        let (committed, _) = shared.run_statement(&sel, key).unwrap();

        let (parts, medium) = shared.teardown();
        let (tz, _lost_medium) = parts.expect("secure base tears down");
        let medium = medium.expect("WAL attached");
        let (recovered, report) = SharedCsaSystem::recover(
            SystemConfig::StorageOnlySecure,
            CostParams::default(),
            tz,
            &medium,
            91,
            92,
            1,
        )
        .unwrap();
        assert_eq!(report.replayed, 1, "one committed group to replay");
        assert_eq!(report.verdict, TailVerdict::Clean);
        let (after, _) = recovered.run_statement(&sel, key).unwrap();
        assert_eq!(after.result, committed.result, "recovered rows drifted");
    }
}
