//! One simulated storage node: its own pager stack, trust root and
//! fault plan.
//!
//! Every node in the federation is built exactly the way a single-node
//! [`CsaSystem`](ironsafe_csa::CsaSystem) builds its storage side —
//! secure configurations get a fresh TrustZone device from a
//! per-federation manufacturer (own HUK, own RPMB, own device
//! certificate) under a [`SecurePager`] with its own Merkle tree; the
//! non-secure baselines get a [`PlainPager`]. A node's attestation
//! record is the verification of its device certificate against the
//! manufacturer root, checked at build time and re-checked before a
//! replica is promoted.

use crate::{Result, ScaleError};
use ironsafe_crypto::group::Group;
use ironsafe_csa::CostParams;
use ironsafe_faults::FaultPlan;
use ironsafe_sql::db::Database;
use ironsafe_sql::schema::{Row, Schema};
use ironsafe_sql::value::Value;
use ironsafe_storage::pager::{PagerStats, PlainPager};
use ironsafe_storage::SecurePager;
use ironsafe_tee::trustzone::Manufacturer;
use parking_lot::Mutex;
use rand::SeedableRng;

/// Outcome of verifying a node's device certificate against the
/// federation's pinned manufacturer root.
#[derive(Debug, Clone)]
pub struct AttestationRecord {
    /// The attested device identity.
    pub device_id: String,
    /// Whether the certificate chain verified.
    pub verified: bool,
}

/// One storage node holding one shard's partition (primary or replica).
pub struct ShardNode {
    /// Node identity (also the TrustZone device id).
    pub id: String,
    /// Shard this node serves.
    pub shard: usize,
    /// Position in the shard's failover chain (0 = primary).
    pub replica: usize,
    db: Mutex<Database>,
    attestation: Mutex<AttestationRecord>,
    /// Expected row count per table, pinned at load time — what a
    /// promoted replica is re-verified against.
    pub row_counts: Vec<(String, u64)>,
}

impl ShardNode {
    /// Build and load a node. `tables` holds the shard's gid-augmented
    /// partition of every table, in load order. With `compressed` set,
    /// pages are compressed before encrypt+MAC (see
    /// [`ironsafe_storage::CompressedPager`]) — result rows are
    /// unchanged, physical page/crypto counters shrink honestly.
    pub fn build(
        shard: usize,
        replica: usize,
        secure: bool,
        compressed: bool,
        params: &CostParams,
        tables: &[(String, Schema, Vec<Row>)],
    ) -> Result<ShardNode> {
        let id = format!("shard{shard}-node{replica}");
        let seed = 0x5CA1_E000u64 + (shard as u64) * 64 + replica as u64;
        let (mut db, attestation) = if secure {
            let group = Group::modp_1024();
            let mfr = Manufacturer::from_seed(&group, b"ironsafe-scale-vendor");
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let device = mfr.make_device(&id, 8, &mut rng);
            let verified = device.device_cert.verify(&group, &mfr.root_public()).is_ok();
            let record = AttestationRecord { device_id: device.device_id.clone(), verified };
            let pager = SecurePager::create(device, seed)
                .map_err(|e| ScaleError::Csa(ironsafe_csa::CsaError::Storage(e)))?;
            let db = if compressed {
                Database::new(ironsafe_storage::CompressedPager::new(pager))
            } else {
                Database::new(pager)
            };
            (db, record)
        } else {
            let record = AttestationRecord { device_id: id.clone(), verified: true };
            let db = if compressed {
                Database::new(ironsafe_storage::CompressedPager::new(PlainPager::new()))
            } else {
                Database::new(PlainPager::new())
            };
            (db, record)
        };
        let mut row_counts = Vec::with_capacity(tables.len());
        for (name, schema, rows) in tables {
            db.create_table(name, schema.clone())?;
            db.insert_rows(name, rows.clone())?;
            row_counts.push((name.clone(), rows.len() as u64));
        }
        db.reset_pager_stats();
        db.pager().lock().set_merkle_cache_capacity(
            ironsafe_tee::sgx::epc::verified_node_cache_capacity(params.epc_limit_bytes as u64),
        );
        db.pager().lock().set_flight_budget(params.epc_limit_bytes as u64);
        Ok(ShardNode {
            id,
            shard,
            replica,
            db: Mutex::new(db),
            attestation: Mutex::new(attestation),
            row_counts,
        })
    }

    /// Run `f` against the node's database.
    pub fn with_db<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        f(&mut self.db.lock())
    }

    /// Current pager counters.
    pub fn stats(&self) -> PagerStats {
        self.db.lock().pager_stats()
    }

    /// Whether the node's device certificate verified against the
    /// manufacturer root.
    pub fn attested(&self) -> bool {
        self.attestation.lock().verified
    }

    /// A copy of the attestation record.
    pub fn attestation(&self) -> AttestationRecord {
        self.attestation.lock().clone()
    }

    /// Mark the node's attestation as failed (test hook: simulates a
    /// device whose certificate no longer verifies).
    pub fn poison_attestation(&self) {
        self.attestation.lock().verified = false;
    }

    /// Install a fault plan on the node's pager (device, page-integrity
    /// and freshness fault sites).
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.db.lock().pager().lock().set_fault_plan(plan);
    }

    /// Drain the node's TEE-resident flight recorder.
    pub fn take_flight_dump(&self) -> Vec<String> {
        self.db.lock().pager().lock().take_flight_dump()
    }

    /// Re-verify the node's partition by scanning every table through
    /// its (secure) read path and comparing row counts against the
    /// pinned load-time counts. Returns the pages read doing so, or the
    /// failure reason.
    pub fn reverify(&self) -> std::result::Result<u64, String> {
        let mut db = self.db.lock();
        let before = db.pager_stats();
        for (table, expected) in &self.row_counts {
            let result = db
                .execute(&format!("SELECT COUNT(*) FROM {table}"))
                .map_err(|e| format!("re-verification scan of {table} failed: {e}"))?;
            let got = match result.rows().first().and_then(|r| r.first()) {
                Some(Value::Int(n)) => *n as u64,
                other => return Err(format!("re-verification of {table}: bad count {other:?}")),
            };
            if got != *expected {
                return Err(format!(
                    "re-verification of {table}: {got} rows, expected {expected}"
                ));
            }
        }
        Ok(db.pager_stats().page_reads - before.page_reads)
    }
}
