//! Heap-file row storage on fixed-size pages.
//!
//! Each table is a list of page ids. A page payload holds a small header
//! (`u32` used bytes, `u16` row count) followed by length-prefixed encoded
//! rows. Bulk loads buffer whole pages in memory before writing — one page
//! write per filled page — while single-row appends read-modify-write the
//! tail page, like SQLite's append path.

use crate::schema::Row;
use crate::value::encode_value;
use crate::{Result, SqlError};
use ironsafe_storage::pager::{PageId, Pager};
use parking_lot::Mutex;
use std::sync::Arc;

/// Shared, lockable pager handle used across operators.
pub type SharedPager = Arc<Mutex<dyn Pager + Send>>;

/// Wrap a pager for shared use.
pub fn shared<P: Pager + Send + 'static>(pager: P) -> SharedPager {
    Arc::new(Mutex::new(pager))
}

const HEADER: usize = 6; // u32 used + u16 nrows

/// A table's page list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeapFile {
    /// Pages owned by this heap, in order.
    pub pages: Vec<PageId>,
    /// Total rows stored.
    pub row_count: u64,
}

fn encode_row(row: &Row) -> Vec<u8> {
    let mut buf = Vec::with_capacity(row.len() * 12);
    for v in row {
        encode_value(v, &mut buf);
    }
    buf
}

/// Walk the encoded records of a heap-page payload, handing each
/// record's encoded bytes to `visit`. This is the **one** page codec:
/// every decode view — scratch-row scan ([`scan_page_rows`]), owned-row
/// decode ([`decode_page_rows`]), columnar decode
/// ([`scan_page_columns`]) — shares these bounds checks. The header is
/// attacker-controlled on a tampered medium, so every field is bounded
/// before any slicing; corruption is an error, never a panic.
pub fn for_each_record(payload: &[u8], mut visit: impl FnMut(&[u8]) -> Result<()>) -> Result<()> {
    if payload.len() < HEADER {
        return Err(SqlError::Eval("corrupt heap page: shorter than header".into()));
    }
    let used = u32::from_be_bytes(payload[0..4].try_into().expect("4")) as usize;
    let nrows = u16::from_be_bytes(payload[4..6].try_into().expect("2")) as usize;
    if used < HEADER || used > payload.len() {
        return Err(SqlError::Eval("corrupt heap page: used bytes out of bounds".into()));
    }
    let mut pos = HEADER;
    for _ in 0..nrows {
        if pos + 4 > used {
            return Err(SqlError::Eval("corrupt heap page: truncated record header".into()));
        }
        let len = u32::from_be_bytes(payload[pos..pos + 4].try_into().expect("4")) as usize;
        pos += 4;
        let end = pos + len;
        if end > used {
            return Err(SqlError::Eval("corrupt heap page: record overruns page".into()));
        }
        visit(&payload[pos..end])?;
        pos = end;
    }
    Ok(())
}

/// Decode one encoded record into `ncols` values via `push`, rejecting
/// trailing bytes (a record that decodes short or long is corrupt).
fn decode_record(
    record: &[u8],
    ncols: usize,
    mut push: impl FnMut(crate::value::RawValue<'_>) -> Result<()>,
) -> Result<()> {
    let mut vpos = 0;
    for _ in 0..ncols {
        push(crate::value::decode_value_raw(record, &mut vpos)?)?;
    }
    if vpos != record.len() {
        return Err(SqlError::Eval("corrupt heap page: record length mismatch".into()));
    }
    Ok(())
}

/// Walk every row of an encoded heap-page payload, reusing `scratch`
/// for the decoded values so a full-page scan performs no per-row `Vec`
/// allocation. The visitor borrows each row only until it returns;
/// callers keep survivors by cloning (the morsel scanner's filter path
/// clones only rows that pass the predicate).
pub fn scan_page_rows(
    payload: &[u8],
    ncols: usize,
    scratch: &mut Row,
    mut visit: impl FnMut(&Row) -> Result<()>,
) -> Result<()> {
    for_each_record(payload, |record| {
        scratch.clear();
        decode_record(record, ncols, |raw| {
            scratch.push(raw.to_value());
            Ok(())
        })?;
        visit(&*scratch)
    })
}

/// Decode every row of an encoded heap-page payload into freshly
/// allocated rows. Public for the codec benchmarks, which compare it
/// against the allocation-free [`scan_page_rows`] path.
pub fn decode_page_rows(payload: &[u8], ncols: usize) -> Result<Vec<Row>> {
    let mut rows = Vec::new();
    let mut scratch: Row = Vec::with_capacity(ncols);
    scan_page_rows(payload, ncols, &mut scratch, |row| {
        rows.push(row.clone());
        Ok(())
    })?;
    Ok(rows)
}

/// Columnar decode view: append every row of an encoded heap-page
/// payload to `batch`, cell by cell into typed column vectors. Same
/// codec and bounds checks as [`scan_page_rows`] (both ride
/// [`for_each_record`]); text cells go straight into the batch's byte
/// arena without a per-cell `String`.
pub fn scan_page_columns(
    payload: &[u8],
    ncols: usize,
    batch: &mut crate::batch::ColumnBatch,
) -> Result<()> {
    debug_assert_eq!(batch.width(), ncols);
    for_each_record(payload, |record| {
        let mut col = 0;
        decode_record(record, ncols, |raw| {
            batch.push_cell(col, raw);
            col += 1;
            Ok(())
        })?;
        batch.finish_row()
    })
}

impl HeapFile {
    /// An empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pages.
    pub fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Append many rows, buffering page-at-a-time.
    pub fn append_rows<I>(&mut self, pager: &SharedPager, rows: I) -> Result<()>
    where
        I: IntoIterator<Item = Row>,
    {
        let mut pager = pager.lock();
        let payload_size = pager.payload_size();
        let mut page = vec![0u8; payload_size];
        let mut used = HEADER;
        let mut nrows: u16 = 0;
        // Start by loading the tail page if it has room.
        let mut tail_page: Option<PageId> = self.pages.last().copied();
        if let Some(id) = tail_page {
            pager.read_page(id, &mut page)?;
            used = u32::from_be_bytes(page[0..4].try_into().expect("4")) as usize;
            nrows = u16::from_be_bytes(page[4..6].try_into().expect("2"));
        }
        let flush = |pager: &mut dyn Pager, page: &mut [u8], id: PageId, used: usize, nrows: u16| -> Result<()> {
            page[0..4].copy_from_slice(&(used as u32).to_be_bytes());
            page[4..6].copy_from_slice(&nrows.to_be_bytes());
            pager.write_page(id, page)?;
            Ok(())
        };
        for row in rows {
            let rec = encode_row(&row);
            if rec.len() + 4 > payload_size - HEADER {
                return Err(SqlError::Eval(format!(
                    "row of {} bytes exceeds page payload",
                    rec.len()
                )));
            }
            if used + 4 + rec.len() > payload_size || nrows == u16::MAX {
                // Flush current page and start a new one.
                if let Some(id) = tail_page {
                    flush(&mut *pager, &mut page, id, used, nrows)?;
                }
                tail_page = Some(pager.allocate_page()?);
                page.iter_mut().for_each(|b| *b = 0);
                used = HEADER;
                nrows = 0;
                if self.pages.last() != tail_page.as_ref() {
                    self.pages.push(tail_page.expect("just set"));
                }
            } else if tail_page.is_none() {
                tail_page = Some(pager.allocate_page()?);
                self.pages.push(tail_page.expect("just set"));
            }
            page[used..used + 4].copy_from_slice(&(rec.len() as u32).to_be_bytes());
            page[used + 4..used + 4 + rec.len()].copy_from_slice(&rec);
            used += 4 + rec.len();
            nrows += 1;
            self.row_count += 1;
        }
        if let Some(id) = tail_page {
            flush(&mut *pager, &mut page, id, used, nrows)?;
        }
        Ok(())
    }

    /// Append one row.
    pub fn append_row(&mut self, pager: &SharedPager, row: Row) -> Result<()> {
        self.append_rows(pager, std::iter::once(row))
    }

    /// Read every row of one page.
    pub fn read_page_rows(&self, pager: &SharedPager, page_index: usize, ncols: usize) -> Result<Vec<Row>> {
        let id = *self
            .pages
            .get(page_index)
            .ok_or_else(|| SqlError::Eval(format!("heap page index {page_index} out of range")))?;
        let mut pager = pager.lock();
        let mut payload = vec![0u8; pager.payload_size()];
        pager.read_page(id, &mut payload)?;
        decode_page_rows(&payload, ncols)
    }

    /// Materialize all rows (test/debug convenience; scans stream instead).
    pub fn all_rows(&self, pager: &SharedPager, ncols: usize) -> Result<Vec<Row>> {
        let mut out = Vec::with_capacity(self.row_count as usize);
        for i in 0..self.pages.len() {
            out.extend(self.read_page_rows(pager, i, ncols)?);
        }
        Ok(out)
    }

    /// Replace the heap's contents with `rows`, reusing existing pages.
    pub fn rewrite(&mut self, pager: &SharedPager, rows: Vec<Row>) -> Result<()> {
        // Clear bookkeeping but keep the allocated pages for reuse.
        let old_pages = std::mem::take(&mut self.pages);
        self.row_count = 0;
        // Write rows through a fresh heap that draws from `old_pages` first.
        let payload_size = pager.lock().payload_size();
        let mut page = vec![0u8; payload_size];
        let mut old_iter = old_pages.into_iter();
        let mut used = HEADER;
        let mut nrows: u16 = 0;
        let mut cur: Option<PageId> = None;
        {
            let mut pager = pager.lock();
            for row in rows {
                let rec = encode_row(&row);
                if rec.len() + 4 > payload_size - HEADER {
                    return Err(SqlError::Eval("row exceeds page payload".into()));
                }
                if cur.is_none() || used + 4 + rec.len() > payload_size || nrows == u16::MAX {
                    if let Some(id) = cur {
                        page[0..4].copy_from_slice(&(used as u32).to_be_bytes());
                        page[4..6].copy_from_slice(&nrows.to_be_bytes());
                        pager.write_page(id, &page)?;
                    }
                    let id = match old_iter.next() {
                        Some(id) => id,
                        None => pager.allocate_page()?,
                    };
                    self.pages.push(id);
                    cur = Some(id);
                    page.iter_mut().for_each(|b| *b = 0);
                    used = HEADER;
                    nrows = 0;
                }
                page[used..used + 4].copy_from_slice(&(rec.len() as u32).to_be_bytes());
                page[used + 4..used + 4 + rec.len()].copy_from_slice(&rec);
                used += 4 + rec.len();
                nrows += 1;
                self.row_count += 1;
            }
            if let Some(id) = cur {
                page[0..4].copy_from_slice(&(used as u32).to_be_bytes());
                page[4..6].copy_from_slice(&nrows.to_be_bytes());
                pager.write_page(id, &page)?;
            }
            // Zero any leftover old pages so stale rows are unreachable.
            for id in old_iter {
                let zeros = vec![0u8; payload_size];
                pager.write_page(id, &zeros)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use ironsafe_storage::pager::PlainPager;

    fn pager() -> SharedPager {
        shared(PlainPager::new())
    }

    fn row(i: i64) -> Row {
        vec![Value::Int(i), Value::Text(format!("row-{i}")), Value::Float(i as f64 / 2.0)]
    }

    #[test]
    fn append_and_scan_roundtrip() {
        let p = pager();
        let mut heap = HeapFile::new();
        heap.append_rows(&p, (0..100).map(row)).unwrap();
        assert_eq!(heap.row_count, 100);
        let rows = heap.all_rows(&p, 3).unwrap();
        assert_eq!(rows.len(), 100);
        assert_eq!(rows[42], row(42));
    }

    #[test]
    fn spans_multiple_pages() {
        let p = pager();
        let mut heap = HeapFile::new();
        // Rows with ~500-byte strings force several per-page boundaries.
        let big = |i: i64| vec![Value::Int(i), Value::Text("x".repeat(500))];
        heap.append_rows(&p, (0..50).map(big)).unwrap();
        assert!(heap.page_count() > 1, "got {} pages", heap.page_count());
        let rows = heap.all_rows(&p, 2).unwrap();
        assert_eq!(rows.len(), 50);
        assert_eq!(rows[49][0], Value::Int(49));
    }

    #[test]
    fn single_row_appends_continue_tail_page() {
        let p = pager();
        let mut heap = HeapFile::new();
        for i in 0..10 {
            heap.append_row(&p, row(i)).unwrap();
        }
        assert_eq!(heap.page_count(), 1, "small rows share one page");
        assert_eq!(heap.all_rows(&p, 3).unwrap().len(), 10);
    }

    #[test]
    fn oversized_row_rejected() {
        let p = pager();
        let mut heap = HeapFile::new();
        let huge = vec![Value::Text("y".repeat(10_000))];
        assert!(heap.append_row(&p, huge).is_err());
    }

    #[test]
    fn rewrite_shrinks_and_reuses_pages() {
        let p = pager();
        let mut heap = HeapFile::new();
        let big = |i: i64| vec![Value::Int(i), Value::Text("x".repeat(500))];
        heap.append_rows(&p, (0..50).map(big)).unwrap();
        let pages_before = p.lock().num_pages();

        // Delete all but 3 rows.
        heap.rewrite(&p, (0..3).map(big).collect()).unwrap();
        assert_eq!(heap.row_count, 3);
        assert_eq!(heap.all_rows(&p, 2).unwrap().len(), 3);
        assert_eq!(p.lock().num_pages(), pages_before, "no new pages allocated");
    }

    #[test]
    fn rewrite_grows_when_needed() {
        let p = pager();
        let mut heap = HeapFile::new();
        heap.append_rows(&p, (0..5).map(row)).unwrap();
        let big = |i: i64| vec![Value::Int(i), Value::Text("x".repeat(500))];
        heap.rewrite(&p, (0..100).map(big).collect()).unwrap();
        assert_eq!(heap.all_rows(&p, 2).unwrap().len(), 100);
        assert!(heap.page_count() > 1);
    }

    #[test]
    fn empty_heap_scans_empty() {
        let p = pager();
        let heap = HeapFile::new();
        assert!(heap.all_rows(&p, 3).unwrap().is_empty());
    }

    #[test]
    fn null_values_roundtrip() {
        let p = pager();
        let mut heap = HeapFile::new();
        heap.append_row(&p, vec![Value::Null, Value::Int(1), Value::Null]).unwrap();
        let rows = heap.all_rows(&p, 3).unwrap();
        assert!(rows[0][0].is_null());
        assert!(rows[0][2].is_null());
    }

    #[test]
    fn corrupt_used_field_is_an_error_not_a_panic() {
        // `used` far beyond the page must error cleanly, not slice-panic.
        let mut payload = vec![0u8; 256];
        payload[0..4].copy_from_slice(&100_000u32.to_be_bytes());
        payload[4..6].copy_from_slice(&5u16.to_be_bytes());
        assert!(matches!(decode_page_rows(&payload, 3), Err(SqlError::Eval(_))));
        // `used` smaller than the header is equally invalid.
        payload[0..4].copy_from_slice(&2u32.to_be_bytes());
        assert!(matches!(decode_page_rows(&payload, 3), Err(SqlError::Eval(_))));
        // A payload shorter than the header cannot be decoded at all.
        assert!(matches!(decode_page_rows(&[0u8; 3], 1), Err(SqlError::Eval(_))));
    }

    #[test]
    fn scratch_scan_visits_same_rows_as_decode() {
        let p = pager();
        let mut heap = HeapFile::new();
        heap.append_rows(&p, (0..40).map(row)).unwrap();
        let mut payload = vec![0u8; p.lock().payload_size()];
        p.lock().read_page(heap.pages[0], &mut payload).unwrap();
        let decoded = decode_page_rows(&payload, 3).unwrap();
        let mut visited = Vec::new();
        let mut scratch = Vec::new();
        scan_page_rows(&payload, 3, &mut scratch, |r| {
            visited.push(r.clone());
            Ok(())
        })
        .unwrap();
        assert_eq!(visited, decoded);
    }

    #[test]
    fn works_over_secure_pager() {
        use ironsafe_crypto::group::Group;
        use ironsafe_storage::SecurePager;
        use ironsafe_tee::trustzone::Manufacturer;
        use rand::SeedableRng;
        let group = Group::modp_1024();
        let mfr = Manufacturer::from_seed(&group, b"acme");
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let dev = mfr.make_device("s0", 8, &mut rng);
        let p = shared(SecurePager::create(dev, 42).unwrap());
        let mut heap = HeapFile::new();
        heap.append_rows(&p, (0..200).map(row)).unwrap();
        let rows = heap.all_rows(&p, 3).unwrap();
        assert_eq!(rows.len(), 200);
        assert_eq!(rows[123], row(123));
        let stats = p.lock().stats();
        assert!(stats.encrypts > 0);
        assert!(stats.decrypts > 0);
    }
}
