//! The secure host↔storage channel.
//!
//! The paper runs TLS over TCP between host and storage, with a fresh
//! session key per client request (§5 "Networking layer"). This module
//! implements the record layer: rows serialize into length-prefixed
//! records, each record is AES-128-CTR encrypted and HMAC'd under keys
//! derived from the monitor-distributed session key, and byte/message
//! counters feed the cost model.

use crate::{CsaError, Result};
use ironsafe_crypto::aes::Aes128;
use ironsafe_faults::{FaultPlan, FaultSite};
use ironsafe_obs::{Counter, Registry};
use ironsafe_crypto::hkdf;
use ironsafe_crypto::hmac::hmac_sha256_concat;
use ironsafe_crypto::modes::ctr_xor;
use ironsafe_sql::value::{decode_value, encode_value};
use ironsafe_sql::{Row, Schema};

/// An encrypted record on the wire.
#[derive(Debug, Clone)]
pub struct Record {
    /// Record sequence number (replay protection).
    pub seq: u64,
    /// Ciphertext.
    pub payload: Vec<u8>,
    /// HMAC over `seq ‖ payload`.
    pub mac: [u8; 32],
}

/// One direction of the secure channel.
pub struct SecureChannel {
    enc_key: [u8; 16],
    mac_key: [u8; 32],
    next_seq: u64,
    expect_seq: u64,
    /// Total plaintext bytes carried.
    pub bytes_sent: u64,
    /// Records sent.
    pub messages: u64,
    bytes_counter: Counter,
    messages_counter: Counter,
    fault_plan: FaultPlan,
}

impl SecureChannel {
    /// Derive channel keys from the monitor's session key.
    pub fn new(session_key: &[u8; 32]) -> Self {
        SecureChannel {
            enc_key: hkdf::derive_key_128(session_key, b"channel-enc"),
            mac_key: hkdf::derive_key_256(session_key, b"channel-mac"),
            next_seq: 0,
            expect_seq: 0,
            bytes_sent: 0,
            messages: 0,
            bytes_counter: Counter::new(),
            messages_counter: Counter::new(),
            fault_plan: FaultPlan::none(),
        }
    }

    /// Install a fault plan on the receive path (see
    /// [`SecureChannel::recv_rows`]).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = plan;
    }

    /// Next sequence number this endpoint will accept. Exposed so tests
    /// can assert the replay window does **not** advance on rejected
    /// records (which is what makes retransmission sound).
    pub fn expect_seq(&self) -> u64 {
        self.expect_seq
    }

    /// Attach this direction's live counters to `registry` as
    /// `csa.net.bytes` / `csa.net.messages`.
    pub fn register_metrics(&self, registry: &Registry) {
        registry.register_counter("csa.net.bytes", &self.bytes_counter);
        registry.register_counter("csa.net.messages", &self.messages_counter);
    }

    fn nonce(&self, seq: u64) -> [u8; 16] {
        let mut n = [0u8; 16];
        n[..8].copy_from_slice(&seq.to_be_bytes());
        n
    }

    /// Encrypt raw bytes into a record.
    pub fn seal(&mut self, plain: &[u8]) -> Record {
        let seq = self.next_seq;
        self.next_seq += 1;
        let aes = Aes128::new(&self.enc_key);
        let mut payload = plain.to_vec();
        ctr_xor(&aes, &self.nonce(seq), &mut payload);
        let mac = hmac_sha256_concat(&self.mac_key, &[&seq.to_be_bytes(), &payload]);
        let wire_bytes = payload.len() as u64 + 8 + 32;
        self.bytes_sent += wire_bytes;
        self.messages += 1;
        self.bytes_counter.add(wire_bytes);
        self.messages_counter.inc();
        Record { seq, payload, mac }
    }

    /// Authenticate and decrypt a record (enforcing in-order delivery).
    pub fn open(&mut self, record: &Record) -> Result<Vec<u8>> {
        if record.seq != self.expect_seq {
            return Err(CsaError::Channel("record out of order or replayed"));
        }
        let expect = hmac_sha256_concat(&self.mac_key, &[&record.seq.to_be_bytes(), &record.payload]);
        if !ironsafe_crypto::ct_eq(&expect, &record.mac) {
            return Err(CsaError::Channel("record MAC mismatch"));
        }
        self.expect_seq += 1;
        let aes = Aes128::new(&self.enc_key);
        let mut plain = record.payload.clone();
        ctr_xor(&aes, &self.nonce(record.seq), &mut plain);
        Ok(plain)
    }

    /// Serialize and seal a batch of rows (the sender side of "ship
    /// filtered records to the host").
    pub fn seal_rows(&mut self, schema: &Schema, rows: &[Row]) -> Record {
        let mut buf = Vec::with_capacity(rows.len() * 32 + 16);
        buf.extend_from_slice(&(schema.len() as u32).to_be_bytes());
        buf.extend_from_slice(&(rows.len() as u64).to_be_bytes());
        for row in rows {
            for v in row {
                encode_value(v, &mut buf);
            }
        }
        self.seal(&buf)
    }

    /// Receive a row record across the (simulated) wire: applies the
    /// fault plan's transit faults, then [`SecureChannel::open_rows`].
    ///
    /// Faults perturb a *cloned* record — the sender's pristine record
    /// survives, and because `expect_seq` only advances on successful
    /// authentication, retransmitting the identical record after a
    /// rejection succeeds (same seq, same nonce, same ciphertext: a
    /// straight retransmission, no nonce reuse with new plaintext).
    pub fn recv_rows(&mut self, record: &Record) -> Result<Vec<Row>> {
        if self.fault_plan.should_fire(FaultSite::ChannelDrop) {
            return Err(CsaError::Channel("record lost in transit (receive timeout)"));
        }
        if self.fault_plan.should_fire(FaultSite::ChannelCorrupt) {
            let mut r = record.clone();
            if let Some(b) = r.payload.first_mut() {
                *b ^= 0x40;
            } else {
                r.mac[0] ^= 0x40;
            }
            return self.open_rows(&r);
        }
        if self.fault_plan.should_fire(FaultSite::ChannelReorder) {
            let mut r = record.clone();
            r.seq = r.seq.wrapping_add(1);
            return self.open_rows(&r);
        }
        self.open_rows(record)
    }

    /// Open a record and deserialize its rows.
    pub fn open_rows(&mut self, record: &Record) -> Result<Vec<Row>> {
        let plain = self.open(record)?;
        if plain.len() < 12 {
            return Err(CsaError::Channel("short row batch"));
        }
        let ncols = u32::from_be_bytes(plain[0..4].try_into().expect("4")) as usize;
        let nrows = u64::from_be_bytes(plain[4..12].try_into().expect("8")) as usize;
        let mut pos = 12;
        let mut rows = Vec::with_capacity(nrows);
        for _ in 0..nrows {
            let mut row = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                row.push(
                    decode_value(&plain, &mut pos)
                        .map_err(|_| CsaError::Channel("corrupt row encoding"))?,
                );
            }
            rows.push(row);
        }
        Ok(rows)
    }
}

/// A connected pair of channel endpoints sharing a session key.
pub fn channel_pair(session_key: &[u8; 32]) -> (SecureChannel, SecureChannel) {
    (SecureChannel::new(session_key), SecureChannel::new(session_key))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ironsafe_sql::schema::Column;
    use ironsafe_sql::value::{DataType, Value};

    fn schema() -> Schema {
        Schema::new(vec![Column::new("a", DataType::Int), Column::new("b", DataType::Text)])
    }

    fn rows() -> Vec<Row> {
        (0..50).map(|i| vec![Value::Int(i), Value::Text(format!("row {i}"))]).collect()
    }

    #[test]
    fn rows_roundtrip() {
        let (mut tx, mut rx) = channel_pair(&[9; 32]);
        let rec = tx.seal_rows(&schema(), &rows());
        let got = rx.open_rows(&rec).unwrap();
        assert_eq!(got, rows());
        assert!(tx.bytes_sent > 0);
        assert_eq!(tx.messages, 1);
    }

    #[test]
    fn payload_is_encrypted_on_the_wire() {
        let (mut tx, _) = channel_pair(&[9; 32]);
        let rec = tx.seal(b"SELECT secret FROM people");
        let hay = rec.payload.windows(6).any(|w| w == b"SELECT");
        assert!(!hay, "plaintext must not appear in the record");
    }

    #[test]
    fn tampered_record_rejected() {
        let (mut tx, mut rx) = channel_pair(&[9; 32]);
        let mut rec = tx.seal(b"hello");
        rec.payload[0] ^= 1;
        assert!(rx.open(&rec).is_err());
    }

    #[test]
    fn wrong_session_key_rejected() {
        let (mut tx, _) = channel_pair(&[9; 32]);
        let (_, mut rx) = channel_pair(&[8; 32]);
        let rec = tx.seal(b"hello");
        assert!(rx.open(&rec).is_err());
    }

    #[test]
    fn replayed_record_rejected() {
        let (mut tx, mut rx) = channel_pair(&[9; 32]);
        let rec = tx.seal(b"one");
        rx.open(&rec).unwrap();
        assert!(rx.open(&rec).is_err(), "same seq twice");
    }

    #[test]
    fn reordered_records_rejected() {
        let (mut tx, mut rx) = channel_pair(&[9; 32]);
        let _first = tx.seal(b"one");
        let second = tx.seal(b"two");
        assert!(rx.open(&second).is_err(), "skipping seq 0");
    }

    #[test]
    fn empty_batch_roundtrips() {
        let (mut tx, mut rx) = channel_pair(&[1; 32]);
        let rec = tx.seal_rows(&schema(), &[]);
        assert!(rx.open_rows(&rec).unwrap().is_empty());
    }

    #[test]
    fn null_values_cross_the_wire() {
        let (mut tx, mut rx) = channel_pair(&[1; 32]);
        let rows = vec![vec![Value::Null, Value::Text("x".into())]];
        let rec = tx.seal_rows(&schema(), &rows);
        let got = rx.open_rows(&rec).unwrap();
        assert!(got[0][0].is_null());
    }

    /// Satellite: replayed, reordered and truncated records must each
    /// return a typed `CsaError` (never a panic), and `expect_seq` must
    /// not advance on any rejection.
    #[test]
    fn adversarial_records_are_typed_errors_and_do_not_advance_seq() {
        let (mut tx, mut rx) = channel_pair(&[9; 32]);
        let first = tx.seal_rows(&schema(), &rows());
        rx.open_rows(&first).unwrap();
        assert_eq!(rx.expect_seq(), 1);

        // Replay of an already-accepted record.
        match rx.open_rows(&first) {
            Err(CsaError::Channel(_)) => {}
            other => panic!("replay must be a typed channel error, got {other:?}"),
        }
        assert_eq!(rx.expect_seq(), 1, "replay must not advance expect_seq");

        // Reordered (future-sequence) record.
        let _skipped = tx.seal_rows(&schema(), &rows());
        let future = tx.seal_rows(&schema(), &rows());
        match rx.open_rows(&future) {
            Err(CsaError::Channel(_)) => {}
            other => panic!("reorder must be a typed channel error, got {other:?}"),
        }
        assert_eq!(rx.expect_seq(), 1, "reorder must not advance expect_seq");

        // Truncated record: payload cut mid-stream (MAC now fails).
        let mut truncated = _skipped.clone();
        truncated.payload.truncate(truncated.payload.len() / 2);
        match rx.open_rows(&truncated) {
            Err(CsaError::Channel(_)) => {}
            other => panic!("truncation must be a typed channel error, got {other:?}"),
        }
        assert_eq!(rx.expect_seq(), 1, "truncation must not advance expect_seq");

        // The pristine in-order record still authenticates afterwards —
        // rejection left the channel state fully usable.
        let got = rx.open_rows(&_skipped).unwrap();
        assert_eq!(got, rows());
        assert_eq!(rx.expect_seq(), 2);
    }

    #[test]
    fn short_authenticated_payload_is_a_typed_error() {
        // Seal a raw 3-byte payload and open it through the row parser:
        // authentication passes, framing fails — typed error, no panic.
        let (mut tx, mut rx) = channel_pair(&[4; 32]);
        let rec = tx.seal(b"abc");
        match rx.open_rows(&rec) {
            Err(CsaError::Channel(m)) => assert_eq!(m, "short row batch"),
            other => panic!("expected short-batch error, got {other:?}"),
        }
        // open() succeeded before framing failed, so seq advanced — the
        // record authenticated; only the framing above it was bad.
        assert_eq!(rx.expect_seq(), 1);
    }

    #[test]
    fn injected_transit_faults_reject_then_pristine_retransmit_succeeds() {
        let (mut tx, mut rx) = channel_pair(&[7; 32]);
        // Fire one of each transit fault on the first three receives.
        // Arrival counts are per-site, and a fired site short-circuits
        // the later ones, so scheduling each site's own first arrival
        // yields drop, then corrupt, then reorder on calls 1..3.
        rx.set_fault_plan(
            FaultPlan::seeded(31)
                .with_nth(FaultSite::ChannelDrop, 1)
                .with_nth(FaultSite::ChannelCorrupt, 1)
                .with_nth(FaultSite::ChannelReorder, 1),
        );
        let rec = tx.seal_rows(&schema(), &rows());
        for expect in ["lost in transit", "MAC mismatch", "out of order"] {
            match rx.recv_rows(&rec) {
                Err(CsaError::Channel(m)) => {
                    assert!(m.contains(expect), "wanted {expect:?} in {m:?}")
                }
                other => panic!("expected channel error, got {other:?}"),
            }
            assert_eq!(rx.expect_seq(), 0, "no rejection may advance expect_seq");
        }
        // Fourth delivery of the *same pristine record* goes through.
        let got = rx.recv_rows(&rec).unwrap();
        assert_eq!(got, rows());
        assert_eq!(rx.expect_seq(), 1);
    }
}
