//! Policy AST.

/// Permission a rule grants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Perm {
    /// Read (SELECT) access.
    Read,
    /// Write (INSERT/UPDATE/DELETE) access.
    Write,
    /// Execution-environment constraints (checked before any query runs).
    Exec,
}

impl std::fmt::Display for Perm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Perm::Read => write!(f, "read"),
            Perm::Write => write!(f, "write"),
            Perm::Exec => write!(f, "exec"),
        }
    }
}

/// The paper's predicate vocabulary (Table 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// `sessionKeyIs(K)` — the requesting client's identity key is `K`.
    SessionKeyIs(String),
    /// `storageLocIs(l)` — the storage node is located in region `l`.
    StorageLocIs(String),
    /// `hostLocIs(l)` — the host node is located in region `l`.
    HostLocIs(String),
    /// `fwVersionStorage(v)` — storage firmware version ≥ `v`.
    FwVersionStorage(u32),
    /// `fwVersionHost(v)` — host firmware version ≥ `v`.
    FwVersionHost(u32),
    /// `le(T, TIMESTAMP)` — only records whose expiry `TIMESTAMP` is at or
    /// after the access time `T` may be touched (GDPR anti-pattern #1).
    /// Obligation: the monitor injects an expiry filter.
    Le,
    /// `reuseMap(m)` — only records whose reuse bitmap opts in to the
    /// requesting service may be touched (anti-pattern #2). Obligation:
    /// the monitor injects a bitmap filter for the client's service bit.
    ReuseMap,
    /// `logUpdate(l, K, Q)` — the identity key and query must be appended
    /// to audit log `l` (anti-pattern #3). Obligation: the monitor logs.
    LogUpdate {
        /// Log name.
        log: String,
    },
}

/// A condition tree over predicates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cond {
    /// A single predicate.
    Pred(Predicate),
    /// All must hold (`&`).
    And(Box<Cond>, Box<Cond>),
    /// Any may hold (`|`).
    Or(Box<Cond>, Box<Cond>),
}

/// One rule: `perm :- condition`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyRule {
    /// Granted permission.
    pub perm: Perm,
    /// Condition under which it is granted.
    pub cond: Cond,
}

/// A full policy: several rules; a permission is granted if *any* of its
/// rules is satisfied, and denied when no rule for it exists.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PolicySet {
    /// The rules in source order.
    pub rules: Vec<PolicyRule>,
}

impl PolicySet {
    /// Rules granting `perm`.
    pub fn rules_for(&self, perm: Perm) -> impl Iterator<Item = &PolicyRule> {
        self.rules.iter().filter(move |r| r.perm == perm)
    }

    /// Does the policy mention `perm` at all?
    pub fn mentions(&self, perm: Perm) -> bool {
        self.rules.iter().any(|r| r.perm == perm)
    }
}
