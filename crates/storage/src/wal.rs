//! Encrypted, HMAC-chained write-ahead log with group commit.
//!
//! The non-blocking write path (§4.1 extended): a writer applies a
//! transaction's pages to the secure medium, journals the *physical*
//! post-images into this log, and — once per group of N transactions —
//! binds the Merkle root and the log's chain-head MAC to the RPMB in one
//! authenticated write. After a crash, [`recover_medium`](Wal::recover_medium)
//! rebuilds the medium from the checkpoint image and replays exactly the
//! commit records covered by the RPMB-bound head: a torn or truncated
//! tail is discarded as a typed verdict, never replayed half-way.
//!
//! The record chain follows the `monitor::audit` idiom — domain-tagged
//! HMAC over `seq ‖ prev_mac ‖ ciphertext` — but the payload is
//! additionally AES-CBC encrypted (the log lives on the same untrusted
//! device class as the pages) and the chain head is freshness-protected
//! by the RPMB instead of a countersignature.

use crate::blockdev::{BlockDevice, BLOCK_SIZE};
use crate::merkle::NodeHash;
use crate::pager::PageId;
use crate::{Result, StorageError};
use ironsafe_crypto::aes::Aes128;
use ironsafe_crypto::hmac::hmac_sha256_concat;
use ironsafe_crypto::modes::{cbc_decrypt, cbc_encrypt};
use ironsafe_faults::{FaultPlan, FaultSite};
use ironsafe_obs::{Counter, Registry};
use rand::{Rng, SeedableRng};

/// Domain-separation tag for the WAL chain MAC.
const CHAIN_TAG: &[u8] = b"ironsafe-wal-v1";
/// Record type tags.
const TAG_CHECKPOINT: u8 = 1;
const TAG_COMMIT: u8 = 2;
/// Frame overhead besides the ciphertext: IV + chain MAC.
const FRAME_FIXED: usize = 16 + 32;

/// The chain head of an empty log (nothing ever committed).
pub const EMPTY_HEAD: [u8; 32] = [0u8; 32];

/// Live telemetry counters for the WAL (`wal.*` metric names).
#[derive(Clone, Default)]
pub struct WalMetrics {
    /// Records appended (`wal.append`).
    pub appends: Counter,
    /// Bytes appended, frames included (`wal.append.bytes`).
    pub bytes: Counter,
    /// Group-commit flushes — batched RPMB binds (`wal.group_commit`).
    pub group_commits: Counter,
    /// Transactions folded into group commits (`wal.txn`).
    pub txns: Counter,
    /// Commit records replayed by recovery (`wal.recover.replayed`).
    pub replayed: Counter,
    /// Tail records discarded by recovery (`wal.recover.discarded`).
    pub discarded: Counter,
}

impl WalMetrics {
    /// Attach every cell to `registry` under its `wal.*` name.
    pub fn register(&self, registry: &Registry) {
        registry.register_counter("wal.append", &self.appends);
        registry.register_counter("wal.append.bytes", &self.bytes);
        registry.register_counter("wal.group_commit", &self.group_commits);
        registry.register_counter("wal.txn", &self.txns);
        registry.register_counter("wal.recover.replayed", &self.replayed);
        registry.register_counter("wal.recover.discarded", &self.discarded);
    }
}

/// The untrusted append-only byte log the WAL lives on.
///
/// Byte- rather than block-granular: a crash mid-append leaves a torn
/// frame at an arbitrary byte offset, which is exactly the failure mode
/// recovery must classify. The `raw_*` methods are the attacker/chaos
/// interface, mirroring [`BlockDevice`]'s.
#[derive(Clone, Default, Debug)]
pub struct WalMedium {
    bytes: Vec<u8>,
}

impl WalMedium {
    /// Fresh empty log medium.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes on the medium.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when nothing was ever appended.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The raw log bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Append `data` (the honest device path).
    pub fn append(&mut self, data: &[u8]) {
        self.bytes.extend_from_slice(data);
    }

    /// Attacker/crash interface: drop everything past `len` bytes.
    pub fn raw_truncate(&mut self, len: usize) {
        self.bytes.truncate(len);
    }

    /// Attacker interface: XOR one byte.
    pub fn raw_tamper(&mut self, offset: usize, xor: u8) {
        if let Some(b) = self.bytes.get_mut(offset) {
            *b ^= xor;
        }
    }

    /// Snapshot the full medium (for rollback experiments).
    pub fn raw_snapshot(&self) -> Vec<u8> {
        self.bytes.clone()
    }

    /// Restore a snapshot taken with [`WalMedium::raw_snapshot`].
    pub fn raw_restore(&mut self, snapshot: Vec<u8>) {
        self.bytes = snapshot;
    }
}

/// One committed transaction group's journal entry: the physical
/// post-images of every page the group touched, plus the catalog bytes
/// and the Merkle root the medium must hash to after replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitRecord {
    /// Root epoch this commit publishes.
    pub epoch: u64,
    /// Merkle root over the medium *after* this record is applied.
    pub root: NodeHash,
    /// `(page id, raw on-medium block)` post-images, in apply order:
    /// in-place writes first, then appends in ascending id order, so
    /// replay can grow the device one block at a time.
    pub writes: Vec<(PageId, Vec<u8>)>,
    /// Serialized catalog current at this commit.
    pub catalog: Vec<u8>,
}

/// The checkpoint record: the full medium image the log's commit records
/// are deltas against, written once when the WAL is attached.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// Root epoch at attach time.
    pub epoch: u64,
    /// Merkle root of the checkpointed medium.
    pub root: NodeHash,
    /// Every block of the medium, in id order.
    pub blocks: Vec<Vec<u8>>,
    /// Serialized catalog at attach time.
    pub catalog: Vec<u8>,
}

/// What recovery found past the committed prefix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TailVerdict {
    /// The log ends exactly at the committed head.
    Clean,
    /// Chain-valid records past the head: appended but never RPMB-bound
    /// (crash between WAL append and the batched bind). Discarded whole.
    Uncommitted,
    /// A partial frame past the head (crash mid-append). Discarded.
    Torn,
    /// Bytes past the head that fail chain-MAC or decode (offline
    /// tampering of the uncommitted tail). Discarded.
    Corrupt,
}

/// Typed report on the discarded tail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TailReport {
    /// Complete, chain-valid records discarded as uncommitted.
    pub uncommitted: usize,
    /// How the tail ended.
    pub verdict: TailVerdict,
}

/// Everything recovery reconstructs from checkpoint + committed prefix.
pub struct RecoveredState {
    /// The rebuilt medium, bit-identical to the crashed one's committed
    /// prefix state.
    pub device: BlockDevice,
    /// Root epoch of the last committed record.
    pub epoch: u64,
    /// Merkle root the rebuilt medium must verify against (and the RPMB
    /// holds).
    pub root: NodeHash,
    /// Catalog bytes current at the last committed record.
    pub catalog: Vec<u8>,
    /// Commit records replayed.
    pub replayed: usize,
    /// What was discarded past the committed boundary.
    pub tail: TailReport,
}

/// What [`crate::SecurePager::recover`] hands back alongside the reopened
/// pager: the engine-level state the pager itself does not own.
#[derive(Clone, Debug)]
pub struct RecoveryInfo {
    /// Root epoch of the last committed record.
    pub epoch: u64,
    /// Catalog bytes current at the last committed record.
    pub catalog: Vec<u8>,
    /// Commit records replayed onto the rebuilt medium.
    pub replayed: usize,
    /// What was discarded past the committed boundary.
    pub tail: TailReport,
}

fn derive_keys(db_key: &[u8; 16]) -> (Aes128, [u8; 32]) {
    let enc = ironsafe_crypto::hkdf::derive_key_128(db_key, b"wal-enc");
    let mac = ironsafe_crypto::hkdf::derive_key_256(db_key, b"wal-mac");
    (Aes128::new(&enc), mac)
}

fn chain_mac(mac_key: &[u8; 32], seq: u64, prev: &[u8; 32], iv: &[u8], ct: &[u8]) -> [u8; 32] {
    hmac_sha256_concat(mac_key, &[CHAIN_TAG, &seq.to_be_bytes(), prev, iv, ct])
}

/// The writer-side log handle.
pub struct Wal {
    medium: WalMedium,
    aes: Aes128,
    mac_key: [u8; 32],
    next_seq: u64,
    head: [u8; 32],
    rng: rand::rngs::StdRng,
    fault_plan: FaultPlan,
    metrics: WalMetrics,
}

impl Wal {
    /// Fresh log keyed from the database key. `rng_seed` drives the
    /// record IVs (deterministic for a given seed, like the pager's).
    pub fn new(db_key: &[u8; 16], rng_seed: u64) -> Self {
        let (aes, mac_key) = derive_keys(db_key);
        Wal {
            medium: WalMedium::new(),
            aes,
            mac_key,
            next_seq: 0,
            head: EMPTY_HEAD,
            rng: rand::rngs::StdRng::seed_from_u64(rng_seed),
            fault_plan: FaultPlan::none(),
            metrics: WalMetrics::default(),
        }
    }

    /// Install the fault plan driving the `storage.wal.*` sites.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = plan;
    }

    /// Handles onto the live `wal.*` telemetry counters.
    pub fn metrics(&self) -> &WalMetrics {
        &self.metrics
    }

    /// Chain-head MAC of the last appended record ([`EMPTY_HEAD`] when
    /// the log is empty). This is the value the group commit binds to
    /// the RPMB next to the Merkle root.
    pub fn head(&self) -> [u8; 32] {
        self.head
    }

    /// Records appended so far.
    pub fn len(&self) -> u64 {
        self.next_seq
    }

    /// True when no record was ever appended.
    pub fn is_empty(&self) -> bool {
        self.next_seq == 0
    }

    /// The untrusted log medium (attacker/crash interface).
    pub fn medium(&self) -> &WalMedium {
        &self.medium
    }

    /// Mutable medium access (attacker/crash interface).
    pub fn medium_mut(&mut self) -> &mut WalMedium {
        &mut self.medium
    }

    /// Tear the log down to its surviving medium (power-off); recover
    /// with [`Wal::recover_medium`].
    pub fn into_medium(self) -> WalMedium {
        self.medium
    }

    /// Take the medium out of a shared handle (crash harness), leaving
    /// an empty husk behind.
    pub fn take_medium(&mut self) -> WalMedium {
        self.next_seq = 0;
        self.head = EMPTY_HEAD;
        std::mem::take(&mut self.medium)
    }

    /// Append the checkpoint record (must be the first record).
    pub fn append_checkpoint(&mut self, cp: &Checkpoint) -> Result<[u8; 32]> {
        debug_assert_eq!(self.next_seq, 0, "checkpoint must open the log");
        let mut plain = Vec::with_capacity(cp.blocks.len() * BLOCK_SIZE + cp.catalog.len() + 64);
        plain.push(TAG_CHECKPOINT);
        plain.extend_from_slice(&cp.epoch.to_be_bytes());
        plain.extend_from_slice(&cp.root);
        plain.extend_from_slice(&(cp.blocks.len() as u32).to_be_bytes());
        for block in &cp.blocks {
            debug_assert_eq!(block.len(), BLOCK_SIZE);
            plain.extend_from_slice(block);
        }
        plain.extend_from_slice(&(cp.catalog.len() as u32).to_be_bytes());
        plain.extend_from_slice(&cp.catalog);
        self.append_record(&plain)
    }

    /// Append one transaction group's commit record.
    pub fn append_commit(&mut self, rec: &CommitRecord) -> Result<[u8; 32]> {
        debug_assert!(self.next_seq > 0, "commit records follow the checkpoint");
        let mut plain =
            Vec::with_capacity(rec.writes.len() * (8 + BLOCK_SIZE) + rec.catalog.len() + 64);
        plain.push(TAG_COMMIT);
        plain.extend_from_slice(&rec.epoch.to_be_bytes());
        plain.extend_from_slice(&rec.root);
        plain.extend_from_slice(&(rec.writes.len() as u32).to_be_bytes());
        for (id, block) in &rec.writes {
            debug_assert_eq!(block.len(), BLOCK_SIZE);
            plain.extend_from_slice(&id.to_be_bytes());
            plain.extend_from_slice(block);
        }
        plain.extend_from_slice(&(rec.catalog.len() as u32).to_be_bytes());
        plain.extend_from_slice(&rec.catalog);
        self.append_record(&plain)
    }

    /// Encrypt, chain and append one record. The `WalAppend` fault fires
    /// *before* anything is written (a transient device error the caller
    /// retries); the `WalTear` fault writes a strict prefix of the frame
    /// and fails permanently — the crash-mid-append artifact recovery
    /// has to discard.
    fn append_record(&mut self, plain: &[u8]) -> Result<[u8; 32]> {
        if self.fault_plan.should_fire(FaultSite::WalAppend) {
            return Err(StorageError::DeviceIo("injected WAL append error"));
        }
        let mut iv = [0u8; 16];
        self.rng.fill(&mut iv);
        let ct = cbc_encrypt(&self.aes, &iv, plain);
        let mac = chain_mac(&self.mac_key, self.next_seq, &self.head, &iv, &ct);
        let body_len = FRAME_FIXED + ct.len();
        let mut frame = Vec::with_capacity(4 + body_len);
        frame.extend_from_slice(&(body_len as u32).to_be_bytes());
        frame.extend_from_slice(&iv);
        frame.extend_from_slice(&ct);
        frame.extend_from_slice(&mac);
        if self.fault_plan.should_fire(FaultSite::WalTear) {
            // Crash mid-append: a strict, non-empty prefix lands on the
            // medium. The cut point comes off the deterministic rng so a
            // seeded storm tears reproducibly.
            let cut = 1 + (self.rng.gen::<usize>() % (frame.len() - 1));
            self.medium.append(&frame[..cut]);
            return Err(StorageError::WalTorn("injected torn WAL append (crash mid-append)"));
        }
        self.medium.append(&frame);
        self.head = mac;
        self.next_seq += 1;
        self.metrics.appends.inc();
        self.metrics.bytes.add(frame.len() as u64);
        Ok(mac)
    }

    /// Replay `medium` against the RPMB-bound `committed_head` and
    /// rebuild the block device state as of the last committed record.
    ///
    /// Errors are typed and total:
    /// * committed prefix unreachable (truncated below the bound, or a
    ///   bad chain MAC before the head) → [`StorageError::WalCorrupt`] /
    ///   [`StorageError::WalTorn`] — the log cannot restore the state
    ///   the RPMB attests, which is itself a rollback signal;
    /// * anything *past* the head — torn frame, tamper, chain-valid but
    ///   unbound records — is discarded and reported in
    ///   [`RecoveredState::tail`], never replayed.
    pub fn recover_medium(
        db_key: &[u8; 16],
        medium: &WalMedium,
        committed_head: &[u8; 32],
    ) -> Result<RecoveredState> {
        if committed_head == &EMPTY_HEAD {
            return Err(StorageError::WalCorrupt("RPMB holds no committed WAL head"));
        }
        let (aes, mac_key) = derive_keys(db_key);
        let bytes = medium.bytes();
        let mut off = 0usize;
        let mut seq = 0u64;
        let mut prev = EMPTY_HEAD;
        let mut reached = false;
        let mut checkpoint: Option<Checkpoint> = None;
        let mut commits: Vec<CommitRecord> = Vec::new();
        let mut tail = TailReport { uncommitted: 0, verdict: TailVerdict::Clean };

        while off < bytes.len() {
            // Frame header + body must be fully present.
            let frame_ok = bytes.len() - off >= 4;
            let body_len = if frame_ok {
                u32::from_be_bytes(bytes[off..off + 4].try_into().expect("4 bytes")) as usize
            } else {
                0
            };
            if !frame_ok || body_len < FRAME_FIXED || bytes.len() - off - 4 < body_len {
                if reached {
                    tail.verdict = TailVerdict::Torn;
                    break;
                }
                return Err(StorageError::WalTorn(
                    "WAL torn below the committed head (committed state unrecoverable)",
                ));
            }
            let body = &bytes[off + 4..off + 4 + body_len];
            let (iv, rest) = body.split_at(16);
            let (ct, mac) = rest.split_at(body_len - FRAME_FIXED);
            let expect = chain_mac(&mac_key, seq, &prev, iv, ct);
            if !ironsafe_crypto::ct_eq(&expect, mac) {
                if reached {
                    tail.verdict = TailVerdict::Corrupt;
                    break;
                }
                return Err(StorageError::WalCorrupt(
                    "WAL chain MAC mismatch below the committed head",
                ));
            }
            let iv: [u8; 16] = iv.try_into().expect("16-byte IV");
            let decoded = cbc_decrypt(&aes, &iv, ct)
                .ok()
                .and_then(|plain| decode_record(&plain, seq, checkpoint.is_some()));
            let record = match decoded {
                Some(r) => r,
                None => {
                    if reached {
                        tail.verdict = TailVerdict::Corrupt;
                        break;
                    }
                    return Err(StorageError::WalCorrupt(
                        "undecodable WAL record below the committed head",
                    ));
                }
            };
            if reached {
                // Chain-valid but past the RPMB bind: never committed.
                tail.uncommitted += 1;
                tail.verdict = TailVerdict::Uncommitted;
            } else {
                match record {
                    Record::Checkpoint(cp) => checkpoint = Some(cp),
                    Record::Commit(c) => commits.push(c),
                }
                if ironsafe_crypto::ct_eq(&expect, committed_head) {
                    reached = true;
                }
            }
            prev = mac.try_into().expect("32-byte chain MAC");
            seq += 1;
            off += 4 + body_len;
        }

        if !reached {
            return Err(StorageError::WalCorrupt(
                "committed WAL head not found in the log (truncated or forked)",
            ));
        }
        let checkpoint = checkpoint
            .ok_or(StorageError::WalCorrupt("WAL has no checkpoint record"))?;

        // Rebuild the medium: checkpoint image, then each commit's
        // physical post-images in order.
        let mut device = BlockDevice::new();
        for block in &checkpoint.blocks {
            let id = device.append_block();
            let arr: &[u8; BLOCK_SIZE] =
                block.as_slice().try_into().map_err(|_| {
                    StorageError::WalCorrupt("checkpoint block of the wrong size")
                })?;
            device.write_block(id, arr)?;
        }
        let (mut epoch, mut root, mut catalog) =
            (checkpoint.epoch, checkpoint.root, checkpoint.catalog);
        for rec in &commits {
            for (id, block) in &rec.writes {
                let arr: &[u8; BLOCK_SIZE] =
                    block.as_slice().try_into().map_err(|_| {
                        StorageError::WalCorrupt("commit post-image of the wrong size")
                    })?;
                if *id == device.num_blocks() {
                    device.append_block();
                } else if *id > device.num_blocks() {
                    return Err(StorageError::WalCorrupt(
                        "commit record writes past the end of the device",
                    ));
                }
                device.write_block(*id, arr)?;
            }
            epoch = rec.epoch;
            root = rec.root;
            catalog = rec.catalog.clone();
        }
        Ok(RecoveredState { device, epoch, root, catalog, replayed: commits.len(), tail })
    }
}

enum Record {
    Checkpoint(Checkpoint),
    Commit(CommitRecord),
}

/// Strict decode of one plaintext record; `None` on any malformation
/// (wrong tag for its position, short buffer, trailing garbage).
fn decode_record(plain: &[u8], seq: u64, have_checkpoint: bool) -> Option<Record> {
    let mut cur = Cursor { buf: plain, off: 0 };
    let tag = cur.u8()?;
    let epoch = cur.u64()?;
    let root: NodeHash = cur.take(32)?.try_into().ok()?;
    match tag {
        TAG_CHECKPOINT if seq == 0 => {
            let n = cur.u32()? as usize;
            let mut blocks = Vec::with_capacity(n);
            for _ in 0..n {
                blocks.push(cur.take(BLOCK_SIZE)?.to_vec());
            }
            let cat_len = cur.u32()? as usize;
            let catalog = cur.take(cat_len)?.to_vec();
            cur.done()?;
            Some(Record::Checkpoint(Checkpoint { epoch, root, blocks, catalog }))
        }
        TAG_COMMIT if seq > 0 && have_checkpoint => {
            let n = cur.u32()? as usize;
            let mut writes = Vec::with_capacity(n);
            for _ in 0..n {
                let id = cur.u64()?;
                writes.push((id, cur.take(BLOCK_SIZE)?.to_vec()));
            }
            let cat_len = cur.u32()? as usize;
            let catalog = cur.take(cat_len)?.to_vec();
            cur.done()?;
            Some(Record::Commit(CommitRecord { epoch, root, writes, catalog }))
        }
        _ => None,
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    off: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.buf.len() - self.off < n {
            return None;
        }
        let s = &self.buf[self.off..self.off + n];
        self.off += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| u32::from_be_bytes(s.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| u64::from_be_bytes(s.try_into().expect("8 bytes")))
    }

    fn done(&self) -> Option<()> {
        (self.off == self.buf.len()).then_some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DB_KEY: [u8; 16] = [7u8; 16];

    fn block(tag: u8) -> Vec<u8> {
        let mut b = vec![0u8; BLOCK_SIZE];
        b[0] = tag;
        b[BLOCK_SIZE - 1] = tag;
        b
    }

    fn checkpoint() -> Checkpoint {
        Checkpoint {
            epoch: 1,
            root: [0x11; 32],
            blocks: vec![block(1), block(2)],
            catalog: b"cat-0".to_vec(),
        }
    }

    fn commit(epoch: u64, writes: Vec<(PageId, Vec<u8>)>) -> CommitRecord {
        CommitRecord {
            epoch,
            root: [epoch as u8; 32],
            writes,
            catalog: format!("cat-{epoch}").into_bytes(),
        }
    }

    /// Append checkpoint + `n` commits, return (wal, per-record heads).
    fn build(n: u64) -> (Wal, Vec<[u8; 32]>) {
        let mut wal = Wal::new(&DB_KEY, 5);
        let mut heads = vec![wal.append_checkpoint(&checkpoint()).unwrap()];
        for e in 0..n {
            let rec = commit(2 + e, vec![(0, block(10 + e as u8)), (2 + e, block(20 + e as u8))]);
            heads.push(wal.append_commit(&rec).unwrap());
        }
        (wal, heads)
    }

    #[test]
    fn roundtrip_checkpoint_and_commits() {
        let (wal, heads) = build(3);
        let state = Wal::recover_medium(&DB_KEY, wal.medium(), heads.last().unwrap()).unwrap();
        assert_eq!(state.replayed, 3);
        assert_eq!(state.epoch, 4);
        assert_eq!(state.root, [4u8; 32]);
        assert_eq!(state.catalog, b"cat-4");
        assert_eq!(state.tail, TailReport { uncommitted: 0, verdict: TailVerdict::Clean });
        // Page 0 holds the last post-image; appends grew the device.
        assert_eq!(state.device.num_blocks(), 5);
        assert_eq!(state.device.raw_read(0).unwrap()[0], 12);
        assert_eq!(state.device.raw_read(1).unwrap()[0], 2);
        assert_eq!(state.device.raw_read(4).unwrap()[0], 22);
    }

    #[test]
    fn log_is_encrypted_on_the_medium() {
        let (wal, _) = build(1);
        let raw = wal.medium().bytes();
        // The catalog strings and block tags must not appear in clear.
        assert!(!raw.windows(5).any(|w| w == b"cat-0"), "catalog bytes encrypted");
        assert!(!raw.windows(5).any(|w| w == b"cat-2"));
    }

    #[test]
    fn uncommitted_tail_is_discarded_with_verdict() {
        let (wal, heads) = build(3);
        // RPMB only ever saw the first commit's head: the last two
        // records are chain-valid but unbound.
        let state = Wal::recover_medium(&DB_KEY, wal.medium(), &heads[1]).unwrap();
        assert_eq!(state.replayed, 1);
        assert_eq!(state.epoch, 2);
        assert_eq!(state.catalog, b"cat-2");
        assert_eq!(state.tail, TailReport { uncommitted: 2, verdict: TailVerdict::Uncommitted });
        assert_eq!(state.device.num_blocks(), 3, "unbound appends not replayed");
    }

    #[test]
    fn torn_tail_is_discarded_with_verdict() {
        let (mut wal, heads) = build(2);
        let committed = heads[2];
        let len_before = wal.medium().len();
        let _ = wal.append_commit(&commit(9, vec![(0, block(99))])).unwrap();
        // Crash mid-append: only part of the last frame persisted.
        let torn_len = len_before + (wal.medium().len() - len_before) / 2;
        wal.medium_mut().raw_truncate(torn_len);
        let state = Wal::recover_medium(&DB_KEY, wal.medium(), &committed).unwrap();
        assert_eq!(state.replayed, 2);
        assert_eq!(state.tail, TailReport { uncommitted: 0, verdict: TailVerdict::Torn });
        assert_eq!(state.device.raw_read(0).unwrap()[0], 11, "torn record not applied");
    }

    #[test]
    fn tampered_tail_is_discarded_with_verdict() {
        let (mut wal, heads) = build(2);
        let committed = heads[1];
        let tamper_at = wal.medium().len() - 10;
        wal.medium_mut().raw_tamper(tamper_at, 0xff);
        let state = Wal::recover_medium(&DB_KEY, wal.medium(), &committed).unwrap();
        assert_eq!(state.replayed, 1);
        assert_eq!(state.tail.verdict, TailVerdict::Corrupt);
    }

    #[test]
    fn truncation_below_committed_head_is_typed_torn() {
        let (mut wal, heads) = build(2);
        let committed = *heads.last().unwrap();
        let torn = wal.medium().len() - 7;
        wal.medium_mut().raw_truncate(torn);
        assert!(matches!(
            Wal::recover_medium(&DB_KEY, wal.medium(), &committed),
            Err(StorageError::WalTorn(_))
        ));
    }

    #[test]
    fn tamper_below_committed_head_is_typed_corrupt() {
        let (mut wal, heads) = build(2);
        let committed = *heads.last().unwrap();
        wal.medium_mut().raw_tamper(40, 0x01);
        assert!(matches!(
            Wal::recover_medium(&DB_KEY, wal.medium(), &committed),
            Err(StorageError::WalCorrupt(_))
        ));
    }

    #[test]
    fn frame_boundary_truncation_that_hides_the_head_is_corrupt() {
        // Drop the last record *exactly* on its frame boundary: every
        // surviving byte is valid, but the bound head is gone — a
        // rollback of the log, and typed as corruption.
        let (mut wal, heads) = build(2);
        let committed = *heads.last().unwrap();
        let mut medium = wal.take_medium();
        // Recompute where record 2's frame starts by re-parsing lengths.
        let bytes = medium.raw_snapshot();
        let mut off = 0;
        for _ in 0..2 {
            let l = u32::from_be_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
            off += 4 + l;
        }
        medium.raw_truncate(off);
        assert!(matches!(
            Wal::recover_medium(&DB_KEY, &medium, &committed),
            Err(StorageError::WalCorrupt(_))
        ));
    }

    #[test]
    fn wrong_key_cannot_replay() {
        let (wal, heads) = build(1);
        assert!(matches!(
            Wal::recover_medium(&[8u8; 16], wal.medium(), heads.last().unwrap()),
            Err(StorageError::WalCorrupt(_))
        ));
    }

    #[test]
    fn zero_head_is_typed() {
        let (wal, _) = build(1);
        assert!(matches!(
            Wal::recover_medium(&DB_KEY, wal.medium(), &EMPTY_HEAD),
            Err(StorageError::WalCorrupt(_))
        ));
    }

    #[test]
    fn injected_append_fault_is_transient_and_writes_nothing() {
        use ironsafe_faults::Transient;
        let mut wal = Wal::new(&DB_KEY, 5);
        wal.append_checkpoint(&checkpoint()).unwrap();
        let len = wal.medium().len();
        wal.set_fault_plan(FaultPlan::seeded(3).with_nth(FaultSite::WalAppend, 1));
        let e = wal.append_commit(&commit(2, vec![(0, block(1))])).unwrap_err();
        assert!(e.is_transient(), "WalAppend is a retryable device error");
        assert_eq!(wal.medium().len(), len, "failed append wrote nothing");
        // The plan fired once; the retry succeeds and chains correctly.
        let head = wal.append_commit(&commit(2, vec![(0, block(1))])).unwrap();
        let state = Wal::recover_medium(&DB_KEY, wal.medium(), &head).unwrap();
        assert_eq!(state.replayed, 1);
    }

    #[test]
    fn injected_tear_leaves_classifiable_partial_frame() {
        use ironsafe_faults::Transient;
        let mut wal = Wal::new(&DB_KEY, 5);
        let committed = wal.append_checkpoint(&checkpoint()).unwrap();
        let len = wal.medium().len();
        wal.set_fault_plan(FaultPlan::seeded(4).with_nth(FaultSite::WalTear, 1));
        let e = wal.append_commit(&commit(2, vec![(0, block(1))])).unwrap_err();
        assert!(matches!(e, StorageError::WalTorn(_)));
        assert!(!e.is_transient(), "a tear is a crash artifact, not a flaky bus");
        assert!(wal.medium().len() > len, "a strict prefix landed");
        let state = Wal::recover_medium(&DB_KEY, wal.medium(), &committed).unwrap();
        assert_eq!(state.replayed, 0);
        assert_eq!(state.tail.verdict, TailVerdict::Torn);
    }

    #[test]
    fn metrics_count_appends_and_bytes() {
        let (wal, _) = build(2);
        assert_eq!(wal.metrics().appends.get(), 3);
        assert_eq!(wal.metrics().bytes.get() as usize, wal.medium().len());
    }

    #[test]
    fn same_seed_same_log_bytes() {
        let (a, _) = build(2);
        let (b, _) = build(2);
        assert_eq!(a.medium().bytes(), b.medium().bytes(), "IV stream is seed-deterministic");
    }
}
