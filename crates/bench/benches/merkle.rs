//! Merkle-tree benchmarks, including the arity ablation called out in
//! DESIGN.md: wider nodes trade fewer levels (shorter freshness paths)
//! for bigger per-node HMACs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ironsafe_storage::merkle::MerkleTree;

fn macs(n: usize) -> Vec<[u8; 32]> {
    (0..n).map(|i| [(i % 251) as u8; 32]).collect()
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("merkle_build");
    for n in [1_000usize, 10_000] {
        let leaves = macs(n);
        g.bench_with_input(BenchmarkId::new("bulk", n), &leaves, |b, leaves| {
            b.iter(|| MerkleTree::rebuild_from_macs([7; 32], 2, std::hint::black_box(leaves)))
        });
    }
    g.finish();
}

fn bench_verify_arity_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("merkle_verify_arity");
    let leaves = macs(10_000);
    for arity in [2usize, 4, 8, 16] {
        let mut tree = MerkleTree::rebuild_from_macs([7; 32], arity, &leaves);
        let root = tree.root().unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(arity), &arity, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 997) % 10_000;
                assert!(tree.verify(i, &leaves[i as usize], std::hint::black_box(&root)));
            })
        });
    }
    g.finish();
}

fn bench_update(c: &mut Criterion) {
    let leaves = macs(10_000);
    let mut tree = MerkleTree::rebuild_from_macs([7; 32], 2, &leaves);
    c.bench_function("merkle_update_10k", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 997) % 10_000;
            tree.update(i, std::hint::black_box(&[9u8; 32]));
        })
    });
}

criterion_group!(benches, bench_build, bench_verify_arity_ablation, bench_update);
criterion_main!(benches);
