//! Chaos harness: sweep seeded fault plans across rates and assert the
//! system degrades gracefully — every query either returns rows
//! bit-identical to the fault-free run (the fault was absorbed by a
//! retry/restart) or a clean typed error. Never a panic, never silently
//! wrong rows.
//!
//! The sweep reuses one loaded system and swaps the fault plan between
//! combos: `FaultPlan` state (arrival counters, metrics) lives in the
//! plan, not the system, so each combo starts fresh.

use ironsafe::csa::cost::CostParams;
use ironsafe::csa::{CsaSystem, SystemConfig};
use ironsafe::deploy::{Client, Deployment};
use ironsafe::tpch::queries::{paper_queries, PaperQuery};
use ironsafe_faults::{FaultPlan, FaultSite};
use ironsafe_sql::Row;

const SEEDS: [u64; 10] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
const RATES: [f64; 5] = [0.0005, 0.002, 0.01, 0.05, 0.2];

fn query(id: u8) -> PaperQuery {
    paper_queries().into_iter().find(|q| q.id == id).unwrap()
}

/// A plan firing on every injectable surface a read-only split query
/// crosses: device, page integrity, freshness, and the secure channel.
fn storm_plan(seed: u64, rate: f64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .with_rate(FaultSite::DeviceRead, rate)
        .with_rate(FaultSite::PageBitFlip, rate)
        .with_rate(FaultSite::PageMacCorrupt, rate)
        .with_rate(FaultSite::FreshnessStale, rate)
        .with_rate(FaultSite::ChannelDrop, rate)
        .with_rate(FaultSite::ChannelCorrupt, rate)
        .with_rate(FaultSite::ChannelReorder, rate)
}

#[test]
fn fault_storm_sweep_yields_identical_rows_or_typed_errors() {
    let data = ironsafe::tpch::generate(0.002, 42);
    let mut sys = CsaSystem::build(SystemConfig::IronSafe, &data, CostParams::default())
        .expect("system builds");
    let queries = [query(1), query(6)];
    let baselines: Vec<Vec<Row>> = queries
        .iter()
        .map(|q| sys.run_query(q).expect("fault-free run").result.rows().to_vec())
        .collect();

    let mut combos = 0u32;
    let mut clean_runs = 0u32;
    let mut typed_errors = 0u32;
    for seed in SEEDS {
        for rate in RATES {
            combos += 1;
            let plan = storm_plan(seed, rate);
            sys.set_fault_plan(plan.clone());
            for (q, baseline) in queries.iter().zip(&baselines) {
                // A panic anywhere in here fails the test: graceful
                // degradation means every outcome is one of these two.
                match sys.run_query(q) {
                    Ok(report) => {
                        assert_eq!(
                            report.result.rows(),
                            &baseline[..],
                            "seed {seed} rate {rate}: recovered run must be bit-identical"
                        );
                        clean_runs += 1;
                    }
                    Err(e) => {
                        // Typed, displayable, and classified.
                        use ironsafe_faults::Transient;
                        let _ = e.is_transient();
                        assert!(!e.to_string().is_empty());
                        typed_errors += 1;
                    }
                }
            }
        }
    }
    assert_eq!(combos, 50, "acceptance floor: at least 50 seed x rate combos");
    // Low rates must mostly be absorbed; high rates must actually bite —
    // otherwise the storm is not exercising the recovery paths at all.
    assert!(clean_runs > 0, "some runs must recover to identical rows");
    assert!(typed_errors > 0, "some runs must surface typed errors");

    // The system itself is undamaged: clear the plan and re-verify.
    sys.set_fault_plan(FaultPlan::none());
    for (q, baseline) in queries.iter().zip(&baselines) {
        let report = sys.run_query(q).expect("post-storm fault-free run");
        assert_eq!(report.result.rows(), &baseline[..]);
    }
}

#[test]
fn storms_are_reproducible_for_a_given_seed() {
    let data = ironsafe::tpch::generate(0.002, 42);
    let mut sys = CsaSystem::build(SystemConfig::IronSafe, &data, CostParams::default())
        .expect("system builds");
    let q = query(6);

    let mut outcomes = Vec::new();
    for round in 0..2 {
        let _ = round;
        let plan = storm_plan(3, 0.05);
        sys.set_fault_plan(plan.clone());
        let outcome = match sys.run_query(&q) {
            Ok(r) => Ok(r.result.rows().to_vec()),
            Err(e) => Err(e.to_string()),
        };
        let m = plan.metrics();
        outcomes.push((outcome, m.injected.get(), m.retried.get(), m.recovered.get()));
    }
    assert_eq!(outcomes[0], outcomes[1], "same seed, same plan: same faults, same outcome");
}

/// The freshness fast path is not a chaos hole: storms hitting a system
/// whose verified-node cache is already warm (and, in a second sweep, an
/// undersized cache in constant eviction churn) still degrade exactly as
/// the cold system does — identical rows or a typed error, and a clean
/// fault-free run afterwards.
#[test]
fn warm_cache_storms_still_detect_and_recover() {
    let data = ironsafe::tpch::generate(0.002, 42);
    let mut sys = CsaSystem::build(SystemConfig::IronSafe, &data, CostParams::default())
        .expect("system builds");
    let queries = [query(1), query(6)];
    let baselines: Vec<Vec<Row>> = queries
        .iter()
        .map(|q| sys.run_query(q).expect("fault-free run").result.rows().to_vec())
        .collect();
    // Re-run clean: the second pass rides the warm cache bit-identically.
    for (q, baseline) in queries.iter().zip(&baselines) {
        let again = sys.run_query(q).expect("warm fault-free run");
        assert_eq!(again.result.rows(), &baseline[..], "warm rerun is bit-identical");
    }

    let sweep = |sys: &mut CsaSystem, label: &str| {
        let mut typed_errors = 0u32;
        let mut clean_runs = 0u32;
        for seed in SEEDS {
            for rate in [0.0005, 0.05] {
                sys.set_fault_plan(storm_plan(seed, rate));
                for (q, baseline) in queries.iter().zip(&baselines) {
                    match sys.run_query(q) {
                        Ok(report) => {
                            assert_eq!(
                                report.result.rows(),
                                &baseline[..],
                                "{label}: seed {seed} rate {rate}: recovered run identical"
                            );
                            clean_runs += 1;
                        }
                        Err(e) => {
                            use ironsafe_faults::Transient;
                            let _ = e.is_transient();
                            assert!(!e.to_string().is_empty());
                            typed_errors += 1;
                        }
                    }
                }
            }
        }
        assert!(clean_runs > 0, "{label}: some storms must be absorbed");
        assert!(typed_errors > 0, "{label}: corruption/staleness must still be detected");
        // The system is undamaged: a clean run still matches.
        sys.set_fault_plan(FaultPlan::none());
        for (q, baseline) in queries.iter().zip(&baselines) {
            let report = sys.run_query(q).expect("post-storm fault-free run");
            assert_eq!(report.result.rows(), &baseline[..]);
        }
    };
    sweep(&mut sys, "warm cache");

    // Undersized cache: wholesale eviction fires constantly mid-scan.
    sys.storage_db().pager().lock().set_merkle_cache_capacity(8);
    sweep(&mut sys, "evicting cache");
}

#[test]
fn device_read_fault_recovers_with_visible_metrics() {
    let data = ironsafe::tpch::generate(0.002, 42);
    let mut sys = CsaSystem::build(SystemConfig::IronSafe, &data, CostParams::default())
        .expect("system builds");
    let baseline = sys.run_query(&query(6)).unwrap().result.rows().to_vec();

    let plan = FaultPlan::seeded(1)
        .with_nth(FaultSite::DeviceRead, 2)
        .with_nth(FaultSite::DeviceRead, 9);
    sys.set_fault_plan(plan.clone());
    let report = sys.run_query(&query(6)).expect("both transient faults are absorbed");
    assert_eq!(report.result.rows(), &baseline[..]);
    assert_eq!(plan.metrics().injected.get(), 2);
    assert!(plan.metrics().recovered.get() >= 1);
    assert_eq!(plan.metrics().exhausted.get(), 0);
}

#[test]
fn channel_drop_fault_recovers_with_visible_metrics() {
    let data = ironsafe::tpch::generate(0.002, 42);
    let mut sys = CsaSystem::build(SystemConfig::IronSafe, &data, CostParams::default())
        .expect("system builds");
    let baseline = sys.run_query(&query(6)).unwrap().result.rows().to_vec();

    // Q6 offloads its filtered rows through the secure channel; drop the
    // first record in transit and let the retransmit carry it through.
    let plan = FaultPlan::seeded(1).with_nth(FaultSite::ChannelDrop, 1);
    sys.set_fault_plan(plan.clone());
    let report = sys.run_query(&query(6)).expect("dropped record is retransmitted");
    assert_eq!(report.result.rows(), &baseline[..]);
    assert!(plan.metrics().injected.get() >= 1);
    assert!(plan.metrics().recovered.get() >= 1);
    assert_eq!(plan.metrics().exhausted.get(), 0);
}

#[test]
fn enclave_crash_and_rpmb_failures_recover_end_to_end() {
    // Whole-deployment plan: the second enclave entry crashes (restart +
    // sealed-state reload) and the first RPMB write is refused busy
    // (retried with a recomputed counter).
    let plan = FaultPlan::seeded(23)
        .with_nth(FaultSite::EnclaveCrash, 2)
        .with_nth(FaultSite::RpmbWrite, 1);
    let mut dep = Deployment::builder().fault_plan(plan.clone()).build().unwrap();
    dep.create_database("db", "read :- sessionKeyIs(alice)\nwrite :- sessionKeyIs(alice)");
    let alice = Client::new("alice");
    dep.submit(&alice, "db", "CREATE TABLE t (a INT)", "").unwrap();
    dep.submit(&alice, "db", "INSERT INTO t VALUES (7), (8), (9)", "").unwrap();
    let resp = dep.submit(&alice, "db", "SELECT a FROM t ORDER BY a", "").unwrap();
    assert_eq!(resp.result.rows().len(), 3);
    assert!(resp.verify_proof(&dep));
    assert!(dep.supervisor().restarts() >= 1, "crash forced an enclave restart");
    assert!(plan.metrics().injected.get() >= 2, "both scheduled faults fired");
    assert!(plan.metrics().recovered.get() >= 2, "both were recovered");
    assert_eq!(plan.metrics().exhausted.get(), 0);
}

/// Crash-during-commit storms: 50 seeded storms fire the write-path
/// fault sites — `WalAppend` (transient device error before anything
/// lands), `WalTear` (crash mid-append, torn frame on the medium) and
/// `CrashCommit` (power cut during the apply, or between the WAL append
/// and the RPMB bind) — at varying points in an INSERT sequence. Every
/// storm ends in a power-off teardown and WAL recovery, and the
/// recovered table is bit-identical to a transaction boundary: exactly
/// the acknowledged prefix, or at most the one in-flight statement more.
/// Never a torn fraction of a group, never a panic, and a poisoned
/// system fails closed until recovered. Each recovery's report is
/// appended to a monitor audit stream whose hash chain must verify.
#[test]
fn crash_commit_storms_recover_to_acknowledged_prefix() {
    use ironsafe::csa::{RecoveryReport, SharedCsaSystem};
    use ironsafe::monitor::AuditLog;
    use ironsafe::storage::TailVerdict;
    use ironsafe_sql::parser::parse_statement;
    use ironsafe_sql::{QueryResult, Value};

    let data = ironsafe::tpch::generate(0.002, 42);
    let sys = CsaSystem::build(SystemConfig::StorageOnlySecure, &data, CostParams::default())
        .expect("system builds");
    let shared = SharedCsaSystem::new(sys);
    let key = [8u8; 32];
    shared
        .run_statement(&parse_statement("CREATE TABLE storm (a INT)").unwrap(), key)
        .expect("table creates");
    shared.attach_wal(0x571).expect("secure base journals");
    let mut shared = shared;

    fn contents(shared: &SharedCsaSystem, key: [u8; 32]) -> Vec<i64> {
        let sel = parse_statement("SELECT a FROM storm ORDER BY a").unwrap();
        let (report, _) = shared.run_statement(&sel, key).expect("recovered system serves reads");
        match report.result {
            QueryResult::Rows { rows, .. } => rows
                .iter()
                .map(|r| match r[0] {
                    Value::Int(n) => n,
                    ref other => panic!("expected int, got {other:?}"),
                })
                .collect(),
            other => panic!("expected rows, got {other:?}"),
        }
    }

    let audit = AuditLog::new();
    // Rows the system *acknowledged* (statement returned Ok). The
    // recovered state must always be this prefix — plus, at most, the
    // single statement that was in flight when the crash hit.
    let mut acked: Vec<i64> = Vec::new();
    let mut next = 0i64;
    let (mut storms, mut crashed_storms, mut absorbed_storms) = (0u32, 0u32, 0u32);

    for seed in 1u64..=50 {
        storms += 1;
        // Rotate the three write-path sites across the sweep; vary the
        // arrival index so crashes land mid-apply, between append and
        // bind, and on different statements of the sequence.
        let plan = match seed % 3 {
            0 => FaultPlan::seeded(seed).with_nth(FaultSite::CrashCommit, 1 + seed % 3),
            1 => FaultPlan::seeded(seed).with_nth(FaultSite::WalTear, 1 + seed % 2),
            _ => FaultPlan::seeded(seed).with_nth(FaultSite::WalAppend, 1 + seed % 2),
        };
        shared.set_fault_plan(plan);

        let mut in_flight: Option<i64> = None;
        let mut acked_this_storm = 0usize;
        for _ in 0..4 {
            let ins =
                parse_statement(&format!("INSERT INTO storm (a) VALUES ({next})")).unwrap();
            match shared.run_statement(&ins, key) {
                Ok(_) => {
                    acked.push(next);
                    acked_this_storm += 1;
                    next += 1;
                }
                Err(e) => {
                    // Typed and displayable, never a panic; a failed
                    // group commit poisons the system, which then fails
                    // closed instead of serving doubtful state.
                    use ironsafe_faults::Transient;
                    let _ = e.is_transient();
                    assert!(!e.to_string().is_empty(), "seed {seed}: typed error");
                    assert!(shared.is_poisoned(), "seed {seed}: failed flush must poison");
                    assert!(
                        shared.run_statement(&ins, key).is_err(),
                        "seed {seed}: poisoned system must fail closed"
                    );
                    in_flight = Some(next);
                    next += 1; // the value is burned whether or not it committed
                    break;
                }
            }
        }

        // Power off (the crash, or the end of a clean storm) and
        // recover from the surviving TrustZone device + WAL medium.
        let (parts, medium) = shared.teardown();
        let (tz, _lost_medium) = parts.expect("secure base tears down to hardware");
        let medium = medium.expect("WAL attached");
        let (recovered, report): (SharedCsaSystem, RecoveryReport) = SharedCsaSystem::recover(
            SystemConfig::StorageOnlySecure,
            CostParams::default(),
            tz,
            &medium,
            seed.wrapping_mul(31),
            seed.wrapping_mul(37),
            1,
        )
        .expect("every seed recovers");
        shared = recovered;
        audit.append(seed as i64, "recovery", "chaos-harness", &report.audit_line());

        let got = contents(&shared, key);
        match in_flight {
            Some(burned) => {
                crashed_storms += 1;
                let mut with_in_flight = acked.clone();
                with_in_flight.push(burned);
                assert!(
                    got == acked || got == with_in_flight,
                    "seed {seed}: recovered state must sit on a transaction boundary \
                     (acked prefix or acked + the in-flight statement), got {got:?}"
                );
                acked = got; // resync to what the log actually committed
            }
            None => {
                absorbed_storms += 1;
                assert_eq!(
                    got, acked,
                    "seed {seed}: clean storm must replay every acknowledged row"
                );
                assert_eq!(
                    report.replayed, acked_this_storm,
                    "seed {seed}: one commit record per acknowledged statement"
                );
                assert_eq!(report.verdict, TailVerdict::Clean);
            }
        }
    }

    assert_eq!(storms, 50, "acceptance floor: 50 seeded crash storms");
    assert!(crashed_storms > 0, "some storms must actually crash a commit");
    assert!(absorbed_storms > 0, "transient WAL faults must be absorbed by retries");
    // The recovery trail is audit-grade: one entry per storm, chain intact.
    assert_eq!(audit.stream("recovery").len(), 50);
    assert!(audit.verify(), "recovery audit chain verifies");
    // The survivor still serves consistent reads.
    assert_eq!(contents(&shared, key), acked);
}

#[test]
fn persistent_faults_exhaust_cleanly_into_typed_errors() {
    let data = ironsafe::tpch::generate(0.002, 42);
    let mut sys = CsaSystem::build(SystemConfig::IronSafe, &data, CostParams::default())
        .expect("system builds");
    let plan = FaultPlan::seeded(9).with_rate(FaultSite::DeviceRead, 1.0);
    sys.set_fault_plan(plan.clone());
    let err = sys.run_query(&query(6)).expect_err("every attempt fails");
    assert!(err.to_string().contains("device I/O"), "typed device error, got {err}");
    assert!(plan.metrics().exhausted.get() >= 1, "the retry budget was spent and reported");
}
