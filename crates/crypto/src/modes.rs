//! Block-cipher modes of operation: CTR and CBC (with PKCS#7 padding).
//!
//! * **CBC + HMAC (encrypt-then-MAC)** is used for database pages, matching
//!   the SQLCipher layout the paper adopts: each 4 KiB page carries a random
//!   IV and an HMAC over `IV || ciphertext`.
//! * **CTR** is used for network records where random access and exact-size
//!   ciphertexts matter.

use crate::aes::{Aes128, BLOCK};
use crate::{CryptoError, Result};

/// Encrypt or decrypt `data` in place with AES-128-CTR.
///
/// The 16-byte `nonce` is used as the initial counter block; the low 32 bits
/// are incremented per block (big-endian), as in NIST SP 800-38A.
pub fn ctr_xor(aes: &Aes128, nonce: &[u8; BLOCK], data: &mut [u8]) {
    let mut counter = *nonce;
    for chunk in data.chunks_mut(BLOCK) {
        let mut keystream = counter;
        aes.encrypt_block(&mut keystream);
        for (b, k) in chunk.iter_mut().zip(keystream.iter()) {
            *b ^= k;
        }
        increment_counter(&mut counter);
    }
}

fn increment_counter(counter: &mut [u8; BLOCK]) {
    for i in (12..BLOCK).rev() {
        counter[i] = counter[i].wrapping_add(1);
        if counter[i] != 0 {
            return;
        }
    }
}

/// Encrypt `plain` with AES-128-CBC and PKCS#7 padding.
///
/// Output length is `plain.len()` rounded up to the next multiple of 16
/// (a full padding block is added when the input is already aligned).
pub fn cbc_encrypt(aes: &Aes128, iv: &[u8; BLOCK], plain: &[u8]) -> Vec<u8> {
    let pad = BLOCK - plain.len() % BLOCK;
    let mut out = Vec::with_capacity(plain.len() + pad);
    out.extend_from_slice(plain);
    out.resize(plain.len() + pad, pad as u8);
    let mut prev = *iv;
    for chunk in out.chunks_mut(BLOCK) {
        let block: &mut [u8; BLOCK] = chunk.try_into().expect("aligned");
        for (b, p) in block.iter_mut().zip(prev.iter()) {
            *b ^= p;
        }
        aes.encrypt_block(block);
        prev = *block;
    }
    out
}

/// Decrypt AES-128-CBC ciphertext and strip PKCS#7 padding.
pub fn cbc_decrypt(aes: &Aes128, iv: &[u8; BLOCK], cipher: &[u8]) -> Result<Vec<u8>> {
    if cipher.is_empty() || !cipher.len().is_multiple_of(BLOCK) {
        return Err(CryptoError::MalformedCiphertext("CBC length not block-aligned"));
    }
    let mut out = cipher.to_vec();
    let mut prev = *iv;
    for chunk in out.chunks_mut(BLOCK) {
        let block: &mut [u8; BLOCK] = chunk.try_into().expect("aligned");
        let saved = *block;
        aes.decrypt_block(block);
        for (b, p) in block.iter_mut().zip(prev.iter()) {
            *b ^= p;
        }
        prev = saved;
    }
    let pad = *out.last().expect("non-empty") as usize;
    if pad == 0 || pad > BLOCK || pad > out.len() {
        return Err(CryptoError::MalformedCiphertext("bad PKCS#7 padding length"));
    }
    if !out[out.len() - pad..].iter().all(|&b| b as usize == pad) {
        return Err(CryptoError::MalformedCiphertext("bad PKCS#7 padding bytes"));
    }
    out.truncate(out.len() - pad);
    Ok(out)
}

/// Encrypt a fixed-size buffer with AES-128-CBC *without* padding.
///
/// Database pages are always an exact multiple of the block size, so the
/// secure pager uses this unpadded variant to keep ciphertext the same size
/// as plaintext. Panics if `data` is not block-aligned.
pub fn cbc_encrypt_aligned(aes: &Aes128, iv: &[u8; BLOCK], data: &mut [u8]) {
    assert_eq!(data.len() % BLOCK, 0, "aligned CBC requires block-multiple input");
    let mut prev = *iv;
    for chunk in data.chunks_mut(BLOCK) {
        let block: &mut [u8; BLOCK] = chunk.try_into().expect("aligned");
        for (b, p) in block.iter_mut().zip(prev.iter()) {
            *b ^= p;
        }
        aes.encrypt_block(block);
        prev = *block;
    }
}

/// Inverse of [`cbc_encrypt_aligned`].
pub fn cbc_decrypt_aligned(aes: &Aes128, iv: &[u8; BLOCK], data: &mut [u8]) -> Result<()> {
    if !data.len().is_multiple_of(BLOCK) {
        return Err(CryptoError::MalformedCiphertext("CBC length not block-aligned"));
    }
    let mut prev = *iv;
    for chunk in data.chunks_mut(BLOCK) {
        let block: &mut [u8; BLOCK] = chunk.try_into().expect("aligned");
        let saved = *block;
        aes.decrypt_block(block);
        for (b, p) in block.iter_mut().zip(prev.iter()) {
            *b ^= p;
        }
        prev = saved;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn aes() -> Aes128 {
        Aes128::new(&[7u8; 16])
    }

    #[test]
    fn ctr_roundtrip_and_symmetry() {
        let cipher = aes();
        let nonce = [1u8; 16];
        let plain = b"the quick brown fox jumps over the lazy dog".to_vec();
        let mut data = plain.clone();
        ctr_xor(&cipher, &nonce, &mut data);
        assert_ne!(data, plain);
        ctr_xor(&cipher, &nonce, &mut data);
        assert_eq!(data, plain);
    }

    #[test]
    fn ctr_nist_sp800_38a_f51() {
        // NIST SP 800-38A F.5.1 CTR-AES128.Encrypt, first block.
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let ctr = [
            0xf0, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa, 0xfb, 0xfc, 0xfd,
            0xfe, 0xff,
        ];
        let mut data = [
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a,
        ];
        ctr_xor(&Aes128::new(&key), &ctr, &mut data);
        assert_eq!(
            data,
            [0x87, 0x4d, 0x61, 0x91, 0xb6, 0x20, 0xe3, 0x26, 0x1b, 0xef, 0x68, 0x64, 0x99, 0x0d, 0xb6, 0xce]
        );
    }

    #[test]
    fn ctr_counter_wraps_within_low_word() {
        let mut c = [0xffu8; 16];
        increment_counter(&mut c);
        // Low 32 bits wrap to zero; upper bytes untouched.
        assert_eq!(&c[..12], &[0xff; 12]);
        assert_eq!(&c[12..], &[0, 0, 0, 0]);
    }

    #[test]
    fn cbc_padded_roundtrip_all_lengths() {
        let cipher = aes();
        let iv = [9u8; 16];
        for len in 0..48 {
            let plain: Vec<u8> = (0..len as u8).collect();
            let ct = cbc_encrypt(&cipher, &iv, &plain);
            assert_eq!(ct.len() % 16, 0);
            assert!(ct.len() > plain.len(), "padding always adds bytes");
            let back = cbc_decrypt(&cipher, &iv, &ct).unwrap();
            assert_eq!(back, plain, "len {len}");
        }
    }

    #[test]
    fn cbc_rejects_tampered_padding() {
        let cipher = aes();
        let iv = [0u8; 16];
        let mut ct = cbc_encrypt(&cipher, &iv, b"hello");
        let last = ct.len() - 1;
        ct[last] ^= 0xff;
        // Either padding error or garbage output — but for a single-block
        // message tampering the last byte corrupts padding detection.
        assert!(cbc_decrypt(&cipher, &iv, &ct).is_err());
    }

    #[test]
    fn cbc_rejects_unaligned() {
        let cipher = aes();
        assert!(cbc_decrypt(&cipher, &[0; 16], &[0u8; 15]).is_err());
        assert!(cbc_decrypt(&cipher, &[0; 16], &[]).is_err());
    }

    #[test]
    fn aligned_cbc_roundtrip_page_sized() {
        let cipher = aes();
        let iv = [3u8; 16];
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let plain: Vec<u8> = (0..4096).map(|_| rng.gen()).collect();
        let mut data = plain.clone();
        cbc_encrypt_aligned(&cipher, &iv, &mut data);
        assert_eq!(data.len(), plain.len());
        assert_ne!(data, plain);
        cbc_decrypt_aligned(&cipher, &iv, &mut data).unwrap();
        assert_eq!(data, plain);
    }

    #[test]
    fn different_ivs_give_different_ciphertexts() {
        let cipher = aes();
        let plain = [0u8; 64];
        let mut a = plain;
        let mut b = plain;
        cbc_encrypt_aligned(&cipher, &[1; 16], &mut a);
        cbc_encrypt_aligned(&cipher, &[2; 16], &mut b);
        assert_ne!(a, b);
    }
}
