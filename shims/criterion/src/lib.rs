//! Minimal `criterion` shim.
//!
//! Source-compatible with the subset of criterion 0.5 this workspace's
//! benches use: `Criterion::bench_function`/`benchmark_group`, groups
//! with `throughput`/`sample_size`/`measurement_time`/`warm_up_time`/
//! `bench_with_input`/`finish`, `Bencher::iter`/`iter_batched`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up, then timed over
//! enough iterations to fill the measurement window; the mean
//! wall-clock time per iteration is printed with derived throughput
//! when one was declared. There are no statistical comparisons, saved
//! baselines, or HTML reports.
//!
//! CI smoke mode: setting `IRONSAFE_BENCH_QUICK=1` (or passing
//! `--quick`) skips warm-up and runs a single short sample per
//! benchmark so the whole suite completes in seconds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Environment variable that switches every bench into one-iteration
/// smoke mode (same effect as the `--quick` CLI flag).
pub const QUICK_ENV: &str = "IRONSAFE_BENCH_QUICK";

fn quick_mode() -> bool {
    if std::env::var(QUICK_ENV).is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true")) {
        return true;
    }
    std::env::args().any(|a| a == "--quick")
}

/// Throughput to report alongside timing.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How much setup output to batch per timing call in
/// [`Bencher::iter_batched`]. The shim times each call individually, so
/// this only documents intent.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One invocation per batch.
    PerIteration,
}

/// Identifier for a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut id = function_name.into();
        let _ = write!(id, "/{parameter}");
        BenchmarkId { id }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-benchmark timing harness handed to bench closures.
pub struct Bencher {
    quick: bool,
    warm_up: Duration,
    measurement: Duration,
    /// Mean nanoseconds per iteration, filled in by `iter*`.
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, called in a loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.quick {
            let start = Instant::now();
            black_box(routine());
            self.record(start.elapsed(), 1);
            return;
        }
        // Warm up and estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let target = ((self.measurement.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 50_000_000);
        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.record(start.elapsed(), target);
    }

    /// Time `routine` on fresh input from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let max_iters: u64 = if self.quick { 1 } else { 0 };
        let mut busy = Duration::ZERO;
        let mut iters: u64 = 0;
        let deadline = Instant::now() + if self.quick { Duration::ZERO } else { self.measurement };
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            busy += start.elapsed();
            iters += 1;
            if (max_iters != 0 && iters >= max_iters) || Instant::now() >= deadline {
                break;
            }
        }
        self.record(busy, iters);
    }

    fn record(&mut self, total: Duration, iters: u64) {
        self.iters = iters;
        self.mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
    }
}

fn fmt_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let mut line = format!("{name:<44} {:>12}/iter ({} iters)", fmt_time(bencher.mean_ns), bencher.iters);
    if let Some(tp) = throughput {
        let per_sec = match tp {
            Throughput::Bytes(n) => {
                let bps = n as f64 / (bencher.mean_ns / 1e9);
                if bps >= 1e9 {
                    format!("{:.2} GiB/s", bps / (1u64 << 30) as f64)
                } else {
                    format!("{:.2} MiB/s", bps / (1u64 << 20) as f64)
                }
            }
            Throughput::Elements(n) => format!("{:.0} elem/s", n as f64 / (bencher.mean_ns / 1e9)),
        };
        let _ = write!(line, "  {per_sec}");
    }
    println!("{line}");
}

/// Benchmark registry and entry point.
pub struct Criterion {
    quick: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First free CLI argument (libtest passes the filter this way).
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        Criterion { quick: quick_mode(), filter }
    }
}

impl Criterion {
    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &self,
        name: &str,
        warm_up: Duration,
        measurement: Duration,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        if !self.matches(name) {
            return;
        }
        let mut b = Bencher {
            quick: self.quick,
            warm_up,
            measurement,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        report(name, &b, throughput);
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, default_warm_up(), default_measurement(), None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            warm_up: default_warm_up(),
            measurement: default_measurement(),
        }
    }
}

fn default_warm_up() -> Duration {
    Duration::from_millis(300)
}

fn default_measurement() -> Duration {
    Duration::from_millis(700)
}

/// A group of related benchmarks sharing throughput/timing settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Set the warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Run a benchmark within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&name, self.warm_up, self.measurement, self.throughput, f);
        self
    }

    /// Run a parameterized benchmark within this group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (prints nothing; provided for API compatibility).
    pub fn finish(self) {}
}

/// Define a benchmark group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("standalone", |b| b.iter(|| black_box(1u64) + 1));
        let mut g = c.benchmark_group("group");
        g.throughput(Throughput::Bytes(4096));
        g.sample_size(10);
        g.warm_up_time(Duration::from_millis(1));
        g.measurement_time(Duration::from_millis(2));
        g.bench_function("summing", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_quick() {
        std::env::set_var(QUICK_ENV, "1");
        benches();
        std::env::remove_var(QUICK_ENV);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
