//! SQL engine operator benchmarks: scan, filter, hash join, aggregate
//! and the end-to-end partitioner.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ironsafe_csa::partition::partition_select;
use ironsafe_sql::ast::Statement;
use ironsafe_sql::parser::parse_statement;
use ironsafe_sql::{Database, Schema};
use ironsafe_storage::pager::PlainPager;
use ironsafe_tpch::{generate, load_into};

fn loaded_db() -> Database {
    let data = generate(0.002, 9);
    let mut db = Database::new(PlainPager::new());
    load_into(&mut db, &data).unwrap();
    db
}

fn bench_operators(c: &mut Criterion) {
    let mut db = loaded_db();
    let rows = db.catalog().table("lineitem").unwrap().heap.row_count;
    let mut g = c.benchmark_group("sql");
    g.sample_size(20);
    g.throughput(Throughput::Elements(rows));

    g.bench_function("scan_lineitem", |b| {
        b.iter(|| db.execute("SELECT COUNT(*) FROM lineitem").unwrap())
    });
    g.bench_function("filter_lineitem", |b| {
        b.iter(|| {
            db.execute("SELECT COUNT(*) FROM lineitem WHERE l_shipdate < '1995-01-01' AND l_discount > 0.05")
                .unwrap()
        })
    });
    g.bench_function("agg_group_by", |b| {
        b.iter(|| {
            db.execute("SELECT l_returnflag, SUM(l_quantity), AVG(l_extendedprice) FROM lineitem GROUP BY l_returnflag")
                .unwrap()
        })
    });
    g.bench_function("hash_join_orders", |b| {
        b.iter(|| {
            db.execute("SELECT COUNT(*) FROM orders, lineitem WHERE o_orderkey = l_orderkey")
                .unwrap()
        })
    });
    g.bench_function("sort_limit", |b| {
        b.iter(|| {
            db.execute("SELECT l_orderkey, l_extendedprice FROM lineitem ORDER BY l_extendedprice DESC LIMIT 10")
                .unwrap()
        })
    });
    g.finish();
}

fn bench_parse_and_partition(c: &mut Criterion) {
    let q3 = "SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue, \
              o_orderdate, o_shippriority FROM customer, orders, lineitem \
              WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey \
              AND l_orderkey = o_orderkey AND o_orderdate < '1995-03-15' \
              AND l_shipdate > '1995-03-15' \
              GROUP BY l_orderkey, o_orderdate, o_shippriority \
              ORDER BY revenue DESC, o_orderdate LIMIT 10";
    c.bench_function("parse_q3", |b| b.iter(|| parse_statement(std::hint::black_box(q3)).unwrap()));

    let db = loaded_db();
    let sel = match parse_statement(q3).unwrap() {
        Statement::Select(s) => s,
        _ => unreachable!(),
    };
    let lookup = |name: &str| -> Option<Schema> {
        db.catalog().table(name).ok().map(|t| t.schema.clone())
    };
    c.bench_function("partition_q3", |b| {
        b.iter(|| partition_select(std::hint::black_box(&sel), &lookup))
    });
}

criterion_group!(benches, bench_operators, bench_parse_and_partition);
criterion_main!(benches);
