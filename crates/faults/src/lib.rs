//! Deterministic fault injection and bounded-retry recovery.
//!
//! IronSafe's security argument is *fail-detectably*: a query either
//! completes with end-to-end confidentiality/integrity/freshness or it
//! returns a typed error. This crate makes that claim testable. A
//! [`FaultPlan`] is a seeded, fully reproducible description of which
//! faults fire at which named [`FaultSite`]s — either with a fixed
//! probability per arrival or on an exact schedule ("the 3rd RPMB write
//! fails"). Components throughout the workspace carry a plan handle
//! (default [`FaultPlan::none`], a single branch on the hot path) and
//! consult it at their hook points:
//!
//! | surface  | sites |
//! |----------|-------|
//! | storage  | `storage.device.read`, `storage.device.write`, `storage.page.bitflip`, `storage.page.mac`, `storage.freshness.stale`, `storage.wal.append`, `storage.wal.tear`, `storage.commit.crash` |
//! | channel  | `csa.net.drop`, `csa.net.corrupt`, `csa.net.reorder` |
//! | tee      | `tee.enclave.crash`, `tee.epc.abort`, `tee.rpmb.write_fail` |
//!
//! Recovery rides on two pieces: the [`Transient`] classification trait
//! implemented by every error enum in the workspace, and [`retry_with`],
//! a bounded retry loop with simulated-time exponential backoff (charged
//! to the `"other"` cost category of the installed
//! [`ironsafe_obs`] trace, so recovery time shows up in
//! `CostBreakdown`s). The plan owns the `faults.*` counters
//! (`faults.injected` / `faults.retried` / `faults.recovered` /
//! `faults.exhausted`) so chaos harnesses can assert that injected
//! faults were actually recovered.
//!
//! Determinism: whether a fault fires depends only on `(seed, site,
//! arrival index)` via a SplitMix64-style mixer — no global RNG, no wall
//! clock — so a failing chaos combination replays exactly from its seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ironsafe_obs::{Counter, Registry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Named injection points compiled into the production types.
///
/// The `as_str` names are what chaos tooling prints and what the
/// DESIGN.md fault-site table documents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Block-device read returns an I/O error before touching the medium.
    DeviceRead,
    /// Block-device write returns an I/O error before touching the medium.
    DeviceWrite,
    /// A bit flips in the ciphertext block *in transit* (the medium keeps
    /// the pristine block, so a re-read recovers).
    PageBitFlip,
    /// The stored MAC is corrupted in transit (detected as an integrity
    /// violation; recoverable by re-read).
    PageMacCorrupt,
    /// The freshness check observes a stale root (rollback); permanent,
    /// never retried.
    FreshnessStale,
    /// A sealed channel record is lost in transit.
    ChannelDrop,
    /// A sealed channel record is corrupted in transit.
    ChannelCorrupt,
    /// A sealed channel record arrives out of order.
    ChannelReorder,
    /// The enclave crashes on entry (destroyed; needs a restart).
    EnclaveCrash,
    /// Enclave entry aborts under EPC pressure (transient).
    EpcAbort,
    /// An authenticated RPMB write fails (device busy; transient).
    RpmbWrite,
    /// A WAL record append fails with an I/O error before any log byte
    /// reaches the medium (transient; a retry rewrites the same tail).
    WalAppend,
    /// A WAL record append tears: only a prefix of the record's blocks
    /// lands on the medium. The in-memory tail does not advance, so a
    /// retry overwrites the torn bytes; a crash instead leaves them for
    /// recovery to discard as a typed torn-tail error.
    WalTear,
    /// The system dies mid group-commit (between commit sub-steps). The
    /// write path fail-stops; the harness power-cycles and recovers via
    /// WAL replay.
    CrashCommit,
}

/// Number of distinct fault sites.
pub const NUM_SITES: usize = 14;

/// All sites, in `FaultSite as usize` order.
pub const ALL_SITES: [FaultSite; NUM_SITES] = [
    FaultSite::DeviceRead,
    FaultSite::DeviceWrite,
    FaultSite::PageBitFlip,
    FaultSite::PageMacCorrupt,
    FaultSite::FreshnessStale,
    FaultSite::ChannelDrop,
    FaultSite::ChannelCorrupt,
    FaultSite::ChannelReorder,
    FaultSite::EnclaveCrash,
    FaultSite::EpcAbort,
    FaultSite::RpmbWrite,
    FaultSite::WalAppend,
    FaultSite::WalTear,
    FaultSite::CrashCommit,
];

impl FaultSite {
    /// Stable dotted name used in telemetry and docs.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultSite::DeviceRead => "storage.device.read",
            FaultSite::DeviceWrite => "storage.device.write",
            FaultSite::PageBitFlip => "storage.page.bitflip",
            FaultSite::PageMacCorrupt => "storage.page.mac",
            FaultSite::FreshnessStale => "storage.freshness.stale",
            FaultSite::ChannelDrop => "csa.net.drop",
            FaultSite::ChannelCorrupt => "csa.net.corrupt",
            FaultSite::ChannelReorder => "csa.net.reorder",
            FaultSite::EnclaveCrash => "tee.enclave.crash",
            FaultSite::EpcAbort => "tee.epc.abort",
            FaultSite::RpmbWrite => "tee.rpmb.write_fail",
            FaultSite::WalAppend => "storage.wal.append",
            FaultSite::WalTear => "storage.wal.tear",
            FaultSite::CrashCommit => "storage.commit.crash",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::DeviceRead => 0,
            FaultSite::DeviceWrite => 1,
            FaultSite::PageBitFlip => 2,
            FaultSite::PageMacCorrupt => 3,
            FaultSite::FreshnessStale => 4,
            FaultSite::ChannelDrop => 5,
            FaultSite::ChannelCorrupt => 6,
            FaultSite::ChannelReorder => 7,
            FaultSite::EnclaveCrash => 8,
            FaultSite::EpcAbort => 9,
            FaultSite::RpmbWrite => 10,
            FaultSite::WalAppend => 11,
            FaultSite::WalTear => 12,
            FaultSite::CrashCommit => 13,
        }
    }
}

/// The `faults.*` counter cells a plan carries. Shared (same cells) by
/// every component holding a clone of the plan, so one registration per
/// registry suffices.
#[derive(Debug, Clone, Default)]
pub struct FaultMetrics {
    /// Faults the plan decided to fire.
    pub injected: Counter,
    /// Retry attempts made after a transient failure.
    pub retried: Counter,
    /// Operations that ultimately succeeded after at least one retry
    /// (or an enclave restart).
    pub recovered: Counter,
    /// Operations that kept failing until the retry budget ran out.
    pub exhausted: Counter,
}

impl FaultMetrics {
    /// Register all four cells under their `faults.*` names.
    pub fn register(&self, registry: &Registry) {
        registry.register_counter("faults.injected", &self.injected);
        registry.register_counter("faults.retried", &self.retried);
        registry.register_counter("faults.recovered", &self.recovered);
        registry.register_counter("faults.exhausted", &self.exhausted);
    }
}

#[derive(Debug)]
struct PlanInner {
    seed: u64,
    /// Firing threshold per site in u64 space (`rate * 2^64`).
    thresholds: [u64; NUM_SITES],
    /// Sorted 1-based arrival indices at which a site fires regardless
    /// of its rate.
    schedules: [Vec<u64>; NUM_SITES],
    /// Per-site arrival counters (how many times the site was reached).
    arrivals: [AtomicU64; NUM_SITES],
    metrics: FaultMetrics,
}

/// SplitMix64 finalizer: a high-quality 64-bit mixer.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded, reproducible description of which faults fire where.
///
/// Cloning is cheap (an `Arc` bump) and clones share arrival counters
/// and metrics — exactly what you want when one plan is pushed into the
/// pager, the channels, and the TEE of a single system.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    inner: Arc<PlanInner>,
    active: bool,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    fn empty_inner(seed: u64) -> PlanInner {
        PlanInner {
            seed,
            thresholds: [0; NUM_SITES],
            schedules: Default::default(),
            arrivals: Default::default(),
            metrics: FaultMetrics::default(),
        }
    }

    /// The production default: never fires. [`FaultPlan::should_fire`]
    /// is a single branch on an inline bool — no atomics touched.
    pub fn none() -> Self {
        FaultPlan { inner: Arc::new(Self::empty_inner(0)), active: false }
    }

    /// An active plan with no faults configured yet; add sites with
    /// [`FaultPlan::with_rate`] / [`FaultPlan::with_nth`]. Two plans
    /// built from the same seed and configuration make identical firing
    /// decisions at identical arrival sequences.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan { inner: Arc::new(Self::empty_inner(seed)), active: true }
    }

    /// Fire `site` independently with probability `rate` per arrival.
    ///
    /// # Panics
    /// If called after the plan has been cloned/shared (configure
    /// first, then distribute).
    pub fn with_rate(mut self, site: FaultSite, rate: f64) -> Self {
        let inner = Arc::get_mut(&mut self.inner).expect("configure FaultPlan before sharing it");
        inner.thresholds[site.index()] = (rate.clamp(0.0, 1.0) * u64::MAX as f64) as u64;
        self
    }

    /// Fire `site` deterministically on its `n`-th arrival (1-based).
    ///
    /// # Panics
    /// If called after the plan has been cloned/shared.
    pub fn with_nth(mut self, site: FaultSite, n: u64) -> Self {
        let inner = Arc::get_mut(&mut self.inner).expect("configure FaultPlan before sharing it");
        let sched = &mut inner.schedules[site.index()];
        sched.push(n);
        sched.sort_unstable();
        self
    }

    /// True if this plan can ever fire (i.e. not [`FaultPlan::none`]).
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The seed this plan was built from (0 for an inactive plan).
    pub fn seed(&self) -> u64 {
        self.inner.seed
    }

    /// Consult the plan at a hook point. Ticks the site's arrival
    /// counter and returns whether the fault fires this time; bumps
    /// `faults.injected` when it does.
    pub fn should_fire(&self, site: FaultSite) -> bool {
        if !self.active {
            return false;
        }
        let i = site.index();
        let inner = &*self.inner;
        let arrival = inner.arrivals[i].fetch_add(1, Ordering::Relaxed) + 1;
        let fired = inner.schedules[i].binary_search(&arrival).is_ok()
            || (inner.thresholds[i] > 0
                && mix64(
                    inner
                        .seed
                        .wrapping_add((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
                        .wrapping_add(arrival.wrapping_mul(0xd134_2543_de82_ef95)),
                ) < inner.thresholds[i]);
        if fired {
            inner.metrics.injected.inc();
        }
        fired
    }

    /// How many times `site` has been reached so far.
    pub fn arrivals(&self, site: FaultSite) -> u64 {
        self.inner.arrivals[site.index()].load(Ordering::Relaxed)
    }

    /// The plan's `faults.*` counter cells.
    pub fn metrics(&self) -> &FaultMetrics {
        &self.inner.metrics
    }

    /// Register the plan's `faults.*` counters with `registry`.
    pub fn register_metrics(&self, registry: &Registry) {
        self.inner.metrics.register(registry);
    }

    /// Note a retry attempt (recovery layers call this; no-op metrics
    /// still count so retries against real — uninjected — faults are
    /// observable too).
    pub fn note_retried(&self) {
        self.inner.metrics.retried.inc();
    }

    /// Note an operation that succeeded after at least one retry or a
    /// restart.
    pub fn note_recovered(&self) {
        self.inner.metrics.recovered.inc();
    }

    /// Note an operation that failed even after the retry budget.
    pub fn note_exhausted(&self) {
        self.inner.metrics.exhausted.inc();
    }
}

/// Error classification: can a failed operation be retried as-is?
///
/// Implemented by every error enum in the workspace. Transient means
/// the failure is plausibly environmental (torn read, busy device,
/// in-transit corruption) and an identical re-issue may succeed;
/// non-transient failures (policy violations, rollback detection, bad
/// arguments) propagate immediately.
pub trait Transient {
    /// True if retrying the identical operation may succeed.
    fn is_transient(&self) -> bool;
}

/// Bounded-retry parameters with simulated-time exponential backoff.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts including the first (minimum 1).
    pub max_attempts: u32,
    /// Simulated backoff before the first retry, in nanoseconds.
    pub base_backoff_ns: f64,
    /// Backoff growth factor per retry.
    pub multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 4, base_backoff_ns: 20_000.0, multiplier: 2.0 }
    }
}

impl RetryPolicy {
    /// Backoff charged before retry number `retry` (0-based).
    pub fn backoff_ns(&self, retry: u32) -> f64 {
        self.base_backoff_ns * self.multiplier.powi(retry as i32)
    }
}

/// Run `f`, retrying transient failures up to the policy's budget.
///
/// Each retry charges its exponential backoff to the `"other"` category
/// of the installed trace (a no-op without one), so recovery cost is
/// visible in `CostBreakdown`s. Retries happen whether or not `plan` is
/// active — real transient faults deserve the same treatment as
/// injected ones — and the plan's metrics record what happened.
pub fn retry_with<T, E: Transient>(
    plan: &FaultPlan,
    policy: &RetryPolicy,
    mut f: impl FnMut() -> Result<T, E>,
) -> Result<T, E> {
    let budget = policy.max_attempts.max(1);
    let mut attempt = 0u32;
    loop {
        match f() {
            Ok(v) => {
                if attempt > 0 {
                    plan.note_recovered();
                }
                return Ok(v);
            }
            Err(e) if e.is_transient() && attempt + 1 < budget => {
                plan.note_retried();
                ironsafe_obs::span::add_sim_ns("other", policy.backoff_ns(attempt));
                attempt += 1;
            }
            Err(e) => {
                if attempt > 0 {
                    plan.note_exhausted();
                }
                return Err(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum TestErr {
        Flaky,
        Fatal,
    }

    impl Transient for TestErr {
        fn is_transient(&self) -> bool {
            matches!(self, TestErr::Flaky)
        }
    }

    #[test]
    fn none_never_fires_and_ticks_nothing() {
        let plan = FaultPlan::none();
        for site in ALL_SITES {
            for _ in 0..1000 {
                assert!(!plan.should_fire(site));
            }
            assert_eq!(plan.arrivals(site), 0, "inactive plan must not tick counters");
        }
        assert_eq!(plan.metrics().injected.get(), 0);
    }

    #[test]
    fn same_seed_same_decisions() {
        let build = || {
            FaultPlan::seeded(0xDEAD_BEEF)
                .with_rate(FaultSite::DeviceRead, 0.1)
                .with_rate(FaultSite::ChannelDrop, 0.35)
        };
        let a = build();
        let b = build();
        for _ in 0..5000 {
            assert_eq!(a.should_fire(FaultSite::DeviceRead), b.should_fire(FaultSite::DeviceRead));
            assert_eq!(
                a.should_fire(FaultSite::ChannelDrop),
                b.should_fire(FaultSite::ChannelDrop)
            );
        }
        assert_eq!(a.metrics().injected.get(), b.metrics().injected.get());
        assert!(a.metrics().injected.get() > 0, "rates this high must fire in 5000 arrivals");
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::seeded(1).with_rate(FaultSite::DeviceRead, 0.2);
        let b = FaultPlan::seeded(2).with_rate(FaultSite::DeviceRead, 0.2);
        let fire_a: Vec<bool> = (0..500).map(|_| a.should_fire(FaultSite::DeviceRead)).collect();
        let fire_b: Vec<bool> = (0..500).map(|_| b.should_fire(FaultSite::DeviceRead)).collect();
        assert_ne!(fire_a, fire_b, "different seeds should give different firing patterns");
    }

    #[test]
    fn rate_is_roughly_respected() {
        let plan = FaultPlan::seeded(42).with_rate(FaultSite::PageBitFlip, 0.25);
        let n = 20_000;
        let fired = (0..n).filter(|_| plan.should_fire(FaultSite::PageBitFlip)).count();
        let frac = fired as f64 / n as f64;
        assert!((0.22..0.28).contains(&frac), "empirical rate {frac} far from 0.25");
    }

    #[test]
    fn schedule_fires_exactly_on_nth_arrival() {
        let plan = FaultPlan::seeded(7)
            .with_nth(FaultSite::RpmbWrite, 3)
            .with_nth(FaultSite::RpmbWrite, 5);
        let fires: Vec<bool> = (0..8).map(|_| plan.should_fire(FaultSite::RpmbWrite)).collect();
        assert_eq!(fires, [false, false, true, false, true, false, false, false]);
        assert_eq!(plan.metrics().injected.get(), 2);
    }

    #[test]
    fn clones_share_arrivals_and_metrics() {
        let plan = FaultPlan::seeded(9).with_nth(FaultSite::DeviceWrite, 2);
        let clone = plan.clone();
        assert!(!plan.should_fire(FaultSite::DeviceWrite));
        assert!(clone.should_fire(FaultSite::DeviceWrite), "clone sees arrival #2");
        assert_eq!(plan.arrivals(FaultSite::DeviceWrite), 2);
        assert_eq!(plan.metrics().injected.get(), 1);
    }

    #[test]
    fn retry_recovers_transient_failures() {
        let plan = FaultPlan::seeded(1);
        let policy = RetryPolicy::default();
        let mut left = 2;
        let out = retry_with(&plan, &policy, || {
            if left > 0 {
                left -= 1;
                Err(TestErr::Flaky)
            } else {
                Ok(99)
            }
        });
        assert_eq!(out, Ok(99));
        assert_eq!(plan.metrics().retried.get(), 2);
        assert_eq!(plan.metrics().recovered.get(), 1);
        assert_eq!(plan.metrics().exhausted.get(), 0);
    }

    #[test]
    fn retry_gives_up_after_budget() {
        let plan = FaultPlan::seeded(1);
        let policy = RetryPolicy { max_attempts: 3, ..RetryPolicy::default() };
        let mut calls = 0;
        let out: Result<(), TestErr> = retry_with(&plan, &policy, || {
            calls += 1;
            Err(TestErr::Flaky)
        });
        assert_eq!(out, Err(TestErr::Flaky));
        assert_eq!(calls, 3, "max_attempts bounds total calls");
        assert_eq!(plan.metrics().retried.get(), 2);
        assert_eq!(plan.metrics().exhausted.get(), 1);
    }

    #[test]
    fn fatal_errors_are_not_retried() {
        let plan = FaultPlan::seeded(1);
        let policy = RetryPolicy::default();
        let mut calls = 0;
        let out: Result<(), TestErr> = retry_with(&plan, &policy, || {
            calls += 1;
            Err(TestErr::Fatal)
        });
        assert_eq!(out, Err(TestErr::Fatal));
        assert_eq!(calls, 1);
        assert_eq!(plan.metrics().retried.get(), 0);
    }

    #[test]
    fn backoff_is_exponential_and_charged_to_other() {
        let policy = RetryPolicy { max_attempts: 4, base_backoff_ns: 100.0, multiplier: 2.0 };
        assert_eq!(policy.backoff_ns(0), 100.0);
        assert_eq!(policy.backoff_ns(1), 200.0);
        assert_eq!(policy.backoff_ns(2), 400.0);
        // With a trace installed, retries show up as simulated time.
        let trace = ironsafe_obs::span::Trace::new();
        let guard = trace.install();
        {
            let _s = ironsafe_obs::span::Span::enter("retry");
            let plan = FaultPlan::seeded(3);
            let mut left = 2;
            let _ = retry_with(&plan, &policy, || {
                if left > 0 {
                    left -= 1;
                    Err(TestErr::Flaky)
                } else {
                    Ok(())
                }
            });
        }
        drop(guard);
        let snap = trace.snapshot();
        let other_ns: f64 = snap
            .category_totals()
            .iter()
            .filter(|(cat, _)| *cat == "other")
            .map(|(_, ns)| *ns)
            .sum();
        assert_eq!(other_ns, 300.0, "two retries charge 100 + 200 ns");
    }

    #[test]
    fn metrics_register_under_faults_names() {
        let plan = FaultPlan::seeded(5).with_nth(FaultSite::DeviceRead, 1);
        let registry = Registry::new();
        plan.register_metrics(&registry);
        assert!(plan.should_fire(FaultSite::DeviceRead));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("faults.injected"), Some(1));
        assert_eq!(snap.counter("faults.retried"), Some(0));
        assert_eq!(snap.counter("faults.recovered"), Some(0));
        assert_eq!(snap.counter("faults.exhausted"), Some(0));
    }

    #[test]
    fn site_names_are_stable() {
        let names: Vec<&str> = ALL_SITES.iter().map(|s| s.as_str()).collect();
        assert_eq!(names.len(), NUM_SITES);
        for (i, site) in ALL_SITES.iter().enumerate() {
            assert_eq!(site.index(), i, "ALL_SITES order must match index()");
        }
        assert!(names.contains(&"storage.device.read"));
        assert!(names.contains(&"tee.rpmb.write_fail"));
        assert!(names.contains(&"storage.wal.append"));
        assert!(names.contains(&"storage.wal.tear"));
        assert!(names.contains(&"storage.commit.crash"));
    }
}
