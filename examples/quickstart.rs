//! Quickstart: boot an IronSafe deployment, store data under an access
//! policy, query it, and verify the proof of compliance.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ironsafe::{Client, Deployment};

fn main() {
    // 1. Deploy: one SGX host + one TrustZone storage server in the EU,
    //    both attested by the trusted monitor during build().
    let mut dep = Deployment::builder()
        .region("EU")
        .build()
        .expect("attestation succeeds");
    println!("✔ deployment attested (host-0 + storage-0, EU)");

    // 2. The data producer registers an access policy and loads data.
    dep.create_database(
        "airline",
        "read :- sessionKeyIs(airline) | sessionKeyIs(hotel)\n\
         write :- sessionKeyIs(airline)",
    );
    let airline = Client::new("airline");
    dep.submit(&airline, "airline", "CREATE TABLE bookings (customer INT, flight TEXT, arrival DATE)", "")
        .unwrap();
    dep.submit(
        &airline,
        "airline",
        "INSERT INTO bookings VALUES \
         (1, 'LH441', '1997-05-02'), \
         (2, 'LH442', '1997-05-03'), \
         (3, 'LH441', '1997-05-02')",
        "",
    )
    .unwrap();
    println!("✔ producer loaded 3 bookings under its access policy");

    // 3. A partner (the hotel) reads — with an execution policy pinning
    //    the data to EU nodes.
    let hotel = Client::new("hotel");
    let resp = dep
        .submit(
            &hotel,
            "airline",
            "SELECT arrival FROM bookings WHERE customer = 2",
            "exec :- storageLocIs(EU) & hostLocIs(EU)",
        )
        .expect("policy-compliant read");
    println!(
        "✔ hotel sees customer 2 arriving {}",
        resp.result.rows()[0][0]
    );

    // 4. The proof of compliance verifies against the monitor's key.
    assert!(resp.verify_proof(&dep));
    println!("✔ proof of compliance verified");

    // 5. Unauthorized parties are refused — and it's on the record.
    let snoop = Client::new("snoop");
    assert!(dep.submit(&snoop, "airline", "SELECT * FROM bookings", "").is_err());
    assert!(dep.monitor().audit().verify());
    println!(
        "✔ snoop denied; tamper-evident audit log holds {} entries",
        dep.monitor().audit().entries().len()
    );
}
