//! Compress-before-encrypt page store.
//!
//! [`CompressedPager`] wraps any [`Pager`] and presents *logical* pages
//! [`COMPRESSED_PAGE_FACTOR`]× larger than the inner pager's physical
//! payload. Each logical page is compressed (RLE, dictionary, or raw
//! fallback — chosen per page, see [`crate::codec::compress_page`]) and
//! the framed result is striped over however many physical pages it
//! needs. Over a [`crate::SecurePager`] this is exactly the paper's
//! compress-before-encrypt pipeline: compression happens on plaintext,
//! *then* each physical block is encrypted, MACed and enrolled as a
//! Merkle leaf — so a page that compresses 4:1 costs one quarter of the
//! encrypted bytes, MACs, Merkle leaves and device I/O, and every one
//! of those savings shows up honestly in the inner pager's
//! [`PagerStats`] (the wrapper reports the inner counters verbatim).
//!
//! The logical→physical block map is deterministic: writes reuse a
//! page's existing blocks in order, allocate extra blocks at the inner
//! tail only when the page grew, and orphan surplus blocks (never
//! reused, never read) when it shrank. Reads of one logical page issue
//! a single inner `read_pages` batch, so the verified-node Merkle cache
//! collapses the freshness climb exactly as it does for morsel batches.

use crate::codec::{compress_page, decompress_page, Compression, COMPRESS_HEADER};
use crate::pager::{PageId, Pager, PagerStats};
use crate::{Result, StorageError};
use ironsafe_obs::{Counter, Gauge, Registry};

/// Physical pages backing one logical page when stored raw. The raw
/// fallback (header + verbatim payload) fills exactly this many inner
/// pages, so compression can never cost more blocks than no compression.
pub const COMPRESSED_PAGE_FACTOR: usize = 8;

/// Live telemetry cells for the compression layer (`storage.compress.*`).
#[derive(Debug, Clone, Default)]
pub struct CompressMetrics {
    /// Pages stored verbatim (`storage.compress.pages_raw`).
    pub pages_raw: Counter,
    /// Pages stored run-length encoded (`storage.compress.pages_rle`).
    pub pages_rle: Counter,
    /// Pages stored dictionary-coded (`storage.compress.pages_dict`).
    pub pages_dict: Counter,
    /// Stored physical bytes as a percentage of logical bytes across all
    /// page stores (`storage.compress.ratio_pct`).
    pub ratio_pct: Gauge,
}

impl CompressMetrics {
    /// Attach every cell to `registry` under its `storage.compress.*` name.
    pub fn register(&self, registry: &Registry) {
        registry.register_counter("storage.compress.pages_raw", &self.pages_raw);
        registry.register_counter("storage.compress.pages_rle", &self.pages_rle);
        registry.register_counter("storage.compress.pages_dict", &self.pages_dict);
        registry.register_gauge("storage.compress.ratio_pct", &self.ratio_pct);
    }
}

/// A pager that compresses logical pages before handing physical blocks
/// to the wrapped pager (see the module docs for the layout contract).
pub struct CompressedPager<P: Pager> {
    inner: P,
    /// Logical payload size presented upward.
    payload: usize,
    /// Physical payload size of the wrapped pager.
    inner_payload: usize,
    /// Logical page id → physical block ids, in stripe order.
    map: Vec<Vec<PageId>>,
    /// Staging buffer for physical stripes (reused across calls).
    scratch: Vec<u8>,
    metrics: CompressMetrics,
    /// Cumulative logical bytes stored (for the ratio gauge).
    logical_bytes: u64,
    /// Cumulative physical bytes occupied by stores (block granular).
    physical_bytes: u64,
}

impl<P: Pager> CompressedPager<P> {
    /// Wrap `inner`, presenting logical pages of
    /// `COMPRESSED_PAGE_FACTOR * inner.payload_size() - COMPRESS_HEADER`
    /// bytes. The wrapped pager must be empty: the block map is built
    /// by this wrapper's own allocations.
    pub fn new(inner: P) -> Self {
        let inner_payload = inner.payload_size();
        CompressedPager {
            payload: COMPRESSED_PAGE_FACTOR * inner_payload - COMPRESS_HEADER,
            inner_payload,
            inner,
            map: Vec::new(),
            scratch: Vec::new(),
            metrics: CompressMetrics::default(),
            logical_bytes: 0,
            physical_bytes: 0,
        }
    }

    /// The wrapped pager (counter inspection, attacker interfaces).
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Mutable access to the wrapped pager.
    pub fn inner_mut(&mut self) -> &mut P {
        &mut self.inner
    }

    /// Physical blocks currently backing logical page `id`.
    pub fn blocks_of(&self, id: PageId) -> Result<&[PageId]> {
        self.map
            .get(id as usize)
            .map(|v| v.as_slice())
            .ok_or(StorageError::PageOutOfRange(id))
    }

    /// Total physical blocks currently mapped (orphaned blocks excluded).
    pub fn mapped_blocks(&self) -> u64 {
        self.map.iter().map(|b| b.len() as u64).sum()
    }

    /// The live compression telemetry cells.
    pub fn compress_metrics(&self) -> &CompressMetrics {
        &self.metrics
    }

    /// Compress `data` and stripe it over page `id`'s blocks, growing or
    /// shrinking the block list as the framed size dictates.
    fn store(&mut self, id: usize, data: &[u8]) -> Result<()> {
        let (codec, framed) = compress_page(data);
        match codec {
            Compression::Raw => self.metrics.pages_raw.inc(),
            Compression::Rle => self.metrics.pages_rle.inc(),
            Compression::Dict => self.metrics.pages_dict.inc(),
        }
        let needed = framed.len().div_ceil(self.inner_payload);
        debug_assert!(needed <= COMPRESSED_PAGE_FACTOR);
        let blocks = &mut self.map[id];
        while blocks.len() < needed {
            blocks.push(self.inner.allocate_page()?);
        }
        // A shrinking page orphans its surplus tail blocks: they stay
        // allocated (and Merkle-enrolled) but are never read again.
        blocks.truncate(needed);
        self.scratch.clear();
        self.scratch.extend_from_slice(&framed);
        self.scratch.resize(needed * self.inner_payload, 0);
        for (i, block) in self.map[id].clone().into_iter().enumerate() {
            self.inner
                .write_page(block, &self.scratch[i * self.inner_payload..(i + 1) * self.inner_payload])?;
        }
        self.logical_bytes += data.len() as u64;
        self.physical_bytes += (needed * self.inner_payload) as u64;
        if let Some(pct) = (self.physical_bytes * 100).checked_div(self.logical_bytes) {
            self.metrics.ratio_pct.set(pct as i64);
        }
        Ok(())
    }
}

impl<P: Pager> Pager for CompressedPager<P> {
    fn payload_size(&self) -> usize {
        self.payload
    }

    fn num_pages(&self) -> u64 {
        self.map.len() as u64
    }

    fn set_fault_plan(&mut self, plan: ironsafe_faults::FaultPlan) {
        self.inner.set_fault_plan(plan);
    }

    fn set_retry_policy(&mut self, policy: ironsafe_faults::RetryPolicy) {
        self.inner.set_retry_policy(policy);
    }

    fn set_merkle_cache_enabled(&mut self, enabled: bool) {
        self.inner.set_merkle_cache_enabled(enabled);
    }

    fn set_merkle_cache_capacity(&mut self, capacity: usize) {
        self.inner.set_merkle_cache_capacity(capacity);
    }

    fn set_flight_budget(&mut self, budget_bytes: u64) {
        self.inner.set_flight_budget(budget_bytes);
    }

    fn take_flight_dump(&mut self) -> Vec<String> {
        self.inner.take_flight_dump()
    }

    fn allocate_page(&mut self) -> Result<PageId> {
        let id = self.map.len();
        self.map.push(Vec::new());
        // A fresh logical page must read back zeroed, so store the
        // compressed zero page now (RLE shrinks it to a single block).
        let zeros = vec![0u8; self.payload];
        self.store(id, &zeros)?;
        Ok(id as PageId)
    }

    fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        if buf.len() != self.payload {
            return Err(StorageError::BadBufferSize { expected: self.payload, got: buf.len() });
        }
        let blocks = self
            .map
            .get(id as usize)
            .cloned()
            .ok_or(StorageError::PageOutOfRange(id))?;
        self.scratch.clear();
        self.scratch.resize(blocks.len() * self.inner_payload, 0);
        // One batched inner read per logical page: the secure pager
        // shares a single Merkle climb across the stripe.
        self.inner.read_pages(&blocks, &mut self.scratch)?;
        let payload = decompress_page(&self.scratch, self.payload)?;
        buf.copy_from_slice(&payload);
        Ok(())
    }

    fn write_page(&mut self, id: PageId, data: &[u8]) -> Result<()> {
        if data.len() != self.payload {
            return Err(StorageError::BadBufferSize { expected: self.payload, got: data.len() });
        }
        if id as usize >= self.map.len() {
            return Err(StorageError::PageOutOfRange(id));
        }
        self.store(id as usize, data)
    }

    fn commit(&mut self) -> Result<()> {
        self.inner.commit()
    }

    fn commit_bound(&mut self, wal_head_mac: &[u8; 32]) -> Result<()> {
        self.inner.commit_bound(wal_head_mac)
    }

    // `export_block` and `make_wal` deliberately stay at the trait
    // defaults (`None`): the wrapper's page ids are logical, the inner
    // medium's are physical, and journaling across that mapping would
    // hand the WAL blocks that are not what a raw medium scan would see.

    fn current_root(&self) -> [u8; 32] {
        self.inner.current_root()
    }

    fn take_parts(
        &mut self,
    ) -> Option<(ironsafe_tee::trustzone::TrustZoneDevice, crate::blockdev::BlockDevice)> {
        self.inner.take_parts()
    }

    /// The wrapper adds no accounting of its own: every counter is the
    /// wrapped pager's *physical* tally, so fewer stored blocks mean
    /// honestly fewer reads, decrypts, MACs and Merkle visits.
    fn stats(&self) -> PagerStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }

    fn register_metrics(&self, registry: &Registry) {
        self.inner.register_metrics(registry);
        self.metrics.register(registry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::PlainPager;
    use crate::SecurePager;
    use ironsafe_crypto::group::Group;
    use ironsafe_tee::trustzone::Manufacturer;
    use rand::SeedableRng;

    fn secure() -> SecurePager {
        let group = Group::modp_1024();
        let mfr = Manufacturer::from_seed(&group, b"acme");
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let dev = mfr.make_device("s0", 8, &mut rng);
        SecurePager::create(dev, 42).unwrap()
    }

    #[test]
    fn logical_payload_is_factor_sized() {
        let p = CompressedPager::new(PlainPager::new());
        assert_eq!(
            p.payload_size(),
            COMPRESSED_PAGE_FACTOR * crate::PAGE_PAYLOAD - COMPRESS_HEADER
        );
    }

    #[test]
    fn allocate_write_read_roundtrip() {
        let mut p = CompressedPager::new(PlainPager::new());
        let id = p.allocate_page().unwrap();
        let payload = p.payload_size();
        let mut data = vec![0u8; payload];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 7) as u8;
        }
        p.write_page(id, &data).unwrap();
        let mut back = vec![0u8; payload];
        p.read_page(id, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn fresh_page_reads_zeroed_from_one_block() {
        let mut p = CompressedPager::new(PlainPager::new());
        let id = p.allocate_page().unwrap();
        assert_eq!(p.blocks_of(id).unwrap().len(), 1, "zero page RLEs to one block");
        let mut buf = vec![0xffu8; p.payload_size()];
        p.read_page(id, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn incompressible_page_occupies_the_full_stripe() {
        let mut p = CompressedPager::new(PlainPager::new());
        let id = p.allocate_page().unwrap();
        let mut data = vec![0u8; p.payload_size()];
        let mut x = 0x9E3779B97F4A7C15u64;
        for b in data.iter_mut() {
            // xorshift noise: no runs, no window matches.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *b = x as u8;
        }
        p.write_page(id, &data).unwrap();
        assert_eq!(p.blocks_of(id).unwrap().len(), COMPRESSED_PAGE_FACTOR);
        let mut back = vec![0u8; p.payload_size()];
        p.read_page(id, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn shrinking_page_orphans_blocks_deterministically() {
        let mut p = CompressedPager::new(PlainPager::new());
        let id = p.allocate_page().unwrap();
        let mut big = vec![0u8; p.payload_size()];
        let mut x = 1u64;
        for b in big.iter_mut() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = (x >> 56) as u8;
        }
        p.write_page(id, &big).unwrap();
        let grown = p.blocks_of(id).unwrap().len();
        assert!(grown > 1);
        let inner_pages = p.inner().num_pages();
        p.write_page(id, &vec![0u8; p.payload_size()]).unwrap();
        assert_eq!(p.blocks_of(id).unwrap().len(), 1);
        assert_eq!(p.inner().num_pages(), inner_pages, "orphans stay allocated");
        // Growing again reuses the kept head block then allocates fresh.
        p.write_page(id, &big).unwrap();
        let mut back = vec![0u8; p.payload_size()];
        p.read_page(id, &mut back).unwrap();
        assert_eq!(back, big);
    }

    #[test]
    fn physical_crypto_costs_drop_with_compression() {
        let mut p = CompressedPager::new(secure());
        let id = p.allocate_page().unwrap();
        // A repetitive page: compresses far below the raw stripe.
        let payload = p.payload_size();
        let data: Vec<u8> = (0..payload).map(|i| b"abcdefgh"[(i / 64) % 8]).collect();
        p.write_page(id, &data).unwrap();
        let blocks = p.blocks_of(id).unwrap().len();
        assert!(blocks < COMPRESSED_PAGE_FACTOR / 2, "{blocks} blocks");
        p.reset_stats();
        let mut back = vec![0u8; payload];
        p.read_page(id, &mut back).unwrap();
        assert_eq!(back, data);
        let stats = p.stats();
        assert_eq!(stats.decrypts, blocks as u64, "decrypts are per physical block");
        assert_eq!(stats.page_reads, blocks as u64);
    }

    #[test]
    fn metrics_register_and_count() {
        let mut p = CompressedPager::new(PlainPager::new());
        let reg = Registry::new();
        p.register_metrics(&reg);
        let id = p.allocate_page().unwrap();
        let payload = p.payload_size();
        p.write_page(id, &vec![0u8; payload]).unwrap();
        let snap = reg.snapshot();
        let get = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert!(get("storage.compress.pages_rle") + get("storage.compress.pages_dict") >= 2);
        let ratio = snap
            .gauges
            .iter()
            .find(|(n, _)| n == "storage.compress.ratio_pct")
            .map(|(_, v)| *v)
            .unwrap();
        assert!(ratio < 50, "zero pages must compress well, got {ratio}%");
        assert!(ironsafe_obs::manifest::unlisted_names(&snap).is_empty());
    }

    #[test]
    fn bad_sizes_and_unknown_pages_rejected() {
        let mut p = CompressedPager::new(PlainPager::new());
        let mut small = vec![0u8; 8];
        assert!(matches!(p.read_page(0, &mut small), Err(StorageError::BadBufferSize { .. })));
        assert!(matches!(p.write_page(0, &small), Err(StorageError::BadBufferSize { .. })));
        let mut buf = vec![0u8; p.payload_size()];
        assert_eq!(p.read_page(3, &mut buf), Err(StorageError::PageOutOfRange(3)));
        assert!(p.write_page(3, &buf).is_err());
    }

    #[test]
    fn works_under_a_view_pager_cache() {
        use crate::view::{PageCache, ViewPager};
        use parking_lot::Mutex;
        use std::sync::Arc;
        let mut base = CompressedPager::new(secure());
        let a = base.allocate_page().unwrap();
        let payload = base.payload_size();
        let data: Vec<u8> = (0..payload).map(|i| (i % 11) as u8).collect();
        base.write_page(a, &data).unwrap();
        base.reset_stats();
        let shared: Arc<Mutex<dyn Pager + Send>> = Arc::new(Mutex::new(base));
        let cache = Arc::new(PageCache::new());
        let mut v1 = ViewPager::over(shared.clone(), cache.clone());
        let mut v2 = ViewPager::over(shared.clone(), cache);
        let mut b1 = vec![0u8; payload];
        v1.read_page(a, &mut b1).unwrap();
        let mut b2 = vec![0u8; payload];
        v2.read_page(a, &mut b2).unwrap();
        assert_eq!(b1, data);
        assert_eq!(b2, data);
        // Cache hit replayed the physical delta without re-reading.
        assert_eq!(v1.stats().decrypts, v2.stats().decrypts);
    }
}
