//! Attack suite: every adversary capability from the paper's threat model
//! (§3.3), mounted against the real stack, must be detected or refused.

use ironsafe::crypto::group::Group;
use ironsafe::crypto::schnorr::KeyPair;
use ironsafe::csa::net::channel_pair;
use ironsafe::monitor::monitor::{MonitorConfig, QueryRequest};
use ironsafe::monitor::TrustedMonitor;
use ironsafe::policy::parse_policy;
use ironsafe::sql::Database;
use ironsafe::storage::pager::Pager;
use ironsafe::storage::{SecurePager, StorageError};
use ironsafe::tee::image::SoftwareImage;
use ironsafe::tee::sgx::{AttestationService, EnclaveConfig, Quote, SgxPlatform};
use ironsafe::tee::trustzone::{
    AttestationTa, BootImages, Manufacturer, SecureBoot, SignedImage,
};
use rand::SeedableRng;

type Rng = rand::rngs::StdRng;

fn rng() -> Rng {
    Rng::seed_from_u64(99)
}

// ---------------------------------------------------------------------
// Attacks on persistent state (untrusted medium).
// ---------------------------------------------------------------------

fn loaded_secure_db() -> Database {
    let group = Group::modp_1024();
    let mfr = Manufacturer::from_seed(&group, b"attack-vendor");
    let device = mfr.make_device("victim", 8, &mut rng());
    let mut db = Database::new(SecurePager::create(device, 1).unwrap());
    db.execute("CREATE TABLE secrets (id INT, ssn TEXT)").unwrap();
    let values: Vec<String> = (0..300).map(|i| format!("({i}, 'ssn-{i:06}')")).collect();
    db.execute(&format!("INSERT INTO secrets VALUES {}", values.join(", "))).unwrap();
    db
}

#[test]
fn medium_inspection_reveals_no_plaintext() {
    // The attacker dumps every raw block of the medium and greps for the
    // sensitive values; nothing may appear.
    let group = Group::modp_1024();
    let mfr = Manufacturer::from_seed(&group, b"inspect-vendor");
    let device = mfr.make_device("inspect", 8, &mut rng());
    let mut pager = SecurePager::create(device, 7).unwrap();
    let id = pager.allocate_page().unwrap();
    let mut payload = vec![0u8; pager.payload_size()];
    payload[..20].copy_from_slice(b"ssn-123456 TOPSECRET");
    pager.write_page(id, &payload).unwrap();
    let raw = pager.device().raw_read(id).unwrap();
    assert!(!raw.windows(9).any(|w| w == b"TOPSECRET"), "plaintext leaked to the medium");
    assert!(!raw.windows(10).any(|w| w == b"ssn-123456"));
    // The legitimate query path still reads it fine.
    let mut back = vec![0u8; payload.len()];
    pager.read_page(id, &mut back).unwrap();
    assert_eq!(back, payload);
}

#[test]
fn offline_page_tampering_detected_at_query_time() {
    // The attacker flips bits in a data block on the medium; the next
    // read through the secure path must refuse it, while an untampered
    // database keeps serving.
    let group = Group::modp_1024();
    let mfr = Manufacturer::from_seed(&group, b"attack-vendor-2");
    let device = mfr.make_device("victim2", 8, &mut rng());
    let mut pager = SecurePager::create(device, 2).unwrap();
    let id = pager.allocate_page().unwrap();
    let payload = vec![7u8; pager.payload_size()];
    pager.write_page(id, &payload).unwrap();
    pager.device_mut().raw_tamper(id, 64, 0xff);
    let mut buf = vec![0u8; payload.len()];
    assert!(matches!(pager.read_page(id, &mut buf), Err(StorageError::IntegrityViolation(_))));

    let mut db = loaded_secure_db();
    let r = db.execute("SELECT COUNT(*) FROM secrets").unwrap();
    assert_eq!(r.rows()[0][0].as_i64().unwrap(), 300, "untampered database still serves");
}

#[test]
fn rollback_attack_across_reboot_detected() {
    let group = Group::modp_1024();
    let mfr = Manufacturer::from_seed(&group, b"attack-vendor-3");
    let device = mfr.make_device("victim3", 8, &mut rng());
    let mut pager = SecurePager::create(device, 3).unwrap();
    let id = pager.allocate_page().unwrap();
    let v1 = vec![1u8; pager.payload_size()];
    let v2 = vec![2u8; pager.payload_size()];
    pager.write_page(id, &v1).unwrap();
    pager.commit().unwrap();
    let stale = pager.device().raw_snapshot();
    pager.write_page(id, &v2).unwrap();
    pager.commit().unwrap();
    // Power off; attacker restores the old medium; reboot.
    let (tz, mut medium) = pager.into_parts();
    medium.raw_restore(stale);
    assert!(matches!(SecurePager::open(tz, medium, 4), Err(StorageError::FreshnessViolation(_))));
}

// ---------------------------------------------------------------------
// Attacks on attestation (impersonation, tampered stacks).
// ---------------------------------------------------------------------

struct AttestFixture {
    group: Group,
    monitor: TrustedMonitor,
    platform: SgxPlatform,
    host_image: SoftwareImage,
    mfr: Manufacturer,
    images: BootImages,
}

fn attest_fixture() -> AttestFixture {
    let group = Group::modp_1024();
    let mut r = rng();
    let platform = SgxPlatform::from_seed(&group, b"genuine-host");
    let host_image = SoftwareImage::new("host-engine", 5, b"trusted engine".to_vec());
    let mut ias = AttestationService::new(&group);
    ias.register_platform(&platform);
    let mfr = Manufacturer::from_seed(&group, b"genuine-vendor");
    let vendor = KeyPair::derive(&group, b"genuine-vendor", b"tz-manufacturer-root");
    let device = mfr.make_device("genuine-storage", 8, &mut r);
    let images = BootImages {
        trusted_firmware: SignedImage::sign(&group, &vendor.secret, SoftwareImage::new("atf", 2, b"atf".to_vec()), &mut r),
        trusted_os: SignedImage::sign(&group, &vendor.secret, SoftwareImage::new("optee", 34, b"optee".to_vec()), &mut r),
        normal_world: SoftwareImage::new("nw", 5, b"trusted nw".to_vec()),
    };
    let booted = SecureBoot::boot(&device, &mfr.root_public(), &images, &mut r).unwrap();
    let config = MonitorConfig {
        expected_host_measurement: host_image.measure(),
        expected_nw_measurement: booted.nw_measurement,
        latest_fw: 5,
    };
    let monitor = TrustedMonitor::new(&group, 5, ias, mfr.root_public(), config);
    AttestFixture { group, monitor, platform, host_image, mfr, images }
}

#[test]
fn backdoored_host_engine_cannot_attest() {
    let mut f = attest_fixture();
    let mut r = rng();
    let evil_image = SoftwareImage::new("host-engine", 5, b"trusted engine + backdoor".to_vec());
    let enclave = f.platform.create_enclave(&evil_image, EnclaveConfig::default());
    let keys = KeyPair::generate(&f.group, &mut r);
    let commitment = ironsafe::crypto::sha256::sha256(&keys.public.to_bytes(&f.group));
    let quote = Quote::generate(&f.platform, &enclave, &commitment, &mut r);
    assert!(f.monitor.attest_host("host-0", "EU", &quote, &keys.public).is_err());
}

#[test]
fn unregistered_sgx_platform_cannot_attest() {
    let mut f = attest_fixture();
    let mut r = rng();
    let rogue = SgxPlatform::from_seed(&f.group, b"rogue-host");
    let enclave = rogue.create_enclave(&f.host_image, EnclaveConfig::default());
    let keys = KeyPair::generate(&f.group, &mut r);
    let commitment = ironsafe::crypto::sha256::sha256(&keys.public.to_bytes(&f.group));
    let quote = Quote::generate(&rogue, &enclave, &commitment, &mut r);
    assert!(f.monitor.attest_host("host-0", "EU", &quote, &keys.public).is_err());
}

#[test]
fn impersonated_storage_device_cannot_attest() {
    // An attacker-controlled device from a different (or forged)
    // manufacturer answers the monitor's challenge.
    let mut f = attest_fixture();
    let mut r = rng();
    let evil_mfr = Manufacturer::from_seed(&f.group, b"evil-vendor");
    let evil_vendor = KeyPair::derive(&f.group, b"evil-vendor", b"tz-manufacturer-root");
    let evil_device = evil_mfr.make_device("fake-storage", 8, &mut r);
    let evil_images = BootImages {
        trusted_firmware: SignedImage::sign(&f.group, &evil_vendor.secret, f.images.trusted_firmware.image.clone(), &mut r),
        trusted_os: SignedImage::sign(&f.group, &evil_vendor.secret, f.images.trusted_os.image.clone(), &mut r),
        normal_world: f.images.normal_world.clone(),
    };
    let booted = SecureBoot::boot(&evil_device, &evil_mfr.root_public(), &evil_images, &mut r).unwrap();
    let challenge = f.monitor.storage_challenge();
    let response = AttestationTa::new(&booted).respond(challenge, &mut r);
    assert!(f.monitor.attest_storage("storage-0", "EU", &response).is_err());
}

#[test]
fn modified_normal_world_cannot_attest() {
    let mut f = attest_fixture();
    let mut r = rng();
    let device = f.mfr.make_device("genuine-storage", 8, &mut r);
    let mut images = f.images.clone();
    images.normal_world = SoftwareImage::new("nw", 5, b"trusted nw + rootkit".to_vec());
    let booted = SecureBoot::boot(&device, &f.mfr.root_public(), &images, &mut r).unwrap();
    let challenge = f.monitor.storage_challenge();
    let response = AttestationTa::new(&booted).respond(challenge, &mut r);
    let err = f.monitor.attest_storage("storage-0", "EU", &response);
    assert!(err.is_err(), "unexpected normal-world measurement must be refused");
}

// ---------------------------------------------------------------------
// Attacks on data in transit.
// ---------------------------------------------------------------------

#[test]
fn channel_tamper_replay_and_cross_session_rejected() {
    let (mut tx, mut rx) = channel_pair(&[1; 32]);
    let record = tx.seal(b"l_orderkey=42");
    // Tamper.
    let mut bad = record.clone();
    bad.payload[0] ^= 1;
    assert!(rx.open(&bad).is_err());
    // Genuine delivery works...
    assert_eq!(rx.open(&record).unwrap(), b"l_orderkey=42");
    // ...but replay does not.
    assert!(rx.open(&record).is_err());
    // Cross-session injection: a record sealed under an old session key.
    let (mut old_tx, _) = channel_pair(&[2; 32]);
    let stale = old_tx.seal(b"stale");
    assert!(rx.open(&stale).is_err());
}

// ---------------------------------------------------------------------
// Attacks through the query interface.
// ---------------------------------------------------------------------

#[test]
fn crafted_queries_are_logged_and_refused() {
    let mut f = attest_fixture();
    let mut r = rng();
    // Attest genuine host + storage first.
    let enclave = f.platform.create_enclave(&f.host_image, EnclaveConfig::default());
    let keys = KeyPair::generate(&f.group, &mut r);
    let commitment = ironsafe::crypto::sha256::sha256(&keys.public.to_bytes(&f.group));
    let quote = Quote::generate(&f.platform, &enclave, &commitment, &mut r);
    f.monitor.attest_host("host-0", "EU", &quote, &keys.public).unwrap();
    let device = f.mfr.make_device("genuine-storage", 8, &mut r);
    let booted = SecureBoot::boot(&device, &f.mfr.root_public(), &f.images, &mut r).unwrap();
    let challenge = f.monitor.storage_challenge();
    let response = AttestationTa::new(&booted).respond(challenge, &mut r);
    f.monitor.attest_storage("storage-0", "EU", &response).unwrap();

    f.monitor.register_database("db", parse_policy("read :- sessionKeyIs(Ka)").unwrap());

    // SQL-injection-style garbage: rejected AND recorded tamper-proof.
    let req = QueryRequest {
        client_key: "Ka".into(),
        database: "db".into(),
        sql: "SELECT a FROM t WHERE x = ''; DROP TABLE t; --'".into(),
        exec_policy: String::new(),
        access_time: 1,
    };
    assert!(f.monitor.authorize(&req).is_err());
    assert!(f.monitor.audit().verify());
    assert!(f
        .monitor
        .audit()
        .entries()
        .iter()
        .any(|e| e.message.contains("REJECTED malformed")));
}

#[test]
fn audit_log_tampering_is_detectable() {
    let log = ironsafe::monitor::AuditLog::new();
    log.append(1, "monitor", "Ka", "GRANT read: SELECT 1");
    log.append(2, "sharing", "Kb", "SELECT arrival FROM bookings");
    log.append(3, "monitor", "Kb", "session 1 cleaned up");
    assert!(log.verify());
    // A malicious processor rewrites history.
    log.with_raw_entries(|entries| entries[1].message = "SELECT nothing".into());
    assert!(!log.verify());
}
