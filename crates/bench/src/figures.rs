//! One function per table/figure of the paper's evaluation.

use ironsafe_csa::{CostParams, CsaSystem, QueryReport, SharedCsaSystem, SystemConfig};
use ironsafe_serve::{Job, QueryServer, ServeConfig};
use ironsafe_sql::Database;
use ironsafe_storage::pager::PlainPager;
use ironsafe_tpch::queries::{paper_queries, query, PaperQuery, QueryStage};
use ironsafe_tpch::{generate, TpchData};
use std::collections::HashMap;
use std::sync::Arc;

/// Default scale factor: the paper's SF 3–5, divided by 1000.
pub const DEFAULT_SF: f64 = 0.003;
/// Deterministic data seed for all figures.
pub const SEED: u64 = 2022;

/// Run `q` once under `config` on `data`.
pub fn run_once(config: SystemConfig, data: &TpchData, q: &PaperQuery, params: CostParams) -> QueryReport {
    let mut sys = CsaSystem::build(config, data, params).expect("system builds");
    sys.run_query(q).expect("query runs")
}

/// Run every paper query under several configs, reusing one system per
/// config (loading the secure store once).
pub fn run_matrix(
    configs: &[SystemConfig],
    data: &TpchData,
    params: &CostParams,
) -> HashMap<(SystemConfig, u8), QueryReport> {
    let mut out = HashMap::new();
    for &config in configs {
        let mut sys = CsaSystem::build(config, data, params.clone()).expect("system builds");
        for q in paper_queries() {
            let r = sys.run_query(&q).unwrap_or_else(|e| panic!("{} Q{}: {e}", config.abbrev(), q.id));
            out.insert((config, q.id), r);
        }
    }
    out
}

// ---------------------------------------------------------------------
// Figure 6: per-query speedup from CS execution, non-secure (hons/vcs)
// and secure (hos/scs).
// ---------------------------------------------------------------------

/// One Figure 6 bar pair.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// TPC-H query number.
    pub query: u8,
    /// hons / vcs speedup.
    pub speedup_nonsecure: f64,
    /// hos / scs speedup.
    pub speedup_secure: f64,
}

/// Compute Figure 6.
pub fn fig6(sf: f64) -> Vec<Fig6Row> {
    let data = generate(sf, SEED);
    let m = run_matrix(
        &[
            SystemConfig::HostOnlyNonSecure,
            SystemConfig::VanillaCs,
            SystemConfig::HostOnlySecure,
            SystemConfig::IronSafe,
        ],
        &data,
        &CostParams::default(),
    );
    paper_queries()
        .iter()
        .map(|q| Fig6Row {
            query: q.id,
            speedup_nonsecure: m[&(SystemConfig::HostOnlyNonSecure, q.id)].total_ns()
                / m[&(SystemConfig::VanillaCs, q.id)].total_ns(),
            speedup_secure: m[&(SystemConfig::HostOnlySecure, q.id)].total_ns()
                / m[&(SystemConfig::IronSafe, q.id)].total_ns(),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 7: reduction in data exchanged between host and storage
// (pages processed host-only vs computational storage).
// ---------------------------------------------------------------------

/// One Figure 7 bar.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// TPC-H query number.
    pub query: u8,
    /// hons pages / vcs pages.
    pub io_reduction: f64,
}

/// Compute Figure 7.
pub fn fig7(sf: f64) -> Vec<Fig7Row> {
    let data = generate(sf, SEED);
    let m = run_matrix(
        &[SystemConfig::HostOnlyNonSecure, SystemConfig::VanillaCs],
        &data,
        &CostParams::default(),
    );
    paper_queries()
        .iter()
        .map(|q| Fig7Row {
            query: q.id,
            io_reduction: m[&(SystemConfig::HostOnlyNonSecure, q.id)].pages_shipped.max(1) as f64
                / m[&(SystemConfig::VanillaCs, q.id)].pages_shipped.max(1) as f64,
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 8: relative cost breakdown of running each query with IronSafe.
// ---------------------------------------------------------------------

/// One Figure 8 stacked bar (fractions sum to 1).
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// TPC-H query number.
    pub query: u8,
    /// Vanilla-CS-equivalent fraction.
    pub ndp: f64,
    /// Freshness-verification fraction.
    pub freshness: f64,
    /// Page encryption/decryption fraction.
    pub crypto: f64,
    /// Everything else (transitions, EPC, channel, session).
    pub other: f64,
}

/// Compute Figure 8.
pub fn fig8(sf: f64) -> Vec<Fig8Row> {
    let data = generate(sf, SEED);
    let m = run_matrix(&[SystemConfig::IronSafe], &data, &CostParams::default());
    paper_queries()
        .iter()
        .map(|q| {
            let b = &m[&(SystemConfig::IronSafe, q.id)].breakdown;
            let total = b.total_ns().max(1.0);
            Fig8Row {
                query: q.id,
                ndp: b.ndp_ns / total,
                freshness: b.freshness_ns / total,
                crypto: b.crypto_ns / total,
                other: (b.transitions_ns + b.epc_ns + b.other_ns) / total,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 9a/9b: Q1 latency vs input size and vs selectivity, for
// hos / scs / sos.
// ---------------------------------------------------------------------

/// Q1 with its date filter replaced by a quantity filter of the given
/// selectivity (quantity is uniform on 1..=50).
pub fn q1_with_selectivity(selectivity_pct: u32) -> PaperQuery {
    let cut = (selectivity_pct as f64 / 100.0 * 50.0).round().max(1.0) as i64;
    PaperQuery {
        id: 1,
        name: "Q1 selectivity variant",
        stages: vec![QueryStage {
            sql: format!(
                "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, \
                 SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, \
                 AVG(l_quantity) AS avg_qty, COUNT(*) AS count_order \
                 FROM lineitem WHERE l_quantity <= {cut} \
                 GROUP BY l_returnflag, l_linestatus \
                 ORDER BY l_returnflag, l_linestatus"
            ),
            into: None,
        }],
    }
}

/// One Figure 9a/9b point.
#[derive(Debug, Clone)]
pub struct LatencyPoint {
    /// X value (scale factor ×1000 for 9a, selectivity % for 9b).
    pub x: f64,
    /// hos simulated seconds.
    pub hos: f64,
    /// scs simulated seconds.
    pub scs: f64,
    /// sos simulated seconds.
    pub sos: f64,
}

/// Figure 9a: vary input size at fixed selectivity. The EPC limit is
/// scaled so the Merkle-tree working set crosses it between the middle
/// and largest scale factors — reproducing the paper's paging cliff.
pub fn fig9a(sfs: &[f64]) -> Vec<LatencyPoint> {
    // Estimate the enclave working set (Merkle tree) per SF to place the
    // EPC limit between the second and third points, as on the testbed.
    let tree_bytes: Vec<u64> = sfs
        .iter()
        .map(|&sf| {
            let data = generate(sf, SEED);
            let mut db = Database::new(PlainPager::new());
            ironsafe_tpch::load_into(&mut db, &data).expect("load");
            let pages: u64 = db.catalog().tables().map(|t| t.heap.pages.len() as u64).sum();
            2 * pages * 32
        })
        .collect();
    let epc_limit = if tree_bytes.len() >= 2 {
        ((tree_bytes[tree_bytes.len() - 2] + tree_bytes[tree_bytes.len() - 1]) / 2) as usize
    } else {
        96 * 1024
    };

    let q = q1_with_selectivity(20);
    sfs.iter()
        .map(|&sf| {
            let data = generate(sf, SEED);
            let params = CostParams { epc_limit_bytes: epc_limit, ..CostParams::default() };
            let hos = run_once(SystemConfig::HostOnlySecure, &data, &q, params.clone());
            let scs = run_once(SystemConfig::IronSafe, &data, &q, params.clone());
            let sos = run_once(SystemConfig::StorageOnlySecure, &data, &q, params);
            LatencyPoint {
                x: sf * 1000.0,
                hos: hos.total_ns() / 1e9,
                scs: scs.total_ns() / 1e9,
                sos: sos.total_ns() / 1e9,
            }
        })
        .collect()
}

/// Figure 9b: vary selectivity at fixed scale factor.
pub fn fig9b(sf: f64, selectivities: &[u32]) -> Vec<LatencyPoint> {
    let data = generate(sf, SEED);
    selectivities
        .iter()
        .map(|&sel| {
            let q = q1_with_selectivity(sel);
            let params = CostParams::default();
            let hos = run_once(SystemConfig::HostOnlySecure, &data, &q, params.clone());
            let scs = run_once(SystemConfig::IronSafe, &data, &q, params.clone());
            let sos = run_once(SystemConfig::StorageOnlySecure, &data, &q, params);
            LatencyPoint {
                x: sel as f64,
                hos: hos.total_ns() / 1e9,
                scs: scs.total_ns() / 1e9,
                sos: sos.total_ns() / 1e9,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 9c: secure-storage overhead breakdown in the sos configuration.
// ---------------------------------------------------------------------

/// One Figure 9c stacked bar (fractions of total time).
#[derive(Debug, Clone)]
pub struct Fig9cRow {
    /// TPC-H query number.
    pub query: u8,
    /// Freshness-verification fraction.
    pub freshness: f64,
    /// Decryption fraction.
    pub decrypt: f64,
    /// Query-processing fraction.
    pub processing: f64,
}

/// Compute Figure 9c (the paper shows Q2 and Q9).
pub fn fig9c(sf: f64, queries: &[u8]) -> Vec<Fig9cRow> {
    let data = generate(sf, SEED);
    let mut sys = CsaSystem::build(SystemConfig::StorageOnlySecure, &data, CostParams::default())
        .expect("system builds");
    queries
        .iter()
        .map(|&id| {
            let q = query(id).expect("known query");
            let r = sys.run_query(&q).expect("query runs");
            let total = r.breakdown.total_ns().max(1.0);
            Fig9cRow {
                query: id,
                freshness: r.breakdown.freshness_ns / total,
                decrypt: r.breakdown.crypto_ns / total,
                processing: r.breakdown.ndp_ns / total,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 10: speedup (hos vs scs) with 1..16 storage CPUs.
// ---------------------------------------------------------------------

/// One (query, cores) → speedup cell.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// TPC-H query number.
    pub query: u8,
    /// `(cores, hos/scs speedup)` series.
    pub series: Vec<(u32, f64)>,
}

/// Compute Figure 10.
pub fn fig10(sf: f64, cores: &[u32]) -> Vec<Fig10Row> {
    let data = generate(sf, SEED);
    let hos = run_matrix(&[SystemConfig::HostOnlySecure], &data, &CostParams::default());
    let mut per_core: HashMap<u32, HashMap<(SystemConfig, u8), QueryReport>> = HashMap::new();
    for &c in cores {
        let params = CostParams { storage_cores: c, ..CostParams::default() };
        per_core.insert(c, run_matrix(&[SystemConfig::IronSafe], &data, &params));
    }
    paper_queries()
        .iter()
        .map(|q| Fig10Row {
            query: q.id,
            series: cores
                .iter()
                .map(|&c| {
                    let scs = &per_core[&c][&(SystemConfig::IronSafe, q.id)];
                    (c, hos[&(SystemConfig::HostOnlySecure, q.id)].total_ns() / scs.total_ns())
                })
                .collect(),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 11: offloaded-query speedup vs storage-side memory, normalized
// to the smallest memory budget.
// ---------------------------------------------------------------------

/// One query's memory series.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// TPC-H query number.
    pub query: u8,
    /// `(mem_bytes, speedup vs smallest)` series.
    pub series: Vec<(u64, f64)>,
}

/// Compute Figure 11. `mems` are storage-side memory budgets in bytes
/// (the paper's 128 MiB / 256 MiB / 2 GiB, scaled by 1/1024 here).
pub fn fig11(sf: f64, mems: &[u64]) -> Vec<Fig11Row> {
    let data = generate(sf, SEED);
    let mut per_mem: HashMap<u64, HashMap<(SystemConfig, u8), QueryReport>> = HashMap::new();
    for &m in mems {
        let params = CostParams { storage_mem_bytes: m, ..CostParams::default() };
        per_mem.insert(m, run_matrix(&[SystemConfig::IronSafe], &data, &params));
    }
    let base = mems[0];
    paper_queries()
        .iter()
        .map(|q| Fig11Row {
            query: q.id,
            series: mems
                .iter()
                .map(|&m| {
                    let t0 = per_mem[&base][&(SystemConfig::IronSafe, q.id)].total_ns();
                    let t = per_mem[&m][&(SystemConfig::IronSafe, q.id)].total_ns();
                    (m, t0 / t)
                })
                .collect(),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 12: storage-engine scalability — N concurrent sessions on the
// query server, all sharing ONE system and ONE dataset. Real wall-clock.
// ---------------------------------------------------------------------

/// One query's scalability series.
#[derive(Debug, Clone)]
pub struct Fig12Row {
    /// TPC-H query number.
    pub query: u8,
    /// `(sessions, normalized per-session time)` series: elapsed(N) /
    /// ideal(N). Values ≈1.0 mean the serving path scales linearly —
    /// no cross-session software contention (the paper's finding for
    /// every query but the memory-hungry Q13).
    pub series: Vec<(usize, f64)>,
}

/// A monitor with no attested nodes: enough for the serving layer's
/// session lifecycle (open/touch/audit), which is all the measurement
/// path uses.
pub fn bench_monitor() -> ironsafe_monitor::TrustedMonitor {
    use ironsafe_crypto::group::Group;
    use ironsafe_crypto::schnorr::KeyPair;
    use ironsafe_tee::image::SoftwareImage;
    use ironsafe_tee::sgx::AttestationService;

    let group = Group::modp_1024();
    let ias = AttestationService::new(&group);
    let root = KeyPair::derive(&group, b"bench", b"tz-root").public;
    let config = ironsafe_monitor::MonitorConfig {
        expected_host_measurement: SoftwareImage::new("host", 1, b"host".to_vec()).measure(),
        expected_nw_measurement: SoftwareImage::new("nw", 1, b"nw".to_vec()).measure(),
        latest_fw: 1,
    };
    ironsafe_monitor::TrustedMonitor::new(&group, 7, ias, root, config)
}

/// Start a query server with `workers` workers over `shared`.
fn bench_server(shared: &Arc<SharedCsaSystem>, workers: usize) -> QueryServer {
    QueryServer::start(
        Arc::clone(shared),
        Arc::new(parking_lot::Mutex::new(bench_monitor())),
        ServeConfig {
            workers,
            queue_capacity: workers.max(2),
            max_pending: 4 * workers.max(1),
            ..ServeConfig::default()
        },
    )
}

/// Compute Figure 12 for the given queries (wall-clock measurement).
///
/// Unlike the paper's original N-private-copies setup, every point runs
/// through the query server against a single shared system: the dataset
/// is generated once, loaded once, and sessions contend for the real
/// shared structures (base pager lock, decrypted-page cache). The
/// warm-up run fills the shared cache so every measured point times
/// steady-state execution.
pub fn fig12(sf: f64, instance_counts: &[usize], query_ids: &[u8]) -> Vec<Fig12Row> {
    let data = generate(sf, SEED);
    let shared = Arc::new(SharedCsaSystem::new(
        CsaSystem::build(SystemConfig::StorageOnlySecure, &data, CostParams::default())
            .expect("system builds"),
    ));
    query_ids
        .iter()
        .map(|&id| {
            let q = query(id).expect("known query");
            // Warm the shared decrypted-page cache outside the timers.
            shared.run_query(&q, [0x5e; 32]).expect("warmup runs");
            let mut series = Vec::new();
            let mut single = None;
            for &n in instance_counts {
                let server = bench_server(&shared, n);
                let sessions: Vec<_> =
                    (0..n).map(|i| server.open_session(&format!("inst-{i}"), "bench")).collect();
                let start = std::time::Instant::now();
                let tickets: Vec<_> = sessions
                    .iter()
                    .map(|s| server.submit(s.id, Job::Query(q.clone())).expect("admitted"))
                    .collect();
                for t in tickets {
                    t.wait().outcome.expect("query runs");
                }
                let elapsed = start.elapsed().as_secs_f64();
                server.shutdown();
                if single.is_none() {
                    single = Some(elapsed);
                }
                // With C cores, N sessions of independent work finish in
                // N/C × t1 when nothing contends; normalize that out so
                // ≈1.0 always means "no software bottleneck".
                let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
                let ideal = single.expect("set") * (n as f64 / cores.min(n) as f64).max(1.0);
                series.push((n, elapsed / ideal));
            }
            Fig12Row { query: id, series }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Saturation sweep: offered load vs p50/p95 queue wait on the server.
// ---------------------------------------------------------------------

/// One operating point of the saturation sweep.
#[derive(Debug, Clone)]
pub struct SaturationRow {
    /// Offered load as a fraction of the pool's service capacity.
    pub offered: f64,
    /// Median queue wait (simulated µs).
    pub p50_wait_us: f64,
    /// 95th-percentile queue wait (simulated µs).
    pub p95_wait_us: f64,
    /// Fraction of arrivals rejected by admission control.
    pub rejected: f64,
}

/// Sweep offered load against queue wait.
///
/// Per-query *service times* are measured for real through the query
/// server (simulated nanoseconds, deterministic thanks to the shared
/// read views). The arrival process is a seeded Poisson schedule; queue
/// waits come from a deterministic discrete-event replay of that
/// schedule over a `workers`-strong pool with a bounded backlog
/// (`queue_capacity` per the server's admission rule) — wall clocks
/// never enter the numbers, so the sweep is reproducible bit-for-bit.
pub fn saturation(
    sf: f64,
    workers: usize,
    loads: &[f64],
    requests: usize,
) -> Vec<SaturationRow> {
    use rand::{Rng, SeedableRng};

    // 1. Measure the query mix's service times through the server.
    let data = generate(sf, SEED);
    let shared = Arc::new(SharedCsaSystem::new(
        CsaSystem::build(SystemConfig::StorageOnlySecure, &data, CostParams::default())
            .expect("system builds"),
    ));
    let mix = [1u8, 6, 12];
    let server = bench_server(&shared, 1);
    let session = server.open_session("probe", "bench");
    let service_ns: Vec<f64> = mix
        .iter()
        .map(|&id| {
            let q = query(id).expect("known query");
            // Warm, then measure steady state.
            server.submit(session.id, Job::Query(q.clone())).unwrap().wait().outcome.unwrap();
            let report =
                server.submit(session.id, Job::Query(q)).unwrap().wait().outcome.unwrap();
            report.total_ns()
        })
        .collect();
    server.shutdown();
    let mean_service = service_ns.iter().sum::<f64>() / service_ns.len() as f64;

    // 2. Replay a seeded Poisson arrival schedule at each offered load.
    let backlog_limit = 4 * workers.max(1);
    loads
        .iter()
        .map(|&load| {
            let rate = load * workers as f64 / mean_service; // arrivals per sim-ns
            let mut rng = rand::rngs::StdRng::seed_from_u64(SEED ^ (load * 1000.0) as u64);
            let mut arrival = 0.0f64;
            // Earliest-free worker pool + FIFO backlog occupancy.
            let mut free_at = vec![0.0f64; workers.max(1)];
            let mut queue: std::collections::VecDeque<f64> = std::collections::VecDeque::new();
            let mut waits = Vec::with_capacity(requests);
            let mut rejected = 0usize;
            for i in 0..requests {
                let u: f64 = rng.gen();
                arrival += -(1.0 - u).ln() / rate;
                let service = service_ns[i % service_ns.len()];
                // Drop backlog entries that started before this arrival.
                while queue.front().is_some_and(|&start| start <= arrival) {
                    queue.pop_front();
                }
                if queue.len() >= backlog_limit {
                    rejected += 1; // admission control sheds the arrival
                    continue;
                }
                // Assign to the earliest-free worker.
                let (slot, &earliest) = free_at
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                    .expect("non-empty pool");
                let start = arrival.max(earliest);
                waits.push(start - arrival);
                free_at[slot] = start + service;
                queue.push_back(start);
            }
            waits.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let pct = |p: f64| -> f64 {
                if waits.is_empty() {
                    return 0.0;
                }
                let idx = ((waits.len() - 1) as f64 * p).round() as usize;
                waits[idx] / 1_000.0
            };
            SaturationRow {
                offered: load,
                p50_wait_us: pct(0.50),
                p95_wait_us: pct(0.95),
                rejected: rejected as f64 / requests as f64,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Table 3: GDPR anti-patterns — non-secure vs IronSafe latency.
// ---------------------------------------------------------------------

/// One Table 3 row.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Anti-pattern number and name.
    pub name: &'static str,
    /// Non-secure latency (milliseconds, wall-clock).
    pub nonsecure_ms: f64,
    /// IronSafe latency (milliseconds, wall-clock).
    pub ironsafe_ms: f64,
}

impl Table3Row {
    /// Overhead factor.
    pub fn overhead(&self) -> f64 {
        self.ironsafe_ms / self.nonsecure_ms.max(1e-9)
    }
}

/// Compute Table 3: each anti-pattern runs end-to-end through a full
/// IronSafe deployment (attestation, policy, rewriting, secure storage)
/// and through a bare non-secure engine.
pub fn table3(rows: usize) -> Vec<Table3Row> {
    use ironsafe::{Client, Deployment};
    use ironsafe_tpch::gdpr::{gen_people_with_policy, PEOPLE_DDL_POLICY};

    // Non-secure baseline: plain engine, no monitor, no crypto.
    let mut plain = Database::new(PlainPager::new());
    plain.execute(PEOPLE_DDL_POLICY).expect("ddl");
    plain.insert_rows("people", gen_people_with_policy(rows, 7)).expect("load");

    // IronSafe: full deployment with per-pattern policies.
    let mut dep = Deployment::builder().build().expect("attestation");
    dep.set_time(rows as i64 / 2); // half the records are expired
    let owner = Client::new("Ka");
    let consumer = Client::new("Kb");
    dep.register_service_bit(&consumer, 2);

    let patterns: Vec<(&'static str, &'static str, String)> = vec![
        (
            "#1: Timely deletion",
            "read :- sessionKeyIs(Ka) | sessionKeyIs(Kb) & le(T, TIMESTAMP)\nwrite :- sessionKeyIs(Ka)",
            "SELECT COUNT(*) FROM people WHERE p_country = 'DE'".to_string(),
        ),
        (
            "#2: Indiscriminate use",
            "read :- reuseMap(m)\nwrite :- sessionKeyIs(Ka)",
            "SELECT AVG(p_income) FROM people".to_string(),
        ),
        (
            "#3: Transparent sharing",
            "read :- logUpdate(sharing, K, Q)\nwrite :- sessionKeyIs(Ka)",
            "SELECT p_arrival FROM people WHERE p_flight = 'LH0042'".to_string(),
        ),
        (
            "#4: Risk-agnostic processing",
            "read :- sessionKeyIs(Kb) & fwVersionStorage(3) & fwVersionHost(3)\nwrite :- sessionKeyIs(Ka)",
            "SELECT COUNT(*) FROM people WHERE p_income > 100000".to_string(),
        ),
        (
            "#5: Undetectable breaches",
            "read :- sessionKeyIs(Kb) & logUpdate(breach_audit, K, Q)\nwrite :- sessionKeyIs(Ka)",
            "SELECT p_email FROM people WHERE p_id < 100".to_string(),
        ),
    ];

    let mut out = Vec::new();
    for (i, (name, policy, sql)) in patterns.iter().enumerate() {
        let db_name = format!("gdpr{i}");
        dep.create_database(&db_name, policy);
        // Load the table through the owner (schema includes policy cols).
        dep.submit(&owner, &db_name, PEOPLE_DDL_POLICY, "").ok(); // table may exist from earlier pattern
        // Populate directly for speed (bulk path).
        if dep
            .system_mut()
            .storage_db_mut()
            .catalog()
            .table("people")
            .map(|t| t.heap.row_count == 0)
            .unwrap_or(false)
        {
            dep.system_mut()
                .storage_db_mut()
                .insert_rows("people", gen_people_with_policy(rows, 7))
                .expect("load");
        }

        // Measure the non-secure engine.
        let start = std::time::Instant::now();
        let plain_result = plain.execute(sql).expect("plain query");
        let nonsecure_ms = start.elapsed().as_secs_f64() * 1000.0;

        // Measure IronSafe end-to-end (monitor round + rewritten secure run).
        let start = std::time::Instant::now();
        let resp = dep.submit(&consumer, &db_name, sql, "").expect("ironsafe query");
        let ironsafe_ms = start.elapsed().as_secs_f64() * 1000.0;

        // The rewritten query must not return *more* than the plain one.
        assert!(resp.result.rows().len() <= plain_result.rows().len().max(1));
        out.push(Table3Row { name, nonsecure_ms, ironsafe_ms });
    }
    out
}

// ---------------------------------------------------------------------
// Table 4: attestation latency breakdown (wall-clock of the protocol
// phases, plus the paper's reference numbers).
// ---------------------------------------------------------------------

/// Table 4 measurements.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// Host attestation (quote generation + CAS-style verification), ms.
    pub host_cas_ms: f64,
    /// Storage TEE work (challenge signing in the secure world), ms.
    pub storage_tee_ms: f64,
    /// Storage REE work (normal-world measurement), ms.
    pub storage_ree_ms: f64,
    /// Interconnect (channel establishment), ms.
    pub interconnect_ms: f64,
}

impl Table4 {
    /// Total attestation latency.
    pub fn total_ms(&self) -> f64 {
        self.host_cas_ms + self.storage_tee_ms + self.storage_ree_ms + self.interconnect_ms
    }
}

/// Measure Table 4 by running the real attestation protocol phases.
pub fn table4() -> Table4 {
    use ironsafe_crypto::group::Group;
    use ironsafe_crypto::schnorr::KeyPair;
    use ironsafe_monitor::monitor::MonitorConfig;
    use ironsafe_monitor::TrustedMonitor;
    use ironsafe_tee::image::SoftwareImage;
    use ironsafe_tee::sgx::{AttestationService, EnclaveConfig, Quote, SgxPlatform};
    use ironsafe_tee::trustzone::{AttestationTa, BootImages, Manufacturer, SecureBoot, SignedImage};
    use rand::SeedableRng;

    let group = Group::modp_1024();
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let platform = SgxPlatform::from_seed(&group, b"t4-host");
    let host_image = SoftwareImage::new("host-engine", 5, b"engine".to_vec());
    let enclave = platform.create_enclave(&host_image, EnclaveConfig::default());
    let mut ias = AttestationService::new(&group);
    ias.register_platform(&platform);

    let mfr = Manufacturer::from_seed(&group, b"t4-vendor");
    let vendor = KeyPair::derive(&group, b"t4-vendor", b"tz-manufacturer-root");
    let device = mfr.make_device("t4-storage", 8, &mut rng);
    let images = BootImages {
        trusted_firmware: SignedImage::sign(&group, &vendor.secret, SoftwareImage::new("atf", 2, b"atf".to_vec()), &mut rng),
        trusted_os: SignedImage::sign(&group, &vendor.secret, SoftwareImage::new("optee", 34, b"optee".to_vec()), &mut rng),
        // A realistically sized normal-world image (8 MiB kernel+engine)
        // so the REE measurement phase does real hashing work.
        normal_world: SoftwareImage::new("nw", 5, vec![0xab; 8 * 1024 * 1024]),
    };

    // REE phase: hash-measuring the normal-world image.
    let start = std::time::Instant::now();
    let nw_measurement = images.normal_world.measure();
    let storage_ree_ms = start.elapsed().as_secs_f64() * 1000.0;
    let _ = nw_measurement;

    // Storage TEE phase (part 1): secure boot — signature verification of
    // each stage plus generation of the per-boot certificate chain, all
    // secure-world work on the real device.
    let start = std::time::Instant::now();
    let booted = SecureBoot::boot(&device, &mfr.root_public(), &images, &mut rng).expect("boot");
    // Clamp here, not after phase 2: under scheduler noise the re-hash
    // inside boot can run faster than the measured REE phase, and a
    // negative part-1 must not swallow phase 2's real work.
    let mut storage_tee_ms = (start.elapsed().as_secs_f64() * 1000.0 - storage_ree_ms).max(0.0);

    let config = MonitorConfig {
        expected_host_measurement: host_image.measure(),
        expected_nw_measurement: booted.nw_measurement,
        latest_fw: 5,
    };
    let mut monitor = TrustedMonitor::new(&group, 4, ias, mfr.root_public(), config);
    let host_keys = KeyPair::generate(&group, &mut rng);

    // Host phase: quote generation + verification + key certification.
    let start = std::time::Instant::now();
    let commitment = ironsafe_crypto::sha256::sha256(&host_keys.public.to_bytes(&group));
    let quote = Quote::generate(&platform, &enclave, &commitment, &mut rng);
    monitor.attest_host("host-0", "EU", &quote, &host_keys.public).expect("host attests");
    let host_cas_ms = start.elapsed().as_secs_f64() * 1000.0;

    // Storage TEE phase (part 2): challenge + response signing +
    // verification, including walking the boot certificate chain.
    let start = std::time::Instant::now();
    let challenge = monitor.storage_challenge();
    let response = AttestationTa::new(&booted).respond(challenge, &mut rng);
    monitor.attest_storage("storage-0", "EU", &response).expect("storage attests");
    storage_tee_ms += start.elapsed().as_secs_f64() * 1000.0;
    storage_tee_ms = storage_tee_ms.max(0.0);

    // Interconnect phase: session-channel establishment.
    let start = std::time::Instant::now();
    let (mut tx, mut rx) = ironsafe_csa::net::channel_pair(&[7; 32]);
    let hello = tx.seal(b"channel-establish");
    rx.open(&hello).expect("channel opens");
    let interconnect_ms = start.elapsed().as_secs_f64() * 1000.0;

    Table4 { host_cas_ms, storage_tee_ms, storage_ree_ms, interconnect_ms }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_SF: f64 = 0.0015;

    #[test]
    fn fig6_shapes_hold() {
        let rows = fig6(TEST_SF);
        assert_eq!(rows.len(), 17);
        // Most queries speed up under CS in the secure case.
        let faster = rows.iter().filter(|r| r.speedup_secure > 1.0).count();
        assert!(faster >= rows.len() / 2, "only {faster} of {} sped up", rows.len());
        // Q6 (highly selective single-table) must benefit.
        let q6 = rows.iter().find(|r| r.query == 6).expect("q6");
        assert!(q6.speedup_secure > 1.0, "Q6 secure speedup {}", q6.speedup_secure);
    }

    #[test]
    fn fig7_io_reduction_positive() {
        let rows = fig7(TEST_SF);
        assert!(rows.iter().all(|r| r.io_reduction > 0.0));
        let q6 = rows.iter().find(|r| r.query == 6).expect("q6");
        assert!(q6.io_reduction > 2.0, "Q6 reduces IO by {}", q6.io_reduction);
    }

    #[test]
    fn fig8_fractions_sum_to_one() {
        for row in fig8(TEST_SF) {
            let sum = row.ndp + row.freshness + row.crypto + row.other;
            assert!((sum - 1.0).abs() < 1e-9, "Q{} sums to {sum}", row.query);
            assert!(row.freshness > 0.0, "freshness is never free");
        }
    }

    #[test]
    fn fig9b_scs_wins_at_all_selectivities() {
        let pts = fig9b(TEST_SF, &[10, 50, 90]);
        for p in &pts {
            assert!(p.scs < p.hos, "sel {}%: scs {} vs hos {}", p.x, p.scs, p.hos);
        }
        // Higher selectivity ⇒ more shipped ⇒ scs time grows.
        assert!(pts[2].scs > pts[0].scs);
    }

    #[test]
    fn fig9c_freshness_dominates() {
        let rows = fig9c(TEST_SF, &[2, 9]);
        for r in &rows {
            assert!(r.freshness > r.decrypt, "Q{}: freshness should dominate decrypt", r.query);
            assert!(r.freshness > 0.3, "Q{}: freshness fraction {}", r.query, r.freshness);
        }
    }

    #[test]
    fn fig10_more_cores_never_hurt() {
        let rows = fig10(TEST_SF, &[1, 4, 16]);
        for r in &rows {
            let speeds: Vec<f64> = r.series.iter().map(|(_, s)| *s).collect();
            assert!(speeds[2] >= speeds[0] * 0.999, "Q{}: {speeds:?}", r.query);
        }
    }

    #[test]
    fn fig11_memory_never_hurts() {
        let rows = fig11(TEST_SF, &[128 * 1024, 256 * 1024, 2 * 1024 * 1024]);
        for r in &rows {
            for (_, s) in &r.series {
                assert!(*s >= 0.999, "Q{}: {:?}", r.query, r.series);
            }
        }
    }

    #[test]
    fn freshness_sweep_orders_the_three_modes() {
        let rows = freshness_sweep(1024);
        assert_eq!(rows.len(), 16, "4 arities x 4 patterns");
        for r in &rows {
            assert!(
                r.per_page_visits as f64 >= 3.0 * r.batched_visits as f64,
                "arity {} {}: batch saves <3x ({} vs {})",
                r.arity,
                r.pattern,
                r.per_page_visits,
                r.batched_visits
            );
            assert!(
                r.cached_visits <= r.batched_visits,
                "arity {} {}: warm cache must not hash more than a cold batch",
                r.arity,
                r.pattern
            );
            // A warm replay of an unchanged root is all hits, and each
            // hit costs exactly the one leaf visit.
            assert_eq!(r.cache_hit_rate, 1.0, "arity {} {}", r.arity, r.pattern);
            assert_eq!(r.cached_visits, r.accesses as u64, "arity {} {}", r.arity, r.pattern);
        }
    }

    #[test]
    fn freshness_fast_path_cuts_query_node_visits_3x() {
        for r in freshness_queries(TEST_SF, &[1, 6]) {
            assert!(r.fast_path_visits > 0, "Q{} must verify pages", r.query);
            assert!(
                r.reduction >= 3.0,
                "Q{}: fast path saves only {:.2}x ({} vs {})",
                r.query,
                r.reduction,
                r.per_page_visits,
                r.fast_path_visits
            );
            assert!((0.0..=1.0).contains(&r.cache_hit_rate), "Q{}", r.query);
            assert!(r.freshness_share > 0.0, "Q{}: freshness is never free", r.query);
        }
    }

    #[test]
    fn freshness_json_is_wellformed() {
        let sweep = freshness_sweep(64);
        let queries = freshness_queries(TEST_SF, &[6]);
        let json = freshness_json(TEST_SF, &sweep, &queries);
        assert!(ironsafe_obs::export::looks_like_valid_json(&json));
        assert!(json.contains("\"node_visits_fast_path\""));
        assert!(json.contains("\"cache_hit_rate\""));
    }

    #[test]
    fn table4_phases_measured() {
        let t = table4();
        assert!(t.total_ms() > 0.0);
        assert!(t.storage_tee_ms > 0.0);
        assert!(t.host_cas_ms > 0.0);
        assert!(t.storage_ree_ms > 0.0);
    }
}

// ---------------------------------------------------------------------
// Ablation: static vs adaptive partitioner (the paper's §8 future work).
// ---------------------------------------------------------------------

/// One ablation row: simulated times under both strategies.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// TPC-H query number.
    pub query: u8,
    /// Static (always push down) total, ns.
    pub static_ns: f64,
    /// Adaptive (sampled offload decision) total, ns.
    pub adaptive_ns: f64,
}

/// Compare the paper's static pushdown against the adaptive partitioner.
pub fn partitioner_ablation(sf: f64) -> Vec<AblationRow> {
    use ironsafe_csa::system::PartitionStrategy;
    let data = generate(sf, SEED);
    let mut static_sys =
        CsaSystem::build(SystemConfig::IronSafe, &data, CostParams::default()).expect("build");
    let mut adaptive_sys =
        CsaSystem::build(SystemConfig::IronSafe, &data, CostParams::default()).expect("build");
    adaptive_sys.strategy = PartitionStrategy::Adaptive;
    paper_queries()
        .iter()
        .map(|q| {
            let s = static_sys.run_query(q).expect("static run");
            let a = adaptive_sys.run_query(q).expect("adaptive run");
            assert_eq!(s.result, a.result, "Q{}: strategies must agree", q.id);
            AblationRow { query: q.id, static_ns: s.total_ns(), adaptive_ns: a.total_ns() }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Morsel-parallel execution: wall-clock speedup vs degree of parallelism.
// Unlike the simulated figures above, this sweep measures *real* elapsed
// time — the one observable parallel execution is allowed to change.
// ---------------------------------------------------------------------

/// One point of the `paperbench parallel` sweep.
#[derive(Debug, Clone)]
pub struct ParallelRow {
    /// TPC-H query number.
    pub query: u8,
    /// Degree of parallelism used.
    pub dop: usize,
    /// Best-of-N wall-clock on the plaintext-backed storage DB, ms.
    pub plain_ms: f64,
    /// `plain_ms(dop 1) / plain_ms(this dop)`.
    pub plain_speedup: f64,
    /// Best-of-N wall-clock on the secure (AES + Merkle) storage DB, ms.
    pub secure_ms: f64,
    /// `secure_ms(dop 1) / secure_ms(this dop)`.
    pub secure_speedup: f64,
}

/// Sweep Q1 and Q6 across `dops`, verifying at every point that the
/// parallel rows are bit-identical to the serial reference.
///
/// The headline (plaintext) numbers isolate the execution engine: page
/// reads are memcpys, so decode + expression evaluation dominate and the
/// morsel path's batched reads, scratch-row decode and fused
/// scan→filter→aggregate pay off directly. The secure columns show the
/// same sweep with AES + Merkle verification under the pager lock, which
/// serializes the read path and caps the achievable speedup.
pub fn parallel(sf: f64, dops: &[usize]) -> Vec<ParallelRow> {
    use ironsafe_sql::ast::Statement;
    use ironsafe_sql::exec::ExecOptions;
    use std::time::Instant;

    let data = generate(sf, SEED);
    let mut plain = Database::new(PlainPager::new());
    ironsafe_tpch::load_into(&mut plain, &data).expect("plain load");
    let mut secure_sys =
        CsaSystem::build(SystemConfig::StorageOnlySecure, &data, CostParams::default())
            .expect("secure system builds");

    let mut out = Vec::new();
    for qid in [1u8, 6] {
        let q = query(qid).expect("known query");
        let stmt =
            ironsafe_sql::parser::parse_statement(&q.stages[0].sql).expect("query parses");
        let sel = match stmt {
            Statement::Select(s) => s,
            _ => unreachable!("Q1/Q6 are single SELECTs"),
        };
        let reference = plain.select(&sel).expect("serial reference").rows().to_vec();

        let mut base = (0.0f64, 0.0f64);
        for &dop in dops {
            let opts = ExecOptions::with_dop(dop);
            let measure = |db: &mut Database| {
                let mut best = f64::INFINITY;
                for _ in 0..3 {
                    let t = Instant::now();
                    let r = db.select_with(&sel, &opts).expect("query runs");
                    let ms = t.elapsed().as_secs_f64() * 1e3;
                    assert_eq!(
                        r.rows(),
                        &reference[..],
                        "q{qid} dop {dop}: rows must be bit-identical to serial"
                    );
                    best = best.min(ms);
                }
                best
            };
            let plain_ms = measure(&mut plain);
            let secure_ms = measure(secure_sys.storage_db_mut());
            if dop == dops[0] {
                base = (plain_ms, secure_ms);
            }
            out.push(ParallelRow {
                query: qid,
                dop,
                plain_ms,
                plain_speedup: base.0 / plain_ms,
                secure_ms,
                secure_speedup: base.1 / secure_ms,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Freshness sweep: how much Merkle hashing the shared-path batch
// verifier and the root-epoch verified-node cache remove, first on bare
// trees (arity × access pattern) and then on whole queries.
// ---------------------------------------------------------------------

/// One access pattern verified three ways against the same Merkle tree.
#[derive(Debug, Clone)]
pub struct FreshnessSweepRow {
    /// Tree fan-out.
    pub arity: usize,
    /// Access-pattern name.
    pub pattern: &'static str,
    /// Number of leaf verifications in the pattern.
    pub accesses: usize,
    /// Node visits with one full root climb per access — the
    /// pre-fast-path cost.
    pub per_page_visits: u64,
    /// Node visits for one shared-path `verify_batch` over the whole
    /// pattern, cache off.
    pub batched_visits: u64,
    /// Node visits replaying the pattern against a warm verified-node
    /// cache.
    pub cached_visits: u64,
    /// Hit fraction of the warm replay.
    pub cache_hit_rate: f64,
}

/// Sweep arity × access pattern over a `leaves`-leaf tree.
///
/// Visit counts depend only on tree shape and access order, so synthetic
/// MACs measure exactly what real page MACs would.
pub fn freshness_sweep(leaves: usize) -> Vec<FreshnessSweepRow> {
    use ironsafe_storage::MerkleTree;
    let macs: Vec<[u8; 32]> = (0..leaves)
        .map(|i| {
            let mut m = [0u8; 32];
            m[0] = (i % 251) as u8;
            m[1] = (i / 251 % 251) as u8;
            m
        })
        .collect();
    let n = leaves as u64;
    let mut strided = Vec::with_capacity(leaves);
    for start in 0..17u64.min(n) {
        let mut i = start;
        while i < n {
            strided.push(i);
            i += 17;
        }
    }
    let hot = (n / 8).max(1);
    let patterns: Vec<(&'static str, Vec<u64>)> = vec![
        ("sequential", (0..n).collect()),
        ("reverse", (0..n).rev().collect()),
        ("strided-17", strided),
        ("hot-eighth", (0..n).map(|i| i % hot).collect()),
    ];

    let mut out = Vec::new();
    for arity in [2usize, 4, 8, 16] {
        let base = MerkleTree::rebuild_from_macs([7; 32], arity, &macs);
        let root = base.root().expect("non-empty tree");
        for (pattern, ids) in &patterns {
            let entry_macs: Vec<[u8; 32]> =
                ids.iter().map(|&i| macs[i as usize]).collect();

            // Pre-fast-path: one full climb per access, cache off.
            let mut per_page = base.clone();
            for &i in ids {
                assert!(per_page.verify(i, &macs[i as usize], &root), "genuine leaf verifies");
            }

            // Shared-path batch, cache off.
            let mut batched = base.clone();
            assert!(batched.verify_batch(ids, &entry_macs, &root), "genuine batch verifies");

            // Warm-cache steady state: warm once, then measure a replay.
            let mut cached = base.clone();
            cached.set_cache_enabled(true);
            assert!(cached.verify_batch(ids, &entry_macs, &root), "warm-up batch verifies");
            cached.reset_counters();
            let s0 = cached.cache_stats();
            assert!(cached.verify_batch(ids, &entry_macs, &root), "warm batch verifies");
            let s1 = cached.cache_stats();
            let hits = (s1.hits - s0.hits) as f64;
            let classified = hits + (s1.misses - s0.misses) as f64;

            out.push(FreshnessSweepRow {
                arity,
                pattern,
                accesses: ids.len(),
                per_page_visits: per_page.node_visits(),
                batched_visits: batched.node_visits(),
                cached_visits: cached.node_visits(),
                cache_hit_rate: if classified > 0.0 { hits / classified } else { 0.0 },
            });
        }
    }
    out
}

/// Whole-query effect of the freshness fast path on the IronSafe config.
#[derive(Debug, Clone)]
pub struct FreshnessQueryRow {
    /// TPC-H query number.
    pub query: u8,
    /// Merkle node visits with the verified-node cache disabled. Serial
    /// scans read one page at a time, so every read pays a full root
    /// climb — exactly the pre-fast-path cost.
    pub per_page_visits: u64,
    /// Merkle node visits with the cache enabled (the shipped default),
    /// cold start included.
    pub fast_path_visits: u64,
    /// `per_page_visits / fast_path_visits`.
    pub reduction: f64,
    /// Verified-node-cache hit fraction over the run, from the live
    /// `storage.merkle.cache.*` counters.
    pub cache_hit_rate: f64,
    /// Fig 8 freshness share (fraction of total simulated time) of the
    /// fast-path run.
    pub freshness_share: f64,
}

/// Measure the freshness fast path end to end for each query id.
pub fn freshness_queries(sf: f64, query_ids: &[u8]) -> Vec<FreshnessQueryRow> {
    use ironsafe_obs::Registry;
    let data = generate(sf, SEED);
    query_ids
        .iter()
        .map(|&id| {
            let q = query(id).expect("known query");

            // Baseline: cache off reproduces the old per-page full climbs.
            let mut slow = CsaSystem::build(SystemConfig::IronSafe, &data, CostParams::default())
                .expect("system builds");
            slow.storage_db().pager().lock().set_merkle_cache_enabled(false);
            let s0 = slow.storage_db().pager_stats().merkle_nodes;
            let slow_report = slow.run_query(&q).expect("query runs");
            let per_page_visits = slow.storage_db().pager_stats().merkle_nodes - s0;

            // Fast path: the shipped default (cache on), from cold.
            let mut fast = CsaSystem::build(SystemConfig::IronSafe, &data, CostParams::default())
                .expect("system builds");
            let registry = Registry::new();
            fast.storage_db().register_metrics(&registry);
            let f0 = fast.storage_db().pager_stats().merkle_nodes;
            let c0 = registry.snapshot();
            let report = fast.run_query(&q).expect("query runs");
            let fast_path_visits = fast.storage_db().pager_stats().merkle_nodes - f0;
            let c1 = registry.snapshot();
            assert_eq!(report.result, slow_report.result, "Q{id}: rows must not depend on the cache");

            let delta = |name: &str| {
                c1.counter(name).unwrap_or(0) - c0.counter(name).unwrap_or(0)
            };
            let hits = delta("storage.merkle.cache.hit") as f64;
            let classified = hits + delta("storage.merkle.cache.miss") as f64;
            FreshnessQueryRow {
                query: id,
                per_page_visits,
                fast_path_visits,
                reduction: per_page_visits as f64 / fast_path_visits.max(1) as f64,
                cache_hit_rate: if classified > 0.0 { hits / classified } else { 0.0 },
                freshness_share: report.breakdown.freshness_ns
                    / report.breakdown.total_ns().max(1.0),
            }
        })
        .collect()
}

/// Serialize the freshness sweep as the `BENCH_5.json` perf snapshot.
pub fn freshness_json(
    sf: f64,
    sweep: &[FreshnessSweepRow],
    queries: &[FreshnessQueryRow],
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"sf\": {sf},\n  \"seed\": {SEED},\n"));
    s.push_str("  \"merkle_sweep\": [\n");
    for (i, r) in sweep.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"arity\": {}, \"pattern\": \"{}\", \"accesses\": {}, \
             \"per_page_visits\": {}, \"batched_visits\": {}, \"cached_visits\": {}, \
             \"cache_hit_rate\": {:.4}}}{}\n",
            r.arity,
            r.pattern,
            r.accesses,
            r.per_page_visits,
            r.batched_visits,
            r.cached_visits,
            r.cache_hit_rate,
            if i + 1 == sweep.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n  \"queries\": [\n");
    for (i, r) in queries.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"query\": {}, \"node_visits_per_page\": {}, \"node_visits_fast_path\": {}, \
             \"reduction\": {:.4}, \"cache_hit_rate\": {:.4}, \"fig8_freshness_share\": {:.4}}}{}\n",
            r.query,
            r.per_page_visits,
            r.fast_path_visits,
            r.reduction,
            r.cache_hit_rate,
            r.freshness_share,
            if i + 1 == queries.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
