//! Golden parity: the `EXPLAIN ANALYZE` profile can never drift from
//! the cost model.
//!
//! For Q1 and Q6, across all five Table 2 configurations at DOP 1 and
//! DOP 4, a [`QueryProfile`] assembled by `profile_query` must carry a
//! [`CostBreakdown`] and a [`PagerStats`] delta bit-identical to the
//! ones a plain `run_query` produces on an identically-prepared system.
//! Profiling is observation, not perturbation.

use ironsafe_csa::{CostParams, CsaSystem, OffloadDecision, PartitionStrategy, SystemConfig};
use ironsafe_obs::export::looks_like_valid_json;
use ironsafe_tpch::queries::query;
use ironsafe_tpch::TpchData;

fn data() -> TpchData {
    ironsafe_tpch::generate(0.002, 42)
}

#[test]
fn profile_counters_match_cost_model_for_q1_q6_all_configs_both_dops() {
    let d = data();
    for config in SystemConfig::all() {
        for dop in [1usize, 4] {
            // Reference system: plain runs, measuring the stats delta
            // by hand. Profiled system: identical build, profiled runs.
            // Both execute Q1 then Q6 so cache warm-up states match.
            let mut reference = CsaSystem::build(config, &d, CostParams::default()).unwrap();
            let mut profiled = CsaSystem::build(config, &d, CostParams::default()).unwrap();
            reference.set_dop(dop);
            profiled.set_dop(dop);
            for qid in [1u8, 6] {
                let q = query(qid).unwrap();
                let before = reference.storage_db().pager_stats();
                let want = reference.run_query(&q).unwrap();
                let after = reference.storage_db().pager_stats();

                let (got, profile) = profiled.profile_query(&q).unwrap();
                let tag = format!("{} q{qid} dop{dop}", config.abbrev());

                assert_eq!(got.result, want.result, "{tag}: results diverge");
                assert_eq!(
                    profile.breakdown, want.breakdown,
                    "{tag}: profile breakdown must be bit-identical to the cost model"
                );
                assert_eq!(
                    (profile.pager.page_reads, profile.pager.page_writes),
                    (after.page_reads - before.page_reads, after.page_writes - before.page_writes),
                    "{tag}: profile pager I/O delta"
                );
                assert_eq!(
                    (profile.pager.decrypts, profile.pager.encrypts),
                    (after.decrypts - before.decrypts, after.encrypts - before.encrypts),
                    "{tag}: profile pager crypto delta"
                );
                assert_eq!(
                    (profile.pager.merkle_nodes, profile.pager.rpmb_ops),
                    (after.merkle_nodes - before.merkle_nodes, after.rpmb_ops - before.rpmb_ops),
                    "{tag}: profile pager freshness delta"
                );
                assert_eq!(profile.pages_read_storage, want.pages_read_storage, "{tag}");
                assert_eq!(profile.pages_shipped, want.pages_shipped, "{tag}");
                assert_eq!(profile.rows_shipped, want.rows_shipped, "{tag}");
                assert_eq!(profile.bytes_shipped, want.bytes_shipped, "{tag}");
                assert_eq!(profile.query_id, qid, "{tag}");
                assert_eq!(profile.dop, dop, "{tag}");
                assert!(!profile.plans.is_empty(), "{tag}: a drained plan was captured");
                assert!(profile.span_count > 0, "{tag}");
                assert_eq!(profile.error_span_count, 0, "{tag}: clean run has no error spans");
                if config.secure() {
                    assert!(profile.macs_verified > 0, "{tag}: secure reads verify MACs");
                }
            }
        }
    }
}

#[test]
fn profile_counters_are_dop_invariant() {
    let d = data();
    let profile_at = |dop: usize| {
        let mut sys =
            CsaSystem::build(SystemConfig::IronSafe, &d, CostParams::default()).unwrap();
        sys.set_dop(dop);
        sys.profile_query(&query(6).unwrap()).unwrap().1
    };
    let p1 = profile_at(1);
    let p4 = profile_at(4);
    assert_eq!(p1.breakdown, p4.breakdown, "breakdown is DOP-invariant");
    assert_eq!(p1.pager, p4.pager, "pager delta is DOP-invariant");
    assert_eq!(p1.macs_verified, p4.macs_verified);
    // merkle_cache_hits/misses are *not* asserted DOP-invariant: the
    // batched read path verifies shared Merkle paths once per batch, so
    // cache lookup patterns differ with DOP even though the visited-node
    // delta (pinned above via `pager`) stays bit-identical.
    assert_eq!(p1.enclave_transitions, p4.enclave_transitions);
    assert_eq!(p1.epc_faults, p4.epc_faults);
    assert_eq!(p1.epc_occupancy_pages, p4.epc_occupancy_pages);
    assert_eq!(
        (p1.rows_shipped, p1.bytes_shipped, p1.pages_shipped),
        (p4.rows_shipped, p4.bytes_shipped, p4.pages_shipped)
    );
    assert_eq!(p1.cost_terms, p4.cost_terms, "charge order is pinned");
}

#[test]
fn profile_json_and_render_are_deterministic() {
    let d = data();
    let run = || {
        let mut sys =
            CsaSystem::build(SystemConfig::IronSafe, &d, CostParams::default()).unwrap();
        let (_, profile) = sys.profile_query(&query(6).unwrap()).unwrap();
        (profile.to_json(), profile.render())
    };
    let (json_a, text_a) = run();
    let (json_b, text_b) = run();
    assert_eq!(json_a, json_b, "profile JSON is byte-deterministic");
    assert_eq!(text_a, text_b);
    assert!(looks_like_valid_json(&json_a), "{json_a}");
    assert!(json_a.contains("\"config\":\"scs\""));
    assert!(json_a.contains("\"breakdown\""));
    assert!(json_a.contains("\"plans\""));
    assert!(text_a.contains("Q6 profile"));
    assert!(text_a.contains("rows out="));
}

/// Golden-parity guard for the adaptive planner: with the decision
/// pinned (adaptivity disabled), the adaptive strategy must reproduce
/// the corresponding static plan *bit-identically* — breakdown, pager
/// delta, shipped counters, rows. Adaptivity is a planning change, never
/// an execution change.
#[test]
fn pinned_adaptive_reproduces_static_plans_bit_identically() {
    let d = data();
    for config in [SystemConfig::VanillaCs, SystemConfig::IronSafe] {
        for dop in [1usize, 4] {
            for (pin, baseline) in [
                (OffloadDecision::Offload, PartitionStrategy::Static),
                (OffloadDecision::ShipPages, PartitionStrategy::AllHost),
            ] {
                let mut want_sys = CsaSystem::build(config, &d, CostParams::default()).unwrap();
                want_sys.set_partition_strategy(baseline);
                want_sys.set_dop(dop);
                let mut got_sys = CsaSystem::build(config, &d, CostParams::default()).unwrap();
                got_sys.set_partition_strategy(PartitionStrategy::Adaptive);
                got_sys.pin_adaptive(Some(pin));
                got_sys.set_dop(dop);
                for qid in [1u8, 6] {
                    let q = query(qid).unwrap();
                    let before_want = want_sys.storage_db().pager_stats();
                    let want = want_sys.run_query(&q).unwrap();
                    let after_want = want_sys.storage_db().pager_stats();
                    let before_got = got_sys.storage_db().pager_stats();
                    let got = got_sys.run_query(&q).unwrap();
                    let after_got = got_sys.storage_db().pager_stats();
                    let tag = format!("{} q{qid} dop{dop} pin={pin:?}", config.abbrev());
                    assert_eq!(got.result, want.result, "{tag}: rows");
                    assert_eq!(got.breakdown, want.breakdown, "{tag}: breakdown");
                    assert_eq!(
                        (got.rows_shipped, got.bytes_shipped, got.pages_shipped),
                        (want.rows_shipped, want.bytes_shipped, want.pages_shipped),
                        "{tag}: shipped counters"
                    );
                    assert_eq!(
                        (
                            after_got.page_reads - before_got.page_reads,
                            after_got.decrypts - before_got.decrypts,
                            after_got.merkle_nodes - before_got.merkle_nodes,
                        ),
                        (
                            after_want.page_reads - before_want.page_reads,
                            after_want.decrypts - before_want.decrypts,
                            after_want.merkle_nodes - before_want.merkle_nodes,
                        ),
                        "{tag}: pager delta"
                    );
                }
            }
        }
    }
}

/// With estimates pinned to the truth (a primed run), the cost-based
/// adaptive pass picks one of the two static placements and its report
/// is bit-identical to that static run — never a third behavior.
#[test]
fn primed_adaptive_equals_one_static_policy_bit_identically() {
    let d = data();
    for qid in [1u8, 6] {
        let q = query(qid).unwrap();
        let run_static = |strategy: PartitionStrategy| {
            let mut sys =
                CsaSystem::build(SystemConfig::IronSafe, &d, CostParams::default()).unwrap();
            sys.set_partition_strategy(strategy);
            sys.run_query(&q).unwrap(); // warm-up run (Merkle caches)
            sys.run_query(&q).unwrap()
        };
        let offload = run_static(PartitionStrategy::Static);
        let allhost = run_static(PartitionStrategy::AllHost);
        let adaptive = {
            let mut sys =
                CsaSystem::build(SystemConfig::IronSafe, &d, CostParams::default()).unwrap();
            // Prime: a static offload run feeds exact observed statistics
            // into the shared EWMA store (same warm-up schedule as above).
            sys.set_partition_strategy(PartitionStrategy::Static);
            sys.run_query(&q).unwrap();
            sys.set_partition_strategy(PartitionStrategy::Adaptive);
            sys.run_query(&q).unwrap()
        };
        let matches_offload = adaptive.breakdown == offload.breakdown
            && adaptive.bytes_shipped == offload.bytes_shipped;
        let matches_allhost = adaptive.breakdown == allhost.breakdown
            && adaptive.bytes_shipped == allhost.bytes_shipped;
        assert!(
            matches_offload || matches_allhost,
            "q{qid}: adaptive must equal one static policy exactly \
             (adaptive {:.0} vs offload {:.0} / allhost {:.0})",
            adaptive.total_ns(),
            offload.total_ns(),
            allhost.total_ns()
        );
        assert_eq!(adaptive.result, offload.result, "q{qid}: answers never change");
        assert_eq!(adaptive.result, allhost.result, "q{qid}: answers never change");
    }
}

#[test]
fn profile_captures_causal_span_tree() {
    // The trace behind the profile carries TraceCtx on every span:
    // query-rooted, refined with page-batch ids inside the pager.
    let d = data();
    let mut sys = CsaSystem::build(SystemConfig::IronSafe, &d, CostParams::default()).unwrap();
    let (_, _) = sys.profile_query(&query(6).unwrap()).unwrap();
    let trace = sys.last_trace().expect("trace recorded");
    assert!(trace.is_well_formed(), "clean run yields a well-formed tree");
    assert!(
        trace.spans.iter().all(|s| s.ctx.map(|c| c.query_id) == Some(6)),
        "every span is stitched to query 6"
    );
    assert!(
        trace
            .spans
            .iter()
            .any(|s| s.name.starts_with("pager/") && s.ctx.and_then(|c| c.page_batch_id).is_some()),
        "pager spans carry page-batch ids"
    );
}
