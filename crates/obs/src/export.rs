//! Exporters: human-readable span trees, JSON-lines snapshots, and
//! Chrome `trace_event` JSON (loadable in Perfetto / `chrome://tracing`).
//!
//! All JSON is hand-written (the workspace has no serde); strings are
//! escaped per RFC 8259.

use crate::metrics::MetricsSnapshot;
use crate::span::TraceSnapshot;
use std::fmt::Write as _;

/// Escape `s` as the contents of a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Render a span tree as indented text, one span per line, showing
/// simulated time (inclusive of children), directly-attributed
/// simulated time with category breakdown, and wall time.
pub fn render_span_tree(trace: &TraceSnapshot) -> String {
    let mut out = String::new();
    for (i, span) in trace.spans.iter().enumerate() {
        let indent = "  ".repeat(span.depth as usize);
        let inclusive = trace.sim_ns_inclusive(i);
        let _ = write!(
            out,
            "{indent}{name}  sim={sim}",
            name = span.name,
            sim = fmt_ns(inclusive),
        );
        if !span.categories.is_empty() {
            out.push_str("  [");
            for (j, (cat, ns)) in span.categories.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{cat}={}", fmt_ns(*ns));
            }
            out.push(']');
        }
        if let Some(err) = span.error {
            let _ = write!(out, "  ERROR={err}");
        }
        let _ = writeln!(out, "  wall={}", fmt_ns(span.wall_ns as f64));
    }
    out
}

/// Serialize a metrics snapshot as JSON lines: one object per metric.
///
/// Counter: `{"type":"counter","name":...,"value":N}`; gauge likewise;
/// histogram: `{"type":"histogram","name":...,"count":N,"sum":N,"mean":X}`.
pub fn metrics_to_jsonl(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snapshot.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{v}}}",
            escape_json(name),
        );
    }
    for (name, v) in &snapshot.gauges {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{v}}}",
            escape_json(name),
        );
    }
    for (name, h) in &snapshot.histograms {
        let _ = writeln!(
            out,
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"mean\":{:.3}}}",
            escape_json(name),
            h.count,
            h.sum,
            h.mean(),
        );
    }
    out
}

/// Serialize spans in Chrome `trace_event` format (JSON array of
/// complete `"ph":"X"` events).
///
/// The timeline (`ts`/`dur`, microseconds) is **simulated** time —
/// each span starts at its simulated cursor offset and lasts for the
/// simulated nanoseconds attributed to it and its children — so the
/// Perfetto view shows the cost model's timeline, not host wall time.
/// Wall-clock nanoseconds and the category breakdown ride along in
/// `args`. Pass `pid`/`tid` when merging multiple traces into one file.
pub fn spans_to_chrome_trace(trace: &TraceSnapshot, pid: u64, tid: u64) -> String {
    let mut out = String::from("[");
    let mut first = true;
    for (i, span) in trace.spans.iter().enumerate() {
        if !first {
            out.push(',');
        }
        first = false;
        let dur_us = trace.sim_ns_inclusive(i) / 1e3;
        let ts_us = span.start_sim_ns / 1e3;
        let _ = write!(
            out,
            "\n{{\"name\":\"{name}\",\"cat\":\"sim\",\"ph\":\"X\",\"ts\":{ts_us:.3},\
             \"dur\":{dur_us:.3},\"pid\":{pid},\"tid\":{tid},\"args\":{{\"wall_ns\":{wall}",
            name = escape_json(&span.name),
            wall = span.wall_ns,
        );
        for (cat, ns) in &span.categories {
            let _ = write!(out, ",\"sim_{}_ns\":{ns:.0}", escape_json(cat));
        }
        if let Some(ctx) = span.ctx {
            let _ = write!(out, ",\"query_id\":{}", ctx.query_id);
            if let Some(m) = ctx.morsel_id {
                let _ = write!(out, ",\"morsel_id\":{m}");
            }
            if let Some(b) = ctx.page_batch_id {
                let _ = write!(out, ",\"page_batch_id\":{b}");
            }
        }
        if let Some(err) = span.error {
            let _ = write!(out, ",\"error\":\"{}\"", escape_json(err));
        }
        out.push_str("}}");
    }
    out.push_str("\n]\n");
    out
}

/// Minimal structural validator for the JSON this module emits (used in
/// tests and by `paperbench --metrics-out` to self-check its output).
/// Checks balanced quoting/brackets — not a full JSON parser.
pub fn looks_like_valid_json(s: &str) -> bool {
    let mut depth_obj = 0i64;
    let mut depth_arr = 0i64;
    let mut in_str = false;
    let mut escaped = false;
    for c in s.chars() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => depth_obj += 1,
            '}' => depth_obj -= 1,
            '[' => depth_arr += 1,
            ']' => depth_arr -= 1,
            _ => {}
        }
        if depth_obj < 0 || depth_arr < 0 {
            return false;
        }
    }
    depth_obj == 0 && depth_arr == 0 && !in_str
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::span::{add_sim_ns, Span, Trace};

    fn sample_trace() -> TraceSnapshot {
        let trace = Trace::new();
        {
            let _g = trace.install();
            let _q = Span::enter("query/q1");
            {
                let _s = Span::enter("scan/lineitem");
                add_sim_ns("ndp", 2_000.0);
                add_sim_ns("crypto", 500.0);
            }
            {
                let _f = Span::enter("freshness");
                add_sim_ns("freshness", 250.0);
            }
        }
        trace.snapshot()
    }

    #[test]
    fn span_tree_renders_hierarchy() {
        let text = render_span_tree(&sample_trace());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("query/q1"));
        assert!(lines[1].starts_with("  scan/lineitem"));
        assert!(lines[0].contains("sim=2.75µs"), "{}", lines[0]);
        assert!(lines[1].contains("ndp=2.00µs"), "{}", lines[1]);
    }

    #[test]
    fn jsonl_one_object_per_line() {
        let r = Registry::new();
        r.counter("storage.page.read").add(3);
        r.gauge("tee.epc.resident").set(-2);
        r.histogram("storage.merkle.path_len").record(4);
        let jsonl = metrics_to_jsonl(&r.snapshot());
        assert_eq!(jsonl.lines().count(), 3);
        for line in jsonl.lines() {
            assert!(looks_like_valid_json(line), "{line}");
        }
        assert!(jsonl.contains("\"name\":\"storage.page.read\",\"value\":3"));
        assert!(jsonl.contains("\"value\":-2"));
    }

    #[test]
    fn chrome_trace_is_valid_and_ordered() {
        let json = spans_to_chrome_trace(&sample_trace(), 1, 1);
        assert!(looks_like_valid_json(&json), "{json}");
        assert!(json.trim_start().starts_with('['));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"query/q1\""));
        // Root spans 2.75µs of simulated time.
        assert!(json.contains("\"dur\":2.750"), "{json}");
        // Child categories ride in args.
        assert!(json.contains("\"sim_ndp_ns\":2000"));
    }

    #[test]
    fn chrome_trace_carries_ctx_and_error() {
        let trace = Trace::new();
        {
            let _g = trace.install();
            let _c = crate::span::TraceCtx::query(6).with_morsel(2).with_page_batch(5).install();
            let s = Span::enter("pager/read_batch");
            s.fail("storage.device.read");
        }
        let snap = trace.snapshot();
        let json = spans_to_chrome_trace(&snap, 6, 1);
        assert!(looks_like_valid_json(&json), "{json}");
        assert!(json.contains("\"query_id\":6"));
        assert!(json.contains("\"morsel_id\":2"));
        assert!(json.contains("\"page_batch_id\":5"));
        assert!(json.contains("\"error\":\"storage.device.read\""));
        assert!(render_span_tree(&snap).contains("ERROR=storage.device.read"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert!(looks_like_valid_json("{\"k\":\"\\\"quoted\\\"\"}"));
        assert!(!looks_like_valid_json("{\"k\":1"));
        assert!(!looks_like_valid_json("[}"));
    }
}
