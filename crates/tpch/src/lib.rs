//! # ironsafe-tpch
//!
//! Deterministic TPC-H-style workload for IronSafe's evaluation, replacing
//! the `dbgen` tool the paper runs:
//!
//! * [`schema`] — the eight TPC-H table definitions.
//! * [`dates`] — civil-date helpers (dates are ISO-8601 text in the engine).
//! * [`gen`] — a seeded generator producing all eight tables at a
//!   fractional scale factor (SF 1.0 ≈ the spec's row counts; tests and
//!   benches run SF 0.002–0.05 so a laptop finishes in seconds while the
//!   per-query selectivities and join fan-ins track the spec).
//! * [`queries`] — the paper's query set, expressed in the engine's SQL
//!   dialect. Queries whose original text needs subqueries are rewritten
//!   into (shape-preserving) join/aggregate forms or two-stage scripts
//!   with an explicit temp-table step, mirroring how the paper's manual
//!   partitioning flattens them.
//! * [`gdpr`] — the personal-data workload behind the GDPR anti-pattern
//!   experiments (Table 3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dates;
pub mod gdpr;
pub mod gen;
pub mod queries;
pub mod schema;

pub use gen::{generate, load_into, TpchData};
pub use queries::{paper_queries, PaperQuery, QueryStage};
