//! The pager abstraction the SQL engine sits on.
//!
//! The engine reads and writes fixed-size page payloads by [`PageId`];
//! whether those payloads live in plaintext blocks ([`PlainPager`]) or in
//! the encrypted + Merkle-protected secure store
//! ([`crate::secure_pager::SecurePager`]) is invisible above this trait —
//! mirroring how the paper hooks SQLCipher under SQLite's page layer.

use crate::blockdev::{BlockDevice, BLOCK_SIZE};
use crate::codec::PAGE_PAYLOAD;
use crate::{Result, StorageError};

/// Identifier of a logical database page.
pub type PageId = u64;

/// Counters every pager exposes for the cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagerStats {
    /// Logical page reads.
    pub page_reads: u64,
    /// Logical page writes.
    pub page_writes: u64,
    /// Page decryptions (0 for plaintext pagers).
    pub decrypts: u64,
    /// Page encryptions (0 for plaintext pagers).
    pub encrypts: u64,
    /// Merkle nodes visited for freshness verification.
    pub merkle_nodes: u64,
    /// RPMB round trips.
    pub rpmb_ops: u64,
}

/// A page-granular storage interface.
pub trait Pager {
    /// Size of every page payload in bytes.
    fn payload_size(&self) -> usize {
        PAGE_PAYLOAD
    }

    /// Number of allocated pages.
    fn num_pages(&self) -> u64;

    /// Install a fault-injection plan. Pagers without fault hooks (the
    /// plaintext pager, views over an already-hooked base) ignore it.
    fn set_fault_plan(&mut self, _plan: ironsafe_faults::FaultPlan) {}

    /// Set the retry budget used to recover from injected transient
    /// faults. Pagers without fault hooks ignore it.
    fn set_retry_policy(&mut self, _policy: ironsafe_faults::RetryPolicy) {}

    /// Enable/disable the TEE-resident verified-node cache that lets the
    /// freshness check skip re-hashing already-authenticated Merkle
    /// subpaths. Pagers without a Merkle tree ignore it. The serving
    /// layer disables it on the shared base pager: the page cache there
    /// replays per-page stats deltas captured on first read, and a warm
    /// node cache would make those deltas depend on session interleaving.
    fn set_merkle_cache_enabled(&mut self, _enabled: bool) {}

    /// Bound the verified-node cache to `capacity` nodes (sized against
    /// the enclave memory budget). Pagers without a Merkle tree ignore it.
    fn set_merkle_cache_capacity(&mut self, _capacity: usize) {}

    /// Size the TEE-resident flight recorder against `budget_bytes` of
    /// enclave memory (see `ironsafe_tee::flight_recorder_capacity`).
    /// Pagers without a flight recorder ignore it.
    fn set_flight_budget(&mut self, _budget_bytes: u64) {}

    /// Drain the flight recorder into its deterministic dump lines
    /// (oldest first). Called by the serving layer on fault exhaustion
    /// or an integrity/freshness violation, so the forensic window lands
    /// in the monitor audit trail. Pagers without a recorder return
    /// nothing.
    fn take_flight_dump(&mut self) -> Vec<String> {
        Vec::new()
    }

    /// Allocate a fresh zeroed page; returns its id.
    fn allocate_page(&mut self) -> Result<PageId>;

    /// Read page `id` into `buf` (must be exactly `payload_size()` bytes).
    fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> Result<()>;

    /// Read a batch of pages into `out`, which must hold exactly
    /// `ids.len() * payload_size()` bytes; page `ids[i]` lands at
    /// `out[i * payload_size()..]`.
    ///
    /// The default implementation loops [`Pager::read_page`]; secure
    /// implementations override it to pipeline device I/O, decryption
    /// and Merkle verification across the whole batch (sharing one
    /// Merkle climb across the batch via shared-path verification).
    /// `merkle_nodes` counts the hashing actually performed; with the
    /// verified-node cache enabled, per-epoch totals are order- and
    /// batching-independent, so batched and looped reads of the same
    /// pages still produce the same [`PagerStats`] delta.
    fn read_pages(&mut self, ids: &[PageId], out: &mut [u8]) -> Result<()> {
        let payload = self.payload_size();
        if out.len() != ids.len() * payload {
            return Err(StorageError::BadBufferSize {
                expected: ids.len() * payload,
                got: out.len(),
            });
        }
        for (id, chunk) in ids.iter().zip(out.chunks_exact_mut(payload)) {
            self.read_page(*id, chunk)?;
        }
        Ok(())
    }

    /// Write `data` (exactly `payload_size()` bytes) to page `id`.
    fn write_page(&mut self, id: PageId, data: &[u8]) -> Result<()>;

    /// Commit outstanding state (e.g. freshness root to RPMB).
    fn commit(&mut self) -> Result<()>;

    /// Commit outstanding state *and* bind `wal_head_mac` (the WAL
    /// chain-head MAC) in the same authenticated RPMB write — the group
    /// commit's batched bind. Pagers without an RPMB ignore the mark.
    fn commit_bound(&mut self, wal_head_mac: &[u8; 32]) -> Result<()> {
        let _ = wal_head_mac;
        self.commit()
    }

    /// Export the raw on-medium block backing page `id` (ciphertext on
    /// secure pagers) without touching stats or fault hooks. The WAL's
    /// commit records store these physical images so crash recovery can
    /// replay them bit-identically. `None` for pagers without a raw
    /// block representation.
    fn export_block(&self, id: PageId) -> Option<Vec<u8>> {
        let _ = id;
        None
    }

    /// Simulate a power-off: tear the pager down to its surviving
    /// hardware `(trustzone device, medium)`, leaving a poisoned husk
    /// behind. Crash harnesses call this through the shared handle
    /// (where by-value teardown is impossible), then run recovery over
    /// the parts. `None` for pagers without TEE-backed hardware.
    fn take_parts(&mut self) -> Option<(ironsafe_tee::trustzone::TrustZoneDevice, BlockDevice)> {
        None
    }

    /// Build a [`Wal`](crate::wal::Wal) keyed from this pager's database
    /// key (the WAL's encryption/MAC keys derive from it, so the log is
    /// exactly as confidential as the pages it journals). `None` for
    /// pagers that cannot journal physical post-images — plaintext
    /// pagers, and compressed pagers whose logical/physical id spaces
    /// differ.
    fn make_wal(&self, rng_seed: u64) -> Option<crate::wal::Wal> {
        let _ = rng_seed;
        None
    }

    /// The current trusted Merkle root (all-zero for pagers without a
    /// freshness tree). WAL records carry this so recovery can
    /// cross-check the rebuilt medium against the RPMB-attested state.
    fn current_root(&self) -> [u8; 32] {
        [0u8; 32]
    }

    /// Extract the accumulated copy-on-write transaction from a write
    /// view: `(overlay pages, id watermark)`. `None` for pagers that are
    /// not views (the write path calls this through the `dyn Pager`
    /// handle the SQL engine hands back).
    fn take_txn_pages(&mut self) -> Option<(std::collections::HashMap<PageId, Vec<u8>>, u64)> {
        None
    }

    /// Counter snapshot.
    fn stats(&self) -> PagerStats;

    /// Zero the counters.
    fn reset_stats(&mut self);

    /// Attach this pager's live telemetry counters to `registry` (under
    /// `storage.*` names). Default: the pager exposes none.
    fn register_metrics(&self, _registry: &ironsafe_obs::Registry) {}
}

/// A plaintext pager over a [`BlockDevice`] (the non-secure baseline).
pub struct PlainPager {
    device: BlockDevice,
    stats: PagerStats,
}

impl PlainPager {
    /// A pager over a fresh device.
    pub fn new() -> Self {
        PlainPager { device: BlockDevice::new(), stats: PagerStats::default() }
    }

    /// The underlying device (e.g. for I/O counters).
    pub fn device(&self) -> &BlockDevice {
        &self.device
    }

    /// Mutable device access (attacker interface passthrough).
    pub fn device_mut(&mut self) -> &mut BlockDevice {
        &mut self.device
    }
}

impl Default for PlainPager {
    fn default() -> Self {
        Self::new()
    }
}

impl Pager for PlainPager {
    fn num_pages(&self) -> u64 {
        self.device.num_blocks()
    }

    fn allocate_page(&mut self) -> Result<PageId> {
        Ok(self.device.append_block())
    }

    fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        if buf.len() != PAGE_PAYLOAD {
            return Err(StorageError::BadBufferSize { expected: PAGE_PAYLOAD, got: buf.len() });
        }
        let mut block = [0u8; BLOCK_SIZE];
        self.device.read_block(id, &mut block)?;
        buf.copy_from_slice(&block[..PAGE_PAYLOAD]);
        self.stats.page_reads += 1;
        Ok(())
    }

    fn write_page(&mut self, id: PageId, data: &[u8]) -> Result<()> {
        if data.len() != PAGE_PAYLOAD {
            return Err(StorageError::BadBufferSize { expected: PAGE_PAYLOAD, got: data.len() });
        }
        let mut block = [0u8; BLOCK_SIZE];
        block[..PAGE_PAYLOAD].copy_from_slice(data);
        self.device.write_block(id, &block)?;
        self.stats.page_writes += 1;
        Ok(())
    }

    fn commit(&mut self) -> Result<()> {
        Ok(())
    }

    fn stats(&self) -> PagerStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = PagerStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_write_read() {
        let mut p = PlainPager::new();
        let id = p.allocate_page().unwrap();
        let mut data = vec![0u8; PAGE_PAYLOAD];
        data[0] = 0x5a;
        p.write_page(id, &data).unwrap();
        let mut back = vec![0u8; PAGE_PAYLOAD];
        p.read_page(id, &mut back).unwrap();
        assert_eq!(back, data);
        assert_eq!(p.stats().page_reads, 1);
        assert_eq!(p.stats().page_writes, 1);
        assert_eq!(p.stats().decrypts, 0);
    }

    #[test]
    fn fresh_page_is_zeroed() {
        let mut p = PlainPager::new();
        let id = p.allocate_page().unwrap();
        let mut buf = vec![0xffu8; PAGE_PAYLOAD];
        p.read_page(id, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn bad_buffer_size_rejected() {
        let mut p = PlainPager::new();
        let id = p.allocate_page().unwrap();
        let mut small = vec![0u8; 8];
        assert!(matches!(p.read_page(id, &mut small), Err(StorageError::BadBufferSize { .. })));
        assert!(matches!(p.write_page(id, &small), Err(StorageError::BadBufferSize { .. })));
    }

    #[test]
    fn batch_read_matches_looped_reads() {
        let mut p = PlainPager::new();
        for i in 0..5u8 {
            let id = p.allocate_page().unwrap();
            p.write_page(id, &vec![i; PAGE_PAYLOAD]).unwrap();
        }
        p.reset_stats();
        let ids = [4u64, 0, 2];
        let mut out = vec![0u8; ids.len() * PAGE_PAYLOAD];
        p.read_pages(&ids, &mut out).unwrap();
        assert_eq!(p.stats().page_reads, 3);
        for (i, id) in ids.iter().enumerate() {
            assert!(out[i * PAGE_PAYLOAD..(i + 1) * PAGE_PAYLOAD]
                .iter()
                .all(|&b| b == *id as u8));
        }
        // Wrong buffer size is rejected up front.
        let mut short = vec![0u8; PAGE_PAYLOAD];
        assert!(matches!(
            p.read_pages(&ids, &mut short),
            Err(StorageError::BadBufferSize { .. })
        ));
    }

    #[test]
    fn unknown_page_rejected() {
        let mut p = PlainPager::new();
        let mut buf = vec![0u8; PAGE_PAYLOAD];
        assert_eq!(p.read_page(3, &mut buf), Err(StorageError::PageOutOfRange(3)));
    }
}
