//! Column-major batches for vectorized execution.
//!
//! A [`ColumnBatch`] holds one morsel's rows decoded **once** from heap
//! pages into typed column vectors: integers and floats land in flat
//! `Vec`s, text lands in a shared byte arena with per-cell offsets —
//! no `String` or `Value` allocation per cell. The vectorized operators
//! (`crate::exec::morsel`) evaluate predicates and aggregate inputs
//! column-at-a-time over these vectors (see `crate::expr::filter_vec` /
//! `crate::expr::eval_vec`), short-circuiting on a selection bitmap.
//!
//! The batch is a *view*, not a format: pages are decoded through the
//! same record codec as the row scanners (`crate::heap::for_each_record`),
//! and [`ColumnBatch::value_at`] reconstructs each cell bit-identically
//! to the row decode — which is what lets the vectorized pipeline feed
//! the exact scalar `GroupAcc` replay.

use crate::schema::Row;
use crate::value::{RawValue, Value};

/// Selection bitmap over a batch's lanes: `sel[i]` is true while row
/// `i` is still live. Predicates clear lanes; downstream operators skip
/// dead lanes without compacting.
pub type Selection = Vec<bool>;

/// A cell viewed in place, without owning text.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LaneVal<'a> {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Borrowed UTF-8 text.
    Str(&'a str),
}

impl<'a> LaneVal<'a> {
    /// Owned [`Value`] with the same content (bit-exact).
    pub fn to_value(self) -> Value {
        match self {
            LaneVal::Null => Value::Null,
            LaneVal::Int(i) => Value::Int(i),
            LaneVal::Float(f) => Value::Float(f),
            LaneVal::Str(s) => Value::Text(s.to_string()),
        }
    }

    /// View of an owned [`Value`].
    pub fn of(v: &'a Value) -> Self {
        match v {
            Value::Null => LaneVal::Null,
            Value::Int(i) => LaneVal::Int(*i),
            Value::Float(f) => LaneVal::Float(*f),
            Value::Text(s) => LaneVal::Str(s),
        }
    }

    /// True when the lane is NULL.
    pub fn is_null(self) -> bool {
        matches!(self, LaneVal::Null)
    }

    /// [`Value::compare`] semantics without constructing values: `None`
    /// for NULLs and type-incomparable pairs, numeric cross-type
    /// comparison, byte-lexicographic text.
    pub fn compare(self, other: LaneVal<'_>) -> Option<std::cmp::Ordering> {
        match (self, other) {
            (LaneVal::Null, _) | (_, LaneVal::Null) => None,
            (LaneVal::Int(a), LaneVal::Int(b)) => Some(a.cmp(&b)),
            (LaneVal::Float(a), LaneVal::Float(b)) => a.partial_cmp(&b),
            (LaneVal::Int(a), LaneVal::Float(b)) => (a as f64).partial_cmp(&b),
            (LaneVal::Float(a), LaneVal::Int(b)) => a.partial_cmp(&(b as f64)),
            (LaneVal::Str(a), LaneVal::Str(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

/// One column of a batch. Columns adopt the type of their first
/// non-null cell; a heterogenous column (legal in this dynamically
/// typed engine) degrades to the `Mixed` representation, preserving
/// exact values.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Only NULLs seen so far; `0` cells typed.
    Pending {
        /// Lane count (all NULL).
        len: usize,
    },
    /// Integer column; `nulls[i]` masks `data[i]`.
    Int {
        /// Cell values (0 where NULL).
        data: Vec<i64>,
        /// NULL mask.
        nulls: Vec<bool>,
    },
    /// Float column; `nulls[i]` masks `data[i]`.
    Float {
        /// Cell values (0.0 where NULL).
        data: Vec<f64>,
        /// NULL mask.
        nulls: Vec<bool>,
    },
    /// Text column: one shared byte arena, cell `i` spans
    /// `bytes[offsets[i]..offsets[i+1]]`.
    Text {
        /// UTF-8 arena.
        bytes: Vec<u8>,
        /// Cell boundaries; `offsets.len() == len + 1`.
        offsets: Vec<u32>,
        /// NULL mask.
        nulls: Vec<bool>,
    },
    /// Fallback for mixed-type columns: owned values per cell.
    Mixed(Vec<Value>),
}

impl ColumnData {
    fn new() -> Self {
        ColumnData::Pending { len: 0 }
    }

    fn len(&self) -> usize {
        match self {
            ColumnData::Pending { len } => *len,
            ColumnData::Int { data, .. } => data.len(),
            ColumnData::Float { data, .. } => data.len(),
            ColumnData::Text { nulls, .. } => nulls.len(),
            ColumnData::Mixed(v) => v.len(),
        }
    }

    /// View cell `i` in place.
    pub fn lane(&self, i: usize) -> LaneVal<'_> {
        match self {
            ColumnData::Pending { .. } => LaneVal::Null,
            ColumnData::Int { data, nulls } => {
                if nulls[i] {
                    LaneVal::Null
                } else {
                    LaneVal::Int(data[i])
                }
            }
            ColumnData::Float { data, nulls } => {
                if nulls[i] {
                    LaneVal::Null
                } else {
                    LaneVal::Float(data[i])
                }
            }
            ColumnData::Text { bytes, offsets, nulls } => {
                if nulls[i] {
                    LaneVal::Null
                } else {
                    let s = &bytes[offsets[i] as usize..offsets[i + 1] as usize];
                    LaneVal::Str(std::str::from_utf8(s).expect("arena holds validated UTF-8"))
                }
            }
            ColumnData::Mixed(v) => LaneVal::of(&v[i]),
        }
    }

    /// Degrade to the `Mixed` representation, preserving every cell.
    fn degrade(&mut self) {
        let values: Vec<Value> = (0..self.len()).map(|i| self.lane(i).to_value()).collect();
        *self = ColumnData::Mixed(values);
    }

    fn push(&mut self, raw: RawValue<'_>) {
        match (&mut *self, raw) {
            (ColumnData::Pending { len }, RawValue::Null) => *len += 1,
            (ColumnData::Pending { len }, typed) => {
                let n = *len;
                *self = match typed {
                    RawValue::Int(i) => {
                        let mut data = vec![0i64; n];
                        data.push(i);
                        let mut nulls = vec![true; n];
                        nulls.push(false);
                        ColumnData::Int { data, nulls }
                    }
                    RawValue::Float(f) => {
                        let mut data = vec![0f64; n];
                        data.push(f);
                        let mut nulls = vec![true; n];
                        nulls.push(false);
                        ColumnData::Float { data, nulls }
                    }
                    RawValue::Text(s) => {
                        let mut offsets = vec![0u32; n + 1];
                        let bytes = s.as_bytes().to_vec();
                        offsets.push(bytes.len() as u32);
                        let mut nulls = vec![true; n];
                        nulls.push(false);
                        ColumnData::Text { bytes, offsets, nulls }
                    }
                    RawValue::Null => unreachable!("handled above"),
                };
            }
            (ColumnData::Int { data, nulls }, RawValue::Int(i)) => {
                data.push(i);
                nulls.push(false);
            }
            (ColumnData::Int { data, nulls }, RawValue::Null) => {
                data.push(0);
                nulls.push(true);
            }
            (ColumnData::Float { data, nulls }, RawValue::Float(f)) => {
                data.push(f);
                nulls.push(false);
            }
            (ColumnData::Float { data, nulls }, RawValue::Null) => {
                data.push(0.0);
                nulls.push(true);
            }
            (ColumnData::Text { bytes, offsets, nulls }, RawValue::Text(s)) => {
                bytes.extend_from_slice(s.as_bytes());
                offsets.push(bytes.len() as u32);
                nulls.push(false);
            }
            (ColumnData::Text { bytes, offsets, nulls }, RawValue::Null) => {
                offsets.push(bytes.len() as u32);
                nulls.push(true);
            }
            (ColumnData::Mixed(values), raw) => values.push(raw.to_value()),
            // Type switch mid-column: degrade and retry as Mixed.
            (col, raw) => {
                col.degrade();
                self.push(raw);
            }
        }
    }
}

/// A morsel's rows, column-major. Built by
/// [`crate::heap::scan_page_columns`]; pages append in order, so lane
/// order *is* serial row order.
#[derive(Debug, Clone)]
pub struct ColumnBatch {
    columns: Vec<ColumnData>,
    len: usize,
}

impl ColumnBatch {
    /// An empty batch of `ncols` columns.
    pub fn new(ncols: usize) -> Self {
        ColumnBatch { columns: (0..ncols).map(|_| ColumnData::new()).collect(), len: 0 }
    }

    /// Column count.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Row (lane) count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no rows have been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The columns.
    pub fn columns(&self) -> &[ColumnData] {
        &self.columns
    }

    /// Column `col` (panics when out of range, like slice indexing).
    pub fn column(&self, col: usize) -> &ColumnData {
        &self.columns[col]
    }

    /// Append one cell of the row being built (cells arrive in column
    /// order; see [`crate::heap::scan_page_columns`]).
    pub fn push_cell(&mut self, col: usize, raw: RawValue<'_>) {
        self.columns[col].push(raw);
    }

    /// Seal the row currently being built.
    pub fn finish_row(&mut self) -> crate::Result<()> {
        self.len += 1;
        debug_assert!(self.columns.iter().all(|c| c.len() == self.len));
        Ok(())
    }

    /// View cell (`col`, `lane`) in place.
    pub fn lane(&self, col: usize, lane: usize) -> LaneVal<'_> {
        self.columns[col].lane(lane)
    }

    /// Owned cell value, bit-identical to what the row decode produces.
    pub fn value_at(&self, col: usize, lane: usize) -> Value {
        self.lane(col, lane).to_value()
    }

    /// Materialize lane `lane` into `row` (cleared first) — the bridge
    /// back to row-at-a-time fallback evaluation.
    pub fn read_row(&self, lane: usize, row: &mut Row) {
        row.clear();
        for col in 0..self.columns.len() {
            row.push(self.value_at(col, lane));
        }
    }

    /// Owned row for lane `lane`.
    pub fn owned_row(&self, lane: usize) -> Row {
        (0..self.columns.len()).map(|c| self.value_at(c, lane)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push_row(batch: &mut ColumnBatch, row: &[Value]) {
        for (c, v) in row.iter().enumerate() {
            batch.push_cell(c, LaneVal::of(v).raw());
        }
        batch.finish_row().unwrap();
    }

    impl<'a> LaneVal<'a> {
        fn raw(self) -> RawValue<'a> {
            match self {
                LaneVal::Null => RawValue::Null,
                LaneVal::Int(i) => RawValue::Int(i),
                LaneVal::Float(f) => RawValue::Float(f),
                LaneVal::Str(s) => RawValue::Text(s),
            }
        }
    }

    #[test]
    fn typed_columns_roundtrip_values() {
        let rows = vec![
            vec![Value::Int(1), Value::Float(0.5), Value::Text("ab".into()), Value::Null],
            vec![Value::Null, Value::Null, Value::Null, Value::Null],
            vec![Value::Int(-7), Value::Float(f64::NAN), Value::Text(String::new()), Value::Int(3)],
        ];
        let mut batch = ColumnBatch::new(4);
        for r in &rows {
            push_row(&mut batch, r);
        }
        assert_eq!(batch.len(), 3);
        for (i, r) in rows.iter().enumerate() {
            let got = batch.owned_row(i);
            // Value's PartialEq is group-eq (NULL == NULL there, NaN != NaN),
            // so compare the encodings bit for bit instead.
            let mut a = Vec::new();
            let mut b = Vec::new();
            got.iter().for_each(|v| crate::value::encode_value(v, &mut a));
            r.iter().for_each(|v| crate::value::encode_value(v, &mut b));
            assert_eq!(a, b, "row {i}");
        }
        // Leading NULLs then an Int typed the last column as Int.
        assert!(matches!(batch.column(3), ColumnData::Int { .. }));
        assert!(matches!(batch.column(2), ColumnData::Text { .. }));
    }

    #[test]
    fn mixed_type_column_degrades_losslessly() {
        let mut batch = ColumnBatch::new(1);
        push_row(&mut batch, &[Value::Int(5)]);
        push_row(&mut batch, &[Value::Text("five".into())]);
        push_row(&mut batch, &[Value::Null]);
        assert!(matches!(batch.column(0), ColumnData::Mixed(_)));
        assert_eq!(batch.value_at(0, 0), Value::Int(5));
        assert_eq!(batch.value_at(0, 1), Value::Text("five".into()));
        assert!(batch.value_at(0, 2).is_null());
    }

    #[test]
    fn lane_compare_matches_value_compare() {
        let vals = [
            Value::Null,
            Value::Int(2),
            Value::Int(-2),
            Value::Float(2.0),
            Value::Float(2.5),
            Value::Float(f64::NAN),
            Value::Text("a".into()),
            Value::Text("b".into()),
        ];
        for a in &vals {
            for b in &vals {
                assert_eq!(
                    LaneVal::of(a).compare(LaneVal::of(b)),
                    a.compare(b),
                    "{a:?} vs {b:?}"
                );
            }
        }
    }
}
