//! The `Database` façade: SQL text in, rows out.

use crate::ast::{SelectStmt, Statement};
use crate::catalog::Catalog;
use crate::exec::collect;
use crate::expr::eval;
use crate::heap::{shared, SharedPager};
use crate::exec::ExecOptions;
use crate::parser::parse;
use crate::plan::{plan_select, plan_select_with};
use crate::schema::{Column, Row, Schema};
use crate::value::Value;
use crate::{Result, SqlError};
use ironsafe_storage::pager::{Pager, PagerStats};

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// Rows from a `SELECT`.
    Rows {
        /// Output schema.
        schema: Schema,
        /// The rows.
        rows: Vec<Row>,
    },
    /// Row count from DML.
    Count(u64),
    /// DDL acknowledged.
    Ok,
}

impl QueryResult {
    /// The rows (empty for non-SELECT results).
    pub fn rows(&self) -> &[Row] {
        match self {
            QueryResult::Rows { rows, .. } => rows,
            _ => &[],
        }
    }

    /// The output schema (empty for non-SELECT results).
    pub fn schema(&self) -> Schema {
        match self {
            QueryResult::Rows { schema, .. } => schema.clone(),
            _ => Schema::default(),
        }
    }
}

/// A single-node database over a pluggable pager.
pub struct Database {
    pager: SharedPager,
    catalog: Catalog,
    /// Pages holding the persisted catalog (page 0 chain).
    catalog_chain: Vec<ironsafe_storage::pager::PageId>,
}

impl Database {
    /// Create a database over `pager`.
    pub fn new<P: Pager + Send + 'static>(pager: P) -> Self {
        Database { pager: shared(pager), catalog: Catalog::new(), catalog_chain: Vec::new() }
    }

    /// Create over an already-shared pager.
    pub fn with_shared(pager: SharedPager) -> Self {
        Database { pager, catalog: Catalog::new(), catalog_chain: Vec::new() }
    }

    /// Reopen a database from a pager holding a checkpointed catalog
    /// (page 0 chain) — the reboot path: open the secure pager from the
    /// medium (verifying freshness), then rebuild the catalog from it.
    pub fn open<P: Pager + Send + 'static>(pager: P) -> Result<Self> {
        Self::open_shared(shared(pager))
    }

    /// [`Database::open`] over an already-shared pager.
    pub fn open_shared(pager: SharedPager) -> Result<Self> {
        let (bytes, chain) = crate::meta::read_chain(&pager)?;
        let catalog = crate::meta::decode_catalog(&bytes)?;
        Ok(Database { pager, catalog, catalog_chain: chain })
    }

    /// Assemble a database from an existing catalog and pager without
    /// touching storage.
    ///
    /// This is the read-view constructor used by the serving layer: the
    /// catalog is a clone of a live database's catalog and the pager is a
    /// copy-on-write view over that database's pages, so query execution
    /// (including temporary tables) proceeds without mutating the shared
    /// store. The catalog chain starts empty — a view that checkpoints
    /// writes a fresh chain into its own overlay.
    pub fn from_parts(pager: SharedPager, catalog: Catalog) -> Self {
        Database { pager, catalog, catalog_chain: Vec::new() }
    }

    /// Persist the catalog into the page-0 chain and commit the pager
    /// (flushing the freshness root to RPMB under the secure pager).
    ///
    /// Must be called at least once before the first data page is
    /// allocated — [`Database::new`] + `checkpoint()` reserves page 0.
    pub fn checkpoint(&mut self) -> Result<()> {
        let bytes = crate::meta::encode_catalog(&self.catalog);
        self.catalog_chain = crate::meta::write_chain(&self.pager, &self.catalog_chain, &bytes)?;
        self.pager.lock().commit()?;
        Ok(())
    }

    /// The shared pager handle.
    pub fn pager(&self) -> &SharedPager {
        &self.pager
    }

    /// Pager I/O + crypto counters.
    pub fn pager_stats(&self) -> PagerStats {
        self.pager.lock().stats()
    }

    /// Zero pager counters.
    pub fn reset_pager_stats(&self) {
        self.pager.lock().reset_stats()
    }

    /// The catalog (read-only).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Execute a script; returns the result of the *last* statement.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let stmts = parse(sql)?;
        if stmts.is_empty() {
            return Err(SqlError::Parse("empty statement".into()));
        }
        let mut last = QueryResult::Ok;
        for stmt in stmts {
            last = self.execute_statement(&stmt)?;
        }
        Ok(last)
    }

    /// Execute one parsed statement.
    pub fn execute_statement(&mut self, stmt: &Statement) -> Result<QueryResult> {
        match stmt {
            Statement::CreateTable { name, columns } => {
                let schema = Schema::new(columns.iter().map(|(n, t)| Column::new(n.clone(), *t)).collect());
                self.catalog.create_table(name, schema)?;
                Ok(QueryResult::Ok)
            }
            Statement::DropTable { name } => {
                self.catalog.drop_table(name)?;
                Ok(QueryResult::Ok)
            }
            Statement::Insert { table, columns, values } => self.insert(table, columns.as_deref(), values),
            Statement::Select(sel) => self.select(sel),
            Statement::Update { table, sets, where_clause } => self.update(table, sets, where_clause.as_ref()),
            Statement::Delete { table, where_clause } => self.delete(table, where_clause.as_ref()),
        }
    }

    /// Render a `SELECT`'s physical plan without executing it.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let stmt = crate::parser::parse_statement(sql)?;
        match stmt {
            Statement::Select(sel) => {
                let op = plan_select(&self.catalog, &self.pager, &sel)?;
                Ok(crate::exec::explain(&op))
            }
            other => Ok(format!("{other:?}\n")),
        }
    }

    /// Execute a `SELECT` and render its physical plan annotated with the
    /// per-operator row counts observed during execution (`EXPLAIN
    /// ANALYZE`). Unlike [`Database::explain`], this runs the query.
    pub fn explain_analyze(&mut self, sql: &str) -> Result<String> {
        let stmt = crate::parser::parse_statement(sql)?;
        match stmt {
            Statement::Select(sel) => {
                let mut op = plan_select(&self.catalog, &self.pager, &sel)?;
                while op.next()?.is_some() {}
                Ok(crate::exec::explain_analyze(&op))
            }
            other => Ok(format!("{other:?}\n")),
        }
    }

    /// Attach the pager's live telemetry counters to `registry`.
    pub fn register_metrics(&self, registry: &ironsafe_obs::Registry) {
        self.pager.lock().register_metrics(registry);
    }

    /// Run a `SELECT`.
    pub fn select(&mut self, stmt: &SelectStmt) -> Result<QueryResult> {
        let op = plan_select(&self.catalog, &self.pager, stmt)?;
        let (schema, rows) = collect(op)?;
        Ok(QueryResult::Rows { schema, rows })
    }

    /// Run a `SELECT` under explicit execution options (DOP, morsel
    /// size). Rows and pager-stats deltas are bit-identical to
    /// [`Database::select`] at any DOP; parallelism only buys wall-clock.
    pub fn select_with(&mut self, stmt: &SelectStmt, opts: &ExecOptions) -> Result<QueryResult> {
        let op = plan_select_with(&self.catalog, &self.pager, stmt, opts)?;
        let (schema, rows) = collect(op)?;
        Ok(QueryResult::Rows { schema, rows })
    }

    /// [`Database::select_with`] that additionally captures per-operator
    /// [`crate::exec::OperatorProfile`]s from the drained plan (rows
    /// in/out per operator, preorder). The rows, stats deltas, and plan
    /// are identical to `select_with` — profiling observes the same
    /// execution, it never changes it.
    pub fn select_with_profile(
        &mut self,
        stmt: &SelectStmt,
        opts: &ExecOptions,
    ) -> Result<(QueryResult, Vec<crate::exec::OperatorProfile>)> {
        let mut op = plan_select_with(&self.catalog, &self.pager, stmt, opts)?;
        let schema = op.schema().clone();
        let mut rows = Vec::new();
        while let Some(r) = op.next()? {
            rows.push(r);
        }
        let profiles = crate::exec::operator_profiles(&op);
        Ok((QueryResult::Rows { schema, rows }, profiles))
    }

    /// [`Database::execute_statement`] under explicit execution options.
    /// Only `SELECT` is affected; DML/DDL always run serially.
    pub fn execute_statement_with(
        &mut self,
        stmt: &Statement,
        opts: &ExecOptions,
    ) -> Result<QueryResult> {
        match stmt {
            Statement::Select(sel) => self.select_with(sel, opts),
            other => self.execute_statement(other),
        }
    }

    fn insert(
        &mut self,
        table: &str,
        columns: Option<&[String]>,
        values: &[Vec<crate::ast::Expr>],
    ) -> Result<QueryResult> {
        let info = self.catalog.table(table)?;
        let schema = info.schema.clone();
        // Map provided columns to schema positions.
        let positions: Vec<usize> = match columns {
            None => (0..schema.len()).collect(),
            Some(cols) => cols.iter().map(|c| schema.resolve(c)).collect::<Result<_>>()?,
        };
        let empty = Schema::default();
        let mut rows = Vec::with_capacity(values.len());
        for value_exprs in values {
            if value_exprs.len() != positions.len() {
                return Err(SqlError::Plan(format!(
                    "INSERT has {} values for {} columns",
                    value_exprs.len(),
                    positions.len()
                )));
            }
            let mut row = vec![Value::Null; schema.len()];
            for (expr, &pos) in value_exprs.iter().zip(positions.iter()) {
                row[pos] = eval(expr, &empty, &Vec::new())?;
            }
            rows.push(row);
        }
        let n = rows.len() as u64;
        let info = self.catalog.table_mut(table)?;
        info.heap.append_rows(&self.pager, rows)?;
        self.pager.lock().commit()?;
        Ok(QueryResult::Count(n))
    }

    /// Bulk-insert pre-built rows (bypasses SQL parsing; used by loaders and
    /// by the CSA host engine when materializing shipped intermediates).
    pub fn insert_rows(&mut self, table: &str, rows: Vec<Row>) -> Result<u64> {
        let info = self.catalog.table_mut(table)?;
        for r in &rows {
            if r.len() != info.schema.len() {
                return Err(SqlError::Plan(format!(
                    "row arity {} does not match table `{}` ({})",
                    r.len(),
                    table,
                    info.schema.len()
                )));
            }
        }
        let n = rows.len() as u64;
        info.heap.append_rows(&self.pager, rows)?;
        self.pager.lock().commit()?;
        Ok(n)
    }

    /// Create a table directly from a schema (no SQL round-trip).
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<()> {
        self.catalog.create_table(name, schema)
    }

    fn update(
        &mut self,
        table: &str,
        sets: &[(String, crate::ast::Expr)],
        where_clause: Option<&crate::ast::Expr>,
    ) -> Result<QueryResult> {
        let info = self.catalog.table(table)?;
        let schema = info.schema.clone();
        let rows = info.heap.all_rows(&self.pager, schema.len())?;
        let set_positions: Vec<usize> = sets.iter().map(|(c, _)| schema.resolve(c)).collect::<Result<_>>()?;
        let mut changed = 0u64;
        let mut new_rows = Vec::with_capacity(rows.len());
        for mut row in rows {
            let hit = match where_clause {
                None => true,
                Some(w) => eval(w, &schema, &row)?.is_truthy(),
            };
            if hit {
                // Evaluate all assignments against the *old* row.
                let mut new_vals = Vec::with_capacity(sets.len());
                for (_, e) in sets {
                    new_vals.push(eval(e, &schema, &row)?);
                }
                for (&pos, v) in set_positions.iter().zip(new_vals) {
                    row[pos] = v;
                }
                changed += 1;
            }
            new_rows.push(row);
        }
        let info = self.catalog.table_mut(table)?;
        info.heap.rewrite(&self.pager, new_rows)?;
        self.pager.lock().commit()?;
        Ok(QueryResult::Count(changed))
    }

    fn delete(&mut self, table: &str, where_clause: Option<&crate::ast::Expr>) -> Result<QueryResult> {
        let info = self.catalog.table(table)?;
        let schema = info.schema.clone();
        let rows = info.heap.all_rows(&self.pager, schema.len())?;
        let mut kept = Vec::with_capacity(rows.len());
        let mut deleted = 0u64;
        for row in rows {
            let hit = match where_clause {
                None => true,
                Some(w) => eval(w, &schema, &row)?.is_truthy(),
            };
            if hit {
                deleted += 1;
            } else {
                kept.push(row);
            }
        }
        let info = self.catalog.table_mut(table)?;
        info.heap.rewrite(&self.pager, kept)?;
        self.pager.lock().commit()?;
        Ok(QueryResult::Count(deleted))
    }
}

// Re-exported for the partitioner, which manipulates WHERE conjuncts.
pub use crate::plan::{join_conjuncts as and_join, split_conjuncts as and_split};

#[cfg(test)]
mod tests {
    use super::*;
    use ironsafe_storage::pager::PlainPager;

    fn db() -> Database {
        Database::new(PlainPager::new())
    }

    fn setup_sales(db: &mut Database) {
        db.execute("CREATE TABLE sales (region TEXT, product TEXT, amount FLOAT, qty INT)").unwrap();
        db.execute(
            "INSERT INTO sales VALUES \
             ('east', 'widget', 10.0, 1), \
             ('east', 'gadget', 20.0, 2), \
             ('west', 'widget', 30.0, 3), \
             ('west', 'gadget', 40.0, 4), \
             ('west', 'widget', 50.0, 5)",
        )
        .unwrap();
    }

    #[test]
    fn create_insert_select_star() {
        let mut db = db();
        setup_sales(&mut db);
        let r = db.execute("SELECT * FROM sales").unwrap();
        assert_eq!(r.rows().len(), 5);
        assert_eq!(r.schema().columns[0].name, "region");
    }

    #[test]
    fn filter_and_project() {
        let mut db = db();
        setup_sales(&mut db);
        let r = db.execute("SELECT product, amount FROM sales WHERE region = 'west' AND amount > 30").unwrap();
        assert_eq!(r.rows().len(), 2);
    }

    #[test]
    fn global_aggregate() {
        let mut db = db();
        setup_sales(&mut db);
        let r = db.execute("SELECT COUNT(*), SUM(amount), AVG(qty), MIN(amount), MAX(amount) FROM sales").unwrap();
        let row = &r.rows()[0];
        assert_eq!(row[0], Value::Int(5));
        assert_eq!(row[1], Value::Float(150.0));
        assert_eq!(row[2], Value::Float(3.0));
        assert_eq!(row[3], Value::Float(10.0));
        assert_eq!(row[4], Value::Float(50.0));
    }

    #[test]
    fn group_by_having_order_limit() {
        let mut db = db();
        setup_sales(&mut db);
        let r = db
            .execute(
                "SELECT region, SUM(amount) AS total FROM sales \
                 GROUP BY region HAVING SUM(amount) > 20 \
                 ORDER BY total DESC LIMIT 1",
            )
            .unwrap();
        assert_eq!(r.rows().len(), 1);
        assert_eq!(r.rows()[0][0].as_str().unwrap(), "west");
        assert_eq!(r.rows()[0][1], Value::Float(120.0));
    }

    #[test]
    fn group_by_expression_key() {
        let mut db = db();
        setup_sales(&mut db);
        let r = db
            .execute("SELECT qty % 2, COUNT(*) FROM sales GROUP BY qty % 2 ORDER BY qty % 2")
            .unwrap();
        assert_eq!(r.rows().len(), 2);
        assert_eq!(r.rows()[0][1], Value::Int(2)); // qty 2, 4
        assert_eq!(r.rows()[1][1], Value::Int(3)); // qty 1, 3, 5
    }

    #[test]
    fn join_two_tables() {
        let mut db = db();
        db.execute("CREATE TABLE emp (e_id INT, e_name TEXT, e_dept INT)").unwrap();
        db.execute("CREATE TABLE dept (d_id INT, d_name TEXT)").unwrap();
        db.execute("INSERT INTO emp VALUES (1, 'ann', 10), (2, 'bob', 20), (3, 'cid', 10)").unwrap();
        db.execute("INSERT INTO dept VALUES (10, 'eng'), (20, 'ops')").unwrap();
        let r = db
            .execute(
                "SELECT d_name, COUNT(*) AS n FROM emp, dept \
                 WHERE e_dept = d_id GROUP BY d_name ORDER BY n DESC",
            )
            .unwrap();
        assert_eq!(r.rows().len(), 2);
        assert_eq!(r.rows()[0][0].as_str().unwrap(), "eng");
        assert_eq!(r.rows()[0][1], Value::Int(2));
    }

    #[test]
    fn three_way_join() {
        let mut db = db();
        db.execute("CREATE TABLE a (a_id INT, a_b INT)").unwrap();
        db.execute("CREATE TABLE b (b_id INT, b_c INT)").unwrap();
        db.execute("CREATE TABLE c (c_id INT, c_name TEXT)").unwrap();
        db.execute("INSERT INTO a VALUES (1, 1), (2, 2)").unwrap();
        db.execute("INSERT INTO b VALUES (1, 100), (2, 200)").unwrap();
        db.execute("INSERT INTO c VALUES (100, 'x'), (200, 'y')").unwrap();
        let r = db
            .execute("SELECT a_id, c_name FROM a, b, c WHERE a_b = b_id AND b_c = c_id ORDER BY a_id")
            .unwrap();
        assert_eq!(r.rows().len(), 2);
        assert_eq!(r.rows()[0][1].as_str().unwrap(), "x");
        assert_eq!(r.rows()[1][1].as_str().unwrap(), "y");
    }

    #[test]
    fn update_and_delete() {
        let mut db = db();
        setup_sales(&mut db);
        let r = db.execute("UPDATE sales SET amount = amount * 2 WHERE region = 'east'").unwrap();
        assert_eq!(r, QueryResult::Count(2));
        let r = db.execute("SELECT SUM(amount) FROM sales").unwrap();
        assert_eq!(r.rows()[0][0], Value::Float(180.0));

        let r = db.execute("DELETE FROM sales WHERE qty >= 4").unwrap();
        assert_eq!(r, QueryResult::Count(2));
        let r = db.execute("SELECT COUNT(*) FROM sales").unwrap();
        assert_eq!(r.rows()[0][0], Value::Int(3));
    }

    #[test]
    fn case_expression_in_projection() {
        let mut db = db();
        setup_sales(&mut db);
        let r = db
            .execute(
                "SELECT SUM(CASE WHEN region = 'east' THEN amount ELSE 0 END) AS east_total FROM sales",
            )
            .unwrap();
        assert_eq!(r.rows()[0][0], Value::Float(30.0));
    }

    #[test]
    fn like_and_in_filters() {
        let mut db = db();
        setup_sales(&mut db);
        let r = db.execute("SELECT COUNT(*) FROM sales WHERE product LIKE 'wid%'").unwrap();
        assert_eq!(r.rows()[0][0], Value::Int(3));
        let r = db.execute("SELECT COUNT(*) FROM sales WHERE qty IN (1, 3, 5)").unwrap();
        assert_eq!(r.rows()[0][0], Value::Int(3));
    }

    #[test]
    fn insert_with_column_subset() {
        let mut db = db();
        db.execute("CREATE TABLE t (a INT, b TEXT, c FLOAT)").unwrap();
        db.execute("INSERT INTO t (c, a) VALUES (1.5, 7)").unwrap();
        let r = db.execute("SELECT a, b, c FROM t").unwrap();
        assert_eq!(r.rows()[0][0], Value::Int(7));
        assert!(r.rows()[0][1].is_null());
        assert_eq!(r.rows()[0][2], Value::Float(1.5));
    }

    #[test]
    fn errors_are_reported() {
        let mut db = db();
        assert!(matches!(db.execute("SELECT * FROM ghost"), Err(SqlError::Plan(_))));
        db.execute("CREATE TABLE t (a INT)").unwrap();
        assert!(matches!(db.execute("SELECT nope FROM t"), Err(SqlError::Plan(_))));
        assert!(matches!(db.execute("INSERT INTO t VALUES (1, 2)"), Err(SqlError::Plan(_))));
    }

    #[test]
    fn select_without_from() {
        let mut db = db();
        let r = db.execute("SELECT 1 + 2 AS three, 'x'").unwrap();
        assert_eq!(r.rows()[0][0], Value::Int(3));
        assert_eq!(r.schema().columns[0].name, "three");
    }

    #[test]
    fn order_by_column_not_in_projection() {
        let mut db = db();
        setup_sales(&mut db);
        let r = db.execute("SELECT product FROM sales ORDER BY amount DESC LIMIT 1").unwrap();
        assert_eq!(r.rows()[0][0].as_str().unwrap(), "widget"); // amount 50
    }

    #[test]
    fn works_end_to_end_on_secure_pager() {
        use ironsafe_crypto::group::Group;
        use ironsafe_storage::SecurePager;
        use ironsafe_tee::trustzone::Manufacturer;
        use rand::SeedableRng;
        let group = Group::modp_1024();
        let mfr = Manufacturer::from_seed(&group, b"acme");
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let dev = mfr.make_device("db-dev", 8, &mut rng);
        let mut db = Database::new(SecurePager::create(dev, 9).unwrap());
        db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')").unwrap();
        let r = db.execute("SELECT b FROM t WHERE a >= 2 ORDER BY a DESC").unwrap();
        assert_eq!(r.rows().len(), 2);
        assert_eq!(r.rows()[0][0].as_str().unwrap(), "z");
        let stats = db.pager_stats();
        assert!(stats.decrypts > 0, "reads went through the secure path");
        assert!(stats.merkle_nodes > 0, "freshness was verified");
    }

    #[test]
    fn parallel_select_matches_serial_for_scans_joins_and_aggs() {
        let mut db = db();
        db.execute("CREATE TABLE big (k INT, grp TEXT, v FLOAT)").unwrap();
        let values: Vec<String> =
            (0..800).map(|i| format!("({i}, 'g{}', {}.5)", i % 5, i % 13)).collect();
        db.execute(&format!("INSERT INTO big VALUES {}", values.join(", "))).unwrap();
        db.execute("CREATE TABLE names (g TEXT, label TEXT)").unwrap();
        db.execute(
            "INSERT INTO names VALUES ('g0','zero'),('g1','one'),('g2','two'),('g3','three'),('g4','four')",
        )
        .unwrap();
        let queries = [
            "SELECT k, v FROM big WHERE v > 6 AND k % 7 = 1",
            "SELECT grp, COUNT(*), SUM(v * 0.9), AVG(v) FROM big WHERE k < 700 GROUP BY grp ORDER BY grp",
            "SELECT label, SUM(v) AS s FROM big, names WHERE grp = g GROUP BY label ORDER BY s DESC",
            "SELECT k FROM big WHERE k % 100 = 3 ORDER BY v DESC, k",
            "SELECT k FROM big ORDER BY k LIMIT 10", // LIMIT plans stay serial
        ];
        let opts = ExecOptions { oversubscribe: true, ..ExecOptions::with_dop(4) };
        for q in queries {
            let stmt = crate::parser::parse_statement(q).unwrap();
            let sel = match &stmt {
                Statement::Select(s) => s,
                _ => unreachable!(),
            };
            db.reset_pager_stats();
            let serial = db.select(sel).unwrap();
            let serial_stats = db.pager_stats();
            db.reset_pager_stats();
            let parallel = db.select_with(sel, &opts).unwrap();
            let parallel_stats = db.pager_stats();
            assert_eq!(parallel, serial, "rows diverged for {q}");
            assert_eq!(parallel_stats, serial_stats, "stats diverged for {q}");
        }
    }

    #[test]
    fn dml_arity_checked_in_insert_rows() {
        let mut db = db();
        db.execute("CREATE TABLE t (a INT, b INT)").unwrap();
        assert!(db.insert_rows("t", vec![vec![Value::Int(1)]]).is_err());
        assert_eq!(db.insert_rows("t", vec![vec![Value::Int(1), Value::Int(2)]]).unwrap(), 1);
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use ironsafe_storage::pager::PlainPager;
    use ironsafe_storage::SecurePager;
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[test]
    fn checkpoint_and_reopen_plain() {
        let pager: Arc<Mutex<PlainPager>> = Arc::new(Mutex::new(PlainPager::new()));
        let shared: crate::heap::SharedPager = pager.clone();
        let mut db = Database::with_shared(shared.clone());
        db.checkpoint().unwrap(); // reserve page 0 before any data
        db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')").unwrap();
        db.checkpoint().unwrap();
        drop(db);

        let mut db = Database::open_shared(shared).unwrap();
        let r = db.execute("SELECT b FROM t WHERE a = 2").unwrap();
        assert_eq!(r.rows()[0][0].as_str().unwrap(), "y");
    }

    #[test]
    fn uncheckpointed_ddl_is_lost_on_reopen() {
        let pager: Arc<Mutex<PlainPager>> = Arc::new(Mutex::new(PlainPager::new()));
        let shared: crate::heap::SharedPager = pager.clone();
        let mut db = Database::with_shared(shared.clone());
        db.checkpoint().unwrap();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        db.checkpoint().unwrap();
        db.execute("CREATE TABLE later (b INT)").unwrap(); // not checkpointed
        drop(db);
        let db = Database::open_shared(shared).unwrap();
        assert!(db.catalog().has_table("t"));
        assert!(!db.catalog().has_table("later"));
    }

    #[test]
    fn full_reboot_cycle_over_secure_pager() {
        use ironsafe_crypto::group::Group;
        use ironsafe_tee::trustzone::Manufacturer;
        use rand::SeedableRng;
        let group = Group::modp_1024();
        let mfr = Manufacturer::from_seed(&group, b"persist");
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let device = mfr.make_device("p0", 8, &mut rng);

        let pager = Arc::new(Mutex::new(SecurePager::create(device, 1).unwrap()));
        let mut db = Database::with_shared(pager.clone());
        db.checkpoint().unwrap();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        let values: Vec<String> = (0..500).map(|i| format!("({i})")).collect();
        db.execute(&format!("INSERT INTO t VALUES {}", values.join(", "))).unwrap();
        db.checkpoint().unwrap();
        drop(db);

        // Power off: recover the device + medium from the pager.
        let secure = Arc::try_unwrap(pager).ok().expect("sole owner").into_inner();
        let (tz, medium) = secure.into_parts();

        // Reboot: reopen through the full freshness check.
        let reopened = SecurePager::open(tz, medium, 2).unwrap();
        let mut db = Database::open(reopened).unwrap();
        let r = db.execute("SELECT COUNT(*), SUM(a) FROM t").unwrap();
        assert_eq!(r.rows()[0][0].as_i64().unwrap(), 500);
        assert_eq!(r.rows()[0][1].as_i64().unwrap(), (0..500).sum::<i64>());
    }

    #[test]
    fn rolled_back_medium_refuses_to_open_at_db_level() {
        use ironsafe_crypto::group::Group;
        use ironsafe_tee::trustzone::Manufacturer;
        use rand::SeedableRng;
        let group = Group::modp_1024();
        let mfr = Manufacturer::from_seed(&group, b"persist2");
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let device = mfr.make_device("p1", 8, &mut rng);

        let pager = Arc::new(Mutex::new(SecurePager::create(device, 1).unwrap()));
        let mut db = Database::with_shared(pager.clone());
        db.checkpoint().unwrap();
        db.execute("CREATE TABLE audit_trail (entry TEXT)").unwrap();
        db.execute("INSERT INTO audit_trail VALUES ('breach at 03:12')").unwrap();
        db.checkpoint().unwrap();
        let snapshot = pager.lock().device().raw_snapshot();
        // More damning evidence lands and is checkpointed.
        db.execute("INSERT INTO audit_trail VALUES ('exfiltration at 03:14')").unwrap();
        db.checkpoint().unwrap();
        drop(db);

        // The attacker rolls the medium back to hide the second entry.
        let secure = Arc::try_unwrap(pager).ok().expect("sole owner").into_inner();
        let (tz, mut medium) = secure.into_parts();
        medium.raw_restore(snapshot);
        assert!(SecurePager::open(tz, medium, 2).is_err(), "rollback detected at reboot");
    }
}

#[cfg(test)]
mod explain_tests {
    use super::*;
    use ironsafe_storage::pager::PlainPager;

    #[test]
    fn explain_shows_the_physical_plan() {
        let mut db = Database::new(PlainPager::new());
        db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
        db.execute("CREATE TABLE u (c INT, d TEXT)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'x')").unwrap();
        let plan = db
            .explain(
                "SELECT d, COUNT(*) AS n FROM t, u \
                 WHERE a = c AND b LIKE 'x%' GROUP BY d ORDER BY n DESC LIMIT 5",
            )
            .unwrap();
        // Pipeline order: limit over project over sort over aggregate over
        // join over filtered scans.
        assert!(plan.starts_with("Limit: 5"), "{plan}");
        assert!(plan.contains("Project: d, n"), "{plan}");
        assert!(plan.contains("Sort: __agg0 DESC"), "{plan}");
        assert!(plan.contains("HashAggregate"), "{plan}");
        assert!(plan.contains("HashJoin"), "{plan}");
        assert!(plan.contains("Filter: (b LIKE 'x%')"), "{plan}");
        assert!(plan.contains("SeqScan"), "{plan}");
        // Filter sits below the join (pushdown): deeper indentation.
        let join_line = plan.lines().position(|l| l.contains("HashJoin")).unwrap();
        let filter_line = plan.lines().position(|l| l.contains("Filter")).unwrap();
        assert!(filter_line > join_line);
    }

    #[test]
    fn explain_does_not_execute() {
        let mut db = Database::new(PlainPager::new());
        db.execute("CREATE TABLE t (a INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        db.reset_pager_stats();
        let _ = db.explain("SELECT a FROM t WHERE a = 1").unwrap();
        assert_eq!(db.pager_stats().page_reads, 0, "planning reads no pages");
    }

    #[test]
    fn explain_analyze_reports_per_operator_row_counts() {
        let mut db = Database::new(PlainPager::new());
        db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'x'), (4, 'x')").unwrap();
        let plan = db.explain_analyze("SELECT a FROM t WHERE b = 'x' LIMIT 2").unwrap();
        // Limit passes 2 of the filter's 3 survivors; the scan streams 4.
        let limit = plan.lines().find(|l| l.contains("Limit")).unwrap();
        assert!(limit.contains("out=2"), "{plan}");
        let filter = plan.lines().find(|l| l.contains("Filter")).unwrap();
        assert!(filter.contains("in=4") || filter.contains("in=3"), "{plan}");
        let scan = plan.lines().find(|l| l.contains("SeqScan")).unwrap();
        assert!(scan.contains("rows out="), "{plan}");
        // The plain explain stays untouched by the instrumentation.
        let cold = db.explain("SELECT a FROM t WHERE b = 'x' LIMIT 2").unwrap();
        assert!(!cold.contains("rows out="), "{cold}");
    }
}
