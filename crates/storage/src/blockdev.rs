//! Simulated block device.
//!
//! Stands in for the paper's Samsung 970 EVO Plus NVMe drive. Blocks are
//! 4 KiB; reads and writes are counted so the CSA cost model can convert
//! them into simulated time. The device also exposes *raw* access — the
//! attacker's view of the untrusted medium — used by the security tests to
//! mount tampering, rollback and forking attacks.

use crate::{Result, StorageError};

/// Physical block size (matches the paper's 4 KiB data units).
pub const BLOCK_SIZE: usize = 4096;

/// I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Block reads served.
    pub reads: u64,
    /// Block writes served.
    pub writes: u64,
}

/// An in-memory block device.
#[derive(Clone)]
pub struct BlockDevice {
    blocks: Vec<Box<[u8; BLOCK_SIZE]>>,
    stats: DeviceStats,
}

impl std::fmt::Debug for BlockDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BlockDevice({} blocks, {:?})", self.blocks.len(), self.stats)
    }
}

impl BlockDevice {
    /// An empty device.
    pub fn new() -> Self {
        BlockDevice { blocks: Vec::new(), stats: DeviceStats::default() }
    }

    /// Number of allocated blocks.
    pub fn num_blocks(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Grow the device by one zeroed block, returning its index.
    pub fn append_block(&mut self) -> u64 {
        self.blocks.push(Box::new([0; BLOCK_SIZE]));
        self.blocks.len() as u64 - 1
    }

    /// Read block `idx` into `buf`.
    pub fn read_block(&mut self, idx: u64, buf: &mut [u8; BLOCK_SIZE]) -> Result<()> {
        let block = self.blocks.get(idx as usize).ok_or(StorageError::PageOutOfRange(idx))?;
        buf.copy_from_slice(&block[..]);
        self.stats.reads += 1;
        Ok(())
    }

    /// Write `buf` to block `idx`.
    pub fn write_block(&mut self, idx: u64, buf: &[u8; BLOCK_SIZE]) -> Result<()> {
        let block = self.blocks.get_mut(idx as usize).ok_or(StorageError::PageOutOfRange(idx))?;
        block.copy_from_slice(buf);
        self.stats.writes += 1;
        Ok(())
    }

    /// I/O counters.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Zero the counters.
    pub fn reset_stats(&mut self) {
        self.stats = DeviceStats::default();
    }

    // ------------------------------------------------------------------
    // Attacker interface: raw access to the untrusted medium. These do NOT
    // bump the I/O counters — the adversary works offline.
    // ------------------------------------------------------------------

    /// Attacker: flip bits in a block.
    pub fn raw_tamper(&mut self, idx: u64, offset: usize, xor: u8) {
        if let Some(b) = self.blocks.get_mut(idx as usize) {
            b[offset] ^= xor;
        }
    }

    /// Attacker: overwrite a whole block.
    pub fn raw_overwrite(&mut self, idx: u64, data: &[u8; BLOCK_SIZE]) {
        if let Some(b) = self.blocks.get_mut(idx as usize) {
            b.copy_from_slice(data);
        }
    }

    /// Attacker: copy block `src` over block `dst` (displacement attack).
    pub fn raw_displace(&mut self, src: u64, dst: u64) {
        if src == dst {
            return;
        }
        let data = *self.blocks[src as usize].clone();
        self.blocks[dst as usize].copy_from_slice(&data);
    }

    /// Attacker: snapshot the full medium (for later rollback / forking).
    pub fn raw_snapshot(&self) -> Vec<Box<[u8; BLOCK_SIZE]>> {
        self.blocks.clone()
    }

    /// Attacker: restore a snapshot (rollback attack).
    pub fn raw_restore(&mut self, snapshot: Vec<Box<[u8; BLOCK_SIZE]>>) {
        self.blocks = snapshot;
    }

    /// Attacker: raw read without counters (inspection attack).
    pub fn raw_read(&self, idx: u64) -> Option<&[u8; BLOCK_SIZE]> {
        self.blocks.get(idx as usize).map(|b| &**b)
    }
}

impl Default for BlockDevice {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_read_write_roundtrip() {
        let mut dev = BlockDevice::new();
        let idx = dev.append_block();
        let mut data = [0u8; BLOCK_SIZE];
        data[0] = 0xaa;
        data[BLOCK_SIZE - 1] = 0xbb;
        dev.write_block(idx, &data).unwrap();
        let mut back = [0u8; BLOCK_SIZE];
        dev.read_block(idx, &mut back).unwrap();
        assert_eq!(back, data);
        assert_eq!(dev.stats(), DeviceStats { reads: 1, writes: 1 });
    }

    #[test]
    fn out_of_range_rejected() {
        let mut dev = BlockDevice::new();
        let mut buf = [0u8; BLOCK_SIZE];
        assert_eq!(dev.read_block(0, &mut buf), Err(StorageError::PageOutOfRange(0)));
        assert_eq!(dev.write_block(5, &buf), Err(StorageError::PageOutOfRange(5)));
    }

    #[test]
    fn raw_access_skips_counters() {
        let mut dev = BlockDevice::new();
        let idx = dev.append_block();
        dev.raw_tamper(idx, 0, 0xff);
        let _ = dev.raw_read(idx);
        assert_eq!(dev.stats(), DeviceStats::default());
    }

    #[test]
    fn snapshot_restore_rolls_back() {
        let mut dev = BlockDevice::new();
        let idx = dev.append_block();
        let mut v1 = [0u8; BLOCK_SIZE];
        v1[0] = 1;
        dev.write_block(idx, &v1).unwrap();
        let snap = dev.raw_snapshot();
        let mut v2 = [0u8; BLOCK_SIZE];
        v2[0] = 2;
        dev.write_block(idx, &v2).unwrap();
        dev.raw_restore(snap);
        assert_eq!(dev.raw_read(idx).unwrap()[0], 1);
    }

    #[test]
    fn displace_copies_between_blocks() {
        let mut dev = BlockDevice::new();
        let a = dev.append_block();
        let b = dev.append_block();
        let mut data = [0u8; BLOCK_SIZE];
        data[7] = 77;
        dev.write_block(a, &data).unwrap();
        dev.raw_displace(a, b);
        assert_eq!(dev.raw_read(b).unwrap()[7], 77);
    }
}
