# Development entry points. The workspace builds fully offline — every
# external dependency is an in-tree shim under shims/ — so all recipes
# pass --offline.

# Build, test, and lint everything (the pre-merge gate).
check: serve-smoke par-smoke chaos-smoke fresh-smoke profile-smoke shard-smoke vec-smoke wal-smoke adaptive-smoke
    cargo build --release --offline
    cargo test -q --offline
    cargo clippy --offline -- -D warnings

# Parallel-execution smoke: golden parity (rows, cost breakdowns and
# pager-stats deltas bit-identical at DOP 4 across every Table 2
# configuration) plus the morsel engine's own unit tests.
par-smoke:
    cargo test -q --offline -p ironsafe-csa --test parallel_golden
    cargo test -q --offline -p ironsafe-sql morsel

# Serving-layer smoke: run the multi-client example end to end, then
# the server's own test suite (admission, determinism, drain).
serve-smoke:
    cargo run --release --offline --example multi_client
    cargo test -q --offline -p ironsafe-serve

# Freshness fast-path smoke: Merkle batch/cache unit + property tests,
# the bench crate's >=3x reduction assertions, and a reduced-SF
# `paperbench freshness` sweep end to end.
fresh-smoke:
    cargo test -q --offline -p ironsafe-storage merkle
    cargo test -q --offline -p ironsafe-bench freshness
    cargo run --release --offline -p ironsafe-bench --bin paperbench freshness --sf 0.0015

# Query-profiler smoke: golden parity (EXPLAIN ANALYZE counters
# bit-identical to the cost model across configs and DOPs), the
# workspace metric-name manifest, and the BENCH_6.json regression gate.
profile-smoke:
    cargo test -q --offline -p ironsafe-csa --test profile_parity
    cargo test -q --offline -p ironsafe --test metrics_manifest
    cargo run --release --offline -p ironsafe-bench --bin paperbench profile --check

# Federation smoke: golden parity across shard counts and configs,
# failover + storm chaos, partitioner property tests, serving over a
# federation, and the BENCH_7.json invariant gate.
shard-smoke:
    cargo test -q --offline -p ironsafe-scale
    cargo run --release --offline -p ironsafe-bench --bin paperbench shards --check

# Vectorization + compression smoke: eval_vec/scalar and partial-batch
# equivalence properties, column-batch units, compression codec
# round-trip properties, cross-shard/DOP parity of the vectorized +
# compressed paths, and the BENCH_8.json invariant gate.
vec-smoke:
    cargo test -q --offline -p ironsafe-sql -- batch vec
    cargo test -q --offline -p ironsafe-storage --test compress_prop
    cargo test -q --offline -p ironsafe-scale --test vector_parity
    cargo run --release --offline -p ironsafe-bench --bin paperbench vectors --check

# Adaptive-optimizer smoke: cost-model + planner unit and property
# tests, pinned/primed golden parity against both static policies, and
# the BENCH_10.json shape x cores x selectivity x pressure sweep gate
# (adaptive <= best static everywhere, >=20% wins on both ends,
# re-planning demo).
adaptive-smoke:
    cargo test -q --offline -p ironsafe-csa adaptive
    cargo run --release --offline -p ironsafe-bench --bin paperbench adaptive --check

# Fault-injection smoke: the chaos harness (50 seed x rate storms,
# identical-rows-or-typed-error invariant, per-surface recovery) plus
# the fault plan's own unit tests.
chaos-smoke:
    cargo test -q --offline -p ironsafe --test chaos
    cargo test -q --offline -p ironsafe-faults

# Write-path smoke: WAL replay idempotence + prefix-consistency
# property tests, MVCC snapshot golden parity under interleaved
# writers, crash-during-commit storms across the WAL fault sites, and
# the BENCH_9.json mixed read/write invariant gate.
wal-smoke:
    cargo test -q --offline -p ironsafe-storage --test wal_prop
    cargo test -q --offline -p ironsafe-csa --test mvcc_golden
    cargo test -q --offline -p ironsafe --test chaos crash_commit_storms
    cargo run --release --offline -p ironsafe-bench --bin paperbench saturation --check

# Full chaos sweep through paperbench, with exported fault counters.
chaos out="chaos-metrics":
    cargo run --release --offline -p ironsafe-bench --bin paperbench chaos --metrics-out {{out}}

# Full criterion benchmark suite (minutes).
bench:
    cargo bench --offline

# Reduced-sample smoke pass of the same benches (~seconds).
bench-smoke:
    IRONSAFE_BENCH_QUICK=1 cargo bench --offline

# Regenerate every paper table and figure.
figures:
    cargo run --release --offline -p ironsafe-bench --bin paperbench

# Figure 8 plus a Perfetto-loadable span timeline + counter dump.
trace out="trace.json":
    cargo run --release --offline -p ironsafe-bench --bin paperbench fig8 --metrics-out {{out}}
