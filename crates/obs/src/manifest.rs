//! The metric-name manifest: one const registry of every counter,
//! gauge and histogram name the workspace exports.
//!
//! Components register their cells under `subsystem.object.event`
//! names scattered across crates; a typo'd or orphaned name silently
//! produces a counter nobody reads. The manifest pins the full set:
//! `tests/metrics_manifest.rs` (workspace root) registers every
//! subsystem into one [`crate::Registry`] and asserts the exported
//! names are exactly covered, and the DESIGN.md metric table is
//! generated from [`design_table`] so docs cannot drift either.

use crate::metrics::MetricsSnapshot;

/// Declaration of one exported metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricDef {
    /// Dotted `subsystem.object.event` name.
    pub name: &'static str,
    /// Cell kind: `"counter"`, `"gauge"` or `"histogram"`.
    pub kind: &'static str,
    /// One-line description (rendered into the DESIGN.md table).
    pub help: &'static str,
}

const fn m(name: &'static str, kind: &'static str, help: &'static str) -> MetricDef {
    MetricDef { name, kind, help }
}

/// Every metric name the workspace exports, sorted by name.
///
/// Keep this sorted — [`manifest_contains`] binary-searches it, and a
/// unit test enforces order and uniqueness.
pub const METRIC_MANIFEST: &[MetricDef] = &[
    m("csa.net.bytes", "counter", "Bytes moved over the host↔storage secure channel"),
    m("csa.net.messages", "counter", "Sealed records sent over the secure channel"),
    m("exec.morsel.dispatched", "counter", "Morsels claimed by parallel workers"),
    m("exec.morsel.rows", "counter", "Rows decoded by morsel workers"),
    m("exec.morsel.scans", "counter", "Parallel morsel scans started"),
    m("faults.exhausted", "counter", "Operations that failed after the full retry budget"),
    m("faults.injected", "counter", "Faults the plan decided to fire"),
    m("faults.recovered", "counter", "Operations that succeeded after at least one retry"),
    m("faults.retried", "counter", "Retry attempts after transient failures"),
    m("faults.surface.channel.injected", "counter", "Chaos demo: channel faults injected"),
    m("faults.surface.channel.recovered", "counter", "Chaos demo: channel faults recovered"),
    m("faults.surface.device.injected", "counter", "Chaos demo: device faults injected"),
    m("faults.surface.device.recovered", "counter", "Chaos demo: device faults recovered"),
    m("faults.surface.enclave.injected", "counter", "Chaos demo: enclave faults injected"),
    m("faults.surface.enclave.recovered", "counter", "Chaos demo: enclave faults recovered"),
    m("faults.surface.rpmb.injected", "counter", "Chaos demo: RPMB faults injected"),
    m("faults.surface.rpmb.recovered", "counter", "Chaos demo: RPMB faults recovered"),
    m("monitor.query.deny", "counter", "Statements the trusted monitor refused"),
    m("monitor.query.grant", "counter", "Statements the trusted monitor authorized"),
    m("mvcc.gc", "counter", "Retained page versions garbage-collected once unpinned"),
    m("mvcc.pin", "counter", "Snapshot epochs pinned by read views"),
    m("mvcc.read.retained", "counter", "Pinned reads served from retained pre-images"),
    m("mvcc.retain", "counter", "Pre-images retained for pinned readers at flush"),
    m("plan.decide.offload", "counter", "Fragments the adaptive cost rule pushed down to storage"),
    m("plan.decide.ship_pages", "counter", "Fragments the adaptive cost rule kept on the host"),
    m("plan.estimate.refined", "counter", "EWMA selectivity estimates refined by observed row counts"),
    m("plan.replan", "counter", "Mid-flight placement re-plans committed by the morsel driver"),
    m("scale.failover.promoted", "counter", "Replica promotions completed after a quarantine"),
    m("scale.failover.reverified_pages", "counter", "Pages re-read verifying a promoted replica's partition"),
    m("scale.merge.rows", "counter", "Rows fed through the deterministic gid merge"),
    m("scale.partial.tuples", "counter", "Partial-aggregation tuples shipped by shards"),
    m("scale.shard.fragments", "counter", "Physical fragment executions (logical fragments × shards)"),
    m("scale.shard.quarantined", "counter", "Shard nodes quarantined after attestation/crash/freshness failures"),
    m("serve.flight.dumps", "counter", "Flight-recorder dumps appended to the audit trail"),
    m("serve.query.admitted", "counter", "Requests accepted into a session queue"),
    m("serve.query.completed", "counter", "Requests executed and replied to"),
    m("serve.query.rejected", "counter", "Requests refused by admission control"),
    m("serve.queue.depth", "gauge", "Total queued requests across sessions"),
    m("serve.sessions.active", "gauge", "Open (non-revoked, non-expired) sessions"),
    m("serve.slo.queue_wait_ns", "histogram", "Wall-clock ns a request waited in its queue"),
    m("serve.slo.service_ns", "histogram", "Wall-clock ns a worker spent executing a request"),
    m("serve.violations.audited", "counter", "Integrity/freshness violations appended to the audit log"),
    m("storage.compress.pages_dict", "counter", "Logical pages stored dictionary-coded"),
    m("storage.compress.pages_raw", "counter", "Logical pages stored uncompressed (incompressible fallback)"),
    m("storage.compress.pages_rle", "counter", "Logical pages stored run-length encoded"),
    m("storage.compress.ratio_pct", "gauge", "Stored physical bytes as a percentage of logical bytes"),
    m("storage.merkle.cache.evict", "counter", "Verified-node cache wholesale evictions"),
    m("storage.merkle.cache.hit", "counter", "Freshness checks resolved from the verified-node cache"),
    m("storage.merkle.cache.miss", "counter", "Freshness checks that climbed past the cache"),
    m("storage.page.decrypt", "counter", "Page payload decryptions"),
    m("storage.page.encrypt", "counter", "Page payload encryptions"),
    m("storage.page.hmac_verify", "counter", "Per-page MAC verifications on the read path"),
    m("storage.page.read", "counter", "Logical page reads through the secure pager"),
    m("storage.page.write", "counter", "Logical page writes through the secure pager"),
    m("storage.rpmb.write", "counter", "Freshness-root commits to RPMB"),
    m("tee.enclave.restart", "counter", "Enclave crash-recovery restarts"),
    m("tee.enclave.transition", "counter", "ECALL/OCALL enclave transitions"),
    m("tee.epc.eviction", "counter", "EPC LRU evictions"),
    m("tee.epc.fault", "counter", "EPC page faults"),
    m("tee.epc.hit", "counter", "EPC resident-page touches"),
    m("tee.rpmb.read", "counter", "Authenticated RPMB reads"),
    m("tee.rpmb.write", "counter", "Authenticated RPMB writes"),
    m("wal.append", "counter", "Records appended to the encrypted write-ahead log"),
    m("wal.append.bytes", "counter", "Bytes appended to the WAL, frame overhead included"),
    m("wal.group_commit", "counter", "Group-commit flushes (one batched RPMB bind each)"),
    m("wal.recover.discarded", "counter", "Tail records discarded by crash recovery"),
    m("wal.recover.replayed", "counter", "Commit records replayed by crash recovery"),
    m("wal.txn", "counter", "Transactions folded into group commits"),
];

/// True when `name` is declared in [`METRIC_MANIFEST`].
pub fn manifest_contains(name: &str) -> bool {
    METRIC_MANIFEST.binary_search_by(|d| d.name.cmp(name)).is_ok()
}

/// Names exported in `snapshot` that the manifest does not declare
/// (empty when the snapshot is fully covered).
pub fn unlisted_names(snapshot: &MetricsSnapshot) -> Vec<String> {
    let mut missing = Vec::new();
    let mut check = |name: &str| {
        if !manifest_contains(name) {
            missing.push(name.to_string());
        }
    };
    for (name, _) in &snapshot.counters {
        check(name);
    }
    for (name, _) in &snapshot.gauges {
        check(name);
    }
    for (name, _) in &snapshot.histograms {
        check(name);
    }
    missing
}

/// Render the manifest as the markdown table embedded in DESIGN.md.
/// A workspace test pins the committed table to this output, so the
/// docs regenerate (rather than rot) when the manifest changes.
pub fn design_table() -> String {
    let mut out = String::from("| metric | kind | meaning |\n|---|---|---|\n");
    for d in METRIC_MANIFEST {
        out.push_str(&format!("| `{}` | {} | {} |\n", d.name, d.kind, d.help));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_is_sorted_and_unique() {
        for pair in METRIC_MANIFEST.windows(2) {
            assert!(
                pair[0].name < pair[1].name,
                "manifest must be sorted/unique: {} then {}",
                pair[0].name,
                pair[1].name
            );
        }
    }

    #[test]
    fn lookup_and_coverage() {
        assert!(manifest_contains("storage.page.read"));
        assert!(manifest_contains("serve.slo.queue_wait_ns"));
        assert!(!manifest_contains("storage.page.reed"));

        let registry = crate::Registry::new();
        registry.counter("storage.page.read").inc();
        registry.counter("storage.page.reed").inc(); // the typo the manifest exists to catch
        let missing = unlisted_names(&registry.snapshot());
        assert_eq!(missing, vec!["storage.page.reed".to_string()]);
    }

    #[test]
    fn kinds_are_valid_and_table_renders() {
        for d in METRIC_MANIFEST {
            assert!(
                matches!(d.kind, "counter" | "gauge" | "histogram"),
                "bad kind for {}",
                d.name
            );
            assert!(!d.help.is_empty());
        }
        let table = design_table();
        assert!(table.contains("| `storage.page.hmac_verify` | counter |"));
        assert!(table.contains("| `serve.slo.service_ns` | histogram |"));
    }
}
