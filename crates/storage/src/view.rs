//! Copy-on-write read views over a shared pager.
//!
//! The serving layer runs many queries concurrently against **one**
//! storage-resident database. Two problems stand in the way of doing
//! that with the plain [`Pager`] stack:
//!
//! 1. *Isolation*: multi-stage queries materialize temporary tables, and
//!    the catalog checkpoint path rewrites meta pages. Letting every
//!    session write into the shared store would corrupt it (and make
//!    page allocation order — hence Merkle paths, hence simulated cost —
//!    depend on thread interleaving).
//! 2. *Accounting*: [`PagerStats`] live inside the shared pager, so a
//!    before/after delta taken by one query would absorb the reads of
//!    every query running next to it.
//!
//! [`ViewPager`] solves both. Reads of base pages fall through to the
//! shared pager; **all** writes (temporary tables, catalog chains,
//! copy-on-write updates of base pages) land in a private overlay that
//! dies with the view. Cost counters are kept per view: on a cache miss
//! the base pager's counter delta is captured *under the base pager's
//! own lock*, stored next to the decrypted payload in the shared
//! [`PageCache`], and replayed on every later hit. A page therefore
//! charges the same decrypt/Merkle work to every query that reads it, no
//! matter which query happened to decrypt it first — simulated costs
//! stay bit-identical run-to-run while the wall clock benefits from
//! decrypt-once sharing.
//!
//! For the same reason, the serving layer disables the base pager's
//! verified-node cache (see [`Pager::set_merkle_cache_enabled`]) and
//! view batch reads fall through to per-page base reads on misses: the
//! replayed first-read delta must not depend on which pages some *other*
//! session's scan already authenticated or on how a batch happened to be
//! composed. Single-session systems keep the freshness fast path.

use crate::mvcc::SnapshotPin;
use crate::pager::{PageId, Pager, PagerStats};
use crate::{Result, StorageError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// The dynamically-typed shared pager handle the SQL engine uses
/// (mirrors `ironsafe_sql::heap::SharedPager`, which this crate cannot
/// name without a dependency cycle).
pub type SharedDynPager = Arc<Mutex<dyn Pager + Send>>;

/// One decrypted base page plus the counter delta its first read cost.
#[derive(Debug, Clone)]
struct CachedPage {
    payload: Box<[u8]>,
    delta: PagerStats,
}

#[derive(Debug, Default)]
struct CacheState {
    pages: HashMap<PageId, CachedPage>,
    /// `(num_pages, page_writes)` of the base pager the cached payloads
    /// were read from; any change means the base mutated underneath us.
    mark: Option<(u64, u64)>,
}

/// Shared decrypted-page cache, validity-checked against base writes.
///
/// One cache is attached to one base pager; every [`ViewPager`] over
/// that base clones the same `Arc<PageCache>`. The cache is cleared
/// whenever a view is created after the base pager was written to
/// (exclusive-path DML, bulk loads) — readers never see stale payloads
/// because view creation and base writes are serialized by the caller
/// (a `RwLock` in the CSA layer).
#[derive(Debug, Default)]
pub struct PageCache {
    inner: Mutex<CacheState>,
}

impl PageCache {
    /// Fresh empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached pages (diagnostics/tests).
    pub fn len(&self) -> usize {
        self.inner.lock().pages.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached page.
    pub fn clear(&self) {
        let mut st = self.inner.lock();
        st.pages.clear();
        st.mark = None;
    }

    /// Invalidate the cache if the base pager changed since it was
    /// filled (detected via its page/write counters).
    fn sync(&self, mark: (u64, u64)) {
        let mut st = self.inner.lock();
        if st.mark != Some(mark) {
            st.pages.clear();
            st.mark = Some(mark);
        }
    }

    /// Drop one page (the writer flush invalidates exactly the pages a
    /// commit overwrote, instead of clearing the whole cache).
    pub fn invalidate(&self, id: PageId) {
        self.inner.lock().pages.remove(&id);
    }

    /// Clone out a cached payload with its recorded first-read delta.
    /// The writer flush uses this as the retained MVCC pre-image when
    /// available, saving a base re-read.
    pub fn entry(&self, id: PageId) -> Option<(Vec<u8>, PagerStats)> {
        self.inner.lock().pages.get(&id).map(|p| (p.payload.to_vec(), p.delta))
    }

    fn get(&self, id: PageId) -> Option<CachedPage> {
        self.inner.lock().pages.get(&id).cloned()
    }

    fn put(&self, id: PageId, page: CachedPage) {
        self.inner.lock().pages.entry(id).or_insert(page);
    }
}

/// Transactions a writer has applied to its group-commit buffer but not
/// yet flushed to the base pager: later statements in the same group
/// read through this layer so they see their predecessors' effects.
#[derive(Default)]
pub struct PendingTxns {
    pages: HashMap<PageId, Vec<u8>>,
    next_id: u64,
}

impl PendingTxns {
    /// Fold one transaction's overlay into the buffer.
    pub fn merge(&mut self, overlay: HashMap<PageId, Vec<u8>>, next_id: u64) {
        self.pages.extend(overlay);
        self.next_id = self.next_id.max(next_id);
    }

    /// The buffered image of page `id`, if any.
    pub fn get(&self, id: PageId) -> Option<&Vec<u8>> {
        self.pages.get(&id)
    }

    /// First id past the buffered allocations (0 when empty).
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Buffered page count.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True when no transaction is buffered.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Drain the buffer for a flush, in deterministic apply order:
    /// in-place writes (ascending id) before appends (ascending id).
    pub fn drain_sorted(&mut self) -> Vec<(PageId, Vec<u8>)> {
        let mut pages: Vec<(PageId, Vec<u8>)> = self.pages.drain().collect();
        pages.sort_by_key(|(id, _)| *id);
        self.next_id = 0;
        pages
    }
}

/// Shared handle to a writer group's pending-transaction buffer.
pub type SharedPending = Arc<Mutex<PendingTxns>>;

/// How a [`ViewPager`] resolves base pages (see constructor docs).
enum ViewMode {
    /// Legacy single-writer mode: the cache is sync'd against base
    /// mutation marks at open; base reads fall straight through.
    Exclusive,
    /// MVCC snapshot reader: pinned to the epoch current at open; pages
    /// overwritten since are served from the retained pre-images.
    Pinned(SnapshotPin),
    /// The writer's view: sees the committed state plus the group's
    /// buffered-but-unflushed transactions.
    Writer(SharedPending),
}

/// A per-query copy-on-write pager over a shared base pager.
///
/// *Reads* of base pages go through the shared [`PageCache`]; *writes*
/// and fresh allocations live in a private overlay (plain host memory —
/// they model per-session temporaries, which never touch the secure
/// medium and pay no page crypto). The view's [`PagerStats`] count only
/// this view's work, deterministically (see module docs).
pub struct ViewPager {
    base: SharedDynPager,
    cache: Arc<PageCache>,
    /// Pages `< base_pages` belong to the shared base store.
    base_pages: u64,
    payload: usize,
    overlay: HashMap<PageId, Vec<u8>>,
    next_id: u64,
    stats: PagerStats,
    mode: ViewMode,
}

fn stats_delta(before: PagerStats, after: PagerStats) -> PagerStats {
    PagerStats {
        page_reads: after.page_reads - before.page_reads,
        page_writes: after.page_writes - before.page_writes,
        decrypts: after.decrypts - before.decrypts,
        encrypts: after.encrypts - before.encrypts,
        merkle_nodes: after.merkle_nodes - before.merkle_nodes,
        rpmb_ops: after.rpmb_ops - before.rpmb_ops,
    }
}

fn stats_add(into: &mut PagerStats, d: &PagerStats) {
    into.page_reads += d.page_reads;
    into.page_writes += d.page_writes;
    into.decrypts += d.decrypts;
    into.encrypts += d.encrypts;
    into.merkle_nodes += d.merkle_nodes;
    into.rpmb_ops += d.rpmb_ops;
}

impl ViewPager {
    /// Open a view over `base`, sharing `cache` with sibling views.
    ///
    /// Must be called while base writes are excluded (the CSA layer
    /// holds a read lock on the owning system for the view's lifetime).
    pub fn over(base: SharedDynPager, cache: Arc<PageCache>) -> Self {
        let (base_pages, payload, mark) = {
            let b = base.lock();
            let s = b.stats();
            (b.num_pages(), b.payload_size(), (b.num_pages(), s.page_writes))
        };
        cache.sync(mark);
        ViewPager {
            base,
            cache,
            base_pages,
            payload,
            overlay: HashMap::new(),
            next_id: base_pages,
            stats: PagerStats::default(),
            mode: ViewMode::Exclusive,
        }
    }

    /// Open an MVCC snapshot view pinned to `pin`'s epoch: the id space
    /// is bounded to the pinned state's page count, pages overwritten by
    /// later commits are served from the retained pre-images, and the
    /// shared cache is used *without* the mark sync (the writer keeps it
    /// coherent by invalidating exactly the pages each flush touches).
    pub fn over_pinned(base: SharedDynPager, cache: Arc<PageCache>, pin: SnapshotPin) -> Self {
        let payload = base.lock().payload_size();
        let base_pages = pin.base_pages();
        ViewPager {
            base,
            cache,
            base_pages,
            payload,
            overlay: HashMap::new(),
            next_id: base_pages,
            stats: PagerStats::default(),
            mode: ViewMode::Pinned(pin),
        }
    }

    /// Open the writer's view: the committed base state plus the
    /// group-commit buffer in `pending` (earlier transactions of the
    /// same group that have not been flushed yet). Writes land in the
    /// private overlay as usual; the caller extracts them with
    /// [`ViewPager::take_txn`] when the statement commits.
    pub fn over_writer(base: SharedDynPager, cache: Arc<PageCache>, pending: SharedPending) -> Self {
        let (base_pages, payload) = {
            let b = base.lock();
            (b.num_pages(), b.payload_size())
        };
        let next_id = base_pages.max(pending.lock().next_id());
        ViewPager {
            base,
            cache,
            base_pages,
            payload,
            overlay: HashMap::new(),
            next_id,
            stats: PagerStats::default(),
            mode: ViewMode::Writer(pending),
        }
    }

    /// Number of overlay (view-private) pages.
    pub fn overlay_pages(&self) -> usize {
        self.overlay.len()
    }

    /// The pinned epoch of a snapshot view (`None` for other modes).
    pub fn pinned_epoch(&self) -> Option<u64> {
        match &self.mode {
            ViewMode::Pinned(pin) => Some(pin.epoch()),
            _ => None,
        }
    }

    /// Extract the transaction this (writer) view accumulated: the
    /// overlay pages and the id watermark past its allocations. The
    /// overlay is left empty; the view can keep executing (the caller
    /// has merged the pages into the pending buffer it reads through).
    pub fn take_txn(&mut self) -> (HashMap<PageId, Vec<u8>>, u64) {
        (std::mem::take(&mut self.overlay), self.next_id)
    }

    /// Serve a base-page read in pinned mode (see `read_page`).
    fn read_base_pinned(&mut self, pin_buf: &mut [u8], id: PageId) -> Result<PagerStats> {
        let (epoch, snaps) = match &self.mode {
            ViewMode::Pinned(pin) => (pin.epoch(), pin.snapshots().clone()),
            _ => unreachable!("pinned read path"),
        };
        // Fast path: a retained pre-image (page overwritten after the
        // pin) — immutable once stored, so no base lock needed.
        if let Some((img, delta)) = snaps.lookup(id, epoch) {
            pin_buf.copy_from_slice(&img);
            return Ok(delta);
        }
        if let Some(hit) = self.cache.get(id) {
            pin_buf.copy_from_slice(&hit.payload);
            return Ok(hit.delta);
        }
        // Miss: under the base lock, re-check the retained store (a
        // flush that beat us to the lock retained before overwriting),
        // then read through. The cache insertion happens under the same
        // lock: a flush invalidates overwritten pages while holding the
        // base lock, so a put after release could resurrect a stale
        // image the flush already invalidated.
        let mut b = self.base.lock();
        if let Some((img, delta)) = snaps.lookup(id, epoch) {
            pin_buf.copy_from_slice(&img);
            return Ok(delta);
        }
        let before = b.stats();
        b.read_page(id, pin_buf)?;
        let delta = stats_delta(before, b.stats());
        self.cache.put(id, CachedPage { payload: pin_buf.to_vec().into_boxed_slice(), delta });
        Ok(delta)
    }
}

impl Pager for ViewPager {
    fn payload_size(&self) -> usize {
        self.payload
    }

    fn num_pages(&self) -> u64 {
        self.next_id
    }

    fn allocate_page(&mut self) -> Result<PageId> {
        let id = self.next_id;
        self.next_id += 1;
        self.overlay.insert(id, vec![0u8; self.payload]);
        Ok(id)
    }

    fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        if buf.len() != self.payload {
            return Err(StorageError::BadBufferSize { expected: self.payload, got: buf.len() });
        }
        if let Some(data) = self.overlay.get(&id) {
            buf.copy_from_slice(data);
            self.stats.page_reads += 1;
            return Ok(());
        }
        // Writer mode: earlier transactions of the same commit group
        // shadow the base (including appends past the committed range).
        let pending = match &self.mode {
            ViewMode::Writer(p) => Some(Arc::clone(p)),
            _ => None,
        };
        if let Some(p) = pending {
            if let Some(data) = p.lock().get(id) {
                buf.copy_from_slice(data);
                self.stats.page_reads += 1;
                return Ok(());
            }
        }
        if id >= self.base_pages {
            return Err(StorageError::PageOutOfRange(id));
        }
        if matches!(self.mode, ViewMode::Pinned(_)) {
            let delta = self.read_base_pinned(buf, id)?;
            stats_add(&mut self.stats, &delta);
            return Ok(());
        }
        if let Some(hit) = self.cache.get(id) {
            buf.copy_from_slice(&hit.payload);
            stats_add(&mut self.stats, &hit.delta);
            return Ok(());
        }
        // Miss: read through the base pager, capturing its counter delta
        // under its own lock so concurrent readers cannot pollute it.
        let delta = {
            let mut b = self.base.lock();
            let before = b.stats();
            b.read_page(id, buf)?;
            stats_delta(before, b.stats())
        };
        self.cache.put(id, CachedPage { payload: buf.to_vec().into_boxed_slice(), delta });
        stats_add(&mut self.stats, &delta);
        Ok(())
    }

    /// Batched read: overlay and cache hits are served in place; all
    /// misses are read through the base pager under **one** lock
    /// acquisition (the readahead path of the morsel scanner), each
    /// landing in the shared [`PageCache`]. Per-page deltas are still
    /// captured individually — Merkle path lengths differ per page — so
    /// later cache hits replay exactly what each page cost, and the
    /// view's stats delta is identical to looped single-page reads.
    ///
    /// The batch is atomic with respect to the view's stats and the
    /// shared cache: every delta and cache insertion is staged locally
    /// and committed only after the whole batch succeeded, so a
    /// mid-batch base failure leaves no partial counts and no
    /// partially-populated cache behind (a retried batch would
    /// otherwise double-charge the already-served prefix).
    fn read_pages(&mut self, ids: &[PageId], out: &mut [u8]) -> Result<()> {
        if out.len() != ids.len() * self.payload {
            return Err(StorageError::BadBufferSize {
                expected: ids.len() * self.payload,
                got: out.len(),
            });
        }
        // Pinned/writer modes loop the single-page path (each page may
        // resolve to a different layer: pending buffer, retained version,
        // cache, base). Stats stay batch-atomic via restore-on-error;
        // pages served before a failure were individually complete, so
        // their cache entries are valid and kept.
        if !matches!(self.mode, ViewMode::Exclusive) {
            let before = self.stats;
            for (&id, chunk) in ids.iter().zip(out.chunks_exact_mut(self.payload)) {
                if let Err(e) = self.read_page(id, chunk) {
                    self.stats = before;
                    return Err(e);
                }
            }
            return Ok(());
        }
        let mut staged = PagerStats::default();
        let mut misses: Vec<(usize, PageId)> = Vec::new();
        for (i, (&id, chunk)) in
            ids.iter().zip(out.chunks_exact_mut(self.payload)).enumerate()
        {
            if let Some(data) = self.overlay.get(&id) {
                chunk.copy_from_slice(data);
                staged.page_reads += 1;
            } else if id >= self.base_pages {
                return Err(StorageError::PageOutOfRange(id));
            } else if let Some(hit) = self.cache.get(id) {
                chunk.copy_from_slice(&hit.payload);
                stats_add(&mut staged, &hit.delta);
            } else {
                misses.push((i, id));
            }
        }
        let mut puts: Vec<(PageId, CachedPage)> = Vec::with_capacity(misses.len());
        if !misses.is_empty() {
            let mut b = self.base.lock();
            for (i, id) in misses {
                let chunk = &mut out[i * self.payload..(i + 1) * self.payload];
                let before = b.stats();
                b.read_page(id, chunk)?;
                let delta = stats_delta(before, b.stats());
                puts.push((id, CachedPage { payload: chunk.to_vec().into_boxed_slice(), delta }));
                stats_add(&mut staged, &delta);
            }
        }
        // Commit point: the whole batch succeeded.
        stats_add(&mut self.stats, &staged);
        for (id, page) in puts {
            self.cache.put(id, page);
        }
        Ok(())
    }

    fn write_page(&mut self, id: PageId, data: &[u8]) -> Result<()> {
        if data.len() != self.payload {
            return Err(StorageError::BadBufferSize { expected: self.payload, got: data.len() });
        }
        if id >= self.next_id {
            return Err(StorageError::PageOutOfRange(id));
        }
        self.overlay.insert(id, data.to_vec());
        self.stats.page_writes += 1;
        Ok(())
    }

    fn commit(&mut self) -> Result<()> {
        // Overlay pages are per-session scratch; there is nothing durable
        // to flush and the shared base must not observe view commits.
        Ok(())
    }

    fn stats(&self) -> PagerStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = PagerStats::default();
    }

    /// The write path extracts the accumulated transaction through the
    /// `dyn Pager` handle (see [`ViewPager::take_txn`]).
    fn take_txn_pages(&mut self) -> Option<(HashMap<PageId, Vec<u8>>, u64)> {
        Some(self.take_txn())
    }

    /// The flight recorder lives in the shared base pager (it is a TEE
    /// resource, not per-view state); views pass the budget through.
    fn set_flight_budget(&mut self, budget_bytes: u64) {
        self.base.lock().set_flight_budget(budget_bytes);
    }

    /// Drain the *base* pager's recorder: a view that hits a violation
    /// surfaces the shared enclave's forensic window.
    fn take_flight_dump(&mut self) -> Vec<String> {
        self.base.lock().take_flight_dump()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::PlainPager;

    fn base_with_pages(n: u64) -> SharedDynPager {
        let mut p = PlainPager::new();
        for i in 0..n {
            let id = p.allocate_page().unwrap();
            let data = vec![i as u8; p.payload_size()];
            p.write_page(id, &data).unwrap();
        }
        Arc::new(Mutex::new(p))
    }

    #[test]
    fn reads_fall_through_and_count_locally() {
        let base = base_with_pages(3);
        let cache = Arc::new(PageCache::new());
        let mut v = ViewPager::over(base.clone(), cache);
        let mut buf = vec![0u8; v.payload_size()];
        v.read_page(1, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 1));
        assert_eq!(v.stats().page_reads, 1);
    }

    #[test]
    fn writes_stay_in_the_overlay() {
        let base = base_with_pages(2);
        let cache = Arc::new(PageCache::new());
        let mut v = ViewPager::over(base.clone(), cache.clone());
        let payload = v.payload_size();
        // Copy-on-write of a base page.
        v.write_page(0, &vec![9u8; payload]).unwrap();
        // Fresh allocation.
        let id = v.allocate_page().unwrap();
        assert_eq!(id, 2);
        v.write_page(id, &vec![7u8; payload]).unwrap();
        let mut buf = vec![0u8; payload];
        v.read_page(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 9), "view sees its own write");
        v.read_page(id, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 7));
        // The base is untouched.
        let mut b = base.lock();
        assert_eq!(b.num_pages(), 2);
        b.read_page(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0), "base page survives COW");
    }

    #[test]
    fn cache_hits_replay_the_recorded_delta() {
        let base = base_with_pages(4);
        let cache = Arc::new(PageCache::new());
        let mut cold = ViewPager::over(base.clone(), cache.clone());
        let mut buf = vec![0u8; cold.payload_size()];
        cold.read_page(2, &mut buf).unwrap();
        let cold_stats = cold.stats();
        // A second view hits the cache but must report identical costs.
        let mut warm = ViewPager::over(base, cache.clone());
        warm.read_page(2, &mut buf).unwrap();
        assert_eq!(warm.stats(), cold_stats, "hit and miss charge the same");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn base_writes_invalidate_the_cache() {
        let base = base_with_pages(2);
        let cache = Arc::new(PageCache::new());
        let mut v = ViewPager::over(base.clone(), cache.clone());
        let payload = v.payload_size();
        let mut buf = vec![0u8; payload];
        v.read_page(0, &mut buf).unwrap();
        assert_eq!(cache.len(), 1);
        base.lock().write_page(0, &vec![5u8; payload]).unwrap();
        let mut v2 = ViewPager::over(base, cache.clone());
        assert_eq!(cache.len(), 0, "stale payloads dropped");
        v2.read_page(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 5), "fresh read after invalidation");
    }

    #[test]
    fn batched_view_reads_mix_overlay_cache_and_base() {
        let base = base_with_pages(4);
        let cache = Arc::new(PageCache::new());
        let mut v = ViewPager::over(base.clone(), cache.clone());
        let payload = v.payload_size();
        // Warm page 1 into the cache, add an overlay page.
        let mut buf = vec![0u8; payload];
        v.read_page(1, &mut buf).unwrap();
        let ov = v.allocate_page().unwrap();
        v.write_page(ov, &vec![8u8; payload]).unwrap();
        let serial_stats = {
            let mut w = ViewPager::over(base.clone(), cache.clone());
            let wo = w.allocate_page().unwrap();
            w.write_page(wo, &vec![8u8; payload]).unwrap();
            w.reset_stats();
            for id in [3u64, 1, wo, 0] {
                w.read_page(id, &mut buf).unwrap();
            }
            w.stats()
        };
        v.reset_stats();
        let ids = [3u64, 1, ov, 0];
        let mut out = vec![0u8; ids.len() * payload];
        v.read_pages(&ids, &mut out).unwrap();
        assert_eq!(v.stats(), serial_stats, "batched delta equals looped delta");
        for (i, want) in [3u8, 1, 8, 0].iter().enumerate() {
            assert!(out[i * payload..(i + 1) * payload].iter().all(|b| b == want));
        }
        // Misses were cached for later hits (readahead).
        assert!(cache.len() >= 3);
    }

    /// Satellite regression: a mid-batch base failure must leave the
    /// view's stats and the shared cache untouched — no partial counts,
    /// no partially-populated cache.
    #[test]
    fn failed_batch_leaves_stats_and_cache_untouched() {
        use crate::secure_pager::SecurePager;
        use ironsafe_crypto::group::Group;
        use ironsafe_tee::trustzone::Manufacturer;
        use rand::SeedableRng;

        let group = Group::modp_1024();
        let mfr = Manufacturer::from_seed(&group, b"acme");
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let tz = mfr.make_device("view-fault", 8, &mut rng);
        let mut pager = SecurePager::create(tz, 5).unwrap();
        let payload = pager.payload_size();
        for i in 0..4u8 {
            let id = pager.allocate_page().unwrap();
            pager.write_page(id, &vec![i; payload]).unwrap();
        }
        // Page 3 is tampered: a batch [0, 1, 2, 3] serves three pages
        // before dying on the fourth.
        pager.device_mut().raw_tamper(3, 100, 0xff);
        let base: SharedDynPager = Arc::new(Mutex::new(pager));
        let cache = Arc::new(PageCache::new());
        let mut v = ViewPager::over(base, cache.clone());
        let ids = [0u64, 1, 2, 3];
        let mut out = vec![0u8; ids.len() * payload];
        assert!(matches!(
            v.read_pages(&ids, &mut out),
            Err(StorageError::IntegrityViolation(_))
        ));
        assert_eq!(v.stats(), PagerStats::default(), "no partial stats from a failed batch");
        assert!(cache.is_empty(), "no partial cache population from a failed batch");
        // The good pages are still individually readable and charge
        // exactly one read each afterwards.
        let mut buf = vec![0u8; payload];
        v.read_page(1, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 1));
        assert_eq!(v.stats().page_reads, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn pinned_view_serves_retained_pre_image() {
        use crate::mvcc::Snapshots;

        let base = base_with_pages(3);
        let cache = Arc::new(PageCache::new());
        let snaps = Snapshots::new();
        snaps.publish(1, 3);
        let payload = base.lock().payload_size();
        // Cold read records the first-read delta (and warms the cache).
        let mut probe = ViewPager::over_pinned(base.clone(), cache.clone(), snaps.pin());
        let mut buf = vec![0u8; payload];
        probe.read_page(1, &mut buf).unwrap();
        let cold = probe.stats();
        drop(probe);

        let pin = snaps.pin();
        assert_eq!(pin.epoch(), 1);
        // Writer flush: retain the pre-image (from the cache entry),
        // invalidate the cache, overwrite the base, publish epoch 2.
        let (img, delta) = cache.entry(1).unwrap();
        snaps.retain(1, img.into(), delta, 2);
        cache.invalidate(1);
        base.lock().write_page(1, &vec![0xee; payload]).unwrap();
        snaps.publish(2, 3);

        let mut v = ViewPager::over_pinned(base.clone(), cache.clone(), pin);
        assert_eq!(v.pinned_epoch(), Some(1));
        v.read_page(1, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 1), "pinned view sees the pre-image");
        assert_eq!(v.stats(), cold, "retained read replays the first-read delta");
        assert_eq!(snaps.metrics().retained_reads.get(), 1);
        // A fresh pin at the new epoch reads the new image from the base.
        let mut cur = ViewPager::over_pinned(base, cache, snaps.pin());
        cur.read_page(1, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0xee));
    }

    #[test]
    fn pinned_view_id_space_is_frozen_at_pin_time() {
        use crate::mvcc::Snapshots;

        let base = base_with_pages(2);
        let cache = Arc::new(PageCache::new());
        let snaps = Snapshots::new();
        snaps.publish(1, 2);
        let pin = snaps.pin();
        // A later commit appends page 2 and publishes epoch 2.
        let payload = base.lock().payload_size();
        {
            let mut b = base.lock();
            let id = b.allocate_page().unwrap();
            b.write_page(id, &vec![3u8; payload]).unwrap();
        }
        snaps.publish(2, 3);
        let mut v = ViewPager::over_pinned(base, cache, pin);
        let mut buf = vec![0u8; payload];
        assert!(
            matches!(v.read_page(2, &mut buf), Err(StorageError::PageOutOfRange(2))),
            "post-pin allocations are invisible to the snapshot"
        );
        // Batch with the invisible page restores the stats wholesale.
        v.read_page(0, &mut buf).unwrap();
        let before = v.stats();
        let ids = [1u64, 2];
        let mut out = vec![0u8; ids.len() * payload];
        assert!(v.read_pages(&ids, &mut out).is_err());
        assert_eq!(v.stats(), before, "failed pinned batch charges nothing");
    }

    #[test]
    fn writer_view_reads_group_pending() {
        let base = base_with_pages(2);
        let cache = Arc::new(PageCache::new());
        let pending: SharedPending = Arc::new(Mutex::new(PendingTxns::default()));
        let payload = base.lock().payload_size();

        // Txn A: overwrite page 0, append page 2, park in the buffer.
        let mut a = ViewPager::over_writer(base.clone(), cache.clone(), pending.clone());
        a.write_page(0, &vec![0xaa; payload]).unwrap();
        let id = a.allocate_page().unwrap();
        assert_eq!(id, 2);
        a.write_page(id, &vec![0xbb; payload]).unwrap();
        let (overlay, next_id) = a.take_txn();
        assert!(a.overlay.is_empty(), "take_txn drains the overlay");
        pending.lock().merge(overlay, next_id);
        drop(a);

        // Txn B (same group) sees A's pages, including the append past
        // the committed base range.
        let mut b = ViewPager::over_writer(base.clone(), cache, pending.clone());
        assert_eq!(b.num_pages(), 3, "id watermark continues past the buffer");
        let mut buf = vec![0u8; payload];
        b.read_page(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0xaa));
        b.read_page(2, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0xbb));
        assert_eq!(b.stats().page_reads, 2);
        // The base is untouched until the group flushes.
        assert_eq!(base.lock().num_pages(), 2);
        // Drain order: in-place write first, then the append.
        let drained = pending.lock().drain_sorted();
        let ids: Vec<u64> = drained.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![0, 2]);
        assert_eq!(pending.lock().next_id(), 0, "drain resets the watermark");
    }

    #[test]
    fn out_of_range_rejected() {
        let base = base_with_pages(1);
        let cache = Arc::new(PageCache::new());
        let mut v = ViewPager::over(base, cache);
        let mut buf = vec![0u8; v.payload_size()];
        assert!(matches!(v.read_page(9, &mut buf), Err(StorageError::PageOutOfRange(9))));
        assert!(matches!(v.write_page(9, &buf), Err(StorageError::PageOutOfRange(9))));
    }
}
