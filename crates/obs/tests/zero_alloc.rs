//! Proves the telemetry hot path allocates nothing.
//!
//! Uses a counting global allocator; this file holds a single test so
//! no other harness thread can allocate concurrently and pollute the
//! count.

use ironsafe_obs::metrics::{Counter, Registry};
use ironsafe_obs::span::{add_sim_ns, Span, TraceCtx};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

#[test]
fn disabled_telemetry_hot_path_is_allocation_free() {
    // Set-up may allocate: registry, name interning, handle clones.
    let registry = Registry::new();
    let reads = registry.counter("storage.page.read");
    let verifies = registry.counter("storage.page.hmac_verify");
    let owned = Counter::new();
    let histogram = registry.histogram("storage.merkle.path_len");

    // Warm the thread-local span slot outside the measured region.
    drop(Span::enter("warmup"));

    // The secure-pager read path with telemetry disabled (no installed
    // trace): counter bumps, histogram record, span enter/exit, sim-time
    // attribution. None of it may heap-allocate.
    let allocs = allocations_during(|| {
        for i in 0..10_000u64 {
            let ctx = TraceCtx::query(i).with_morsel(i).with_page_batch(i).install();
            let span = Span::enter("storage/page_read");
            reads.inc();
            verifies.inc();
            owned.add(2);
            histogram.record(i & 0xff);
            span.add_sim_ns("crypto", 100.0);
            span.fail("storage.device.read");
            add_sim_ns("ndp", 50.0);
            drop(span);
            drop(ctx);
        }
    });
    assert_eq!(allocs, 0, "telemetry hot path allocated {allocs} times");

    assert_eq!(reads.get(), 10_000);
    assert_eq!(histogram.count(), 10_000);
}
