//! Policy evaluation.
//!
//! Check-predicates are decided against an [`EvalContext`] snapshot of the
//! session (who is asking, where the attested nodes are, what firmware
//! they run). Obligation-predicates (`le`, `reuseMap`, `logUpdate`) hold
//! by construction but emit an [`Obligation`] the trusted monitor must
//! discharge — by rewriting the query or appending to the audit log —
//! *before* the query may run.

use crate::ast::{Cond, Perm, PolicySet, Predicate};

/// Session facts a policy is evaluated against.
#[derive(Debug, Clone, Default)]
pub struct EvalContext {
    /// Identity key of the requesting client.
    pub session_key: String,
    /// Region of the host node.
    pub host_loc: String,
    /// Region of the storage node (None when no storage node attested).
    pub storage_loc: Option<String>,
    /// Host firmware version (from attestation).
    pub fw_host: u32,
    /// Storage firmware version (from attestation); None when unattested.
    pub fw_storage: Option<u32>,
    /// Highest firmware version known to the monitor ("latest").
    pub latest_fw: u32,
}

/// Something the monitor must do before running the query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Obligation {
    /// Filter out expired records (inject `__expiry >= T`).
    ExpiryFilter,
    /// Filter out records that did not opt in to this service (inject a
    /// bitmap test on `__reuse`).
    ReuseFilter,
    /// Append `(client key, query)` to the named audit log.
    Log {
        /// Log name.
        log: String,
    },
}

/// Outcome of evaluating one permission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyDecision {
    /// Whether the permission is granted.
    pub allowed: bool,
    /// Obligations from the satisfied rule (empty when denied).
    pub obligations: Vec<Obligation>,
}

impl PolicyDecision {
    /// A denial.
    pub fn deny() -> Self {
        PolicyDecision { allowed: false, obligations: Vec::new() }
    }
}

fn eval_pred(p: &Predicate, ctx: &EvalContext, obligations: &mut Vec<Obligation>) -> bool {
    match p {
        Predicate::SessionKeyIs(k) => &ctx.session_key == k,
        Predicate::HostLocIs(l) => &ctx.host_loc == l,
        // Storage predicates constrain *offloading*: with no storage node
        // in the placement they hold vacuously, so the query falls back to
        // host-only execution (paper §4.3: "If no nodes satisfy this
        // property then the entire query may be run on the host node").
        Predicate::StorageLocIs(l) => match ctx.storage_loc.as_deref() {
            Some(loc) => loc == l.as_str(),
            None => true,
        },
        Predicate::FwVersionHost(v) => {
            let need = if *v == u32::MAX { ctx.latest_fw } else { *v };
            ctx.fw_host >= need
        }
        Predicate::FwVersionStorage(v) => {
            let need = if *v == u32::MAX { ctx.latest_fw } else { *v };
            ctx.fw_storage.is_none_or(|fw| fw >= need)
        }
        Predicate::Le => {
            obligations.push(Obligation::ExpiryFilter);
            true
        }
        Predicate::ReuseMap => {
            obligations.push(Obligation::ReuseFilter);
            true
        }
        Predicate::LogUpdate { log } => {
            obligations.push(Obligation::Log { log: log.clone() });
            true
        }
    }
}

fn eval_cond(c: &Cond, ctx: &EvalContext, obligations: &mut Vec<Obligation>) -> bool {
    match c {
        Cond::Pred(p) => eval_pred(p, ctx, obligations),
        Cond::And(l, r) => {
            // Evaluate both into a scratch list so a failed AND leaves no
            // stray obligations behind.
            let mut scratch = Vec::new();
            let ok = eval_cond(l, ctx, &mut scratch) && eval_cond(r, ctx, &mut scratch);
            if ok {
                obligations.extend(scratch);
            }
            ok
        }
        Cond::Or(l, r) => {
            let mut scratch = Vec::new();
            if eval_cond(l, ctx, &mut scratch) {
                obligations.extend(scratch);
                return true;
            }
            let mut scratch = Vec::new();
            if eval_cond(r, ctx, &mut scratch) {
                obligations.extend(scratch);
                return true;
            }
            false
        }
    }
}

/// Evaluate `perm` against the policy: the first satisfied rule grants it
/// (with that rule's obligations); no satisfiable rule means denial.
pub fn evaluate(policy: &PolicySet, perm: Perm, ctx: &EvalContext) -> PolicyDecision {
    for rule in policy.rules_for(perm) {
        let mut obligations = Vec::new();
        if eval_cond(&rule.cond, ctx, &mut obligations) {
            obligations.dedup();
            return PolicyDecision { allowed: true, obligations };
        }
    }
    PolicyDecision::deny()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_policy;

    fn ctx(key: &str) -> EvalContext {
        EvalContext {
            session_key: key.into(),
            host_loc: "EU".into(),
            storage_loc: Some("EU".into()),
            fw_host: 5,
            fw_storage: Some(34),
            latest_fw: 5,
        }
    }

    #[test]
    fn identity_grant_and_deny() {
        let p = parse_policy("read :- sessionKeyIs(Ka)\nwrite :- sessionKeyIs(Kb)").unwrap();
        assert!(evaluate(&p, Perm::Read, &ctx("Ka")).allowed);
        assert!(!evaluate(&p, Perm::Read, &ctx("Kb")).allowed);
        assert!(evaluate(&p, Perm::Write, &ctx("Kb")).allowed);
        assert!(!evaluate(&p, Perm::Write, &ctx("Ka")).allowed);
        // No exec rule: exec denied.
        assert!(!evaluate(&p, Perm::Exec, &ctx("Ka")).allowed);
    }

    #[test]
    fn anti_pattern_1_obligations_attach_to_matching_branch() {
        // A reads freely; B reads only unexpired records.
        let p = parse_policy("read :- sessionKeyIs(Ka) | sessionKeyIs(Kb) & le(T, TIMESTAMP)").unwrap();
        let a = evaluate(&p, Perm::Read, &ctx("Ka"));
        assert!(a.allowed);
        assert!(a.obligations.is_empty(), "owner branch carries no expiry filter");
        let b = evaluate(&p, Perm::Read, &ctx("Kb"));
        assert!(b.allowed);
        assert_eq!(b.obligations, vec![Obligation::ExpiryFilter]);
        let c = evaluate(&p, Perm::Read, &ctx("Kc"));
        assert!(!c.allowed);
    }

    #[test]
    fn failed_and_leaves_no_obligations() {
        let p = parse_policy("read :- sessionKeyIs(Ka) & logUpdate(l, K, Q)").unwrap();
        let d = evaluate(&p, Perm::Read, &ctx("Kb"));
        assert!(!d.allowed);
        assert!(d.obligations.is_empty());
    }

    #[test]
    fn location_predicates() {
        let p = parse_policy("exec :- storageLocIs(EU) & hostLocIs(EU)").unwrap();
        assert!(evaluate(&p, Perm::Exec, &ctx("x")).allowed);
        let mut us = ctx("x");
        us.storage_loc = Some("US".into());
        assert!(!evaluate(&p, Perm::Exec, &us).allowed);
        let mut none = ctx("x");
        none.storage_loc = None;
        assert!(
            evaluate(&p, Perm::Exec, &none).allowed,
            "storage predicates hold vacuously in a host-only placement"
        );
    }

    #[test]
    fn firmware_versions_including_latest() {
        let p = parse_policy("exec :- fwVersionStorage(30) & fwVersionHost(latest)").unwrap();
        assert!(evaluate(&p, Perm::Exec, &ctx("x")).allowed);
        let mut old_host = ctx("x");
        old_host.fw_host = 4; // latest is 5
        assert!(!evaluate(&p, Perm::Exec, &old_host).allowed);
        let mut old_storage = ctx("x");
        old_storage.fw_storage = Some(29);
        assert!(!evaluate(&p, Perm::Exec, &old_storage).allowed);
    }

    #[test]
    fn reuse_and_log_obligations() {
        let p = parse_policy("read :- reuseMap(m) & logUpdate(audit, K, Q)").unwrap();
        let d = evaluate(&p, Perm::Read, &ctx("anyone"));
        assert!(d.allowed);
        assert_eq!(
            d.obligations,
            vec![Obligation::ReuseFilter, Obligation::Log { log: "audit".into() }]
        );
    }

    #[test]
    fn multiple_rules_for_same_perm_are_ored() {
        let p = parse_policy("read :- sessionKeyIs(a)\nread :- sessionKeyIs(b) & le(T, TS)").unwrap();
        assert!(evaluate(&p, Perm::Read, &ctx("a")).allowed);
        let b = evaluate(&p, Perm::Read, &ctx("b"));
        assert!(b.allowed);
        assert_eq!(b.obligations, vec![Obligation::ExpiryFilter]);
        assert!(!evaluate(&p, Perm::Read, &ctx("c")).allowed);
    }
}
