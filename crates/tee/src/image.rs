//! Software images and their measurements.
//!
//! Both TEE models authenticate code by hashing it: SGX computes an
//! MRENCLAVE-style measurement at enclave build, TrustZone's trusted OS
//! hash-measures the normal-world image before handing over control.

use ironsafe_crypto::sha256::{sha256_concat, DIGEST_LEN};

/// A 32-byte code measurement (hash of a [`SoftwareImage`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Measurement(pub [u8; DIGEST_LEN]);

impl std::fmt::Debug for Measurement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Measurement(")?;
        for b in &self.0[..6] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…)")
    }
}

impl Measurement {
    /// Raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }
}

/// A versioned piece of software loaded into a TEE.
///
/// In a real deployment this would be the ELF of the host engine, the
/// OP-TEE image, or the normal-world kernel; here the `code` bytes stand in
/// for the binary and everything downstream only ever sees the hash.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SoftwareImage {
    /// Component name, e.g. `"host-engine"` or `"storage-normal-world"`.
    pub name: String,
    /// Firmware/software version number.
    pub version: u32,
    /// The image contents.
    pub code: Vec<u8>,
}

impl SoftwareImage {
    /// Build an image.
    pub fn new(name: impl Into<String>, version: u32, code: impl Into<Vec<u8>>) -> Self {
        SoftwareImage { name: name.into(), version, code: code.into() }
    }

    /// Measure: hash of name, version and code (domain-separated).
    pub fn measure(&self) -> Measurement {
        Measurement(sha256_concat(&[
            b"ironsafe-image-v1",
            self.name.as_bytes(),
            &self.version.to_be_bytes(),
            &self.code,
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_is_deterministic() {
        let a = SoftwareImage::new("host-engine", 1, vec![1, 2, 3]);
        let b = SoftwareImage::new("host-engine", 1, vec![1, 2, 3]);
        assert_eq!(a.measure(), b.measure());
    }

    #[test]
    fn any_field_change_changes_measurement() {
        let base = SoftwareImage::new("x", 1, vec![1, 2, 3]);
        let m = base.measure();
        assert_ne!(SoftwareImage::new("y", 1, vec![1, 2, 3]).measure(), m);
        assert_ne!(SoftwareImage::new("x", 2, vec![1, 2, 3]).measure(), m);
        assert_ne!(SoftwareImage::new("x", 1, vec![1, 2, 4]).measure(), m);
    }
}
