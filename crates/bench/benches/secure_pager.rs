//! Secure-pager read/write path, including the freshness on/off ablation
//! (isolates the dominant Figure 8 cost component).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ironsafe_crypto::group::Group;
use ironsafe_storage::codec::PAGE_PAYLOAD;
use ironsafe_storage::pager::{Pager, PlainPager};
use ironsafe_storage::SecurePager;
use ironsafe_tee::trustzone::Manufacturer;
use rand::SeedableRng;

const PAGES: u64 = 256;

fn secure_pager() -> SecurePager {
    let group = Group::modp_1024();
    let mfr = Manufacturer::from_seed(&group, b"bench");
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let device = mfr.make_device("bench-dev", 8, &mut rng);
    let mut pager = SecurePager::create(device, 0).unwrap();
    let payload = vec![0xabu8; PAGE_PAYLOAD];
    for _ in 0..PAGES {
        let id = pager.allocate_page().unwrap();
        pager.write_page(id, &payload).unwrap();
    }
    pager.commit().unwrap();
    pager
}

fn bench_read_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("pager_read");
    g.throughput(Throughput::Bytes(PAGE_PAYLOAD as u64));

    let mut plain = PlainPager::new();
    let payload = vec![0xabu8; PAGE_PAYLOAD];
    for _ in 0..PAGES {
        let id = plain.allocate_page().unwrap();
        plain.write_page(id, &payload).unwrap();
    }
    let mut buf = vec![0u8; PAGE_PAYLOAD];
    let mut i = 0u64;
    g.bench_function("plain", |b| {
        b.iter(|| {
            i = (i + 97) % PAGES;
            plain.read_page(i, &mut buf).unwrap();
        })
    });

    let mut secure = secure_pager();
    g.bench_function("secure_full", |b| {
        b.iter(|| {
            i = (i + 97) % PAGES;
            secure.read_page(i, &mut buf).unwrap();
        })
    });

    // Ablation: skip per-read Merkle verification.
    secure.verify_freshness_on_read = false;
    g.bench_function("secure_no_freshness", |b| {
        b.iter(|| {
            i = (i + 97) % PAGES;
            secure.read_page(i, &mut buf).unwrap();
        })
    });
    g.finish();
}

fn bench_write_and_commit(c: &mut Criterion) {
    let mut g = c.benchmark_group("pager_write");
    g.throughput(Throughput::Bytes(PAGE_PAYLOAD as u64));
    let mut secure = secure_pager();
    let payload = vec![0xcdu8; PAGE_PAYLOAD];
    let mut i = 0u64;
    g.bench_function("secure_write", |b| {
        b.iter(|| {
            i = (i + 97) % PAGES;
            secure.write_page(i, &payload).unwrap();
        })
    });
    g.bench_function("secure_commit_rpmb", |b| {
        b.iter(|| secure.commit().unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_read_paths, bench_write_and_commit);
criterion_main!(benches);
