//! Unified telemetry layer for IronSafe.
//!
//! Three pieces, usable independently:
//!
//! * [`metrics`] — a registry of named counters/gauges/histograms with
//!   lock-free handles. Handles are plain `Arc<Atomic*>` clones, so the
//!   hot path is a single relaxed atomic op with **zero heap
//!   allocation**; the registry is only locked at registration and
//!   snapshot time.
//! * [`span`] — hierarchical spans over *simulated* time. A [`span::Trace`]
//!   is installed per thread; [`span::Span::enter`] opens a scope that
//!   records real wall-clock nanoseconds automatically and accepts
//!   explicit simulated-nanosecond attributions tagged by category
//!   (`"ndp"`, `"crypto"`, ...). With no trace installed every span op
//!   is a no-op that performs no allocation.
//! * [`export`] — renderers for span trees (human-readable), JSON-lines
//!   metric snapshots, and the Chrome `trace_event` format consumed by
//!   Perfetto / `chrome://tracing`.
//!
//! Metric names follow `subsystem.object.event`, e.g.
//! `storage.page.hmac_verify` or `tee.enclave.transition`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod manifest;
pub mod metrics;
pub mod span;

pub use manifest::{manifest_contains, MetricDef, METRIC_MANIFEST};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use span::{add_sim_ns, Span, Trace, TraceCtx, TraceSnapshot};
