//! Query profiles: the `EXPLAIN ANALYZE` upgrade.
//!
//! A [`QueryProfile`] is assembled by [`CsaSystem::profile_query`]
//! (see [`crate::system::CsaSystem::profile_query`]) from the same
//! telemetry a normal run already produces — the span tree, the pager
//! counter deltas and the per-operator row counts captured from every
//! drained plan. Nothing in here is estimated: the breakdown is
//! re-derived from the trace with [`CostBreakdown::from_trace`] and the
//! pager delta is measured around the run, so the golden-parity test
//! (`csa/tests/profile_parity.rs`) can pin the profile bit-identical to
//! the [`CostBreakdown`]/[`PagerStats`] the figures are built from.
//!
//! The profile renders as an annotated plan (for `EXPLAIN ANALYZE`
//! output) and exports as stable hand-written JSON (for the
//! `paperbench profile` regression gate).

use crate::cost::CostBreakdown;
use crate::system::SystemConfig;
use ironsafe_obs::export::escape_json;
use ironsafe_sql::exec::OperatorProfile;
use ironsafe_storage::pager::PagerStats;
use std::fmt::Write as _;

/// One accounting span's directly-attributed simulated time (a cost
/// term such as `storage/device_io` or `tee/epc_paging`), in
/// span-creation order.
#[derive(Debug, Clone, PartialEq)]
pub struct CostTerm {
    /// Span name as charged by the runner.
    pub name: String,
    /// Simulated nanoseconds attributed directly to the span.
    pub sim_ns: f64,
}

/// Where one executed plan ran, and in what transfer mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Host engine (host-only stages, or the join/aggregate of a split).
    Host,
    /// Storage engine, whole stage (`sos`).
    Storage,
    /// Storage fragment with the filter pushed down; surviving rows are
    /// serialized and sealed through the channel.
    StorageOffload,
    /// Storage fragment with the pushdown withdrawn; raw pages ship and
    /// the host filters.
    StorageShipPages,
}

impl Placement {
    /// Stable lowercase name used in `render()` and `to_json()`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Placement::Host => "host",
            Placement::Storage => "storage",
            Placement::StorageOffload => "storage-offload",
            Placement::StorageShipPages => "storage-ship-pages",
        }
    }
}

/// One committed mid-flight re-plan: a fragment whose remaining morsels
/// were re-placed after observed selectivity diverged from the estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplanEvent {
    /// The fragment that re-planned, e.g. `stage0/fragment/lineitem`.
    pub label: String,
    /// Placement the fragment started under.
    pub from: Placement,
    /// Placement the remaining morsels switched to.
    pub to: Placement,
    /// First morsel executed under the new placement.
    pub at_morsel: usize,
    /// Selectivity the planner estimated.
    pub estimated: f64,
    /// Cumulative selectivity observed at the switch point.
    pub observed: f64,
}

/// Per-operator row counts for one executed plan (a stage, a storage
/// fragment, or the host-side join/aggregate of a split run).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanProfile {
    /// Where in the run this plan executed, e.g. `stage0/fragment/lineitem`.
    pub label: String,
    /// Where the plan ran (host, storage, and the transfer mode).
    pub placement: Placement,
    /// The pushed-down predicate, rendered as SQL (offloaded fragments
    /// with a WHERE clause only).
    pub pushdown_filter: Option<String>,
    /// Selectivity the planner estimated for the pushed predicate
    /// (adaptive runs only).
    pub estimated_selectivity: Option<f64>,
    /// Selectivity actually observed for the pushed predicate.
    pub observed_selectivity: Option<f64>,
    /// Preorder operator profiles captured after the plan drained.
    pub operators: Vec<OperatorProfile>,
}

impl PlanProfile {
    /// A plain profile with no pushdown annotations.
    pub fn new(label: String, placement: Placement, operators: Vec<OperatorProfile>) -> Self {
        PlanProfile {
            label,
            placement,
            pushdown_filter: None,
            estimated_selectivity: None,
            observed_selectivity: None,
            operators,
        }
    }
}

/// Enclave-side observations a run records beyond the pager counters:
/// transition counts, EPC faults, per-stage EPC occupancy samples and
/// committed re-plan events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileExtras {
    /// Enclave transitions (ECALL/OCALL pairs) the run charged for.
    pub enclave_transitions: u64,
    /// EPC page faults observed by the host enclave's EPC simulator
    /// (split configurations only).
    pub epc_faults: u64,
    /// EPC resident-page samples, one per executed stage (split secure
    /// configurations only).
    pub epc_occupancy_pages: Vec<u64>,
    /// Mid-flight re-plans the run committed (adaptive runs only).
    pub replans: Vec<ReplanEvent>,
}

/// Full per-query execution profile: the span tree's cost terms, the
/// measured pager delta, per-operator row counts, and the enclave
/// counters — everything `EXPLAIN ANALYZE` annotates and everything the
/// regression gate pins.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryProfile {
    /// Configuration the query ran under.
    pub config: SystemConfig,
    /// TPC-H query number (0 for ad-hoc statements).
    pub query_id: u8,
    /// Degree of parallelism the run used.
    pub dop: usize,
    /// Simulated-time breakdown re-derived from the run's trace — the
    /// parity test asserts it equals the report's breakdown bit-for-bit.
    pub breakdown: CostBreakdown,
    /// Pager counter delta measured around the run.
    pub pager: PagerStats,
    /// Pages read from the medium near the data (from the report).
    pub pages_read_storage: u64,
    /// Page-equivalents moved between storage and host.
    pub pages_shipped: u64,
    /// Rows shipped storage→host.
    pub rows_shipped: u64,
    /// Bytes moved across the interconnect.
    pub bytes_shipped: u64,
    /// Page MACs verified (`storage.page.hmac_verify` delta).
    pub macs_verified: u64,
    /// Verified-node cache hits (`storage.merkle.cache.hit` delta).
    pub merkle_cache_hits: u64,
    /// Verified-node cache misses (`storage.merkle.cache.miss` delta).
    pub merkle_cache_misses: u64,
    /// Enclave transitions the run charged for.
    pub enclave_transitions: u64,
    /// EPC faults observed by the host enclave's simulator.
    pub epc_faults: u64,
    /// Per-stage EPC resident-page samples.
    pub epc_occupancy_pages: Vec<u64>,
    /// Accounting spans with nonzero attributed simulated time, in
    /// span-creation order.
    pub cost_terms: Vec<CostTerm>,
    /// Per-operator row counts for every plan the run drained.
    pub plans: Vec<PlanProfile>,
    /// Mid-flight re-plan events the run committed.
    pub replan_events: Vec<ReplanEvent>,
    /// Total spans in the run's trace.
    pub span_count: usize,
    /// Spans tagged with an error (faulted attempts that rolled back).
    pub error_span_count: usize,
}

impl QueryProfile {
    /// Render the annotated plan: per-operator rows and selectivity,
    /// the simulated-time breakdown, cost terms and counters.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Q{} profile — config={} dop={}",
            self.query_id,
            self.config.abbrev(),
            self.dop
        );
        let b = &self.breakdown;
        let _ = writeln!(out, "simulated total: {:.0} ns", b.total_ns());
        let _ = writeln!(
            out,
            "  ndp={:.0} freshness={:.0} crypto={:.0} transitions={:.0} epc={:.0} other={:.0}",
            b.ndp_ns, b.freshness_ns, b.crypto_ns, b.transitions_ns, b.epc_ns, b.other_ns
        );
        for plan in &self.plans {
            let _ = write!(out, "plan {} [placement={}", plan.label, plan.placement.as_str());
            if let Some(f) = &plan.pushdown_filter {
                let _ = write!(out, ", pushdown {f}");
            }
            if let (Some(est), Some(obs)) =
                (plan.estimated_selectivity, plan.observed_selectivity)
            {
                let _ = write!(out, ", sel est={est:.4} obs={obs:.4}");
            }
            out.push_str("]:\n");
            for op in &plan.operators {
                for _ in 0..op.depth {
                    out.push_str("  ");
                }
                out.push_str("  ");
                out.push_str(&op.describe);
                if op.leaf {
                    let _ = write!(out, " (rows out={})", op.rows_out);
                } else {
                    let _ = write!(out, " (rows in={} out={})", op.rows_in, op.rows_out);
                }
                if let Some(sel) = op.selectivity() {
                    let _ = write!(out, " [sel={sel:.4}]");
                }
                out.push('\n');
            }
        }
        for ev in &self.replan_events {
            let _ = writeln!(
                out,
                "replan {}: {} -> {} at morsel {} (sel est={:.4} obs={:.4})",
                ev.label,
                ev.from.as_str(),
                ev.to.as_str(),
                ev.at_morsel,
                ev.estimated,
                ev.observed
            );
        }
        out.push_str("cost terms:\n");
        for t in &self.cost_terms {
            let _ = writeln!(out, "  {:<28} {:.0} ns", t.name, t.sim_ns);
        }
        let p = &self.pager;
        let _ = writeln!(
            out,
            "pager: reads={} writes={} decrypts={} encrypts={} merkle_nodes={} rpmb={}",
            p.page_reads, p.page_writes, p.decrypts, p.encrypts, p.merkle_nodes, p.rpmb_ops
        );
        let _ = writeln!(
            out,
            "secure: macs_verified={} merkle_cache hit={} miss={} transitions={} epc_faults={}",
            self.macs_verified,
            self.merkle_cache_hits,
            self.merkle_cache_misses,
            self.enclave_transitions,
            self.epc_faults
        );
        let _ = writeln!(
            out,
            "shipped: pages={} rows={} bytes={} | spans={} errors={}",
            self.pages_shipped,
            self.rows_shipped,
            self.bytes_shipped,
            self.span_count,
            self.error_span_count
        );
        out
    }

    /// Stable hand-written JSON export (keys in a fixed order), consumed
    /// by the `paperbench profile` regression gate.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let b = &self.breakdown;
        let _ = write!(
            out,
            "{{\"config\":\"{}\",\"query_id\":{},\"dop\":{}",
            self.config.abbrev(),
            self.query_id,
            self.dop
        );
        let _ = write!(
            out,
            ",\"breakdown\":{{\"ndp_ns\":{:.0},\"freshness_ns\":{:.0},\"crypto_ns\":{:.0},\"transitions_ns\":{:.0},\"epc_ns\":{:.0},\"other_ns\":{:.0},\"total_ns\":{:.0}}}",
            b.ndp_ns, b.freshness_ns, b.crypto_ns, b.transitions_ns, b.epc_ns, b.other_ns, b.total_ns()
        );
        let p = &self.pager;
        let _ = write!(
            out,
            ",\"pager\":{{\"page_reads\":{},\"page_writes\":{},\"decrypts\":{},\"encrypts\":{},\"merkle_nodes\":{},\"rpmb_ops\":{}}}",
            p.page_reads, p.page_writes, p.decrypts, p.encrypts, p.merkle_nodes, p.rpmb_ops
        );
        let _ = write!(
            out,
            ",\"pages_read_storage\":{},\"pages_shipped\":{},\"rows_shipped\":{},\"bytes_shipped\":{}",
            self.pages_read_storage, self.pages_shipped, self.rows_shipped, self.bytes_shipped
        );
        let _ = write!(
            out,
            ",\"macs_verified\":{},\"merkle_cache_hits\":{},\"merkle_cache_misses\":{},\"enclave_transitions\":{},\"epc_faults\":{}",
            self.macs_verified,
            self.merkle_cache_hits,
            self.merkle_cache_misses,
            self.enclave_transitions,
            self.epc_faults
        );
        out.push_str(",\"epc_occupancy_pages\":[");
        for (i, v) in self.epc_occupancy_pages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{v}");
        }
        out.push_str("],\"cost_terms\":[");
        for (i, t) in self.cost_terms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\",\"sim_ns\":{:.0}}}", escape_json(&t.name), t.sim_ns);
        }
        out.push_str("],\"plans\":[");
        for (i, plan) in self.plans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"label\":\"{}\",\"placement\":\"{}\"",
                escape_json(&plan.label),
                plan.placement.as_str()
            );
            match &plan.pushdown_filter {
                Some(f) => {
                    let _ = write!(out, ",\"pushdown_filter\":\"{}\"", escape_json(f));
                }
                None => out.push_str(",\"pushdown_filter\":null"),
            }
            match plan.estimated_selectivity {
                Some(v) => {
                    let _ = write!(out, ",\"estimated_selectivity\":{v:.6}");
                }
                None => out.push_str(",\"estimated_selectivity\":null"),
            }
            match plan.observed_selectivity {
                Some(v) => {
                    let _ = write!(out, ",\"observed_selectivity\":{v:.6}");
                }
                None => out.push_str(",\"observed_selectivity\":null"),
            }
            out.push_str(",\"operators\":[");
            for (j, op) in plan.operators.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"depth\":{},\"describe\":\"{}\",\"rows_in\":{},\"rows_out\":{},\"leaf\":{}}}",
                    op.depth,
                    escape_json(&op.describe),
                    op.rows_in,
                    op.rows_out,
                    op.leaf
                );
            }
            out.push_str("]}");
        }
        out.push_str("],\"replan_events\":[");
        for (i, ev) in self.replan_events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"label\":\"{}\",\"from\":\"{}\",\"to\":\"{}\",\"at_morsel\":{},\"estimated\":{:.6},\"observed\":{:.6}}}",
                escape_json(&ev.label),
                ev.from.as_str(),
                ev.to.as_str(),
                ev.at_morsel,
                ev.estimated,
                ev.observed
            );
        }
        let _ = write!(
            out,
            "],\"span_count\":{},\"error_span_count\":{}}}",
            self.span_count, self.error_span_count
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QueryProfile {
        QueryProfile {
            config: SystemConfig::IronSafe,
            query_id: 6,
            dop: 1,
            breakdown: CostBreakdown {
                ndp_ns: 100.0,
                freshness_ns: 20.0,
                crypto_ns: 30.0,
                transitions_ns: 5.0,
                epc_ns: 1.0,
                other_ns: 2.0,
            },
            pager: PagerStats { page_reads: 9, decrypts: 9, merkle_nodes: 40, ..Default::default() },
            pages_read_storage: 9,
            pages_shipped: 1,
            rows_shipped: 12,
            bytes_shipped: 512,
            macs_verified: 9,
            merkle_cache_hits: 30,
            merkle_cache_misses: 10,
            enclave_transitions: 2,
            epc_faults: 0,
            epc_occupancy_pages: vec![3],
            cost_terms: vec![CostTerm { name: "storage/device_io".into(), sim_ns: 100.0 }],
            plans: vec![PlanProfile {
                label: "stage0/fragment/lineitem".into(),
                placement: Placement::StorageOffload,
                pushdown_filter: Some("x > 1".into()),
                estimated_selectivity: Some(0.1),
                observed_selectivity: Some(0.12),
                operators: vec![
                    OperatorProfile {
                        depth: 0,
                        describe: "Filter: x > 1".into(),
                        rows_in: 100,
                        rows_out: 12,
                        leaf: false,
                    },
                    OperatorProfile {
                        depth: 1,
                        describe: "SeqScan lineitem".into(),
                        rows_in: 0,
                        rows_out: 100,
                        leaf: true,
                    },
                ],
            }],
            replan_events: vec![ReplanEvent {
                label: "stage0/fragment/lineitem".into(),
                from: Placement::StorageOffload,
                to: Placement::StorageShipPages,
                at_morsel: 8,
                estimated: 0.1,
                observed: 0.97,
            }],
            span_count: 7,
            error_span_count: 0,
        }
    }

    #[test]
    fn render_annotates_rows_and_selectivity() {
        let text = sample().render();
        assert!(text.contains("Q6 profile — config=scs dop=1"));
        assert!(text.contains("Filter: x > 1 (rows in=100 out=12) [sel=0.1200]"));
        assert!(text.contains("SeqScan lineitem (rows out=100)"));
        assert!(text.contains("macs_verified=9"));
        assert!(text.contains("storage/device_io"));
        assert!(
            text.contains("placement=storage-offload, pushdown x > 1, sel est=0.1000 obs=0.1200"),
            "{text}"
        );
        assert!(
            text.contains(
                "replan stage0/fragment/lineitem: storage-offload -> storage-ship-pages at morsel 8"
            ),
            "{text}"
        );
    }

    #[test]
    fn json_is_valid_and_stable() {
        let a = sample().to_json();
        let b = sample().to_json();
        assert_eq!(a, b, "same profile must serialize identically");
        assert!(ironsafe_obs::export::looks_like_valid_json(&a), "{a}");
        assert!(a.contains("\"query_id\":6"));
        assert!(a.contains("\"macs_verified\":9"));
        assert!(a.contains("\"describe\":\"SeqScan lineitem\""));
        assert!(a.contains("\"placement\":\"storage-offload\""), "{a}");
        assert!(a.contains("\"pushdown_filter\":\"x > 1\""));
        assert!(a.contains("\"estimated_selectivity\":0.100000"));
        assert!(a.contains("\"replan_events\":[{\"label\":"), "{a}");
        assert!(a.contains("\"to\":\"storage-ship-pages\""));
    }
}
