//! Freshness protection: binding the Merkle root to the RPMB.
//!
//! The paper's scheme (§4.1): the secure-storage TA derives a key from the
//! device HUK, MACs the current Merkle root with it and writes the MAC to
//! the RPMB. On open, the root recomputed from the (untrusted) medium must
//! MAC to the stored value — otherwise the medium was rolled back to a
//! stale version or belongs to a forked replica.

use crate::merkle::NodeHash;
use crate::{Result, StorageError};
use ironsafe_crypto::hmac::hmac_sha256_concat;
use ironsafe_tee::trustzone::{SecureStorageTa, TrustZoneDevice};

/// Manages the RPMB-backed root MAC.
pub struct FreshnessManager {
    root_mac_key: [u8; 32],
    /// Number of RPMB round-trips (cost-model input).
    pub rpmb_writes: u64,
    /// Number of RPMB reads (cost-model input).
    pub rpmb_reads: u64,
}

impl FreshnessManager {
    /// Build over the device's secure-storage TA: the root-MAC key derives
    /// from the TASK so it never leaves the device.
    pub fn new(ta: &SecureStorageTa) -> Self {
        let root_mac_key = ironsafe_crypto::hkdf::derive_key_256(ta.task(), b"merkle-root-mac");
        FreshnessManager { root_mac_key, rpmb_writes: 0, rpmb_reads: 0 }
    }

    /// MAC a Merkle root with the device-bound key.
    pub fn root_mac(&self, root: &NodeHash) -> [u8; 32] {
        hmac_sha256_concat(&self.root_mac_key, &[b"fresh-root", root])
    }

    /// Commit `root` as the current authentic state (RPMB write).
    pub fn commit_root(
        &mut self,
        ta: &SecureStorageTa,
        device: &mut TrustZoneDevice,
        root: &NodeHash,
    ) -> Result<()> {
        let mac = self.root_mac(root);
        ta.store_merkle_root(device, &mac)?;
        self.rpmb_writes += 1;
        Ok(())
    }

    /// Commit `root` and the WAL chain-head MAC together in one batched
    /// authenticated RPMB write — the group-commit bind. N transactions
    /// flushed together pay this single RPMB round trip, versus one per
    /// statement on the unbatched path.
    pub fn commit_root_with_wal(
        &mut self,
        ta: &SecureStorageTa,
        device: &mut TrustZoneDevice,
        root: &NodeHash,
        wal_head_mac: &[u8; 32],
    ) -> Result<()> {
        let mac = self.root_mac(root);
        ta.store_commit_marks(device, &mac, wal_head_mac)?;
        self.rpmb_writes += 1;
        Ok(())
    }

    /// Read the committed WAL chain-head MAC (recovery: the last record
    /// whose chain MAC equals this value is the freshness-verified
    /// replay boundary). All-zero means no WAL bind was ever committed.
    pub fn committed_wal_head(
        &mut self,
        ta: &SecureStorageTa,
        device: &TrustZoneDevice,
        rng: &mut (impl rand::Rng + ?Sized),
    ) -> Result<[u8; 32]> {
        let (_, wal) = ta.load_commit_marks(device, rng)?;
        self.rpmb_reads += 1;
        Ok(wal)
    }

    /// Check that `root` matches the RPMB-committed state.
    pub fn verify_root(
        &mut self,
        ta: &SecureStorageTa,
        device: &TrustZoneDevice,
        root: &NodeHash,
        rng: &mut (impl rand::Rng + ?Sized),
    ) -> Result<()> {
        let stored = ta.load_merkle_root(device, rng)?;
        self.rpmb_reads += 1;
        let expect = self.root_mac(root);
        if !ironsafe_crypto::ct_eq(&expect, &stored) {
            return Err(StorageError::FreshnessViolation(
                "Merkle root does not match RPMB (rollback or fork)",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ironsafe_crypto::group::Group;
    use ironsafe_tee::trustzone::Manufacturer;
    use rand::SeedableRng;

    fn setup() -> (TrustZoneDevice, SecureStorageTa, FreshnessManager, rand::rngs::StdRng) {
        let group = Group::modp_1024();
        let mfr = Manufacturer::from_seed(&group, b"acme");
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let mut device = mfr.make_device("s0", 8, &mut rng);
        let ta = SecureStorageTa::init(&mut device).unwrap();
        let fm = FreshnessManager::new(&ta);
        (device, ta, fm, rng)
    }

    #[test]
    fn commit_then_verify_succeeds() {
        let (mut dev, ta, mut fm, mut rng) = setup();
        let root = [0x33u8; 32];
        fm.commit_root(&ta, &mut dev, &root).unwrap();
        fm.verify_root(&ta, &dev, &root, &mut rng).unwrap();
        assert_eq!((fm.rpmb_writes, fm.rpmb_reads), (1, 1));
    }

    #[test]
    fn stale_root_detected() {
        let (mut dev, ta, mut fm, mut rng) = setup();
        let old = [0x01u8; 32];
        let new = [0x02u8; 32];
        fm.commit_root(&ta, &mut dev, &old).unwrap();
        fm.commit_root(&ta, &mut dev, &new).unwrap();
        // Attacker rolled the medium back to `old`.
        assert_eq!(
            fm.verify_root(&ta, &dev, &old, &mut rng),
            Err(StorageError::FreshnessViolation("Merkle root does not match RPMB (rollback or fork)"))
        );
        fm.verify_root(&ta, &dev, &new, &mut rng).unwrap();
    }

    #[test]
    fn batched_wal_bind_costs_one_rpmb_write() {
        let (mut dev, ta, mut fm, mut rng) = setup();
        let root = [0x44u8; 32];
        let head = [0x9cu8; 32];
        fm.commit_root_with_wal(&ta, &mut dev, &root, &head).unwrap();
        assert_eq!(fm.rpmb_writes, 1, "root + WAL head bind in one RPMB op");
        fm.verify_root(&ta, &dev, &root, &mut rng).unwrap();
        assert_eq!(fm.committed_wal_head(&ta, &dev, &mut rng).unwrap(), head);
    }

    #[test]
    fn root_mac_is_device_bound() {
        let group = Group::modp_1024();
        let mfr = Manufacturer::from_seed(&group, b"acme");
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut d1 = mfr.make_device("a", 8, &mut rng);
        let mut d2 = mfr.make_device("b", 8, &mut rng);
        let ta1 = SecureStorageTa::init(&mut d1).unwrap();
        let ta2 = SecureStorageTa::init(&mut d2).unwrap();
        let fm1 = FreshnessManager::new(&ta1);
        let fm2 = FreshnessManager::new(&ta2);
        assert_ne!(fm1.root_mac(&[5; 32]), fm2.root_mac(&[5; 32]));
    }
}
