//! ARM TrustZone model: device with hardware-unique key and RPMB, secure
//! boot producing a measured certificate chain, and the secure-world
//! trusted applications.

pub mod boot;
pub mod device;
pub mod rpmb;
pub mod ta;

pub use boot::{BootImages, BootedSystem, SecureBoot, SignedImage};
pub use device::{Manufacturer, TrustZoneDevice};
pub use rpmb::{Rpmb, RpmbClient, RPMB_BLOCK};
pub use ta::{AttestationResponse, AttestationTa, SecureStorageTa};
