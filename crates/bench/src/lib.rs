//! # ironsafe-bench
//!
//! Experiment harnesses regenerating every table and figure of the
//! paper's evaluation (§6). The [`figures`] module computes each result
//! series; the `paperbench` binary prints them in paper-shaped tables and
//! `benches/paper_figures.rs` wires them into Criterion.
//!
//! Scale note: the paper's testbed runs TPC-H at scale factors 3–5 on
//! real hardware; this reproduction runs at SF/1000 (0.003–0.005) and
//! scales size-dependent resources (EPC, storage memory) by the same
//! factor, so ratios, crossovers and breakdown shapes are preserved while
//! a laptop finishes in minutes. Absolute times are *simulated
//! nanoseconds* from the calibrated cost model, except where a harness
//! explicitly measures wall-clock time (Figure 12, Tables 3 and 4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod chaos;
pub mod figures;
pub mod profiles;
pub mod shards;
pub mod telemetry;
pub mod vectors;
pub mod writes;

pub use adaptive::{
    adaptive_invariants_json, adaptive_json, adaptive_sweep, q1_wide_with_selectivity,
    AdaptiveCell, ReplanDemo, ADAPTIVE_PRESSURES, ADAPTIVE_SELECTIVITIES, ADAPTIVE_SF,
    ADAPTIVE_SHAPES, ADAPTIVE_STORAGE_CORES,
};
pub use figures::*;
pub use profiles::{diff_snapshots, profile_matrix, profiles_json, PROFILE_SF};
pub use shards::{
    shards_invariants_json, shards_json, shards_sweep, SHARDS_SF, SHARD_COUNTS,
};
pub use vectors::{
    vectors_invariants_json, vectors_json, vectors_sweep, vectors_wallclock, VECTORS_SF,
    VECTORS_WALL_SF,
};
pub use writes::{
    mixed_sweep, mixed_wallclock, writes_invariants_json, writes_json, WRITES_SF, WRITE_BURSTS,
};
