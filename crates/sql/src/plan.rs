//! Logical planning: translate a [`SelectStmt`] into an operator tree.
//!
//! The plan shape is the classic textbook pipeline the paper's engine
//! (SQLite) also follows for these queries:
//!
//! ```text
//! scans → single-table filters → hash joins (equi) → residual filter
//!       → hash aggregate → having → sort → project → limit
//! ```
//!
//! Single-table predicates are pushed below the joins — the same pushdown
//! the CSA partitioner exploits to ship filters to the storage engine.

use crate::ast::{BinOp, Expr, SelectItem, SelectStmt};
use crate::catalog::Catalog;
use crate::exec::{
    AggSpec, BoxOp, ExecOptions, Filter, HashAggregate, HashJoin, Limit, MorselScan, MorselSource,
    NestedLoopJoin, ParallelHashAggregate, Project, SeqScan, Sort,
};
use crate::heap::SharedPager;
use crate::schema::{Column, Schema};
use crate::value::DataType;
use crate::{Result, SqlError};

/// Split an expression on top-level `AND`s.
pub fn split_conjuncts(expr: &Expr, out: &mut Vec<Expr>) {
    if let Expr::Binary { op: BinOp::And, left, right } = expr {
        split_conjuncts(left, out);
        split_conjuncts(right, out);
    } else {
        out.push(expr.clone());
    }
}

/// Re-join conjuncts with `AND`.
pub fn join_conjuncts(mut conjuncts: Vec<Expr>) -> Option<Expr> {
    let mut acc = conjuncts.pop()?;
    while let Some(c) = conjuncts.pop() {
        acc = Expr::bin(BinOp::And, c, acc);
    }
    Some(acc)
}

/// Which of `schemas` can resolve every column of `expr`? Returns the set
/// of table indices whose schemas own at least one referenced column.
fn tables_of(expr: &Expr, schemas: &[Schema]) -> Result<Vec<usize>> {
    let mut cols = Vec::new();
    expr.referenced_columns(&mut cols);
    let mut tabs = Vec::new();
    for c in &cols {
        let mut found = false;
        for (i, s) in schemas.iter().enumerate() {
            if s.resolve(c).is_ok() {
                if !tabs.contains(&i) {
                    tabs.push(i);
                }
                found = true;
                break;
            }
        }
        if !found {
            return Err(SqlError::Plan(format!("unknown column `{c}`")));
        }
    }
    tabs.sort_unstable();
    Ok(tabs)
}

/// A classified predicate.
enum Pred {
    /// Touches at most one table.
    Single { table: usize, expr: Expr },
    /// `left_col = right_col` across two tables.
    EquiJoin { left_table: usize, right_table: usize, left: Expr, right: Expr },
    /// Anything else: applied after all joins.
    Residual(Expr),
}

fn classify(expr: Expr, schemas: &[Schema]) -> Result<Pred> {
    let tabs = tables_of(&expr, schemas)?;
    match tabs.len() {
        0 => Ok(Pred::Single { table: 0, expr }),
        1 => Ok(Pred::Single { table: tabs[0], expr }),
        2 => {
            if let Expr::Binary { op: BinOp::Eq, left, right } = &expr {
                let lt = tables_of(left, schemas)?;
                let rt = tables_of(right, schemas)?;
                if lt.len() == 1 && rt.len() == 1 && lt[0] != rt[0] {
                    return Ok(Pred::EquiJoin {
                        left_table: lt[0],
                        right_table: rt[0],
                        left: (**left).clone(),
                        right: (**right).clone(),
                    });
                }
            }
            Ok(Pred::Residual(expr))
        }
        _ => Ok(Pred::Residual(expr)),
    }
}

/// Plan a `SELECT` into an executable operator tree (serial execution).
pub fn plan_select(catalog: &Catalog, pager: &SharedPager, stmt: &SelectStmt) -> Result<BoxOp> {
    plan_select_with(catalog, pager, stmt, &ExecOptions::serial())
}

/// Plan a `SELECT`, choosing morsel-parallel scan/aggregate operators
/// when `opts` requests DOP > 1.
///
/// Parallel plans emit bit-identical rows and identical `PagerStats`
/// deltas to their serial counterparts; the only plan shape where that
/// would break — `LIMIT` short-circuiting a scan before it reads every
/// page — is kept serial.
pub fn plan_select_with(
    catalog: &Catalog,
    pager: &SharedPager,
    stmt: &SelectStmt,
    opts: &ExecOptions,
) -> Result<BoxOp> {
    if stmt.from.is_empty() {
        return plan_projection_only(stmt);
    }
    // LIMIT lets the serial pipeline stop pulling mid-scan (fewer page
    // reads); a morsel scan materializes everything, so its stats would
    // diverge. Conservatively keep any LIMIT plan serial. Vectorized
    // execution rides the morsel operators, so it routes here too even
    // at DOP 1, as does a scan with a [`ScanWatch`] attached (per-morsel
    // telemetry requires the morsel driver; rows and stats stay
    // bit-identical either way).
    let par =
        (opts.parallel() || opts.vectorized || opts.watch.is_some()) && stmt.limit.is_none();

    // 1. Table metadata (scan operators are built after predicate
    // classification so pushed filters can live inside morsel workers).
    let mut schemas = Vec::with_capacity(stmt.from.len());
    let mut heaps = Vec::with_capacity(stmt.from.len());
    for tref in &stmt.from {
        let info = catalog.table(&tref.name)?;
        schemas.push(info.schema.clone());
        heaps.push(info.heap.clone());
    }

    // 2. Classify predicates.
    let mut single: Vec<Vec<Expr>> = vec![Vec::new(); stmt.from.len()];
    let mut equi: Vec<(usize, usize, Expr, Expr)> = Vec::new();
    let mut residual: Vec<Expr> = Vec::new();
    if let Some(w) = &stmt.where_clause {
        let mut conjuncts = Vec::new();
        split_conjuncts(w, &mut conjuncts);
        for c in conjuncts {
            match classify(c, &schemas)? {
                Pred::Single { table, expr } => single[table].push(expr),
                Pred::EquiJoin { left_table, right_table, left, right } => {
                    equi.push((left_table, right_table, left, right));
                }
                Pred::Residual(e) => residual.push(e),
            }
        }
    }

    // 3. Filtered scans. Serial: SeqScan under an optional Filter.
    // Parallel: a MorselScan with the pushed predicate evaluated inside
    // the workers (same rows, same order, same page reads).
    let mut filtered: Vec<Option<BoxOp>> = Vec::with_capacity(schemas.len());
    let mut lone_source: Option<MorselSource> = None;
    for (i, (schema, heap)) in schemas.iter().zip(heaps.iter()).enumerate() {
        let preds = std::mem::take(&mut single[i]);
        let pred = join_conjuncts(preds);
        let op: BoxOp = if par {
            let source = MorselSource {
                schema: schema.clone(),
                heap: heap.clone(),
                pager: pager.clone(),
                pred,
            };
            if schemas.len() == 1 {
                lone_source = Some(source.clone());
            }
            Box::new(MorselScan::new(source, opts.clone()))
        } else {
            let s: BoxOp = Box::new(SeqScan::new(schema.clone(), heap.clone(), pager.clone()));
            match pred {
                Some(p) => Box::new(Filter::new(s, p)),
                None => s,
            }
        };
        filtered.push(Some(op));
    }

    // 4. Greedy left-deep join order following FROM order.
    let mut joined = vec![false; filtered.len()];
    let mut current = filtered[0].take().expect("first scan");
    joined[0] = true;
    let mut used = vec![false; equi.len()];
    for _ in 1..filtered.len() {
        // Find the first unjoined table connected by an equi predicate.
        let mut pick: Option<usize> = None;
        for (t, done) in joined.iter().enumerate() {
            if *done {
                continue;
            }
            let connects = equi.iter().enumerate().any(|(k, (a, b, _, _))| {
                !used[k] && ((joined[*a] && *b == t) || (joined[*b] && *a == t))
            });
            if connects {
                pick = Some(t);
                break;
            }
        }
        match pick {
            Some(t) => {
                // Gather all usable keys between the joined set and t.
                let mut cur_keys = Vec::new();
                let mut new_keys = Vec::new();
                for (k, (a, b, l, r)) in equi.iter().enumerate() {
                    if used[k] {
                        continue;
                    }
                    if joined[*a] && *b == t {
                        cur_keys.push(l.clone());
                        new_keys.push(r.clone());
                        used[k] = true;
                    } else if joined[*b] && *a == t {
                        cur_keys.push(r.clone());
                        new_keys.push(l.clone());
                        used[k] = true;
                    }
                }
                let t_op = filtered[t].take().expect("unjoined scan");
                // Build over the newly joined (usually smaller, filtered)
                // table; probe with the running intermediate.
                current = Box::new(HashJoin::new(t_op, current, new_keys, cur_keys));
                joined[t] = true;
            }
            None => {
                // No connector: cross join the next unjoined table.
                let t = joined.iter().position(|d| !d).expect("tables remain");
                let t_op = filtered[t].take().expect("unjoined scan");
                current = Box::new(NestedLoopJoin::new(current, t_op, None)?);
                joined[t] = true;
            }
        }
    }

    // Equi predicates that never connected (e.g. both tables already joined
    // via another path) become residual filters.
    for (k, (_, _, l, r)) in equi.iter().enumerate() {
        if !used[k] {
            residual.push(Expr::bin(BinOp::Eq, l.clone(), r.clone()));
        }
    }
    if let Some(p) = join_conjuncts(residual) {
        current = Box::new(Filter::new(current, p));
    }

    // 5. Projections, aggregation, ordering.
    let proj_items = expand_projections(stmt, current.schema())?;
    let has_agg = !stmt.group_by.is_empty()
        || proj_items.iter().any(|(e, _)| e.contains_aggregate())
        || stmt.having.as_ref().is_some_and(|h| h.contains_aggregate());

    let (proj_exprs, proj_names): (Vec<Expr>, Vec<String>) = proj_items.into_iter().unzip();
    let mut order_keys: Vec<(Expr, bool)> = stmt.order_by.clone();
    // ORDER BY may reference projection aliases: substitute them.
    for (e, _) in &mut order_keys {
        if let Expr::Column(name) = e {
            if let Some(i) = proj_names.iter().position(|n| n == name) {
                if current.schema().resolve(name).is_err() {
                    *e = proj_exprs[i].clone();
                }
            }
        }
    }

    // Validate that every referenced column resolves against the joined
    // schema (cheap, and turns silent empty results into plan errors).
    {
        let schema = current.schema();
        let mut cols = Vec::new();
        for e in proj_exprs
            .iter()
            .chain(stmt.group_by.iter())
            .chain(stmt.having.iter())
            .chain(order_keys.iter().map(|(e, _)| e))
        {
            e.referenced_columns(&mut cols);
        }
        for c in cols {
            schema.resolve(&c)?;
        }
    }

    if has_agg {
        // Collect aggregates from every post-grouping expression.
        let mut agg_nodes: Vec<Expr> = Vec::new();
        for e in proj_exprs.iter().chain(stmt.having.iter()).chain(order_keys.iter().map(|(e, _)| e)) {
            collect_aggs(e, &mut agg_nodes);
        }
        let specs: Vec<AggSpec> = agg_nodes
            .iter()
            .enumerate()
            .map(|(i, e)| match e {
                Expr::Agg { func, arg, distinct } => AggSpec {
                    func: *func,
                    arg: arg.as_deref().cloned(),
                    distinct: *distinct,
                    name: format!("__agg{i}"),
                },
                _ => unreachable!("collect_aggs yields Agg nodes"),
            })
            .collect();
        let group_names: Vec<String> = (0..stmt.group_by.len()).map(|i| format!("__grp{i}")).collect();
        current = match lone_source {
            // Single-table aggregation (the TPC-H Q1/Q6 shape): fuse
            // scan + filter + partial evaluation into the morsel workers
            // and replay the serial accumulator in the merge.
            Some(source) => Box::new(ParallelHashAggregate::new(
                source,
                opts.clone(),
                stmt.group_by.clone(),
                group_names,
                specs,
            )),
            None => Box::new(HashAggregate::new(current, stmt.group_by.clone(), group_names, specs)),
        };

        let rw = |e: &Expr| rewrite_post_agg(e, &stmt.group_by, &agg_nodes);
        if let Some(h) = &stmt.having {
            current = Box::new(Filter::new(current, rw(h)));
        }
        if !order_keys.is_empty() {
            let keys = order_keys.iter().map(|(e, d)| (rw(e), *d)).collect();
            current = Box::new(Sort::new(current, keys));
        }
        let exprs: Vec<Expr> = proj_exprs.iter().map(rw).collect();
        let schema = output_schema(&exprs, &proj_names, current.schema());
        current = Box::new(Project::new(current, exprs, schema));
    } else {
        if stmt.having.is_some() {
            return Err(SqlError::Plan("HAVING without aggregation".into()));
        }
        if !order_keys.is_empty() {
            current = Box::new(Sort::new(current, order_keys));
        }
        let schema = output_schema(&proj_exprs, &proj_names, current.schema());
        current = Box::new(Project::new(current, proj_exprs, schema));
    }

    if let Some(n) = stmt.limit {
        current = Box::new(Limit::new(current, n));
    }
    Ok(current)
}

/// `SELECT 1 + 1` style statements without FROM.
fn plan_projection_only(stmt: &SelectStmt) -> Result<BoxOp> {
    let items = expand_projections(stmt, &Schema::default())?;
    let (exprs, names): (Vec<Expr>, Vec<String>) = items.into_iter().unzip();
    let schema = output_schema(&exprs, &names, &Schema::default());
    let one_row: BoxOp = Box::new(crate::exec::Values::new(Schema::default(), vec![Vec::new()]));
    Ok(Box::new(Project::new(one_row, exprs, schema)))
}

/// Expand `*` and derive output names.
pub(crate) fn expand_projections(stmt: &SelectStmt, input: &Schema) -> Result<Vec<(Expr, String)>> {
    let mut out = Vec::new();
    for (i, item) in stmt.projections.iter().enumerate() {
        match item {
            SelectItem::Star => {
                if input.is_empty() {
                    return Err(SqlError::Plan("SELECT * without FROM".into()));
                }
                for c in &input.columns {
                    out.push((Expr::Column(c.name.clone()), c.name.clone()));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = match alias {
                    Some(a) => a.clone(),
                    None => match expr {
                        Expr::Column(c) => c.rsplit('.').next().expect("non-empty").to_string(),
                        _ => format!("col{i}"),
                    },
                };
                out.push((expr.clone(), name));
            }
        }
    }
    Ok(out)
}

/// Collect distinct aggregate nodes (structural equality).
pub(crate) fn collect_aggs(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Agg { .. } => {
            if !out.contains(expr) {
                out.push(expr.clone());
            }
        }
        Expr::Column(_) | Expr::Literal(_) => {}
        Expr::Unary { expr, .. } | Expr::Like { expr, .. } | Expr::IsNull { expr, .. } => {
            collect_aggs(expr, out)
        }
        Expr::Binary { left, right, .. } => {
            collect_aggs(left, out);
            collect_aggs(right, out);
        }
        Expr::Between { expr, low, high, .. } => {
            collect_aggs(expr, out);
            collect_aggs(low, out);
            collect_aggs(high, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_aggs(expr, out);
            for e in list {
                collect_aggs(e, out);
            }
        }
        Expr::Func { args, .. } => {
            for a in args {
                collect_aggs(a, out);
            }
        }
        Expr::Case { when_then, else_expr } => {
            for (c, v) in when_then {
                collect_aggs(c, out);
                collect_aggs(v, out);
            }
            if let Some(e) = else_expr {
                collect_aggs(e, out);
            }
        }
    }
}

/// Rewrite a post-grouping expression against the aggregate's output:
/// group-by expressions become `__grpN`, aggregate nodes become `__aggN`.
pub(crate) fn rewrite_post_agg(expr: &Expr, group_by: &[Expr], aggs: &[Expr]) -> Expr {
    if let Some(i) = group_by.iter().position(|g| g == expr) {
        return Expr::Column(format!("__grp{i}"));
    }
    if let Some(i) = aggs.iter().position(|a| a == expr) {
        return Expr::Column(format!("__agg{i}"));
    }
    match expr {
        Expr::Column(_) | Expr::Literal(_) => expr.clone(),
        Expr::Unary { op, expr } => Expr::Unary { op: *op, expr: Box::new(rewrite_post_agg(expr, group_by, aggs)) },
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(rewrite_post_agg(left, group_by, aggs)),
            right: Box::new(rewrite_post_agg(right, group_by, aggs)),
        },
        Expr::Between { expr, low, high, negated } => Expr::Between {
            expr: Box::new(rewrite_post_agg(expr, group_by, aggs)),
            low: Box::new(rewrite_post_agg(low, group_by, aggs)),
            high: Box::new(rewrite_post_agg(high, group_by, aggs)),
            negated: *negated,
        },
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(rewrite_post_agg(expr, group_by, aggs)),
            list: list.iter().map(|e| rewrite_post_agg(e, group_by, aggs)).collect(),
            negated: *negated,
        },
        Expr::Like { expr, pattern, negated } => Expr::Like {
            expr: Box::new(rewrite_post_agg(expr, group_by, aggs)),
            pattern: pattern.clone(),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(rewrite_post_agg(expr, group_by, aggs)),
            negated: *negated,
        },
        Expr::Case { when_then, else_expr } => Expr::Case {
            when_then: when_then
                .iter()
                .map(|(c, v)| (rewrite_post_agg(c, group_by, aggs), rewrite_post_agg(v, group_by, aggs)))
                .collect(),
            else_expr: else_expr.as_ref().map(|e| Box::new(rewrite_post_agg(e, group_by, aggs))),
        },
        Expr::Func { name, args } => Expr::Func {
            name: name.clone(),
            args: args.iter().map(|a| rewrite_post_agg(a, group_by, aggs)).collect(),
        },
        Expr::Agg { .. } => expr.clone(), // unmatched aggregate: caught at eval
    }
}

/// Derive the projected output schema (types are best-effort metadata).
pub(crate) fn output_schema(exprs: &[Expr], names: &[String], input: &Schema) -> Schema {
    let columns = exprs
        .iter()
        .zip(names.iter())
        .map(|(e, n)| {
            let ty = infer_type(e, input);
            Column::new(n.clone(), ty)
        })
        .collect();
    Schema::new(columns)
}

fn infer_type(expr: &Expr, input: &Schema) -> DataType {
    match expr {
        Expr::Column(c) => input
            .resolve(c)
            .map(|i| input.columns[i].ty)
            .unwrap_or(DataType::Text),
        Expr::Literal(v) => v.data_type().unwrap_or(DataType::Text),
        Expr::Binary { op, left, .. } => match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                infer_type(left, input)
            }
            _ => DataType::Int,
        },
        Expr::Unary { expr, .. } => infer_type(expr, input),
        Expr::Agg { func, .. } => match func {
            crate::ast::AggFunc::Count => DataType::Int,
            _ => DataType::Float,
        },
        Expr::Func { name, .. } => match name.as_str() {
            "YEAR" | "LENGTH" => DataType::Int,
            "ABS" | "ROUND" => DataType::Float,
            _ => DataType::Text,
        },
        _ => DataType::Text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expression;

    #[test]
    fn split_and_rejoin_conjuncts() {
        let e = parse_expression("a = 1 AND b = 2 AND c = 3").unwrap();
        let mut parts = Vec::new();
        split_conjuncts(&e, &mut parts);
        assert_eq!(parts.len(), 3);
        let rejoined = join_conjuncts(parts).unwrap();
        let mut reparts = Vec::new();
        split_conjuncts(&rejoined, &mut reparts);
        assert_eq!(reparts.len(), 3);
    }

    #[test]
    fn or_is_not_split() {
        let e = parse_expression("a = 1 OR b = 2").unwrap();
        let mut parts = Vec::new();
        split_conjuncts(&e, &mut parts);
        assert_eq!(parts.len(), 1);
    }

    #[test]
    fn rewrite_replaces_group_and_agg_nodes() {
        let group = vec![parse_expression("flag").unwrap()];
        let aggs = vec![parse_expression("SUM(qty)").unwrap()];
        let e = parse_expression("SUM(qty) / 2 + 1").unwrap();
        let rw = rewrite_post_agg(&e, &group, &aggs);
        let expect = parse_expression("__agg0 / 2 + 1").unwrap();
        assert_eq!(rw, expect);
        let e = parse_expression("flag").unwrap();
        assert_eq!(rewrite_post_agg(&e, &group, &aggs), parse_expression("__grp0").unwrap());
    }

    // End-to-end planning is exercised through `Database` tests in `db`.
}
