//! HMAC-SHA512 (RFC 2104), the MAC the paper's SQLCipher configuration
//! uses for page authentication.
//!
//! The secure page codec stores a 32-byte truncation of this tag
//! (truncation per RFC 2104 §5: take the leftmost bytes).

use crate::ct::ct_eq;
use crate::sha512::{Sha512, BLOCK_LEN, DIGEST_LEN};

/// Streaming HMAC-SHA512.
#[derive(Clone)]
pub struct HmacSha512 {
    inner: Sha512,
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha512 {
    /// Create an HMAC instance keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let d = crate::sha512::sha512(key);
            k[..DIGEST_LEN].copy_from_slice(&d);
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha512::new();
        inner.update(&ipad);
        HmacSha512 { inner, opad_key: opad }
    }

    /// Absorb message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produce the 64-byte tag.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha512::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// Verify `tag` (full or truncated ≥ 16 bytes) in constant time.
    pub fn verify(self, tag: &[u8]) -> bool {
        if tag.len() < 16 || tag.len() > DIGEST_LEN {
            return false;
        }
        let computed = self.finalize();
        ct_eq(&computed[..tag.len()], tag)
    }
}

/// One-shot HMAC-SHA512.
pub fn hmac_sha512(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = HmacSha512::new(key);
    h.update(data);
    h.finalize()
}

/// One-shot HMAC-SHA512 over concatenated parts, truncated to 32 bytes —
/// the page codec's trailer format.
pub fn hmac_sha512_trunc256(key: &[u8], parts: &[&[u8]]) -> [u8; 32] {
    let mut h = HmacSha512::new(key);
    for p in parts {
        h.update(p);
    }
    let full = h.finalize();
    let mut out = [0u8; 32];
    out.copy_from_slice(&full[..32]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test vectors (SHA-512 column).
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac_sha512(&key, b"Hi There")),
            "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde\
             daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854"
                .replace(char::is_whitespace, "")
        );
    }

    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hex(&hmac_sha512(b"Jefe", b"what do ya want for nothing?")),
            "164b7a7bfcf819e2e395fbe73b56e0a387bd64222e831fd610270cd7ea250554\
             9758bf75c05a994a6d034f65f8f0e6fdcaeab1a34d4a6b4b636e070a38bce737"
                .replace(char::is_whitespace, "")
        );
    }

    #[test]
    fn rfc4231_case3_long_key() {
        let key = [0xaau8; 131];
        assert_eq!(
            hex(&hmac_sha512(&key, b"Test Using Larger Than Block-Size Key - Hash Key First")),
            "80b24263c7c1a3ebb71493c1dd7be8b49b46d1f41b4aeec1121b013783f8f352\
             6b56d037e05f2598bd0fd2215d6a1e5295e64f73f63f0aec8b915a985d786598"
                .replace(char::is_whitespace, "")
        );
    }

    #[test]
    fn truncated_tag_verifies() {
        let tag = hmac_sha512_trunc256(b"key", &[b"page", b"data"]);
        let mut h = HmacSha512::new(b"key");
        h.update(b"pagedata");
        assert!(h.verify(&tag));

        let mut bad = tag;
        bad[0] ^= 1;
        let mut h = HmacSha512::new(b"key");
        h.update(b"pagedata");
        assert!(!h.verify(&bad));
    }

    #[test]
    fn absurd_tag_lengths_rejected() {
        let mut h = HmacSha512::new(b"key");
        h.update(b"m");
        assert!(!h.verify(&[0u8; 8]), "too-short tags are not acceptable");
        let h = HmacSha512::new(b"key");
        assert!(!h.verify(&[0u8; 65]), "over-long tags are malformed");
    }

    #[test]
    fn differs_from_sha256_hmac() {
        let a = hmac_sha512_trunc256(b"k", &[b"m"]);
        let b = crate::hmac::hmac_sha256(b"k", b"m");
        assert_ne!(a, b);
    }
}
