//! Shared ownership of one [`CsaSystem`] across concurrent sessions.
//!
//! The serving layer (`ironsafe-serve`) runs many sessions against a
//! single system and a single loaded dataset — the paper's Fig. 12
//! setting, minus the N private copies. [`SharedCsaSystem`] is the
//! concurrency boundary that makes that safe:
//!
//! * **Reads** (`SELECT`, paper queries) take a read lock and execute on
//!   a throwaway [`CsaSystem::read_view`] — a copy-on-write view whose
//!   temporary tables and pager stats are private, so any number of
//!   queries run in parallel with bit-identical results and
//!   [`CostBreakdown`](crate::CostBreakdown)s to serial execution.
//! * **Writes** (DML/DDL) take the write lock and run on the real
//!   system; the next view created afterwards observes the base pager's
//!   write counters and drops stale cached pages.
//!
//! The per-request session key travels with the request instead of
//! being `set_session_key`'d on shared state, so interleaved sessions
//! cannot observe each other's keys.

use crate::system::{CsaSystem, QueryReport};
use crate::Result;
use ironsafe_obs::TraceSnapshot;
use ironsafe_sql::ast::Statement;
use ironsafe_tpch::queries::PaperQuery;
use parking_lot::RwLock;

/// A [`CsaSystem`] behind a reader/writer lock, safe to share across
/// threads via `Arc`.
pub struct SharedCsaSystem {
    inner: RwLock<CsaSystem>,
}

impl SharedCsaSystem {
    /// Wrap an already-built system for shared use.
    ///
    /// Disables the base pager's verified-node cache: the shared
    /// decrypted-page cache records each page's first-read pager-stats
    /// delta and replays it on later hits, so per-page deltas must be
    /// independent of which session happened to read first — a warm
    /// Merkle-node cache would make them interleaving-dependent. The
    /// serving layer trades the freshness fast path for deterministic
    /// per-session accounting (single-session systems keep it on).
    pub fn new(system: CsaSystem) -> Self {
        system.storage_db().pager().lock().set_merkle_cache_enabled(false);
        SharedCsaSystem { inner: RwLock::new(system) }
    }

    /// Run a paper query on an isolated read view, under a per-request
    /// session key. Returns the report plus the run's telemetry trace.
    pub fn run_query(
        &self,
        q: &PaperQuery,
        session_key: [u8; 32],
    ) -> Result<(QueryReport, Option<TraceSnapshot>)> {
        self.run_query_with_dop(q, session_key, 1)
    }

    /// [`SharedCsaSystem::run_query`] at an explicit degree of
    /// parallelism. DOP > 1 runs the view's read-only fragments on the
    /// morsel worker pool; reports stay bit-identical to DOP 1.
    pub fn run_query_with_dop(
        &self,
        q: &PaperQuery,
        session_key: [u8; 32],
        dop: usize,
    ) -> Result<(QueryReport, Option<TraceSnapshot>)> {
        let guard = self.inner.read();
        let mut view = guard.read_view();
        view.set_session_key(session_key);
        view.set_dop(dop);
        let report = view.run_query(q)?;
        Ok((report, view.take_last_trace()))
    }

    /// Run one statement: `SELECT`s execute concurrently on a read
    /// view; DML/DDL serialize through the write lock and mutate the
    /// shared store (invalidating the decrypted-page cache for the next
    /// view).
    pub fn run_statement(
        &self,
        stmt: &Statement,
        session_key: [u8; 32],
    ) -> Result<(QueryReport, Option<TraceSnapshot>)> {
        self.run_statement_with_dop(stmt, session_key, 1)
    }

    /// [`SharedCsaSystem::run_statement`] at an explicit degree of
    /// parallelism (`SELECT`s only; writes always run serially).
    pub fn run_statement_with_dop(
        &self,
        stmt: &Statement,
        session_key: [u8; 32],
        dop: usize,
    ) -> Result<(QueryReport, Option<TraceSnapshot>)> {
        if matches!(stmt, Statement::Select(_)) {
            let guard = self.inner.read();
            let mut view = guard.read_view();
            view.set_session_key(session_key);
            view.set_dop(dop);
            let report = view.run_statement(stmt)?;
            Ok((report, view.take_last_trace()))
        } else {
            let mut guard = self.inner.write();
            guard.set_session_key(session_key);
            let report = guard.run_statement(stmt)?;
            Ok((report, guard.take_last_trace()))
        }
    }

    /// Drain the base pager's TEE-resident flight recorder: the
    /// deterministic forensic event lines recorded by faulted or
    /// violating page accesses, including ones taken through read
    /// views (views delegate their recorder to the shared base). The
    /// serving layer appends these to the monitor audit trail when an
    /// execution fails.
    pub fn take_flight_dump(&self) -> Vec<String> {
        self.inner.read().storage_db().pager().lock().take_flight_dump()
    }

    /// Inspect the underlying system (catalog walks, config checks).
    pub fn with_system<R>(&self, f: impl FnOnce(&CsaSystem) -> R) -> R {
        f(&self.inner.read())
    }

    /// Exclusive access for loaders and experiments. Any base write made
    /// here is observed by subsequent read views via cache invalidation.
    pub fn with_system_mut<R>(&self, f: impl FnOnce(&mut CsaSystem) -> R) -> R {
        f(&mut self.inner.write())
    }

    /// Unwrap back into the owned system.
    pub fn into_inner(self) -> CsaSystem {
        self.inner.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostParams;
    use crate::system::SystemConfig;
    use ironsafe_tpch::queries::paper_queries;
    use std::sync::Arc;

    fn small_system(config: SystemConfig) -> SharedCsaSystem {
        let data = ironsafe_tpch::generate(0.002, 42);
        SharedCsaSystem::new(CsaSystem::build(config, &data, CostParams::default()).unwrap())
    }

    #[test]
    fn view_runs_match_serial_runs() {
        let shared = small_system(SystemConfig::StorageOnlySecure);
        let queries = paper_queries();
        let q = queries.iter().find(|q| q.id == 6).unwrap();
        let key = [7u8; 32];
        let (first, _) = shared.run_query(q, key).unwrap();
        let (second, _) = shared.run_query(q, key).unwrap();
        assert_eq!(first.result, second.result);
        assert_eq!(first.breakdown, second.breakdown);
        // Serial execution on the owned system agrees bit-for-bit.
        let mut owned = shared.into_inner();
        owned.set_session_key(key);
        let serial = owned.run_query(q).unwrap();
        assert_eq!(serial.result, first.result);
        assert_eq!(serial.breakdown, first.breakdown);
    }

    #[test]
    fn concurrent_views_are_deterministic() {
        let shared = Arc::new(small_system(SystemConfig::IronSafe));
        let queries = paper_queries();
        let ids = [1u8, 6, 12];
        let baseline: Vec<_> = ids
            .iter()
            .map(|id| {
                let q = queries.iter().find(|q| q.id == *id).unwrap();
                shared.run_query(q, [9u8; 32]).unwrap().0
            })
            .collect();
        crossbeam::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..3 {
                for id in ids {
                    let shared = Arc::clone(&shared);
                    let q = queries.iter().find(|q| q.id == id).unwrap();
                    handles.push(s.spawn(move |_| (id, shared.run_query(q, [9u8; 32]).unwrap().0)));
                }
            }
            for h in handles {
                let (id, report) = h.join().unwrap();
                let expect = &baseline[ids.iter().position(|i| *i == id).unwrap()];
                assert_eq!(report.result, expect.result, "q{id} result drifted");
                assert_eq!(report.breakdown, expect.breakdown, "q{id} costs drifted");
            }
        })
        .unwrap();
    }

    #[test]
    fn writes_invalidate_reader_state() {
        let shared = small_system(SystemConfig::StorageOnlySecure);
        let before = shared.with_system(|sys| {
            sys.storage_db().catalog().table("region").unwrap().heap.row_count
        });
        let stmt =
            ironsafe_sql::parser::parse_statement("DELETE FROM region WHERE r_regionkey = 0")
                .unwrap();
        shared.run_statement(&stmt, [1u8; 32]).unwrap();
        // A read view created after the write sees the new row count.
        let sel = ironsafe_sql::parser::parse_statement("SELECT COUNT(*) FROM region").unwrap();
        let (report, _) = shared.run_statement(&sel, [1u8; 32]).unwrap();
        match report.result {
            ironsafe_sql::QueryResult::Rows { rows, .. } => {
                assert_eq!(
                    rows[0][0],
                    ironsafe_sql::Value::Int(before as i64 - 1),
                    "view must see committed delete"
                );
            }
            other => panic!("expected rows, got {other:?}"),
        }
    }
}
