//! TrustZone devices and their manufacturer.
//!
//! The [`Manufacturer`] is the trust anchor for the storage side: it fuses
//! a hardware-unique key (HUK) into each device and certifies the device's
//! attestation key (derived from the HUK) with the manufacturer root — the
//! certificate plays the role of the ROTPK provisioning in the paper's
//! Figure 4(b).

use crate::trustzone::rpmb::Rpmb;
use ironsafe_crypto::cert::{Certificate, SubjectInfo};
use ironsafe_crypto::group::Group;
use ironsafe_crypto::hkdf;
use ironsafe_crypto::schnorr::KeyPair;

/// The device manufacturer: root of trust for all its devices.
pub struct Manufacturer {
    group: Group,
    root_keys: KeyPair,
}

impl Manufacturer {
    /// Create a manufacturer identity from a seed.
    pub fn from_seed(group: &Group, seed: &[u8]) -> Self {
        Manufacturer { group: group.clone(), root_keys: KeyPair::derive(group, seed, b"tz-manufacturer-root") }
    }

    /// The manufacturer root public key (what verifiers pin).
    pub fn root_public(&self) -> ironsafe_crypto::schnorr::PublicKey {
        self.root_keys.public.clone()
    }

    /// Fabricate a device: fuse a HUK, provision RPMB, certify the
    /// device attestation key.
    pub fn make_device(
        &self,
        device_id: &str,
        rpmb_blocks: usize,
        rng: &mut (impl rand::Rng + ?Sized),
    ) -> TrustZoneDevice {
        let mut huk = [0u8; 32];
        rng.fill_bytes(&mut huk);
        let attestation_keys = KeyPair::derive(&self.group, &huk, b"tz-attestation-key");
        let device_cert = Certificate::issue(
            &self.group,
            &self.root_keys.secret,
            SubjectInfo {
                name: device_id.to_string(),
                role: "device".to_string(),
                fw_version: 0,
                measurement: Vec::new(),
            },
            attestation_keys.public.clone(),
            rng,
        );
        TrustZoneDevice {
            device_id: device_id.to_string(),
            group: self.group.clone(),
            huk,
            attestation_keys,
            device_cert,
            rpmb: Rpmb::new(rpmb_blocks),
        }
    }
}

/// A TrustZone-capable SoC plus its eMMC RPMB.
pub struct TrustZoneDevice {
    /// Stable device identifier.
    pub device_id: String,
    group: Group,
    huk: [u8; 32],
    attestation_keys: KeyPair,
    /// Manufacturer-issued certificate over the attestation public key.
    pub device_cert: Certificate,
    /// The replay-protected memory block.
    pub rpmb: Rpmb,
}

impl std::fmt::Debug for TrustZoneDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TrustZoneDevice({})", self.device_id)
    }
}

impl TrustZoneDevice {
    /// The group the device signs in.
    pub fn group(&self) -> &Group {
        &self.group
    }

    /// Derive a purpose-specific key from the HUK.
    ///
    /// Only secure-world code may call this on real hardware; in the model
    /// the [`crate::trustzone::ta`] module is the intended caller.
    pub fn derive_huk_key(&self, info: &[u8]) -> [u8; 32] {
        hkdf::derive_key_256(&self.huk, info)
    }

    /// The device's attestation keypair (HUK-derived, ROTPK-certified).
    pub fn attestation_keys(&self) -> &KeyPair {
        &self.attestation_keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn device_cert_chains_to_manufacturer() {
        let group = Group::modp_1024();
        let mfr = Manufacturer::from_seed(&group, b"acme");
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let dev = mfr.make_device("storage-0", 8, &mut rng);
        assert!(dev.device_cert.verify(&group, &mfr.root_public()).is_ok());
        assert_eq!(dev.device_cert.public_key, dev.attestation_keys().public);
    }

    #[test]
    fn other_manufacturer_cannot_certify() {
        let group = Group::modp_1024();
        let mfr = Manufacturer::from_seed(&group, b"acme");
        let other = Manufacturer::from_seed(&group, b"evil");
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let dev = other.make_device("storage-0", 8, &mut rng);
        assert!(dev.device_cert.verify(&group, &mfr.root_public()).is_err());
    }

    #[test]
    fn huk_derivations_are_stable_and_separated() {
        let group = Group::modp_1024();
        let mfr = Manufacturer::from_seed(&group, b"acme");
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let dev = mfr.make_device("storage-0", 8, &mut rng);
        assert_eq!(dev.derive_huk_key(b"rpmb"), dev.derive_huk_key(b"rpmb"));
        assert_ne!(dev.derive_huk_key(b"rpmb"), dev.derive_huk_key(b"task"));
    }

    #[test]
    fn devices_have_distinct_huks() {
        let group = Group::modp_1024();
        let mfr = Manufacturer::from_seed(&group, b"acme");
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let a = mfr.make_device("a", 1, &mut rng);
        let b = mfr.make_device("b", 1, &mut rng);
        assert_ne!(a.derive_huk_key(b"x"), b.derive_huk_key(b"x"));
    }
}
