//! The secure pager: encrypted, integrity- and freshness-protected pages.
//!
//! Composition of the whole §4.1 stack: every page write encrypts + MACs
//! the payload ([`crate::codec`]), folds the MAC into the Merkle tree
//! ([`crate::merkle`]) and (on [`Pager::commit`]) re-binds the root to the
//! RPMB ([`crate::freshness`]). Every page read decrypts, verifies the
//! page MAC *and* verifies the Merkle path against the trusted root — the
//! per-read freshness check that dominates the paper's overhead breakdowns
//! (Figures 8 and 9c).

use crate::blockdev::{BlockDevice, BLOCK_SIZE};
use crate::codec::{PageCodec, PAGE_PAYLOAD};
use crate::freshness::FreshnessManager;
use crate::merkle::{MerkleTree, NodeHash};
use crate::pager::{PageId, Pager, PagerStats};
use crate::{Result, StorageError};
use ironsafe_faults::{retry_with, FaultPlan, FaultSite, RetryPolicy, Transient};
use ironsafe_obs::span::{Span, TraceCtx};
use ironsafe_obs::{Counter, Registry};
use ironsafe_tee::trustzone::{Manufacturer, SecureStorageTa, TrustZoneDevice};
use ironsafe_tee::FlightRecorder;
use rand::SeedableRng;

/// Root value committed while the database is still empty.
const EMPTY_ROOT: NodeHash = [0u8; 32];

/// Static error tag a failed read attempt stamps onto its span (the
/// span still closes normally, so fault-storm traces stay well-formed
/// trees; the tag rides into the Chrome trace as an `error` arg).
fn error_site(e: &StorageError) -> &'static str {
    match e {
        StorageError::DeviceIo(_) => "storage.device.read",
        StorageError::IntegrityViolation(_) => "storage.page.integrity",
        StorageError::FreshnessViolation(_) => "storage.freshness.stale",
        StorageError::Tee(_) => "tee.rpmb",
        StorageError::PageOutOfRange(_) => "storage.page.out_of_range",
        StorageError::BadBufferSize { .. } => "storage.bad_buffer",
        StorageError::WalTorn(_) => "storage.wal.torn",
        StorageError::WalCorrupt(_) => "storage.wal.corrupt",
    }
}

/// Live telemetry counters for the secure-pager hot path.
///
/// The pager owns the cells and bumps them with relaxed atomic adds (no
/// heap traffic, no locks); [`PagerMetrics::register`] attaches the same
/// cells to a [`Registry`] so snapshots observe the pager's work without
/// touching its fast path.
#[derive(Clone, Default)]
pub struct PagerMetrics {
    /// Logical page reads served (`storage.page.read`).
    pub page_reads: Counter,
    /// Logical page writes (`storage.page.write`).
    pub page_writes: Counter,
    /// Page decryptions (`storage.page.decrypt`).
    pub decrypts: Counter,
    /// Page encryptions (`storage.page.encrypt`).
    pub encrypts: Counter,
    /// Per-read Merkle path verifications (`storage.page.hmac_verify`).
    pub hmac_verifies: Counter,
    /// RPMB root commits (`storage.rpmb.write`).
    pub rpmb_writes: Counter,
    /// Verified-node-cache hits (`storage.merkle.cache.hit`): reads whose
    /// freshness check was served by an already-authenticated leaf.
    pub cache_hits: Counter,
    /// Verified-node-cache misses (`storage.merkle.cache.miss`).
    pub cache_misses: Counter,
    /// Verified-node-cache evictions (`storage.merkle.cache.evict`).
    pub cache_evicts: Counter,
}

impl PagerMetrics {
    /// Attach every cell to `registry` under its `storage.*` name.
    pub fn register(&self, registry: &Registry) {
        registry.register_counter("storage.page.read", &self.page_reads);
        registry.register_counter("storage.page.write", &self.page_writes);
        registry.register_counter("storage.page.decrypt", &self.decrypts);
        registry.register_counter("storage.page.encrypt", &self.encrypts);
        registry.register_counter("storage.page.hmac_verify", &self.hmac_verifies);
        registry.register_counter("storage.rpmb.write", &self.rpmb_writes);
        registry.register_counter("storage.merkle.cache.hit", &self.cache_hits);
        registry.register_counter("storage.merkle.cache.miss", &self.cache_misses);
        registry.register_counter("storage.merkle.cache.evict", &self.cache_evicts);
    }
}

/// The secure pager.
pub struct SecurePager {
    tz: TrustZoneDevice,
    ta: SecureStorageTa,
    device: BlockDevice,
    codec: PageCodec,
    /// The database key, kept TEE-resident for deriving the WAL's
    /// encryption/MAC keys (see [`Pager::make_wal`]).
    db_key: [u8; 16],
    merkle: MerkleTree,
    freshness: FreshnessManager,
    trusted_root: NodeHash,
    rng: rand::rngs::StdRng,
    page_reads: u64,
    page_writes: u64,
    metrics: PagerMetrics,
    fault_plan: FaultPlan,
    retry: RetryPolicy,
    /// Reusable batch-read scratch: block staging area and MAC collection,
    /// hoisted onto the pager so fault-retried batches do not re-allocate
    /// per attempt.
    scratch_blocks: Vec<u8>,
    scratch_macs: Vec<[u8; 32]>,
    /// Monotone id assigned to every logical read (single or batch);
    /// refines the ambient [`TraceCtx`] so the spans of one page batch
    /// stitch into the query's trace tree.
    batch_seq: u64,
    /// TEE-resident post-mortem ring (see [`ironsafe_tee::FlightRecorder`]):
    /// every failed read attempt — injected fault or real violation —
    /// is recorded; the serving layer drains it into the audit trail.
    flight: FlightRecorder,
    /// When false, skip the per-read Merkle verification (ablation knob;
    /// the paper's system always verifies).
    pub verify_freshness_on_read: bool,
}

impl SecurePager {
    /// Create a brand-new secure database on `tz`'s device: generates the
    /// database key, stores it in RPMB, and commits the empty root.
    pub fn create(mut tz: TrustZoneDevice, rng_seed: u64) -> Result<Self> {
        let ta = SecureStorageTa::init(&mut tz)?;
        let mut rng = rand::rngs::StdRng::seed_from_u64(rng_seed);
        let mut db_key = [0u8; 16];
        rand::Rng::fill(&mut rng, &mut db_key);
        ta.store_db_key(&mut tz, &db_key, &mut rng)?;
        let codec = PageCodec::from_db_key(&db_key);
        let merkle_key = ironsafe_crypto::hkdf::derive_key_256(&db_key, b"merkle-key");
        let mut merkle = MerkleTree::binary(merkle_key);
        // The verified-node cache lives inside the TEE and is root-epoch
        // keyed, so it is always safe to enable on the secure pager.
        merkle.set_cache_enabled(true);
        let mut freshness = FreshnessManager::new(&ta);
        freshness.commit_root(&ta, &mut tz, &EMPTY_ROOT)?;
        Ok(SecurePager {
            tz,
            ta,
            device: BlockDevice::new(),
            codec,
            db_key,
            merkle,
            freshness,
            trusted_root: EMPTY_ROOT,
            rng,
            page_reads: 0,
            page_writes: 0,
            metrics: PagerMetrics::default(),
            fault_plan: FaultPlan::none(),
            retry: RetryPolicy::default(),
            scratch_blocks: Vec::new(),
            scratch_macs: Vec::new(),
            batch_seq: 0,
            flight: FlightRecorder::with_budget(0),
            verify_freshness_on_read: true,
        })
    }

    /// Reopen an existing database from its (untrusted) medium: unwraps the
    /// database key from RPMB, rebuilds the Merkle tree from the stored
    /// page MACs, and verifies the root against the RPMB value — detecting
    /// rollback and forking before a single page is served.
    pub fn open(mut tz: TrustZoneDevice, mut device: BlockDevice, rng_seed: u64) -> Result<Self> {
        let ta = SecureStorageTa::init(&mut tz)?;
        let mut rng = rand::rngs::StdRng::seed_from_u64(rng_seed);
        let db_key = ta.load_db_key(&tz, &mut rng)?;
        let codec = PageCodec::from_db_key(&db_key);
        let merkle_key = ironsafe_crypto::hkdf::derive_key_256(&db_key, b"merkle-key");

        // Recompute every page MAC from the medium and rebuild the tree.
        let n = device.num_blocks();
        let mut macs = Vec::with_capacity(n as usize);
        let mut block = [0u8; BLOCK_SIZE];
        for id in 0..n {
            device.read_block(id, &mut block)?;
            // The stored trailer must match the recomputed MAC, otherwise
            // the block was tampered with offline.
            let mac = codec.page_mac(id, &block);
            if !ironsafe_crypto::ct_eq(&mac, &block[BLOCK_SIZE - 32..]) {
                return Err(StorageError::IntegrityViolation("stored page MAC mismatch on open"));
            }
            macs.push(mac);
        }
        let mut merkle = MerkleTree::rebuild_from_macs(merkle_key, 2, &macs);
        merkle.set_cache_enabled(true);
        let root = merkle.root().unwrap_or(EMPTY_ROOT);
        let mut freshness = FreshnessManager::new(&ta);
        freshness.verify_root(&ta, &tz, &root, &mut rng)?;
        Ok(SecurePager {
            tz,
            ta,
            device,
            codec,
            db_key,
            merkle,
            freshness,
            trusted_root: root,
            rng,
            page_reads: 0,
            page_writes: 0,
            metrics: PagerMetrics::default(),
            fault_plan: FaultPlan::none(),
            retry: RetryPolicy::default(),
            scratch_blocks: Vec::new(),
            scratch_macs: Vec::new(),
            batch_seq: 0,
            flight: FlightRecorder::with_budget(0),
            verify_freshness_on_read: true,
        })
    }

    /// Tear down into `(trustzone device, medium)` — simulates a power-off;
    /// reopen with [`SecurePager::open`].
    pub fn into_parts(self) -> (TrustZoneDevice, BlockDevice) {
        (self.tz, self.device)
    }

    /// Crash recovery: rebuild the database from the WAL `medium` and the
    /// surviving TrustZone device, ignoring whatever state the crashed
    /// block medium was left in. The RPMB-bound chain-head MAC picks the
    /// committed replay boundary; everything past it — torn frames,
    /// tampered bytes, appended-but-unbound records — is discarded and
    /// reported, never replayed. The rebuilt medium then goes through the
    /// full [`SecurePager::open`] path, so its Merkle root is re-verified
    /// against the RPMB before a single page is served.
    pub fn recover(
        mut tz: TrustZoneDevice,
        medium: &crate::wal::WalMedium,
        rng_seed: u64,
    ) -> Result<(SecurePager, crate::wal::RecoveryInfo)> {
        let ta = SecureStorageTa::init(&mut tz)?;
        let mut rng = rand::rngs::StdRng::seed_from_u64(rng_seed);
        let db_key = ta.load_db_key(&tz, &mut rng)?;
        let mut freshness = FreshnessManager::new(&ta);
        let head = freshness.committed_wal_head(&ta, &tz, &mut rng)?;
        let state = crate::wal::Wal::recover_medium(&db_key, medium, &head)?;
        let pager = SecurePager::open(tz, state.device, rng_seed)?;
        // open() verified the rebuilt root against the RPMB; cross-check
        // it also matches what the committed record claimed, closing the
        // loop between log and freshness store.
        if pager.trusted_root != state.root {
            return Err(StorageError::WalCorrupt(
                "recovered medium root does not match the committed WAL record",
            ));
        }
        let info = crate::wal::RecoveryInfo {
            epoch: state.epoch,
            catalog: state.catalog,
            replayed: state.replayed,
            tail: state.tail,
        };
        Ok((pager, info))
    }

    /// The untrusted medium (attacker interface).
    pub fn device_mut(&mut self) -> &mut BlockDevice {
        &mut self.device
    }

    /// The untrusted medium, read-only.
    pub fn device(&self) -> &BlockDevice {
        &self.device
    }

    /// Current trusted Merkle root.
    pub fn trusted_root(&self) -> NodeHash {
        self.trusted_root
    }

    /// Handles onto the live telemetry counters.
    pub fn metrics(&self) -> &PagerMetrics {
        &self.metrics
    }

    /// Run `f`, rolling the crypto/Merkle work counters back to their
    /// pre-call snapshot on failure. This is what makes batch reads
    /// stats-atomic: a mid-batch decrypt or freshness failure leaves no
    /// partial counts behind, so a retried attempt is not
    /// double-counted and an aborted query charges nothing.
    fn with_stats_rollback<T>(&mut self, f: impl FnOnce(&mut Self) -> Result<T>) -> Result<T> {
        let decrypts = self.codec.decrypt_count;
        let encrypts = self.codec.encrypt_count;
        let merkle_visits = self.merkle.node_visits();
        // Verified-node-cache insertions are staged the same way: nodes are
        // only ever cached by a *successful* verification (the last step of
        // an attempt), but the journal makes that explicit — a failed
        // attempt commits neither counters nor cache state.
        let cache_cp = self.merkle.cache_checkpoint();
        match f(self) {
            ok @ Ok(_) => {
                self.merkle.cache_commit();
                ok
            }
            Err(e) => {
                self.codec.decrypt_count = decrypts;
                self.codec.encrypt_count = encrypts;
                self.merkle.restore_node_visits(merkle_visits);
                self.merkle.cache_rollback(cache_cp);
                Err(e)
            }
        }
    }

    /// One read attempt for a single page, with fault hooks. Injected
    /// corruption flips bytes in the *local* block copy — the medium
    /// keeps the pristine block, so a retry genuinely recovers.
    ///
    /// Each attempt runs inside its own span; a failed attempt tags the
    /// span with its error site *before* the stats rollback, so chaos
    /// traces keep one closed, error-tagged span per rolled-back attempt
    /// instead of a dangling open node. The failure is also recorded in
    /// the flight ring (which, unlike the stats, deliberately survives
    /// the rollback — it exists to remember failed attempts).
    fn try_read_page(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        let span = Span::enter("pager/read_page");
        let result = self.try_read_page_inner(id, buf);
        if let Err(e) = &result {
            span.fail(error_site(e));
            let kind = if e.is_transient() { "fault" } else { "violation" };
            self.flight.record(kind, format!("read page={id}: {e}"));
        }
        result
    }

    fn try_read_page_inner(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        if self.fault_plan.should_fire(FaultSite::DeviceRead) {
            return Err(StorageError::DeviceIo("injected device read error"));
        }
        let mut block = [0u8; BLOCK_SIZE];
        self.device.read_block(id, &mut block)?;
        if self.fault_plan.should_fire(FaultSite::PageBitFlip) {
            block[17] ^= 0x01;
        }
        if self.fault_plan.should_fire(FaultSite::PageMacCorrupt) {
            block[BLOCK_SIZE - 1] ^= 0x01;
        }
        let mac = self.codec.decrypt_page(id, &block, buf)?;
        if self.verify_freshness_on_read {
            if self.fault_plan.should_fire(FaultSite::FreshnessStale) {
                return Err(StorageError::FreshnessViolation(
                    "stale page observed (injected rollback)",
                ));
            }
            if !self.merkle.verify(id, &mac, &self.trusted_root) {
                return Err(StorageError::FreshnessViolation("Merkle path mismatch on read"));
            }
        }
        Ok(())
    }

    /// One attempt at the pipelined batch read (see [`Pager::read_pages`]).
    /// The scratch buffers are taken off the pager for the duration of the
    /// attempt and restored afterwards — retried batches reuse the same
    /// allocations instead of churning the allocator.
    fn try_read_pages(&mut self, ids: &[PageId], out: &mut [u8]) -> Result<()> {
        let span = Span::enter("pager/read_batch");
        let mut blocks = std::mem::take(&mut self.scratch_blocks);
        let mut macs = std::mem::take(&mut self.scratch_macs);
        blocks.clear();
        blocks.resize(ids.len() * BLOCK_SIZE, 0);
        macs.clear();
        let result = self.try_read_pages_inner(ids, out, &mut blocks, &mut macs);
        self.scratch_blocks = blocks;
        self.scratch_macs = macs;
        if let Err(e) = &result {
            // Tag-then-close (via drop): a faulted, rolled-back attempt
            // still leaves a well-formed trace tree behind.
            span.fail(error_site(e));
            let kind = if e.is_transient() { "fault" } else { "violation" };
            self.flight
                .record(kind, format!("read batch={} pages={}: {e}", self.batch_seq, ids.len()));
        }
        result
    }

    fn try_read_pages_inner(
        &mut self,
        ids: &[PageId],
        out: &mut [u8],
        blocks: &mut [u8],
        macs: &mut Vec<[u8; 32]>,
    ) -> Result<()> {
        // Pass 1: device I/O.
        for (id, block) in ids.iter().zip(blocks.chunks_exact_mut(BLOCK_SIZE)) {
            if self.fault_plan.should_fire(FaultSite::DeviceRead) {
                return Err(StorageError::DeviceIo("injected device read error"));
            }
            self.device.read_block(*id, block.try_into().expect("BLOCK_SIZE chunk"))?;
            if self.fault_plan.should_fire(FaultSite::PageBitFlip) {
                block[17] ^= 0x01;
            }
            if self.fault_plan.should_fire(FaultSite::PageMacCorrupt) {
                block[BLOCK_SIZE - 1] ^= 0x01;
            }
        }
        // Pass 2: decryption (collect the page MACs for verification).
        for ((id, block), buf) in
            ids.iter().zip(blocks.chunks_exact(BLOCK_SIZE)).zip(out.chunks_exact_mut(PAGE_PAYLOAD))
        {
            macs.push(self.codec.decrypt_page(*id, block.try_into().expect("BLOCK_SIZE chunk"), buf)?);
        }
        // Pass 3: shared-path freshness verification against the trusted
        // root. The per-page stale-read faults are drawn up front (one per
        // entry, exactly as the per-page loop drew them) so seeded fault
        // plans stay bit-aligned with the pre-batched behavior, then the
        // whole batch climbs the tree once via `verify_batch`.
        if self.verify_freshness_on_read {
            for _ in ids {
                if self.fault_plan.should_fire(FaultSite::FreshnessStale) {
                    return Err(StorageError::FreshnessViolation(
                        "stale page observed (injected rollback)",
                    ));
                }
            }
            if !self.merkle.verify_batch(ids, macs, &self.trusted_root) {
                return Err(StorageError::FreshnessViolation("Merkle path mismatch on read"));
            }
        }
        Ok(())
    }

    /// One write attempt for a single page. The fault draw comes first
    /// (a faulted attempt consumes no IV bytes, keeping the ciphertext
    /// stream seed-stable across retries), then encryption, then the
    /// device write; the Merkle update and trusted-root advance are the
    /// final, infallible steps — no faulted sub-step can leave the tree
    /// ahead of the medium or vice versa.
    fn try_write_page(&mut self, id: PageId, data: &[u8]) -> Result<()> {
        if self.fault_plan.should_fire(FaultSite::DeviceWrite) {
            let e = StorageError::DeviceIo("injected device write error");
            self.flight.record("fault", format!("write page={id}: {e}"));
            return Err(e);
        }
        let (block, mac) = self.codec.encrypt_page(id, data, &mut self.rng)?;
        self.device.write_block(id, &block)?;
        self.merkle.update(id, &mac);
        self.trusted_root = self.merkle.root().expect("non-empty");
        Ok(())
    }

    /// One allocation attempt: encrypt the zero page *before* growing the
    /// device, so a faulted attempt appends no block and the Merkle tree
    /// never holds a leaf for a page the medium does not have.
    fn try_allocate_page(&mut self) -> Result<PageId> {
        if self.fault_plan.should_fire(FaultSite::DeviceWrite) {
            let e = StorageError::DeviceIo("injected device write error");
            self.flight.record("fault", format!("allocate page: {e}"));
            return Err(e);
        }
        let id = self.device.num_blocks();
        // Materialize an encrypted zero page so the medium never holds
        // plaintext and the Merkle tree covers every allocated page.
        let zeros = vec![0u8; PAGE_PAYLOAD];
        let (block, mac) = self.codec.encrypt_page(id, &zeros, &mut self.rng)?;
        let appended = self.device.append_block();
        debug_assert_eq!(appended, id);
        self.device.write_block(id, &block)?;
        let leaf = self.merkle.append(&mac);
        debug_assert_eq!(leaf, id);
        self.trusted_root = self.merkle.root().expect("non-empty");
        Ok(id)
    }

    /// Commit the cache tallies accumulated since `before` to the live
    /// telemetry counters (called only after a fully successful read, so
    /// rolled-back attempts never surface).
    fn commit_cache_metrics(&mut self, before: crate::merkle::NodeCacheStats) {
        let after = self.merkle.cache_stats();
        self.metrics.cache_hits.add(after.hits - before.hits);
        self.metrics.cache_misses.add(after.misses - before.misses);
        self.metrics.cache_evicts.add(after.evicts - before.evicts);
    }
}

impl Pager for SecurePager {
    fn num_pages(&self) -> u64 {
        self.device.num_blocks()
    }

    fn allocate_page(&mut self) -> Result<PageId> {
        // Staged like the read paths: the fault draw and the encryption
        // happen before the device or the Merkle tree is touched, and the
        // crypto counter rolls back on a faulted attempt — a failed
        // allocation leaves no appended block, no orphan leaf, no stats.
        let plan = self.fault_plan.clone();
        let policy = self.retry;
        let id = retry_with(&plan, &policy, || {
            self.with_stats_rollback(|p| p.try_allocate_page())
        })?;
        self.metrics.encrypts.inc();
        Ok(id)
    }

    fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        // A single read is its own (one-page) batch for trace purposes:
        // refine the ambient ctx so every attempt span carries the id.
        self.batch_seq += 1;
        let _ctx = TraceCtx::current().map(|c| c.with_page_batch(self.batch_seq).install());
        let plan = self.fault_plan.clone();
        let policy = self.retry;
        let cache_before = self.merkle.cache_stats();
        retry_with(&plan, &policy, || {
            self.with_stats_rollback(|p| p.try_read_page(id, buf))
        })?;
        // Stats and telemetry commit only once the read fully succeeded,
        // so failed/retried attempts charge nothing.
        self.page_reads += 1;
        self.metrics.page_reads.inc();
        self.metrics.decrypts.inc();
        if self.verify_freshness_on_read {
            self.metrics.hmac_verifies.inc();
        }
        self.commit_cache_metrics(cache_before);
        Ok(())
    }

    /// Pipelined batch read: one pass of device I/O for the whole batch,
    /// one pass of decryption, one pass of Merkle verification, with the
    /// telemetry counters bumped once per pass instead of once per page.
    /// The batch is **stats-atomic**: either the whole batch succeeds
    /// and charges exactly `ids.len()` single-page reads' worth of
    /// counters, or it fails and charges nothing — a mid-batch
    /// decrypt/MAC/freshness failure (or a retried transient fault)
    /// never leaves partial or double counts behind.
    fn read_pages(&mut self, ids: &[PageId], out: &mut [u8]) -> Result<()> {
        if out.len() != ids.len() * PAGE_PAYLOAD {
            return Err(StorageError::BadBufferSize {
                expected: ids.len() * PAGE_PAYLOAD,
                got: out.len(),
            });
        }
        // Reject out-of-range ids with a typed error before any device
        // I/O, fault draws, or stats work — a malformed batch must not
        // consume retry budget or perturb seeded fault plans.
        let num_pages = self.device.num_blocks();
        if let Some(&bad) = ids.iter().find(|&&id| id >= num_pages) {
            return Err(StorageError::PageOutOfRange(bad));
        }
        let n = ids.len() as u64;
        // One batch id per logical batch (not per attempt): a retried
        // batch's attempt spans all carry the same id, so a chaos trace
        // shows the retries of one batch grouped together.
        self.batch_seq += 1;
        let _ctx = TraceCtx::current().map(|c| c.with_page_batch(self.batch_seq).install());
        let plan = self.fault_plan.clone();
        let policy = self.retry;
        let cache_before = self.merkle.cache_stats();
        retry_with(&plan, &policy, || {
            self.with_stats_rollback(|p| p.try_read_pages(ids, out))
        })?;
        self.page_reads += n;
        self.metrics.page_reads.add(n);
        self.metrics.decrypts.add(n);
        if self.verify_freshness_on_read {
            self.metrics.hmac_verifies.add(n);
        }
        self.commit_cache_metrics(cache_before);
        Ok(())
    }

    fn write_page(&mut self, id: PageId, data: &[u8]) -> Result<()> {
        if id >= self.device.num_blocks() {
            return Err(StorageError::PageOutOfRange(id));
        }
        // Staged commit, mirroring `read_pages`: every fallible sub-step
        // (fault draw, encryption, device write) runs before the Merkle
        // mutation, inside the stats journal — a faulted attempt rolls
        // the crypto counters back and leaves the tree and trusted root
        // untouched, so a bounded retry starts from a clean slate.
        let plan = self.fault_plan.clone();
        let policy = self.retry;
        retry_with(&plan, &policy, || {
            self.with_stats_rollback(|p| p.try_write_page(id, data))
        })?;
        // Counters commit only once the write fully succeeded.
        self.page_writes += 1;
        self.metrics.page_writes.inc();
        self.metrics.encrypts.inc();
        Ok(())
    }

    fn commit(&mut self) -> Result<()> {
        let root = self.trusted_root;
        let plan = self.fault_plan.clone();
        let policy = self.retry;
        // An injected `tee.rpmb.write_fail` surfaces as a transient
        // `RpmbBusy`; the client recomputes the write counter on each
        // attempt, so the retried commit authenticates cleanly.
        retry_with(&plan, &policy, || {
            self.freshness.commit_root(&self.ta, &mut self.tz, &root)
        })?;
        // Counted only once the root actually landed in the RPMB.
        self.metrics.rpmb_writes.inc();
        Ok(())
    }

    fn commit_bound(&mut self, wal_head_mac: &[u8; 32]) -> Result<()> {
        let root = self.trusted_root;
        let plan = self.fault_plan.clone();
        let policy = self.retry;
        // The group-commit bind: root MAC and WAL chain head land in one
        // authenticated RPMB write, so N batched transactions pay a
        // single RPMB round trip between them.
        retry_with(&plan, &policy, || {
            self.freshness.commit_root_with_wal(&self.ta, &mut self.tz, &root, wal_head_mac)
        })?;
        self.metrics.rpmb_writes.inc();
        Ok(())
    }

    fn export_block(&self, id: PageId) -> Option<Vec<u8>> {
        self.device.raw_read(id).map(|b| b.to_vec())
    }

    fn take_parts(&mut self) -> Option<(TrustZoneDevice, BlockDevice)> {
        // Leave a husk behind whose TrustZone device shares no keys with
        // the real one: the TA's RPMB frames no longer authenticate, so
        // anything still holding this pager fail-stops with typed TEE
        // errors instead of silently serving a dead store.
        let group = ironsafe_crypto::group::Group::modp_1024();
        let husk = Manufacturer::from_seed(&group, b"torn-down-husk")
            .make_device("torn-down-husk", 1, &mut self.rng);
        let tz = std::mem::replace(&mut self.tz, husk);
        let device = std::mem::take(&mut self.device);
        Some((tz, device))
    }

    fn make_wal(&self, rng_seed: u64) -> Option<crate::wal::Wal> {
        // The WAL's keys derive from the same database key as the pages,
        // so the journal is exactly as confidential as what it journals.
        Some(crate::wal::Wal::new(&self.db_key, rng_seed))
    }

    fn current_root(&self) -> [u8; 32] {
        self.trusted_root
    }

    fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.tz.rpmb.set_fault_plan(plan.clone());
        self.fault_plan = plan;
    }

    fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    fn set_merkle_cache_enabled(&mut self, enabled: bool) {
        self.merkle.set_cache_enabled(enabled);
    }

    fn set_merkle_cache_capacity(&mut self, capacity: usize) {
        self.merkle.set_cache_capacity(capacity);
    }

    fn set_flight_budget(&mut self, budget_bytes: u64) {
        self.flight = FlightRecorder::with_budget(budget_bytes);
    }

    fn take_flight_dump(&mut self) -> Vec<String> {
        self.flight.dump()
    }

    fn stats(&self) -> PagerStats {
        PagerStats {
            page_reads: self.page_reads,
            page_writes: self.page_writes,
            decrypts: self.codec.decrypt_count,
            encrypts: self.codec.encrypt_count,
            merkle_nodes: self.merkle.node_visits(),
            rpmb_ops: self.freshness.rpmb_reads + self.freshness.rpmb_writes,
        }
    }

    fn register_metrics(&self, registry: &Registry) {
        self.metrics.register(registry);
    }

    fn reset_stats(&mut self) {
        self.page_reads = 0;
        self.page_writes = 0;
        self.codec.decrypt_count = 0;
        self.codec.encrypt_count = 0;
        self.merkle.reset_counters();
        self.freshness.rpmb_reads = 0;
        self.freshness.rpmb_writes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ironsafe_crypto::group::Group;
    use ironsafe_tee::trustzone::Manufacturer;

    fn fresh_device(name: &str) -> TrustZoneDevice {
        let group = Group::modp_1024();
        let mfr = Manufacturer::from_seed(&group, b"acme");
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        mfr.make_device(name, 8, &mut rng)
    }

    fn payload(tag: u8) -> Vec<u8> {
        let mut p = vec![0u8; PAGE_PAYLOAD];
        p[0] = tag;
        p[PAGE_PAYLOAD - 1] = tag;
        p
    }

    #[test]
    fn create_write_read_roundtrip() {
        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        let a = pager.allocate_page().unwrap();
        let b = pager.allocate_page().unwrap();
        pager.write_page(a, &payload(1)).unwrap();
        pager.write_page(b, &payload(2)).unwrap();
        pager.commit().unwrap();
        let mut buf = vec![0u8; PAGE_PAYLOAD];
        pager.read_page(a, &mut buf).unwrap();
        assert_eq!(buf, payload(1));
        pager.read_page(b, &mut buf).unwrap();
        assert_eq!(buf, payload(2));
    }

    #[test]
    fn medium_never_holds_plaintext() {
        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        let id = pager.allocate_page().unwrap();
        let data = payload(0xcd);
        pager.write_page(id, &data).unwrap();
        let raw = pager.device().raw_read(id).unwrap();
        // The distinctive plaintext byte must not appear at its position.
        assert_ne!(raw[16], 0xcd, "first payload byte is encrypted");
        let zeros = raw.iter().filter(|&&b| b == 0).count();
        assert!(zeros < BLOCK_SIZE / 8, "ciphertext looks random");
    }

    #[test]
    fn offline_tamper_detected_on_read() {
        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        let id = pager.allocate_page().unwrap();
        pager.write_page(id, &payload(7)).unwrap();
        pager.device_mut().raw_tamper(id, 100, 0xff);
        let mut buf = vec![0u8; PAGE_PAYLOAD];
        assert!(matches!(
            pager.read_page(id, &mut buf),
            Err(StorageError::IntegrityViolation(_))
        ));
    }

    #[test]
    fn displaced_page_detected() {
        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        let a = pager.allocate_page().unwrap();
        let b = pager.allocate_page().unwrap();
        pager.write_page(a, &payload(1)).unwrap();
        pager.write_page(b, &payload(2)).unwrap();
        pager.device_mut().raw_displace(a, b);
        let mut buf = vec![0u8; PAGE_PAYLOAD];
        assert!(pager.read_page(b, &mut buf).is_err(), "page id bound into MAC");
    }

    #[test]
    fn rollback_across_reboot_detected() {
        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        let id = pager.allocate_page().unwrap();
        pager.write_page(id, &payload(1)).unwrap();
        pager.commit().unwrap();
        let stale = pager.device().raw_snapshot();

        pager.write_page(id, &payload(2)).unwrap();
        pager.commit().unwrap();

        // Power off; attacker restores the stale medium; reboot.
        let (tz, mut medium) = pager.into_parts();
        medium.raw_restore(stale);
        assert!(matches!(
            SecurePager::open(tz, medium, 2),
            Err(StorageError::FreshnessViolation(_))
        ));
    }

    #[test]
    fn clean_reboot_reopens_and_serves() {
        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        let id = pager.allocate_page().unwrap();
        pager.write_page(id, &payload(9)).unwrap();
        pager.commit().unwrap();
        let (tz, medium) = pager.into_parts();
        let mut pager = SecurePager::open(tz, medium, 2).unwrap();
        let mut buf = vec![0u8; PAGE_PAYLOAD];
        pager.read_page(id, &mut buf).unwrap();
        assert_eq!(buf, payload(9));
    }

    #[test]
    fn uncommitted_writes_lost_to_rollback_are_detected() {
        // Write without commit, snapshot, write more, restore snapshot:
        // reopen must fail because RPMB holds the older committed root.
        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        let id = pager.allocate_page().unwrap();
        pager.write_page(id, &payload(1)).unwrap();
        pager.commit().unwrap();
        pager.write_page(id, &payload(2)).unwrap();
        // No commit. Reboot with the medium as-is: root mismatch.
        let (tz, medium) = pager.into_parts();
        assert!(matches!(
            SecurePager::open(tz, medium, 3),
            Err(StorageError::FreshnessViolation(_))
        ));
    }

    #[test]
    fn forked_replica_detected() {
        // A fork: copy the medium to a second "replica" and advance the
        // original. The replica then fails to open against the RPMB state.
        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        let id = pager.allocate_page().unwrap();
        pager.write_page(id, &payload(1)).unwrap();
        pager.commit().unwrap();
        let fork = pager.device().clone();
        pager.write_page(id, &payload(2)).unwrap();
        pager.commit().unwrap();
        let (tz, _current) = pager.into_parts();
        assert!(matches!(
            SecurePager::open(tz, fork, 4),
            Err(StorageError::FreshnessViolation(_))
        ));
    }

    #[test]
    fn stats_reflect_crypto_work() {
        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        let id = pager.allocate_page().unwrap();
        pager.reset_stats();
        pager.write_page(id, &payload(1)).unwrap();
        let mut buf = vec![0u8; PAGE_PAYLOAD];
        pager.read_page(id, &mut buf).unwrap();
        let s = pager.stats();
        assert_eq!(s.page_reads, 1);
        assert_eq!(s.page_writes, 1);
        assert_eq!(s.encrypts, 1);
        assert_eq!(s.decrypts, 1);
        assert!(s.merkle_nodes > 0, "freshness verification visited nodes");
    }

    #[test]
    fn freshness_ablation_skips_merkle_reads() {
        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        let id = pager.allocate_page().unwrap();
        pager.write_page(id, &payload(1)).unwrap();
        pager.reset_stats();
        pager.verify_freshness_on_read = false;
        let mut buf = vec![0u8; PAGE_PAYLOAD];
        pager.read_page(id, &mut buf).unwrap();
        assert_eq!(pager.stats().merkle_nodes, 0);
    }

    #[test]
    fn batched_reads_match_looped_reads_bit_for_bit() {
        let mut a = SecurePager::create(fresh_device("s0"), 1).unwrap();
        let mut b = SecurePager::create(fresh_device("s0"), 1).unwrap();
        let n = 6u64;
        for i in 0..n {
            let ida = a.allocate_page().unwrap();
            let idb = b.allocate_page().unwrap();
            a.write_page(ida, &payload(i as u8)).unwrap();
            b.write_page(idb, &payload(i as u8)).unwrap();
        }
        a.reset_stats();
        b.reset_stats();
        let ids: Vec<PageId> = (0..n).rev().collect();
        let mut batched = vec![0u8; ids.len() * PAGE_PAYLOAD];
        a.read_pages(&ids, &mut batched).unwrap();
        let mut looped = vec![0u8; ids.len() * PAGE_PAYLOAD];
        for (i, id) in ids.iter().enumerate() {
            b.read_page(*id, &mut looped[i * PAGE_PAYLOAD..(i + 1) * PAGE_PAYLOAD]).unwrap();
        }
        assert_eq!(batched, looped);
        assert_eq!(a.stats(), b.stats(), "pipelined batch must charge identical work");
        assert_eq!(a.metrics().decrypts.get(), b.metrics().decrypts.get());
        assert_eq!(a.metrics().hmac_verifies.get(), b.metrics().hmac_verifies.get());
        assert_eq!(a.metrics().page_reads.get(), b.metrics().page_reads.get());
    }

    #[test]
    fn batched_read_detects_tamper() {
        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        for i in 0..4u8 {
            let id = pager.allocate_page().unwrap();
            pager.write_page(id, &payload(i)).unwrap();
        }
        pager.device_mut().raw_tamper(2, 100, 0xff);
        let ids: Vec<PageId> = (0..4).collect();
        let mut out = vec![0u8; ids.len() * PAGE_PAYLOAD];
        assert!(matches!(
            pager.read_pages(&ids, &mut out),
            Err(StorageError::IntegrityViolation(_))
        ));
    }

    #[test]
    fn write_to_unallocated_page_rejected() {
        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        assert_eq!(pager.write_page(0, &payload(1)), Err(StorageError::PageOutOfRange(0)));
    }

    /// Satellite regression: a mid-batch failure must not leave stats
    /// counters partially bumped (which would double-count on retry and
    /// diverge `PagerStats` from the obs counters).
    #[test]
    fn failed_batch_read_charges_no_stats() {
        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        for i in 0..4u8 {
            let id = pager.allocate_page().unwrap();
            pager.write_page(id, &payload(i)).unwrap();
        }
        // Tamper page 2: pages 0 and 1 decrypt fine before the batch dies.
        pager.device_mut().raw_tamper(2, 100, 0xff);
        pager.reset_stats();
        let before_obs = pager.metrics().decrypts.get();
        let ids: Vec<PageId> = (0..4).collect();
        let mut out = vec![0u8; ids.len() * PAGE_PAYLOAD];
        assert!(matches!(
            pager.read_pages(&ids, &mut out),
            Err(StorageError::IntegrityViolation(_))
        ));
        let s = pager.stats();
        assert_eq!(s.page_reads, 0, "failed batch must not count page reads");
        assert_eq!(s.decrypts, 0, "partial decrypts must be rolled back");
        assert_eq!(s.merkle_nodes, 0, "partial Merkle work must be rolled back");
        assert_eq!(pager.metrics().decrypts.get(), before_obs, "obs counter unchanged");
        // Undo the XOR tamper; a subsequent clean read charges exactly
        // its own work on top of the zeroed counters.
        pager.device_mut().raw_tamper(2, 100, 0xff);
        let mut single = vec![0u8; PAGE_PAYLOAD];
        pager.read_page(0, &mut single).unwrap();
        assert_eq!(pager.stats().page_reads, 1);
        assert_eq!(pager.stats().decrypts, 1);
    }

    #[test]
    fn failed_single_read_charges_no_stats() {
        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        let id = pager.allocate_page().unwrap();
        pager.write_page(id, &payload(7)).unwrap();
        pager.device_mut().raw_tamper(id, 100, 0xff);
        pager.reset_stats();
        let mut buf = vec![0u8; PAGE_PAYLOAD];
        assert!(pager.read_page(id, &mut buf).is_err());
        assert_eq!(pager.stats(), PagerStats::default(), "failed read charges nothing");
    }

    #[test]
    fn injected_device_read_fault_recovers_via_retry() {
        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        let id = pager.allocate_page().unwrap();
        pager.write_page(id, &payload(5)).unwrap();
        let plan = FaultPlan::seeded(21).with_nth(FaultSite::DeviceRead, 1);
        pager.set_fault_plan(plan.clone());
        let mut buf = vec![0u8; PAGE_PAYLOAD];
        pager.read_page(id, &mut buf).unwrap();
        assert_eq!(buf, payload(5), "retried read returns correct data");
        assert_eq!(plan.metrics().injected.get(), 1);
        assert_eq!(plan.metrics().recovered.get(), 1);
        assert_eq!(pager.stats().page_reads, 1, "retry does not double-count");
    }

    #[test]
    fn injected_bitflip_is_detected_then_recovered() {
        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        let id = pager.allocate_page().unwrap();
        pager.write_page(id, &payload(9)).unwrap();
        pager.reset_stats();
        let plan = FaultPlan::seeded(22).with_nth(FaultSite::PageBitFlip, 1);
        pager.set_fault_plan(plan.clone());
        let mut buf = vec![0u8; PAGE_PAYLOAD];
        pager.read_page(id, &mut buf).unwrap();
        assert_eq!(buf, payload(9), "medium was pristine; re-read recovers");
        assert_eq!(plan.metrics().recovered.get(), 1);
        assert_eq!(pager.stats().decrypts, 1, "failed decrypt attempt rolled back");
    }

    #[test]
    fn injected_stale_page_is_a_clean_permanent_error() {
        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        let id = pager.allocate_page().unwrap();
        pager.write_page(id, &payload(3)).unwrap();
        let plan = FaultPlan::seeded(23).with_nth(FaultSite::FreshnessStale, 1);
        pager.set_fault_plan(plan.clone());
        let mut buf = vec![0u8; PAGE_PAYLOAD];
        assert!(matches!(
            pager.read_page(id, &mut buf),
            Err(StorageError::FreshnessViolation(_))
        ));
        assert_eq!(plan.metrics().retried.get(), 0, "freshness violations are never retried");
    }

    #[test]
    fn injected_rpmb_write_failure_recovers_on_commit() {
        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        let id = pager.allocate_page().unwrap();
        pager.write_page(id, &payload(1)).unwrap();
        let plan = FaultPlan::seeded(24).with_nth(FaultSite::RpmbWrite, 1);
        pager.set_fault_plan(plan.clone());
        pager.commit().unwrap();
        assert_eq!(plan.metrics().injected.get(), 1);
        assert_eq!(plan.metrics().recovered.get(), 1);
        assert_eq!(pager.metrics().rpmb_writes.get(), 1, "one commit counted once");
        // The committed root survives a reboot (freshness state intact).
        let (tz, medium) = pager.into_parts();
        assert!(SecurePager::open(tz, medium, 9).is_ok());
    }

    /// Satellite: duplicate `PageId`s in one batch are well-defined — each
    /// duplicate is charged as its own logical read (counters identical to
    /// the looped equivalent) and every output slot holds its page's bytes,
    /// even though `verify_batch` dedups the shared climb.
    #[test]
    fn batched_read_with_duplicate_ids_is_well_defined() {
        let mut a = SecurePager::create(fresh_device("s0"), 1).unwrap();
        let mut b = SecurePager::create(fresh_device("s0"), 1).unwrap();
        for i in 0..4u64 {
            let ida = a.allocate_page().unwrap();
            let idb = b.allocate_page().unwrap();
            a.write_page(ida, &payload(i as u8)).unwrap();
            b.write_page(idb, &payload(i as u8)).unwrap();
        }
        a.reset_stats();
        b.reset_stats();
        let ids: Vec<PageId> = vec![2, 0, 2, 2, 3, 0];
        let mut batched = vec![0u8; ids.len() * PAGE_PAYLOAD];
        a.read_pages(&ids, &mut batched).unwrap();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(
                &batched[i * PAGE_PAYLOAD..(i + 1) * PAGE_PAYLOAD],
                &payload(*id as u8)[..],
                "slot {i} holds page {id}'s payload"
            );
        }
        let mut looped = vec![0u8; ids.len() * PAGE_PAYLOAD];
        for (i, id) in ids.iter().enumerate() {
            b.read_page(*id, &mut looped[i * PAGE_PAYLOAD..(i + 1) * PAGE_PAYLOAD]).unwrap();
        }
        assert_eq!(batched, looped);
        assert_eq!(a.stats(), b.stats(), "duplicates charge like their looped equivalent");
        assert_eq!(a.stats().page_reads, ids.len() as u64);
    }

    /// Satellite: an id beyond `num_pages` in a batch is a typed error
    /// raised before any I/O — no stats, no retry budget, no fault draws.
    #[test]
    fn batched_read_with_out_of_range_id_is_typed_and_chargeless() {
        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        for i in 0..3u8 {
            let id = pager.allocate_page().unwrap();
            pager.write_page(id, &payload(i)).unwrap();
        }
        pager.reset_stats();
        // A fault plan that would fire on the very first device read: the
        // malformed batch must be rejected before the plan is consulted.
        let plan = FaultPlan::seeded(31).with_rate(FaultSite::DeviceRead, 1.0);
        pager.set_fault_plan(plan.clone());
        let ids: Vec<PageId> = vec![0, 1, 7];
        let mut out = vec![0u8; ids.len() * PAGE_PAYLOAD];
        assert_eq!(pager.read_pages(&ids, &mut out), Err(StorageError::PageOutOfRange(7)));
        assert_eq!(pager.stats(), PagerStats::default(), "no work charged");
        assert_eq!(plan.metrics().injected.get(), 0, "no fault draws consumed");
    }

    /// The verified-node cache is not a security hole: after a warm scan,
    /// page tampering and MAC corruption are still detected (the per-read
    /// leaf-hash compare never goes away).
    #[test]
    fn post_warm_corruption_still_detected() {
        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        for i in 0..6u8 {
            let id = pager.allocate_page().unwrap();
            pager.write_page(id, &payload(i)).unwrap();
        }
        // Warm: full batched scan, then a repeat that hits the cache.
        let ids: Vec<PageId> = (0..6).collect();
        let mut out = vec![0u8; ids.len() * PAGE_PAYLOAD];
        pager.read_pages(&ids, &mut out).unwrap();
        let hits_before = pager.metrics().cache_hits.get();
        pager.read_pages(&ids, &mut out).unwrap();
        assert!(pager.metrics().cache_hits.get() > hits_before, "repeat scan hits the cache");
        // Tamper a page body post-warm: detected (stored MAC mismatch).
        pager.device_mut().raw_tamper(2, 100, 0xff);
        assert!(pager.read_pages(&ids, &mut out).is_err(), "post-warm tamper detected");
        let mut single = vec![0u8; PAGE_PAYLOAD];
        assert!(pager.read_page(2, &mut single).is_err());
        pager.device_mut().raw_tamper(2, 100, 0xff); // undo
        // Corrupt the stored MAC trailer post-warm: detected.
        pager.device_mut().raw_tamper(3, BLOCK_SIZE - 1, 0x01);
        assert!(pager.read_pages(&ids, &mut out).is_err(), "post-warm MAC corruption detected");
        pager.device_mut().raw_tamper(3, BLOCK_SIZE - 1, 0x01); // undo
        pager.read_pages(&ids, &mut out).unwrap();
    }

    /// Post-warm stale-root rollback is still detected: warming the cache
    /// against one root, then rolling the medium back across a reboot,
    /// must fail exactly as it did without the cache.
    #[test]
    fn post_warm_rollback_across_reboot_detected() {
        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        let id = pager.allocate_page().unwrap();
        pager.write_page(id, &payload(1)).unwrap();
        pager.commit().unwrap();
        let stale = pager.device().raw_snapshot();
        pager.write_page(id, &payload(2)).unwrap();
        pager.commit().unwrap();
        // Warm the cache against the current (newer) root.
        let mut buf = vec![0u8; PAGE_PAYLOAD];
        pager.read_page(id, &mut buf).unwrap();
        pager.read_page(id, &mut buf).unwrap();
        let (tz, mut medium) = pager.into_parts();
        medium.raw_restore(stale);
        assert!(matches!(
            SecurePager::open(tz, medium, 8),
            Err(StorageError::FreshnessViolation(_))
        ));
    }

    /// A write between warm scans bumps the root epoch: the next read
    /// re-verifies from scratch against the new root and repopulates.
    #[test]
    fn write_invalidates_warm_cache_and_reads_reverify() {
        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        for i in 0..4u8 {
            let id = pager.allocate_page().unwrap();
            pager.write_page(id, &payload(i)).unwrap();
        }
        let ids: Vec<PageId> = (0..4).collect();
        let mut out = vec![0u8; ids.len() * PAGE_PAYLOAD];
        pager.read_pages(&ids, &mut out).unwrap();
        pager.read_pages(&ids, &mut out).unwrap();
        let misses_before = pager.metrics().cache_misses.get();
        pager.write_page(1, &payload(0xaa)).unwrap();
        pager.read_pages(&ids, &mut out).unwrap();
        assert_eq!(
            pager.metrics().cache_misses.get(),
            misses_before + ids.len() as u64,
            "every page re-verified after the epoch bump"
        );
        assert_eq!(&out[PAGE_PAYLOAD..2 * PAGE_PAYLOAD], &payload(0xaa)[..]);
    }

    /// A fault-failed batch attempt must not leave cache state or cache
    /// telemetry behind (rollback covers the verified-node cache too).
    #[test]
    fn failed_attempt_rolls_back_cache_state_and_metrics() {
        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        for i in 0..4u8 {
            let id = pager.allocate_page().unwrap();
            pager.write_page(id, &payload(i)).unwrap();
        }
        // Freshness faults are permanent (never retried): the failed batch
        // must charge nothing, including cache counters.
        let plan = FaultPlan::seeded(41).with_nth(FaultSite::FreshnessStale, 1);
        pager.set_fault_plan(plan);
        pager.reset_stats();
        let ids: Vec<PageId> = (0..4).collect();
        let mut out = vec![0u8; ids.len() * PAGE_PAYLOAD];
        assert!(matches!(
            pager.read_pages(&ids, &mut out),
            Err(StorageError::FreshnessViolation(_))
        ));
        assert_eq!(pager.stats(), PagerStats::default());
        assert_eq!(pager.metrics().cache_hits.get(), 0);
        assert_eq!(pager.metrics().cache_misses.get(), 0);
        // Clean run afterwards: all four are misses (nothing was cached by
        // the failed attempt), then all four hit.
        pager.set_fault_plan(FaultPlan::none());
        pager.read_pages(&ids, &mut out).unwrap();
        assert_eq!(pager.metrics().cache_misses.get(), 4);
        pager.read_pages(&ids, &mut out).unwrap();
        assert_eq!(pager.metrics().cache_hits.get(), 4);
    }

    /// Satellite regression: under a fault storm, every span opened by a
    /// read attempt — including attempts that faulted and rolled back —
    /// must close, tagged with its error site, so the trace is a
    /// well-formed tree a Chrome-trace viewer can render.
    #[test]
    fn fault_storm_traces_are_well_formed_trees() {
        use ironsafe_obs::span::Trace;

        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        for i in 0..6u8 {
            let id = pager.allocate_page().unwrap();
            pager.write_page(id, &payload(i)).unwrap();
        }
        let plan = FaultPlan::seeded(97)
            .with_rate(FaultSite::DeviceRead, 0.25)
            .with_rate(FaultSite::PageBitFlip, 0.15)
            .with_rate(FaultSite::FreshnessStale, 0.05);
        pager.set_fault_plan(plan);

        let trace = Trace::new();
        {
            let _g = trace.install();
            let _ctx = TraceCtx::query(1).install();
            let ids: Vec<PageId> = (0..6).collect();
            let mut out = vec![0u8; ids.len() * PAGE_PAYLOAD];
            let mut single = vec![0u8; PAGE_PAYLOAD];
            for _ in 0..20 {
                // Both outcomes are fine — exhausted batches included;
                // the tree must be well-formed either way.
                let _ = pager.read_pages(&ids, &mut out);
                let _ = pager.read_page(3, &mut single);
            }
        }
        let snap = trace.snapshot();
        assert!(snap.is_well_formed(), "every span closed, parents before children");
        let errors = snap.error_spans();
        assert!(!errors.is_empty(), "the storm produced error-tagged spans");
        for span in &errors {
            let ctx = span.ctx.expect("attempt spans carry the refined ctx");
            assert_eq!(ctx.query_id, 1);
            assert!(ctx.page_batch_id.is_some(), "batch id refined onto {}", span.name);
        }
    }

    /// Tentpole regression: the flight-recorder dump for a given chaos
    /// seed is byte-identical run to run, and failed attempts survive
    /// the stats rollback (that forensic window is the recorder's job).
    #[test]
    fn flight_dump_is_byte_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
            for i in 0..6u8 {
                let id = pager.allocate_page().unwrap();
                pager.write_page(id, &payload(i)).unwrap();
            }
            pager.set_flight_budget(4096);
            let plan = FaultPlan::seeded(seed)
                .with_rate(FaultSite::DeviceRead, 0.3)
                .with_rate(FaultSite::FreshnessStale, 0.1);
            pager.set_fault_plan(plan);
            let ids: Vec<PageId> = (0..6).collect();
            let mut out = vec![0u8; ids.len() * PAGE_PAYLOAD];
            for _ in 0..15 {
                let _ = pager.read_pages(&ids, &mut out);
            }
            pager.take_flight_dump()
        };
        let a = run(9);
        assert!(!a.is_empty(), "the storm recorded events");
        assert_eq!(a, run(9), "same seed, byte-identical dump");
        assert_ne!(a, run(10), "different seed, different forensic window");
        assert!(
            a.iter().any(|l| l.contains("fault") || l.contains("violation")),
            "dump names the event kinds: {a:?}"
        );
    }

    /// Clean reads record nothing; the budget knob resizes the ring the
    /// same way the verified-node cache is sized from the EPC budget.
    #[test]
    fn flight_recorder_stays_quiet_on_clean_reads() {
        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        let id = pager.allocate_page().unwrap();
        pager.write_page(id, &payload(1)).unwrap();
        let mut buf = vec![0u8; PAGE_PAYLOAD];
        pager.read_page(id, &mut buf).unwrap();
        assert!(pager.take_flight_dump().is_empty(), "no failures, no events");
    }

    /// Satellite regression (partial-write hazard): a write whose every
    /// attempt faults must leave *no* trace — same trusted root, same
    /// medium bytes, same stats — so the pager is never caught between
    /// "medium updated" and "tree updated".
    #[test]
    fn exhausted_write_leaves_root_medium_and_stats_untouched() {
        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        let id = pager.allocate_page().unwrap();
        pager.write_page(id, &payload(1)).unwrap();
        pager.commit().unwrap();
        pager.reset_stats();
        let root_before = pager.trusted_root();
        let raw_before = pager.device().raw_read(id).unwrap().to_vec();
        let obs_writes_before = pager.metrics().page_writes.get();
        pager.set_fault_plan(FaultPlan::seeded(61).with_rate(FaultSite::DeviceWrite, 1.0));
        assert!(matches!(pager.write_page(id, &payload(2)), Err(StorageError::DeviceIo(_))));
        assert_eq!(pager.trusted_root(), root_before, "tree never ran ahead of the medium");
        assert_eq!(pager.device().raw_read(id).unwrap().to_vec(), raw_before);
        assert_eq!(pager.stats(), PagerStats::default(), "failed write charges nothing");
        assert_eq!(pager.metrics().page_writes.get(), obs_writes_before, "obs counter unchanged");
        // The old committed state still reads and still reopens.
        pager.set_fault_plan(FaultPlan::none());
        let mut buf = vec![0u8; PAGE_PAYLOAD];
        pager.read_page(id, &mut buf).unwrap();
        assert_eq!(buf, payload(1));
        let (tz, medium) = pager.into_parts();
        assert!(SecurePager::open(tz, medium, 5).is_ok());
    }

    /// Satellite regression: a faulted allocation appends no block and
    /// inserts no Merkle leaf — the next clean allocation gets the id the
    /// faulted one would have had.
    #[test]
    fn exhausted_allocation_leaves_no_orphan_block_or_leaf() {
        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        let a = pager.allocate_page().unwrap();
        pager.write_page(a, &payload(1)).unwrap();
        pager.reset_stats();
        let root_before = pager.trusted_root();
        pager.set_fault_plan(FaultPlan::seeded(62).with_rate(FaultSite::DeviceWrite, 1.0));
        assert!(matches!(pager.allocate_page(), Err(StorageError::DeviceIo(_))));
        assert_eq!(pager.num_pages(), 1, "no block appended by the faulted attempt");
        assert_eq!(pager.trusted_root(), root_before, "no orphan leaf in the tree");
        assert_eq!(pager.stats(), PagerStats::default(), "failed allocation charges nothing");
        pager.set_fault_plan(FaultPlan::none());
        let b = pager.allocate_page().unwrap();
        assert_eq!(b, 1, "clean retry gets the same id");
        let mut buf = vec![0u8; PAGE_PAYLOAD];
        pager.read_page(b, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0));
    }

    /// The fault draw precedes encryption, so a retried write consumes no
    /// IV bytes: the medium ends up byte-identical to a never-faulted run
    /// with the same pager seed.
    #[test]
    fn retried_write_keeps_ciphertext_seed_stable() {
        let mut clean = SecurePager::create(fresh_device("s0"), 1).unwrap();
        let mut faulted = SecurePager::create(fresh_device("s0"), 1).unwrap();
        let ca = clean.allocate_page().unwrap();
        let fa = faulted.allocate_page().unwrap();
        faulted.set_fault_plan(FaultPlan::seeded(63).with_nth(FaultSite::DeviceWrite, 1));
        clean.write_page(ca, &payload(4)).unwrap();
        faulted.write_page(fa, &payload(4)).unwrap();
        assert_eq!(
            clean.device().raw_read(ca).unwrap().to_vec(),
            faulted.device().raw_read(fa).unwrap().to_vec(),
            "retry rewrites the identical ciphertext"
        );
        assert_eq!(clean.trusted_root(), faulted.trusted_root());
    }

    /// `commit_bound` lands root + WAL head in one RPMB write and the
    /// bound state survives a reboot exactly like a plain commit.
    #[test]
    fn commit_bound_is_one_rpmb_write_and_reopens() {
        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        let id = pager.allocate_page().unwrap();
        pager.write_page(id, &payload(6)).unwrap();
        pager.reset_stats();
        pager.commit_bound(&[0xabu8; 32]).unwrap();
        assert_eq!(pager.stats().rpmb_ops, 1, "batched bind pays one RPMB op");
        assert_eq!(pager.metrics().rpmb_writes.get(), 1);
        let (tz, medium) = pager.into_parts();
        let mut pager = SecurePager::open(tz, medium, 6).unwrap();
        let mut buf = vec![0u8; PAGE_PAYLOAD];
        pager.read_page(id, &mut buf).unwrap();
        assert_eq!(buf, payload(6));
    }

    /// `export_block` hands out the raw on-medium ciphertext (what the WAL
    /// journals) without charging any stats.
    #[test]
    fn export_block_is_raw_and_chargeless() {
        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        let id = pager.allocate_page().unwrap();
        pager.write_page(id, &payload(2)).unwrap();
        pager.reset_stats();
        let exported = pager.export_block(id).unwrap();
        assert_eq!(exported, pager.device().raw_read(id).unwrap().to_vec());
        assert_eq!(exported.len(), BLOCK_SIZE);
        assert!(pager.export_block(99).is_none());
        assert_eq!(pager.stats(), PagerStats::default(), "export is not a logical read");
    }

    /// `take_parts` is the shared-handle power-off: the returned hardware
    /// reopens like `into_parts`, while the husk left behind fail-stops
    /// with typed errors instead of serving.
    #[test]
    fn take_parts_returns_live_hardware_and_poisons_the_husk() {
        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        let id = pager.allocate_page().unwrap();
        pager.write_page(id, &payload(8)).unwrap();
        pager.commit().unwrap();
        let (tz, medium) = pager.take_parts().unwrap();
        // The husk: no pages, and commits no longer authenticate.
        assert_eq!(pager.num_pages(), 0);
        let mut buf = vec![0u8; PAGE_PAYLOAD];
        assert!(matches!(pager.read_page(id, &mut buf), Err(StorageError::PageOutOfRange(_))));
        assert!(pager.commit().is_err(), "husk RPMB shares no keys with the real device");
        // The parts: a clean reboot serves the committed state.
        let mut reopened = SecurePager::open(tz, medium, 7).unwrap();
        reopened.read_page(id, &mut buf).unwrap();
        assert_eq!(buf, payload(8));
    }

    /// End-to-end crash recovery: checkpoint + one committed group in the
    /// WAL, power-off discarding the medium entirely, then
    /// `SecurePager::recover` rebuilds a bit-identical committed state
    /// from log + RPMB alone.
    #[test]
    fn recover_rebuilds_committed_state_from_wal_and_rpmb() {
        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        let id0 = pager.allocate_page().unwrap();
        pager.write_page(id0, &payload(3)).unwrap();
        pager.commit().unwrap();

        let mut wal = pager.make_wal(11).expect("secure pager journals");
        let cp = crate::wal::Checkpoint {
            epoch: 1,
            root: pager.current_root(),
            blocks: (0..pager.num_pages())
                .map(|id| pager.export_block(id).unwrap())
                .collect(),
            catalog: b"cat-v1".to_vec(),
        };
        let head = wal.append_checkpoint(&cp).unwrap();
        pager.commit_bound(&head).unwrap();

        // One committed group: overwrite page 0, append page 1.
        pager.write_page(id0, &payload(4)).unwrap();
        let id1 = pager.allocate_page().unwrap();
        pager.write_page(id1, &payload(5)).unwrap();
        let rec = crate::wal::CommitRecord {
            epoch: 2,
            root: pager.current_root(),
            writes: vec![
                (id0, pager.export_block(id0).unwrap()),
                (id1, pager.export_block(id1).unwrap()),
            ],
            catalog: b"cat-v2".to_vec(),
        };
        let head = wal.append_commit(&rec).unwrap();
        pager.commit_bound(&head).unwrap();

        // Power-off: the block medium is lost; only TZ + WAL survive.
        let (tz, _lost_medium) = pager.into_parts();
        let medium = wal.into_medium();
        let (mut recovered, info) = SecurePager::recover(tz, &medium, 21).unwrap();
        assert_eq!(info.epoch, 2);
        assert_eq!(info.catalog, b"cat-v2");
        assert_eq!(info.replayed, 1);
        assert_eq!(info.tail.verdict, crate::wal::TailVerdict::Clean);
        let mut buf = vec![0u8; PAGE_PAYLOAD];
        recovered.read_page(id0, &mut buf).unwrap();
        assert_eq!(buf, payload(4));
        recovered.read_page(id1, &mut buf).unwrap();
        assert_eq!(buf, payload(5));
    }

    /// A crash *between* WAL append and the RPMB bind leaves a chain-valid
    /// but uncommitted tail; recovery discards it and lands on the bound
    /// state, never between.
    #[test]
    fn recover_discards_appended_but_unbound_tail() {
        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        let id0 = pager.allocate_page().unwrap();
        pager.write_page(id0, &payload(6)).unwrap();
        pager.commit().unwrap();

        let mut wal = pager.make_wal(12).expect("secure pager journals");
        let cp = crate::wal::Checkpoint {
            epoch: 1,
            root: pager.current_root(),
            blocks: vec![pager.export_block(id0).unwrap()],
            catalog: b"cat-v1".to_vec(),
        };
        let head = wal.append_checkpoint(&cp).unwrap();
        pager.commit_bound(&head).unwrap();

        // Append a commit record but crash before `commit_bound`.
        pager.write_page(id0, &payload(7)).unwrap();
        let rec = crate::wal::CommitRecord {
            epoch: 2,
            root: pager.current_root(),
            writes: vec![(id0, pager.export_block(id0).unwrap())],
            catalog: b"cat-v2".to_vec(),
        };
        wal.append_commit(&rec).unwrap();

        let (tz, _lost_medium) = pager.into_parts();
        let medium = wal.into_medium();
        let (mut recovered, info) = SecurePager::recover(tz, &medium, 22).unwrap();
        assert_eq!(info.epoch, 1, "unbound record never commits");
        assert_eq!(info.catalog, b"cat-v1");
        assert_eq!(info.tail.uncommitted, 1);
        assert_eq!(info.tail.verdict, crate::wal::TailVerdict::Uncommitted);
        let mut buf = vec![0u8; PAGE_PAYLOAD];
        recovered.read_page(id0, &mut buf).unwrap();
        assert_eq!(buf, payload(6), "pre-commit image, not the torn write");
    }

    #[test]
    fn injected_device_write_fault_recovers() {
        let mut pager = SecurePager::create(fresh_device("s0"), 1).unwrap();
        let id = pager.allocate_page().unwrap();
        let plan = FaultPlan::seeded(25).with_nth(FaultSite::DeviceWrite, 1);
        pager.set_fault_plan(plan.clone());
        pager.write_page(id, &payload(8)).unwrap();
        let mut buf = vec![0u8; PAGE_PAYLOAD];
        pager.set_fault_plan(FaultPlan::none());
        pager.read_page(id, &mut buf).unwrap();
        assert_eq!(buf, payload(8));
        assert_eq!(plan.metrics().recovered.get(), 1);
    }
}
