//! Partitioner properties: every row lands on exactly one shard under
//! both modes (sorted or not, duplicate keys or not), and the
//! binary-search router always agrees with a brute-force oracle —
//! including exactly on boundary keys.

use ironsafe_scale::{PartitionMode, ShardSpec, TablePartition, GID_COLUMN};
use ironsafe_sql::schema::{Column, Schema};
use ironsafe_sql::value::{DataType, Value};
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::new(vec![Column::new("k", DataType::Int), Column::new("payload", DataType::Text)])
}

fn rows_from(keys: &[i64]) -> Vec<Vec<Value>> {
    keys.iter()
        .enumerate()
        .map(|(i, k)| vec![Value::Int(*k), Value::Text(format!("row{i}"))])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exactly-one-shard: the gid multisets of the shard partitions are
    /// a disjoint cover of 0..n under both modes, for arbitrary
    /// (possibly duplicated, possibly unsorted) keys.
    #[test]
    fn every_row_lands_on_exactly_one_shard(
        keys in proptest::collection::vec(-1000i64..1000, 1..400),
        shards in 1usize..9,
        sort in any::<bool>(),
        mode_is_hash in any::<bool>(),
    ) {
        let mut keys = keys;
        if sort {
            keys.sort_unstable();
        }
        let mode = if mode_is_hash { PartitionMode::Hash } else { PartitionMode::Range };
        let part =
            TablePartition::build("t", &schema(), &rows_from(&keys), "k", mode, shards).unwrap();
        prop_assert_eq!(part.shard_rows.len(), shards);
        let gid_col = part.schema.resolve(GID_COLUMN).is_ok();
        prop_assert!(!gid_col, "base schema must stay gid-free");

        let mut seen: Vec<i64> = part
            .shard_rows
            .iter()
            .flat_map(|rows| rows.iter().map(|r| match r.last() {
                Some(Value::Int(g)) => *g,
                other => panic!("bad gid {other:?}"),
            }))
            .collect();
        seen.sort_unstable();
        let expect: Vec<i64> = (0..keys.len() as i64).collect();
        prop_assert_eq!(seen, expect, "gids must cover 0..n exactly once");

        // Rows were routed by the spec they claim to be routed by.
        for (shard, rows) in part.shard_rows.iter().enumerate() {
            for r in rows {
                prop_assert_eq!(part.spec.shard_of(&r[part.key_index]), shard);
            }
        }
    }

    /// The binary-search router agrees with the linear oracle for every
    /// probe, including probes equal to the boundary keys themselves.
    #[test]
    fn router_matches_brute_force_oracle(
        boundaries in proptest::collection::vec(-500i64..500, 0..8),
        probes in proptest::collection::vec(-600i64..600, 1..100),
    ) {
        let mut sorted = boundaries;
        sorted.sort_unstable();
        sorted.dedup();
        let spec = ShardSpec::Range {
            boundaries: sorted
                .iter()
                .map(|b| ironsafe_scale::RangeBound::Key(Value::Int(*b)))
                .collect(),
        };
        for p in probes.iter().chain(sorted.iter()) {
            let key = Value::Int(*p);
            prop_assert_eq!(spec.shard_of(&key), spec.shard_of_oracle(&key));
        }
    }

    /// Hash routing is a pure function of the key: the router and the
    /// oracle agree, and equal keys always land together.
    #[test]
    fn hash_routing_is_stable(
        probes in proptest::collection::vec(-600i64..600, 1..100),
        shards in 1usize..9,
    ) {
        let spec = ShardSpec::Hash { shards };
        for p in &probes {
            let key = Value::Int(*p);
            let s = spec.shard_of(&key);
            prop_assert_eq!(s, spec.shard_of_oracle(&key));
            prop_assert_eq!(s, spec.shard_of(&Value::Int(*p)));
            prop_assert!(s < shards);
        }
    }
}
