//! # ironsafe-scale
//!
//! The paper evaluates one host against one computational-storage device
//! (§9); this crate scales that architecture out: TPC-H tables split
//! across N simulated storage nodes (hash or range partitioning layered
//! on the `csa` partitioner's filter+project fragments), each node owning
//! its **own** `SecurePager`, Merkle tree, RPMB root, attestation record
//! and fault plan. The host fans fragments out shard-parallel, pushes
//! partial aggregation down to the shards, and merges partial results in
//! deterministic global row order so result rows and `CostBreakdown`s
//! stay bit-identical at any shard count and any DOP.
//!
//! Failover: a node that fails attestation, freshness verification, or
//! crashes under an `ironsafe-faults` storm is quarantined (audited,
//! counted), its partition is re-verified and re-served from the next
//! replica in the chain, and the in-flight query either completes
//! bit-identically or returns one typed [`ScaleError`] — never a panic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod federation;
pub mod metrics;
pub mod node;
pub mod partitioner;
pub mod shared;

pub use config::{tpch_partition_keys, FederationConfig, PartitionMode};
pub use federation::{FederatedCsaSystem, FederatedReport, ShardDelta};
pub use metrics::ScaleMetrics;
pub use node::{AttestationRecord, ShardNode};
pub use partitioner::{RangeBound, ShardSpec, TablePartition, GID_COLUMN};

use ironsafe_csa::CsaError;

/// Errors raised by the federation layer.
#[derive(Debug)]
pub enum ScaleError {
    /// A federation of zero shards is degenerate.
    NoShards,
    /// More replicas per shard than nodes in the cluster: every
    /// partition would have to be stored more times than there are
    /// distinct nodes to hold it.
    TooManyReplicas {
        /// Configured replica count (extra copies per shard).
        replicas: usize,
        /// Configured shard count.
        shards: usize,
    },
    /// A table's configured partition-key column does not exist in its
    /// schema (rejected before any node I/O happens).
    MissingPartitionKey {
        /// The offending table.
        table: String,
        /// The configured key column.
        key: String,
    },
    /// A table named in the partition-key map is not part of the loaded
    /// data set.
    UnknownTable(String),
    /// A shard exhausted its replica chain: every node serving the
    /// partition was quarantined.
    ShardUnavailable {
        /// The shard whose replica chain is exhausted.
        shard: usize,
        /// The last node's failure reason.
        reason: String,
    },
    /// The federation does not support this operation.
    Unsupported(&'static str),
    /// An underlying CSA-layer failure.
    Csa(CsaError),
}

impl std::fmt::Display for ScaleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScaleError::NoShards => write!(f, "shard count must be at least 1"),
            ScaleError::TooManyReplicas { replicas, shards } => write!(
                f,
                "replica count {replicas} must be smaller than shard count {shards}"
            ),
            ScaleError::MissingPartitionKey { table, key } => {
                write!(f, "table {table} has no partition-key column {key}")
            }
            ScaleError::UnknownTable(t) => write!(f, "unknown table {t}"),
            ScaleError::ShardUnavailable { shard, reason } => {
                write!(f, "shard {shard} unavailable: replica chain exhausted ({reason})")
            }
            ScaleError::Unsupported(what) => write!(f, "unsupported in federation: {what}"),
            ScaleError::Csa(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ScaleError {}

impl From<CsaError> for ScaleError {
    fn from(e: CsaError) -> Self {
        ScaleError::Csa(e)
    }
}

impl From<ironsafe_sql::SqlError> for ScaleError {
    fn from(e: ironsafe_sql::SqlError) -> Self {
        ScaleError::Csa(CsaError::Sql(e))
    }
}

impl From<ironsafe_storage::StorageError> for ScaleError {
    fn from(e: ironsafe_storage::StorageError) -> Self {
        ScaleError::Csa(CsaError::Storage(e))
    }
}

impl From<ScaleError> for CsaError {
    /// Collapse into the CSA error space so the federation can sit
    /// behind [`ironsafe_csa::QueryBackend`]. CSA-originated errors pass
    /// through unwrapped; federation-specific ones are carried as
    /// [`CsaError::Federation`].
    fn from(e: ScaleError) -> Self {
        match e {
            ScaleError::Csa(inner) => inner,
            other => CsaError::Federation(other.to_string()),
        }
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, ScaleError>;
