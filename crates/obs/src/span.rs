//! Hierarchical spans over simulated and wall-clock time.
//!
//! A [`Trace`] collects spans for one logical activity (a query, a
//! figure run, an attestation round-trip). Install it on the current
//! thread with [`Trace::install`]; while the guard lives,
//! [`Span::enter`] opens nested scopes:
//!
//! ```
//! use ironsafe_obs::span::{add_sim_ns, Span, Trace};
//!
//! let trace = Trace::new();
//! {
//!     let _g = trace.install();
//!     let _q = Span::enter("query/q1");
//!     {
//!         let _s = Span::enter("scan/lineitem");
//!         add_sim_ns("ndp", 1_500.0);
//!     }
//! }
//! let snap = trace.snapshot();
//! assert_eq!(snap.sim_total_ns(), 1_500.0);
//! ```
//!
//! Wall-clock nanoseconds are recorded automatically for every span;
//! simulated nanoseconds are attributed explicitly via [`add_sim_ns`]
//! (or [`Span::add_sim_ns`]) tagged with a category such as `"ndp"`,
//! `"freshness"`, `"crypto"`, `"transitions"`, `"epc"` or `"other"` —
//! the same axes as the paper's cost breakdown. Simulated time forms a
//! single monotone timeline per trace: each attribution advances the
//! trace's simulated cursor, which gives every span a simulated start
//! offset usable for Chrome trace export.
//!
//! **No-trace behaviour:** with no trace installed, `Span::enter`
//! returns a disarmed guard and all recording calls are no-ops that
//! perform no heap allocation (verified by `tests/zero_alloc.rs`).

use parking_lot::Mutex;
use std::cell::{Cell, RefCell};
use std::sync::Arc;
use std::time::Instant;

/// Causal identity threaded through a request: which query a span
/// belongs to, and — as execution descends — which morsel and which
/// page batch. Layers refine the context (`serve`/`csa` set the query
/// id, morsel workers add the morsel id, the secure pager adds the
/// page-batch id), so every span in one request stitches into a single
/// query-keyed tree in the Chrome trace export.
///
/// The context is a per-thread `Copy` value: installing and reading it
/// never allocates, so the disarmed (no-trace) hot path stays free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// Identifier of the query this work belongs to.
    pub query_id: u64,
    /// Morsel being executed, when inside a morsel worker.
    pub morsel_id: Option<u64>,
    /// Page batch being read, when inside a pager batch read.
    pub page_batch_id: Option<u64>,
}

impl TraceCtx {
    /// A fresh context rooted at `query_id`.
    pub fn query(query_id: u64) -> TraceCtx {
        TraceCtx { query_id, morsel_id: None, page_batch_id: None }
    }

    /// Refine with the morsel being executed.
    pub fn with_morsel(mut self, morsel_id: u64) -> TraceCtx {
        self.morsel_id = Some(morsel_id);
        self
    }

    /// Refine with the page batch being read.
    pub fn with_page_batch(mut self, page_batch_id: u64) -> TraceCtx {
        self.page_batch_id = Some(page_batch_id);
        self
    }

    /// Make this context current for the thread until the guard drops;
    /// the previous context (if any) is restored. Spans entered while
    /// the guard lives record this context.
    pub fn install(self) -> CtxGuard {
        let previous = CURRENT_CTX.with(|c| c.replace(Some(self)));
        CtxGuard { previous }
    }

    /// The context installed on the current thread, if any. Worker
    /// threads propagate causality by reading the parent's context
    /// before spawning and installing a refined copy on their own
    /// thread (same pattern as [`Trace::current`]).
    pub fn current() -> Option<TraceCtx> {
        CURRENT_CTX.with(|c| c.get())
    }
}

/// Guard restoring the previously installed [`TraceCtx`] on drop.
pub struct CtxGuard {
    previous: Option<TraceCtx>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CURRENT_CTX.with(|c| c.set(self.previous));
    }
}

thread_local! {
    static CURRENT_CTX: Cell<Option<TraceCtx>> = const { Cell::new(None) };
}

/// One finished (or in-flight) span inside a [`TraceSnapshot`].
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Slash-separated name as passed to [`Span::enter`].
    pub name: String,
    /// Index of the parent span in the trace, if any.
    pub parent: Option<usize>,
    /// Nesting depth (roots are 0).
    pub depth: u32,
    /// Wall-clock start, nanoseconds since the trace was created.
    pub start_wall_ns: u64,
    /// Wall-clock duration in nanoseconds (0 while in flight).
    pub wall_ns: u64,
    /// Simulated-time start: the trace's simulated cursor when this
    /// span was entered.
    pub start_sim_ns: f64,
    /// Simulated nanoseconds attributed directly to this span
    /// (children's attributions are *not* included).
    pub sim_ns: f64,
    /// Per-category breakdown of `sim_ns`, in attribution order.
    pub categories: Vec<(&'static str, f64)>,
    /// True once the span guard has dropped.
    pub closed: bool,
    /// Causal identity current when the span was entered.
    pub ctx: Option<TraceCtx>,
    /// Error tag set by [`Span::fail`] — e.g. when a faulted pager
    /// attempt rolls back. A failed span still closes normally, so
    /// chaos-run traces stay well-formed trees.
    pub error: Option<&'static str>,
}

impl SpanRecord {
    fn add_category(&mut self, category: &'static str, ns: f64) {
        self.sim_ns += ns;
        if let Some(slot) = self.categories.iter_mut().find(|(c, _)| *c == category) {
            slot.1 += ns;
        } else {
            self.categories.push((category, ns));
        }
    }
}

#[derive(Debug)]
struct TraceInner {
    spans: Vec<SpanRecord>,
    sim_cursor_ns: f64,
}

/// A collection of hierarchical spans sharing one simulated timeline.
#[derive(Clone)]
pub struct Trace {
    inner: Arc<Mutex<TraceInner>>,
    epoch: Instant,
}

impl Default for Trace {
    fn default() -> Self {
        Self::new()
    }
}

impl Trace {
    /// New empty trace; the wall-clock epoch is now.
    pub fn new() -> Self {
        Trace {
            inner: Arc::new(Mutex::new(TraceInner {
                spans: Vec::new(),
                sim_cursor_ns: 0.0,
            })),
            epoch: Instant::now(),
        }
    }

    /// Make this trace the current thread's active trace until the
    /// returned guard drops. Nested installs stack (the previous trace
    /// is restored).
    pub fn install(&self) -> TraceGuard {
        let previous = ACTIVE.with(|a| {
            a.borrow_mut().replace(ActiveTrace {
                trace: self.clone(),
                stack: Vec::new(),
            })
        });
        TraceGuard { previous }
    }

    /// The trace installed on the current thread, if any — a cloneable
    /// handle for propagating the active trace into worker threads
    /// (each worker calls [`Trace::install`] on its own thread; spans
    /// from every thread land in the same trace).
    pub fn current() -> Option<Trace> {
        ACTIVE.with(|a| a.borrow().as_ref().map(|t| t.trace.clone()))
    }

    /// Total simulated nanoseconds attributed so far.
    pub fn sim_total_ns(&self) -> f64 {
        self.inner.lock().sim_cursor_ns
    }

    /// Frozen copy of all spans recorded so far.
    pub fn snapshot(&self) -> TraceSnapshot {
        TraceSnapshot {
            spans: self.inner.lock().spans.clone(),
        }
    }
}

/// Guard restoring the previously installed trace on drop.
pub struct TraceGuard {
    previous: Option<ActiveTrace>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        ACTIVE.with(|a| {
            *a.borrow_mut() = self.previous.take();
        });
    }
}

struct ActiveTrace {
    trace: Trace,
    stack: Vec<usize>,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// RAII scope handle returned by [`Span::enter`].
#[must_use = "a span records its duration when dropped"]
pub struct Span {
    /// Index into the active trace, or `usize::MAX` when disarmed.
    idx: usize,
}

const DISARMED: usize = usize::MAX;

impl Span {
    /// Open a nested span named `name` on the current thread's trace.
    ///
    /// Without an installed trace this is a no-op: the returned guard is
    /// disarmed and nothing is allocated.
    pub fn enter(name: &str) -> Span {
        ACTIVE.with(|a| {
            let mut borrow = a.borrow_mut();
            let Some(active) = borrow.as_mut() else {
                return Span { idx: DISARMED };
            };
            let parent = active.stack.last().copied();
            let mut inner = active.trace.inner.lock();
            let start_wall_ns = active.trace.epoch.elapsed().as_nanos() as u64;
            let start_sim_ns = inner.sim_cursor_ns;
            let idx = inner.spans.len();
            let depth = parent.map_or(0, |p| inner.spans[p].depth + 1);
            let ctx = CURRENT_CTX.with(|c| c.get());
            inner.spans.push(SpanRecord {
                name: name.to_string(),
                parent,
                depth,
                start_wall_ns,
                wall_ns: 0,
                start_sim_ns,
                sim_ns: 0.0,
                categories: Vec::new(),
                closed: false,
                ctx,
                error: None,
            });
            drop(inner);
            active.stack.push(idx);
            Span { idx }
        })
    }

    /// Attribute `ns` simulated nanoseconds of `category` to this span
    /// and advance the trace's simulated cursor.
    pub fn add_sim_ns(&self, category: &'static str, ns: f64) {
        if self.idx == DISARMED {
            return;
        }
        ACTIVE.with(|a| {
            let borrow = a.borrow();
            if let Some(active) = borrow.as_ref() {
                let mut inner = active.trace.inner.lock();
                inner.sim_cursor_ns += ns;
                inner.spans[self.idx].add_category(category, ns);
            }
        });
    }

    /// Tag this span with an error. The span still closes normally when
    /// the guard drops — the tag records that the covered work failed
    /// (e.g. a faulted pager attempt that rolled back), keeping the
    /// trace a well-formed tree under fault storms.
    pub fn fail(&self, error: &'static str) {
        if self.idx == DISARMED {
            return;
        }
        ACTIVE.with(|a| {
            let borrow = a.borrow();
            if let Some(active) = borrow.as_ref() {
                let mut inner = active.trace.inner.lock();
                inner.spans[self.idx].error = Some(error);
            }
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.idx == DISARMED {
            return;
        }
        ACTIVE.with(|a| {
            let mut borrow = a.borrow_mut();
            if let Some(active) = borrow.as_mut() {
                // Tolerate out-of-order drops: remove this span wherever
                // it sits in the stack.
                if let Some(pos) = active.stack.iter().rposition(|&i| i == self.idx) {
                    active.stack.remove(pos);
                }
                let mut inner = active.trace.inner.lock();
                let start = inner.spans[self.idx].start_wall_ns;
                let now = active.trace.epoch.elapsed().as_nanos() as u64;
                inner.spans[self.idx].wall_ns = now.saturating_sub(start);
                inner.spans[self.idx].closed = true;
            }
        });
    }
}

/// Attribute `ns` simulated nanoseconds of `category` to the innermost
/// open span on the current thread. No-op (and allocation-free) when no
/// trace is installed or no span is open.
pub fn add_sim_ns(category: &'static str, ns: f64) {
    ACTIVE.with(|a| {
        let borrow = a.borrow();
        if let Some(active) = borrow.as_ref() {
            if let Some(&idx) = active.stack.last() {
                let mut inner = active.trace.inner.lock();
                inner.sim_cursor_ns += ns;
                inner.spans[idx].add_category(category, ns);
            }
        }
    });
}

/// Frozen view of a [`Trace`].
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// All spans in creation order (parents precede children).
    pub spans: Vec<SpanRecord>,
}

impl TraceSnapshot {
    /// Total simulated nanoseconds attributed across all spans.
    pub fn sim_total_ns(&self) -> f64 {
        self.spans.iter().map(|s| s.sim_ns).sum()
    }

    /// Simulated nanoseconds attributed directly to spans whose name
    /// matches `pred`.
    pub fn sim_ns_where(&self, pred: impl Fn(&SpanRecord) -> bool) -> f64 {
        self.spans.iter().filter(|s| pred(s)).map(|s| s.sim_ns).sum()
    }

    /// Sum of simulated nanoseconds per category, over all spans,
    /// sorted by category name.
    pub fn category_totals(&self) -> Vec<(&'static str, f64)> {
        let mut totals: Vec<(&'static str, f64)> = Vec::new();
        for span in &self.spans {
            for &(cat, ns) in &span.categories {
                if let Some(slot) = totals.iter_mut().find(|(c, _)| *c == cat) {
                    slot.1 += ns;
                } else {
                    totals.push((cat, ns));
                }
            }
        }
        totals.sort_by_key(|&(c, _)| c);
        totals
    }

    /// Simulated nanoseconds attributed to this span *and* all its
    /// descendants.
    pub fn sim_ns_inclusive(&self, idx: usize) -> f64 {
        let mut total = self.spans[idx].sim_ns;
        for (i, s) in self.spans.iter().enumerate() {
            if s.parent == Some(idx) {
                total += self.sim_ns_inclusive(i);
            }
        }
        total
    }

    /// True when the snapshot is a well-formed forest: every span is
    /// closed and every parent index precedes its child. This is the
    /// invariant chaos tests assert — error-path spans must close (with
    /// an error tag) rather than dangle.
    pub fn is_well_formed(&self) -> bool {
        self.spans
            .iter()
            .enumerate()
            .all(|(i, s)| s.closed && s.parent.is_none_or(|p| p < i))
    }

    /// Spans tagged with an error via [`Span::fail`].
    pub fn error_spans(&self) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.error.is_some()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_record_hierarchy_and_sim_time() {
        let trace = Trace::new();
        {
            let _g = trace.install();
            let q = Span::enter("query/q1");
            q.add_sim_ns("other", 10.0);
            {
                let s = Span::enter("scan/lineitem");
                s.add_sim_ns("ndp", 100.0);
                add_sim_ns("crypto", 40.0); // free-function form, innermost span
            }
            {
                let _f = Span::enter("freshness");
                add_sim_ns("freshness", 5.0);
            }
        }
        let snap = trace.snapshot();
        assert_eq!(snap.spans.len(), 3);
        assert_eq!(snap.spans[0].name, "query/q1");
        assert_eq!(snap.spans[1].parent, Some(0));
        assert_eq!(snap.spans[1].depth, 1);
        assert_eq!(snap.spans[1].sim_ns, 140.0);
        assert_eq!(snap.spans[1].start_sim_ns, 10.0);
        assert_eq!(snap.sim_total_ns(), 155.0);
        assert_eq!(snap.sim_ns_inclusive(0), 155.0);
        assert_eq!(
            snap.category_totals(),
            vec![("crypto", 40.0), ("freshness", 5.0), ("ndp", 100.0), ("other", 10.0)]
        );
        assert!(snap.spans.iter().all(|s| s.closed));
    }

    #[test]
    fn no_trace_is_noop() {
        let s = Span::enter("orphan");
        s.add_sim_ns("ndp", 99.0);
        add_sim_ns("ndp", 99.0);
        drop(s);
        // Installing afterwards starts clean.
        let trace = Trace::new();
        let _g = trace.install();
        assert_eq!(trace.snapshot().spans.len(), 0);
        assert_eq!(trace.sim_total_ns(), 0.0);
    }

    #[test]
    fn install_stacks_and_restores() {
        let outer = Trace::new();
        let inner = Trace::new();
        let _og = outer.install();
        {
            let _s = Span::enter("outer-span");
            {
                let _ig = inner.install();
                let _t = Span::enter("inner-span");
                add_sim_ns("ndp", 1.0);
            }
            add_sim_ns("other", 2.0);
        }
        assert_eq!(inner.snapshot().spans.len(), 1);
        assert_eq!(inner.sim_total_ns(), 1.0);
        let outer_snap = outer.snapshot();
        assert_eq!(outer_snap.spans.len(), 1);
        assert_eq!(outer_snap.spans[0].sim_ns, 2.0);
    }

    #[test]
    fn wall_time_recorded() {
        let trace = Trace::new();
        {
            let _g = trace.install();
            let _s = Span::enter("sleepy");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = trace.snapshot();
        assert!(snap.spans[0].wall_ns >= 1_000_000, "{}", snap.spans[0].wall_ns);
    }

    #[test]
    fn traces_are_per_thread() {
        let trace = Trace::new();
        let _g = trace.install();
        let handle = std::thread::spawn(|| {
            // No trace installed on this thread.
            let s = Span::enter("other-thread");
            s.add_sim_ns("ndp", 5.0);
        });
        handle.join().unwrap();
        assert_eq!(trace.snapshot().spans.len(), 0);
    }

    #[test]
    fn ctx_is_recorded_refined_and_restored() {
        assert!(TraceCtx::current().is_none());
        let trace = Trace::new();
        let _g = trace.install();
        {
            let _q = TraceCtx::query(7).install();
            let _s = Span::enter("query/q7");
            {
                let refined =
                    TraceCtx::current().expect("installed").with_morsel(3).with_page_batch(9);
                let _m = refined.install();
                let _t = Span::enter("pager/batch");
                assert_eq!(TraceCtx::current(), Some(refined));
            }
            // Inner guard dropped: the query-level context is restored.
            assert_eq!(TraceCtx::current(), Some(TraceCtx::query(7)));
        }
        assert!(TraceCtx::current().is_none());
        let snap = trace.snapshot();
        assert_eq!(snap.spans[0].ctx, Some(TraceCtx::query(7)));
        let batch = snap.spans[1].ctx.expect("batch span carries ctx");
        assert_eq!((batch.query_id, batch.morsel_id, batch.page_batch_id), (7, Some(3), Some(9)));
    }

    #[test]
    fn failed_spans_close_with_error_tag() {
        let trace = Trace::new();
        {
            let _g = trace.install();
            let s = Span::enter("pager/read_batch");
            s.fail("storage.device.read");
        }
        let snap = trace.snapshot();
        assert!(snap.is_well_formed(), "failed span must still close");
        assert_eq!(snap.error_spans().len(), 1);
        assert_eq!(snap.spans[0].error, Some("storage.device.read"));
    }

    #[test]
    fn disarmed_ctx_and_fail_are_noops() {
        let s = Span::enter("orphan");
        s.fail("nope");
        drop(s);
        let ctx = TraceCtx::query(1).install();
        drop(ctx);
        assert!(TraceCtx::current().is_none());
    }

    #[test]
    fn current_propagates_into_worker_threads() {
        assert!(Trace::current().is_none());
        let trace = Trace::new();
        let _g = trace.install();
        let handle = Trace::current().expect("installed");
        let worker = std::thread::spawn(move || {
            let _wg = handle.install();
            let _s = Span::enter("exec/morsel_worker0");
            add_sim_ns("other", 3.0);
        });
        worker.join().unwrap();
        let snap = trace.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "exec/morsel_worker0");
        assert_eq!(snap.sim_total_ns(), 3.0);
    }
}
