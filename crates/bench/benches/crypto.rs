//! Microbenchmarks for the cryptographic primitives (cost-model inputs:
//! the per-page decrypt/HMAC costs of Figures 8 and 9c derive from these).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ironsafe_crypto::aes::Aes128;
use ironsafe_crypto::group::Group;
use ironsafe_crypto::hmac::hmac_sha256;
use ironsafe_crypto::modes::{cbc_decrypt_aligned, cbc_encrypt_aligned, ctr_xor};
use ironsafe_crypto::schnorr::KeyPair;
use ironsafe_crypto::sha256::sha256;
use rand::SeedableRng;

const PAGE: usize = 4096;

fn bench_hash(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    let page = vec![0xabu8; PAGE];
    g.throughput(Throughput::Bytes(PAGE as u64));
    g.bench_function("page_4k", |b| b.iter(|| sha256(std::hint::black_box(&page))));
    g.finish();

    let mut g = c.benchmark_group("hmac_sha256");
    g.throughput(Throughput::Bytes(PAGE as u64));
    g.bench_function("page_4k", |b| b.iter(|| hmac_sha256(b"key", std::hint::black_box(&page))));
    g.bench_function("merkle_node_64b", |b| {
        let node = [0u8; 64];
        b.iter(|| hmac_sha256(b"key", std::hint::black_box(&node)))
    });
    g.finish();

    let mut g = c.benchmark_group("hmac_sha512");
    let page = vec![0xabu8; PAGE];
    g.throughput(Throughput::Bytes(PAGE as u64));
    g.bench_function("page_4k", |b| {
        b.iter(|| ironsafe_crypto::hmac512::hmac_sha512(b"key", std::hint::black_box(&page)))
    });
    g.finish();
}

fn bench_aes(c: &mut Criterion) {
    let aes = Aes128::new(&[7; 16]);
    let mut g = c.benchmark_group("aes128");
    g.throughput(Throughput::Bytes(PAGE as u64));
    g.bench_function("cbc_encrypt_page", |b| {
        b.iter_batched(
            || vec![0x5au8; PAGE],
            |mut page| cbc_encrypt_aligned(&aes, &[1; 16], &mut page),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("cbc_decrypt_page", |b| {
        let mut ct = vec![0x5au8; PAGE];
        cbc_encrypt_aligned(&aes, &[1; 16], &mut ct);
        b.iter_batched(
            || ct.clone(),
            |mut page| cbc_decrypt_aligned(&aes, &[1; 16], &mut page).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("ctr_page", |b| {
        b.iter_batched(
            || vec![0x5au8; PAGE],
            |mut page| ctr_xor(&aes, &[1; 16], &mut page),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_schnorr(c: &mut Criterion) {
    let group = Group::modp_1024();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let kp = KeyPair::generate(&group, &mut rng);
    let sig = kp.secret.sign(b"attestation quote", &mut rng);
    let mut g = c.benchmark_group("schnorr_1024");
    g.sample_size(20);
    g.bench_function("sign", |b| b.iter(|| kp.secret.sign(std::hint::black_box(b"quote"), &mut rng)));
    g.bench_function("verify", |b| {
        b.iter(|| kp.public.verify(&group, b"attestation quote", std::hint::black_box(&sig)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_hash, bench_aes, bench_schnorr);
criterion_main!(benches);
