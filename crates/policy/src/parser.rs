//! Policy-language parser.
//!
//! Grammar (newline- or `;`-separated rules):
//!
//! ```text
//! rule   := perm (":-" | "::=" | ":=") or
//! or     := and ("|" and)*
//! and    := atom ("&" atom)*
//! atom   := ident "(" args ")" | "(" or ")"
//! ```
//!
//! `&` binds tighter than `|`, matching the paper's examples.

use crate::ast::{Cond, Perm, PolicyRule, PolicySet, Predicate};
use crate::{PolicyError, Result};

/// Parse a policy document.
pub fn parse_policy(src: &str) -> Result<PolicySet> {
    let mut rules = Vec::new();
    for raw_line in src.split(['\n', ';']) {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("--") {
            continue;
        }
        rules.push(parse_rule(line)?);
    }
    Ok(PolicySet { rules })
}

fn parse_rule(line: &str) -> Result<PolicyRule> {
    let (perm_str, cond_str) = split_rule(line)
        .ok_or_else(|| PolicyError::Parse(format!("missing `:-` in rule `{line}`")))?;
    let perm = match perm_str.trim().to_ascii_lowercase().as_str() {
        "read" => Perm::Read,
        "write" => Perm::Write,
        "exec" => Perm::Exec,
        other => return Err(PolicyError::Parse(format!("unknown permission `{other}`"))),
    };
    let mut p = CondParser { src: cond_str.trim(), pos: 0 };
    let cond = p.or()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(PolicyError::Parse(format!("trailing input in rule `{line}`")));
    }
    Ok(PolicyRule { perm, cond })
}

fn split_rule(line: &str) -> Option<(&str, &str)> {
    for sep in ["::=", ":-", ":="] {
        if let Some(idx) = line.find(sep) {
            return Some((&line[..idx], &line[idx + sep.len()..]));
        }
    }
    None
}

struct CondParser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> CondParser<'a> {
    fn skip_ws(&mut self) {
        while self.src[self.pos..].starts_with([' ', '\t']) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.src[self.pos..].chars().next()
    }

    fn or(&mut self) -> Result<Cond> {
        let mut left = self.and()?;
        while self.peek() == Some('|') {
            self.pos += 1;
            let right = self.and()?;
            left = Cond::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and(&mut self) -> Result<Cond> {
        let mut left = self.atom()?;
        while self.peek() == Some('&') {
            self.pos += 1;
            let right = self.atom()?;
            left = Cond::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn atom(&mut self) -> Result<Cond> {
        match self.peek() {
            Some('(') => {
                self.pos += 1;
                let inner = self.or()?;
                if self.peek() != Some(')') {
                    return Err(PolicyError::Parse("expected `)`".into()));
                }
                self.pos += 1;
                Ok(inner)
            }
            Some(c) if c.is_ascii_alphabetic() => {
                let name = self.ident();
                if self.peek() != Some('(') {
                    return Err(PolicyError::Parse(format!("predicate `{name}` needs arguments")));
                }
                self.pos += 1;
                let args = self.args()?;
                Ok(Cond::Pred(build_predicate(&name, &args)?))
            }
            other => Err(PolicyError::Parse(format!("unexpected {other:?} in condition"))),
        }
    }

    fn ident(&mut self) -> String {
        self.skip_ws();
        let start = self.pos;
        while self.src[self.pos..]
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            self.pos += 1;
        }
        self.src[start..self.pos].to_string()
    }

    fn args(&mut self) -> Result<Vec<String>> {
        let mut args = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(')') {
                self.pos += 1;
                return Ok(args);
            }
            let start = self.pos;
            // An argument runs until `,` or `)` (quotes optional).
            while let Some(c) = self.src[self.pos..].chars().next() {
                if c == ',' || c == ')' {
                    break;
                }
                self.pos += c.len_utf8();
            }
            let arg = self.src[start..self.pos].trim().trim_matches('\'').trim_matches('"');
            if arg.is_empty() {
                return Err(PolicyError::Parse("empty predicate argument".into()));
            }
            args.push(arg.to_string());
            self.skip_ws();
            if self.peek() == Some(',') {
                self.pos += 1;
            }
        }
    }
}

fn build_predicate(name: &str, args: &[String]) -> Result<Predicate> {
    let want = |n: usize| -> Result<()> {
        if args.len() != n {
            Err(PolicyError::BadPredicate(format!("{name} takes {n} argument(s), got {}", args.len())))
        } else {
            Ok(())
        }
    };
    let version = |s: &str| -> Result<u32> {
        if s.eq_ignore_ascii_case("latest") {
            Ok(u32::MAX)
        } else {
            s.parse().map_err(|_| PolicyError::BadPredicate(format!("bad version `{s}`")))
        }
    };
    // Accept both `sessionKeyIs` and the paper's `sessionKeysIs` spelling.
    match name.to_ascii_lowercase().as_str() {
        "sessionkeyis" | "sessionkeysis" => {
            want(1)?;
            Ok(Predicate::SessionKeyIs(args[0].clone()))
        }
        "storagelocis" | "storagelocs" => {
            want(1)?;
            Ok(Predicate::StorageLocIs(args[0].clone()))
        }
        "hostlocis" | "hostlocs" => {
            want(1)?;
            Ok(Predicate::HostLocIs(args[0].clone()))
        }
        "fwversionstorage" => {
            want(1)?;
            Ok(Predicate::FwVersionStorage(version(&args[0])?))
        }
        "fwversionhost" => {
            want(1)?;
            Ok(Predicate::FwVersionHost(version(&args[0])?))
        }
        "le" => {
            want(2)?;
            Ok(Predicate::Le)
        }
        "reusemap" => {
            want(1)?;
            Ok(Predicate::ReuseMap)
        }
        "logupdate" => {
            if args.is_empty() {
                return Err(PolicyError::BadPredicate("logUpdate needs a log name".into()));
            }
            Ok(Predicate::LogUpdate { log: args[0].clone() })
        }
        other => Err(PolicyError::BadPredicate(format!("unknown predicate `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_access_policy() {
        let p = parse_policy(
            "read ::= sessionKeyIs(Ka)\n\
             write ::= sessionKeyIs(Kb)\n\
             exec ::= fwVersionStorage(latest) & fwVersionHost(latest)",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 3);
        assert_eq!(p.rules[0].perm, Perm::Read);
        assert_eq!(p.rules[0].cond, Cond::Pred(Predicate::SessionKeyIs("Ka".into())));
        match &p.rules[2].cond {
            Cond::And(l, r) => {
                assert_eq!(**l, Cond::Pred(Predicate::FwVersionStorage(u32::MAX)));
                assert_eq!(**r, Cond::Pred(Predicate::FwVersionHost(u32::MAX)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn anti_pattern_1_expiry_rule() {
        let p = parse_policy("read :- sessionKeyIs(Ka) | sessionKeyIs(Kb) & le(T, TIMESTAMP)").unwrap();
        // `&` binds tighter: Ka | (Kb & le).
        match &p.rules[0].cond {
            Cond::Or(l, r) => {
                assert_eq!(**l, Cond::Pred(Predicate::SessionKeyIs("Ka".into())));
                assert!(matches!(**r, Cond::And(_, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reuse_and_log_predicates() {
        let p = parse_policy("read :- reuseMap(m)\nread :- logUpdate(l, K, Q)").unwrap();
        assert_eq!(p.rules[0].cond, Cond::Pred(Predicate::ReuseMap));
        assert_eq!(p.rules[1].cond, Cond::Pred(Predicate::LogUpdate { log: "l".into() }));
    }

    #[test]
    fn parentheses_override_precedence() {
        let p = parse_policy("read :- (sessionKeyIs(a) | sessionKeyIs(b)) & hostLocIs(EU)").unwrap();
        assert!(matches!(p.rules[0].cond, Cond::And(_, _)));
    }

    #[test]
    fn quoted_and_bare_arguments() {
        let p = parse_policy("exec :- storageLocIs('EU') & hostLocIs(US)").unwrap();
        match &p.rules[0].cond {
            Cond::And(l, r) => {
                assert_eq!(**l, Cond::Pred(Predicate::StorageLocIs("EU".into())));
                assert_eq!(**r, Cond::Pred(Predicate::HostLocIs("US".into())));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let p = parse_policy("# access policy\n\nread :- sessionKeyIs(a)\n-- trailing note\n").unwrap();
        assert_eq!(p.rules.len(), 1);
    }

    #[test]
    fn errors_reported() {
        assert!(parse_policy("read sessionKeyIs(a)").is_err(), "missing :-");
        assert!(parse_policy("admin :- sessionKeyIs(a)").is_err(), "unknown perm");
        assert!(parse_policy("read :- nonsense(a)").is_err(), "unknown predicate");
        assert!(parse_policy("read :- sessionKeyIs(a) &").is_err(), "dangling operator");
        assert!(parse_policy("read :- le(T)").is_err(), "arity");
        assert!(parse_policy("read :- fwVersionHost(abc)").is_err(), "bad version");
    }

    #[test]
    fn numeric_versions() {
        let p = parse_policy("exec :- fwVersionStorage(34)").unwrap();
        assert_eq!(p.rules[0].cond, Cond::Pred(Predicate::FwVersionStorage(34)));
    }
}
