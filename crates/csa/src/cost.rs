//! Analytic cost model.
//!
//! All experiment figures report *simulated nanoseconds*: deterministic
//! functions of operation counts measured while queries actually execute.
//! The default parameters approximate the paper's testbed; every
//! experiment harness that sweeps a resource (cores, memory, EPC size)
//! does so by changing one parameter here.

/// Host↔storage interconnect technologies (paper §5: "the layer can be
/// configured as: NVMe/PCIe, NVMe over fabrics (NVMe-oF), or TCP").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Interconnect {
    /// Direct-attached NVMe over PCIe (computational storage device).
    NvmePcie,
    /// NVMe over fabrics (storage server, RDMA-class latency).
    NvmeOf,
    /// TLS over TCP at 850 MB/s single-stream — the paper's evaluated
    /// setup and the default here.
    #[default]
    TcpTls,
}

impl Interconnect {
    /// `(latency_ns per message, ns per byte)` for this technology.
    pub fn parameters(&self) -> (u64, f64) {
        match self {
            // ~10 µs submission/completion, ~7 GB/s (PCIe 4.0 x4).
            Interconnect::NvmePcie => (10_000, 0.14),
            // ~25 µs fabric round trip, ~3 GB/s effective.
            Interconnect::NvmeOf => (25_000, 0.33),
            // The paper's measured single-stream TLS/TCP numbers.
            Interconnect::TcpTls => (40_000, 1.18),
        }
    }
}

/// Cost-model parameters.
#[derive(Debug, Clone)]
pub struct CostParams {
    /// Host CPU time to process one row through one operator.
    pub host_row_ns: f64,
    /// Storage CPU slowdown relative to the host (A72 vs i9).
    pub storage_cpu_factor: f64,
    /// Cores available on the storage server (Figure 10 sweep).
    pub storage_cores: u32,
    /// Maximum useful scan parallelism on the storage side.
    pub storage_max_parallel: u32,
    /// Memory available to the storage-side application in bytes
    /// (Figure 11 sweep). Intermediates beyond it pay a thrash penalty.
    pub storage_mem_bytes: u64,
    /// NVMe page (4 KiB) read cost.
    pub device_read_ns_per_page: f64,
    /// Per-message network latency (TLS record + TCP round trip share).
    pub net_latency_ns: u64,
    /// Per-byte network cost (the paper measures 850 MB/s single-stream).
    pub net_ns_per_byte: f64,
    /// Enclave transition (ECALL/OCALL) cost.
    pub enclave_transition_ns: u64,
    /// EPC page-fault (eviction + reload + re-encrypt) cost.
    pub epc_fault_ns: u64,
    /// AES-CBC decrypt of one 4 KiB page.
    pub decrypt_ns_per_page: u64,
    /// AES-CBC encrypt of one 4 KiB page.
    pub encrypt_ns_per_page: u64,
    /// One HMAC node evaluation in the Merkle tree.
    pub merkle_node_ns: u64,
    /// One RPMB authenticated read/write.
    pub rpmb_op_ns: u64,
    /// EPC bytes usable by one enclave.
    pub epc_limit_bytes: usize,
    /// Fixed per-session cost of channel setup + storage CS service
    /// instantiation (the paper's "other").
    pub session_setup_ns: u64,
    /// Per-fragment cost of instantiating the storage-side CS service
    /// (query shipping, statement preparation on the storage engine).
    pub fragment_setup_ns: u64,
    /// Storage-side cost to serialize one shipped row.
    pub serialize_row_ns: u64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            host_row_ns: 180.0,
            storage_cpu_factor: 3.2,
            storage_cores: 16,
            storage_max_parallel: 8,
            storage_mem_bytes: 2 * 1024 * 1024 * 1024,
            device_read_ns_per_page: 1_230.0, // ≈3.3 GB/s sequential
            net_latency_ns: 40_000,
            net_ns_per_byte: 1.18, // ≈850 MB/s single stream
            enclave_transition_ns: 8_000,
            epc_fault_ns: 14_000,
            decrypt_ns_per_page: 3_000,
            encrypt_ns_per_page: 3_000,
            merkle_node_ns: 650,
            rpmb_op_ns: 120_000,
            epc_limit_bytes: 96 * 1024 * 1024,
            session_setup_ns: 250_000,
            fragment_setup_ns: 400_000,
            serialize_row_ns: 600,
        }
    }
}

impl CostParams {
    /// Configure the network parameters for an interconnect technology.
    pub fn with_interconnect(mut self, kind: Interconnect) -> Self {
        let (latency, per_byte) = kind.parameters();
        self.net_latency_ns = latency;
        self.net_ns_per_byte = per_byte;
        self
    }

    /// Effective storage scan parallelism.
    pub fn storage_parallel(&self) -> f64 {
        self.storage_cores.min(self.storage_max_parallel).max(1) as f64
    }

    /// Storage CPU time for `rows` through `ops` operators, across cores.
    pub fn storage_compute_ns(&self, rows: u64, ops: u64) -> f64 {
        rows as f64 * ops as f64 * self.host_row_ns * self.storage_cpu_factor / self.storage_parallel()
    }

    /// Host CPU time for `rows` through `ops` operators (single stream —
    /// the paper's host engine processes one query at a time).
    pub fn host_compute_ns(&self, rows: u64, ops: u64) -> f64 {
        rows as f64 * ops as f64 * self.host_row_ns
    }

    /// Network time for one transfer of `bytes`.
    pub fn net_ns(&self, bytes: u64, messages: u64) -> f64 {
        bytes as f64 * self.net_ns_per_byte + (messages * self.net_latency_ns) as f64
    }

    /// Thrash penalty multiplier when the storage-side working set
    /// exceeds the available memory (Figure 11): linear in the overflow.
    pub fn storage_mem_penalty(&self, working_set_bytes: u64) -> f64 {
        if working_set_bytes <= self.storage_mem_bytes {
            1.0
        } else {
            1.0 + (working_set_bytes - self.storage_mem_bytes) as f64 / self.storage_mem_bytes as f64
        }
    }
}

/// Simulated time, decomposed the way Figure 8 reports it.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostBreakdown {
    /// Near-data-processing work that vanilla CS would also pay: storage
    /// compute + device I/O + network + host compute.
    pub ndp_ns: f64,
    /// Freshness verification (Merkle traversals + RPMB).
    pub freshness_ns: f64,
    /// Page decryption/encryption.
    pub crypto_ns: f64,
    /// Enclave transitions.
    pub transitions_ns: f64,
    /// EPC paging.
    pub epc_ns: f64,
    /// Channel encryption, session setup, monitor round trips.
    pub other_ns: f64,
}

impl CostBreakdown {
    /// Total simulated time.
    pub fn total_ns(&self) -> f64 {
        self.ndp_ns + self.freshness_ns + self.crypto_ns + self.transitions_ns + self.epc_ns + self.other_ns
    }

    /// The span categories Figure 8 decomposes into, in struct order.
    pub const CATEGORIES: [&'static str; 6] =
        ["ndp", "freshness", "crypto", "transitions", "epc", "other"];

    /// Derive a breakdown from a telemetry trace: each span category in
    /// [`CostBreakdown::CATEGORIES`] sums into its field. Attributions
    /// are accumulated in span-creation order, so a run that attributes
    /// its cost terms in the same order as the old inline accumulation
    /// reproduces it bit-for-bit.
    pub fn from_trace(trace: &ironsafe_obs::TraceSnapshot) -> CostBreakdown {
        let mut b = CostBreakdown::default();
        for (category, ns) in trace.category_totals() {
            match category {
                "ndp" => b.ndp_ns = ns,
                "freshness" => b.freshness_ns = ns,
                "crypto" => b.crypto_ns = ns,
                "transitions" => b.transitions_ns = ns,
                "epc" => b.epc_ns = ns,
                "other" => b.other_ns = ns,
                unknown => panic!("unknown cost category in trace: {unknown}"),
            }
        }
        b
    }

    /// Accumulate another breakdown.
    pub fn add(&mut self, other: &CostBreakdown) {
        self.ndp_ns += other.ndp_ns;
        self.freshness_ns += other.freshness_ns;
        self.crypto_ns += other.crypto_ns;
        self.transitions_ns += other.transitions_ns;
        self.epc_ns += other.epc_ns;
        self.other_ns += other.other_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = CostParams::default();
        assert!(p.storage_cpu_factor > 1.0, "storage CPU is weaker");
        assert!(p.epc_fault_ns > p.enclave_transition_ns / 2);
        assert_eq!(p.storage_parallel(), 8.0, "16 cores capped at 8-way scans");
    }

    #[test]
    fn storage_compute_scales_down_with_cores() {
        let mut p = CostParams { storage_cores: 1, ..CostParams::default() };
        let one = p.storage_compute_ns(1000, 1);
        p.storage_cores = 8;
        let eight = p.storage_compute_ns(1000, 1);
        assert!((one / eight - 8.0).abs() < 1e-9);
        p.storage_cores = 16;
        let sixteen = p.storage_compute_ns(1000, 1);
        assert_eq!(eight, sixteen, "parallelism capped");
    }

    #[test]
    fn memory_penalty_kicks_in_past_capacity() {
        let p = CostParams { storage_mem_bytes: 1000, ..CostParams::default() };
        assert_eq!(p.storage_mem_penalty(500), 1.0);
        assert_eq!(p.storage_mem_penalty(1000), 1.0);
        assert_eq!(p.storage_mem_penalty(3000), 3.0);
    }

    #[test]
    fn breakdown_total_sums_components() {
        let b = CostBreakdown {
            ndp_ns: 1.0,
            freshness_ns: 2.0,
            crypto_ns: 3.0,
            transitions_ns: 4.0,
            epc_ns: 5.0,
            other_ns: 6.0,
        };
        assert_eq!(b.total_ns(), 21.0);
        let mut acc = CostBreakdown::default();
        acc.add(&b);
        acc.add(&b);
        assert_eq!(acc.total_ns(), 42.0);
    }

    #[test]
    fn interconnects_order_by_speed() {
        let bytes = 10_000_000;
        let pcie = CostParams::default().with_interconnect(Interconnect::NvmePcie);
        let fabric = CostParams::default().with_interconnect(Interconnect::NvmeOf);
        let tcp = CostParams::default().with_interconnect(Interconnect::TcpTls);
        assert!(pcie.net_ns(bytes, 10) < fabric.net_ns(bytes, 10));
        assert!(fabric.net_ns(bytes, 10) < tcp.net_ns(bytes, 10));
    }

    #[test]
    fn network_includes_latency_per_message() {
        let p = CostParams::default();
        let one_big = p.net_ns(1_000_000, 1);
        let many_small = p.net_ns(1_000_000, 100);
        assert!(many_small > one_big);
    }
}
