//! TPC-H correctness across configurations: every paper query must return
//! byte-identical results whether it runs host-only, split, or
//! storage-only, secure or not — the security and offloading machinery
//! must never change answers.

use ironsafe::csa::{CostParams, CsaSystem, SystemConfig};
use ironsafe::sql::QueryResult;
use ironsafe::tpch::queries::paper_queries;
use ironsafe::tpch::{generate, TpchData};

fn data() -> TpchData {
    generate(0.0015, 7)
}

fn run_all(config: SystemConfig, data: &TpchData) -> Vec<(u8, QueryResult)> {
    let mut sys = CsaSystem::build(config, data, CostParams::default()).unwrap();
    paper_queries()
        .iter()
        .map(|q| (q.id, sys.run_query(q).unwrap_or_else(|e| panic!("{} Q{}: {e}", config.abbrev(), q.id)).result))
        .collect()
}

#[test]
fn all_configs_agree_on_all_queries() {
    let d = data();
    let reference = run_all(SystemConfig::HostOnlyNonSecure, &d);
    for config in [
        SystemConfig::HostOnlySecure,
        SystemConfig::VanillaCs,
        SystemConfig::IronSafe,
        SystemConfig::StorageOnlySecure,
    ] {
        let results = run_all(config, &d);
        for ((id_a, a), (id_b, b)) in reference.iter().zip(results.iter()) {
            assert_eq!(id_a, id_b);
            assert_eq!(a, b, "Q{id_a} differs under {}", config.abbrev());
        }
    }
}

#[test]
fn queries_produce_plausible_shapes() {
    let d = data();
    let results = run_all(SystemConfig::VanillaCs, &d);
    let get = |id: u8| &results.iter().find(|(q, _)| *q == id).unwrap().1;

    // Q1: at most 4 (returnflag, linestatus) groups, all aggregates set.
    let q1 = get(1);
    assert!(!q1.rows().is_empty() && q1.rows().len() <= 4);
    // Q3: obeys LIMIT 10 and descends by revenue.
    let q3 = get(3);
    assert!(q3.rows().len() <= 10);
    let revenues: Vec<f64> = q3.rows().iter().map(|r| r[1].as_f64().unwrap()).collect();
    assert!(revenues.windows(2).all(|w| w[0] >= w[1]), "{revenues:?}");
    // Q4: order priorities sorted ascending.
    let q4 = get(4);
    let prios: Vec<&str> = q4.rows().iter().map(|r| r[0].as_str().unwrap()).collect();
    let mut sorted = prios.clone();
    sorted.sort();
    assert_eq!(prios, sorted);
    // Q6: one row, positive revenue.
    let q6 = get(6);
    assert_eq!(q6.rows().len(), 1);
    assert!(q6.rows()[0][0].as_f64().unwrap() > 0.0);
    // Q12: exactly the two ship modes MAIL and SHIP.
    let q12 = get(12);
    assert!(q12.rows().len() <= 2);
    for r in q12.rows() {
        assert!(["MAIL", "SHIP"].contains(&r[0].as_str().unwrap()));
    }
    // Q14: promo revenue is a percentage.
    let q14 = get(14);
    let pct = q14.rows()[0][0].as_f64().unwrap();
    assert!((0.0..=100.0).contains(&pct), "promo {pct}%");
}

#[test]
fn io_reduction_tracks_selectivity() {
    // Q6 (brutal filter) must reduce shipped data far more than Q13's
    // stage-1 (NOT LIKE keeps nearly all of orders) — this correlation is
    // the paper's Figure 7 ⇄ Figure 6 story.
    let d = data();
    let mut hons = CsaSystem::build(SystemConfig::HostOnlyNonSecure, &d, CostParams::default()).unwrap();
    let mut vcs = CsaSystem::build(SystemConfig::VanillaCs, &d, CostParams::default()).unwrap();
    let queries = paper_queries();
    let q6 = queries.iter().find(|q| q.id == 6).unwrap();
    let q13 = queries.iter().find(|q| q.id == 13).unwrap();

    let red = |hons_r: &ironsafe::csa::QueryReport, vcs_r: &ironsafe::csa::QueryReport| {
        hons_r.pages_shipped.max(1) as f64 / vcs_r.pages_shipped.max(1) as f64
    };
    let q6_red = red(&hons.run_query(q6).unwrap(), &vcs.run_query(q6).unwrap());
    let q13_red = red(&hons.run_query(q13).unwrap(), &vcs.run_query(q13).unwrap());
    assert!(q6_red > q13_red, "Q6 reduction {q6_red:.1} vs Q13 {q13_red:.1}");
}

#[test]
fn secure_overhead_is_bounded() {
    // IronSafe costs more than vanilla CS, but within an order of
    // magnitude (the paper's Figure 8 shows freshness-dominated but
    // bounded overheads).
    let d = data();
    let mut vcs = CsaSystem::build(SystemConfig::VanillaCs, &d, CostParams::default()).unwrap();
    let mut scs = CsaSystem::build(SystemConfig::IronSafe, &d, CostParams::default()).unwrap();
    for q in paper_queries() {
        let t_vcs = vcs.run_query(&q).unwrap().total_ns();
        let t_scs = scs.run_query(&q).unwrap().total_ns();
        assert!(t_scs >= t_vcs, "Q{}: security is never free", q.id);
        assert!(t_scs < t_vcs * 20.0, "Q{}: overhead {}x", q.id, t_scs / t_vcs);
    }
}
