//! A guided tour of IronSafe's trust establishment: secure boot, host and
//! storage attestation (Figures 4a/4b), and what happens when an attacker
//! shows up with tampered software.
//!
//! ```text
//! cargo run --release --example attestation_tour
//! ```

use ironsafe::crypto::group::Group;
use ironsafe::crypto::schnorr::KeyPair;
use ironsafe::monitor::monitor::MonitorConfig;
use ironsafe::monitor::TrustedMonitor;
use ironsafe::tee::image::SoftwareImage;
use ironsafe::tee::sgx::{AttestationService, EnclaveConfig, Quote, SgxPlatform};
use ironsafe::tee::trustzone::{
    AttestationTa, BootImages, Manufacturer, SecureBoot, SignedImage,
};
use rand::SeedableRng;

fn main() {
    let group = Group::modp_1024();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);

    // --- The trusted software stack. --------------------------------
    let host_image = SoftwareImage::new("host-engine", 5, b"ironsafe host engine".to_vec());
    println!("host engine measurement:     {:?}", host_image.measure());

    // --- SGX side: platform, enclave, IAS registration. --------------
    let platform = SgxPlatform::from_seed(&group, b"demo-host");
    let enclave = platform.create_enclave(&host_image, EnclaveConfig::default());
    let mut ias = AttestationService::new(&group);
    ias.register_platform(&platform);
    println!("SGX platform registered with the attestation service");

    // --- TrustZone side: manufacture + secure boot. -------------------
    let mfr = Manufacturer::from_seed(&group, b"demo-vendor");
    let vendor = KeyPair::derive(&group, b"demo-vendor", b"tz-manufacturer-root");
    let device = mfr.make_device("storage-0", 8, &mut rng);
    let images = BootImages {
        trusted_firmware: SignedImage::sign(&group, &vendor.secret, SoftwareImage::new("atf", 2, b"atf".to_vec()), &mut rng),
        trusted_os: SignedImage::sign(&group, &vendor.secret, SoftwareImage::new("optee", 34, b"op-tee 3.4".to_vec()), &mut rng),
        normal_world: SoftwareImage::new("nw", 5, b"linux + storage engine".to_vec()),
    };
    let booted = SecureBoot::boot(&device, &mfr.root_public(), &images, &mut rng).expect("secure boot");
    println!("storage secure boot ok; normal world measured: {:?}", booted.nw_measurement);
    println!("boot certificate chain: {} links (device → TF → trusted OS → normal world)", booted.chain.certs.len());

    // --- The monitor pins the stack and attests both nodes. -----------
    let config = MonitorConfig {
        expected_host_measurement: host_image.measure(),
        expected_nw_measurement: booted.nw_measurement,
        latest_fw: 5,
    };
    let mut monitor = TrustedMonitor::new(&group, 9, ias, mfr.root_public(), config);

    // Figure 4a: host quote, bound to a fresh session key.
    let host_keys = KeyPair::generate(&group, &mut rng);
    let commitment = ironsafe::crypto::sha256::sha256(&host_keys.public.to_bytes(&group));
    let quote = Quote::generate(&platform, &enclave, &commitment, &mut rng);
    let cert = monitor.attest_host("host-0", "EU", &quote, &host_keys.public).expect("host attests");
    println!("host attested; monitor certified its session key as `{}`", cert.subject.name);

    // Figure 4b: storage challenge/response over the boot chain.
    let challenge = monitor.storage_challenge();
    let response = AttestationTa::new(&booted).respond(challenge, &mut rng);
    monitor.attest_storage("storage-0", "EU", &response).expect("storage attests");
    println!("storage attested (challenge signed by the per-boot leaf key)");

    // --- Now the attacks. ---------------------------------------------
    println!("\n-- attacker round --");

    // A backdoored host engine measures differently: refused.
    let evil = platform.create_enclave(
        &SoftwareImage::new("host-engine", 5, b"ironsafe host engine + backdoor".to_vec()),
        EnclaveConfig::default(),
    );
    let evil_quote = Quote::generate(&platform, &evil, &commitment, &mut rng);
    let refused = monitor.attest_host("host-1", "EU", &evil_quote, &host_keys.public);
    println!("backdoored host engine:      {}", refused.unwrap_err());

    // A tampered trusted OS never even boots.
    let mut bad_images = images.clone();
    bad_images.trusted_os.image.code = b"rootkit".to_vec();
    let no_boot = SecureBoot::boot(&device, &mfr.root_public(), &bad_images, &mut rng);
    println!("tampered trusted OS:         {}", no_boot.unwrap_err());

    // A modified normal world boots, but the monitor refuses it.
    let mut nw_images = images.clone();
    nw_images.normal_world.code = b"linux + cryptominer".to_vec();
    let dirty = SecureBoot::boot(&device, &mfr.root_public(), &nw_images, &mut rng).expect("boots");
    let challenge = monitor.storage_challenge();
    let dirty_resp = AttestationTa::new(&dirty).respond(challenge, &mut rng);
    let refused = monitor.attest_storage("storage-1", "EU", &dirty_resp);
    println!("modified normal world:       {}", refused.unwrap_err());

    // A replayed attestation response is caught by the nonce.
    let refused = monitor.attest_storage("storage-0", "EU", &response);
    println!("replayed challenge response: {}", refused.unwrap_err());

    println!("\naudit log ({} entries) verifies: {}", monitor.audit().entries().len(), monitor.audit().verify());
}
