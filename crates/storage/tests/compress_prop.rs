//! Property tests for the page-compression codecs: every codec must
//! round-trip every input it is handed, and the framed page format must
//! reproduce the payload byte for byte regardless of which codec the
//! chooser picked.

use ironsafe_storage::codec::{
    compress_page, decompress_page, dict_compress, dict_decompress, rle_compress, rle_decompress,
};
use ironsafe_storage::pager::{Pager, PlainPager};
use ironsafe_storage::CompressedPager;
use proptest::collection::vec;
use proptest::prelude::*;

/// Payloads with structure the codecs exploit: literal noise, long
/// runs, repeated phrases, and splices of all three.
fn payload_strategy() -> impl Strategy<Value = Vec<u8>> {
    let noise = vec(any::<u8>(), 0..1500);
    let runs = vec((any::<u8>(), 1usize..400), 0..12).prop_map(|segments| {
        let mut out = Vec::new();
        for (byte, len) in segments {
            out.extend(std::iter::repeat_n(byte, len));
        }
        out
    });
    let phrases = || {
        vec(0usize..6, 0..60).prop_map(|picks| {
            let dict: [&[u8]; 6] =
                [b"1995-06-17", b"lineitem", b"N", b"ironsafe!", b"\x00\x00\x00\x00", b"R|A|N"];
            let mut out = Vec::new();
            for p in picks {
                out.extend_from_slice(dict[p]);
            }
            out
        })
    };
    prop_oneof![noise, runs, phrases(), (phrases(), vec(any::<u8>(), 0..200)).prop_map(
        |(mut a, b)| {
            a.extend_from_slice(&b);
            a
        }
    )]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn rle_roundtrips(payload in payload_strategy()) {
        let body = rle_compress(&payload);
        let back = rle_decompress(&body, payload.len()).unwrap();
        prop_assert_eq!(back, payload);
    }

    #[test]
    fn dict_roundtrips(payload in payload_strategy()) {
        let body = dict_compress(&payload);
        let back = dict_decompress(&body, payload.len()).unwrap();
        prop_assert_eq!(back, payload);
    }

    #[test]
    fn framed_page_roundtrips_whatever_codec_wins(payload in payload_strategy()) {
        let (_codec, framed) = compress_page(&payload);
        let back = decompress_page(&framed, payload.len()).unwrap();
        prop_assert_eq!(back, payload);
    }

    #[test]
    fn compressed_pager_roundtrips_full_pages(seed_bytes in vec(any::<u8>(), 1..64)) {
        // Tile a short random seed across a full logical page: repetition
        // varies per case, so all three codecs get exercised end to end
        // through the pager (allocate, store, stripe, read back).
        let mut pager = CompressedPager::new(PlainPager::new());
        let payload_len = pager.payload_size();
        let data: Vec<u8> =
            (0..payload_len).map(|i| seed_bytes[i % seed_bytes.len()]).collect();
        let id = pager.allocate_page().unwrap();
        pager.write_page(id, &data).unwrap();
        let mut back = vec![0u8; payload_len];
        pager.read_page(id, &mut back).unwrap();
        prop_assert_eq!(back, data);
    }
}
