//! Per-page authenticated encryption.
//!
//! Mirrors the SQLCipher layout the paper adopts: each stored 4 KiB block
//! holds a random IV, the AES-128-CBC ciphertext of the page payload, and
//! an HMAC-SHA512 (truncated to its 32-byte trailer slot) over
//! `page_id ‖ IV ‖ ciphertext` — the paper's exact MAC construction.
//! Binding the page id into the MAC stops an attacker from swapping two
//! well-formed pages (the Merkle tree additionally catches suppression and
//! whole-medium rollback).

use crate::blockdev::BLOCK_SIZE;
use crate::{Result, StorageError};
use ironsafe_crypto::aes::Aes128;
use ironsafe_crypto::hmac512::hmac_sha512_trunc256;
use ironsafe_crypto::modes::{cbc_decrypt_aligned, cbc_encrypt_aligned};

/// IV bytes at the head of each stored block.
const IV_LEN: usize = 16;
/// MAC bytes at the tail of each stored block.
const MAC_LEN: usize = 32;
/// Usable plaintext payload per page.
pub const PAGE_PAYLOAD: usize = BLOCK_SIZE - IV_LEN - MAC_LEN;

/// Encrypts/decrypts pages and computes their MACs.
pub struct PageCodec {
    aes: Aes128,
    mac_key: [u8; 32],
    /// Number of page encryptions performed (for the cost model).
    pub encrypt_count: u64,
    /// Number of page decryptions performed (for the cost model).
    pub decrypt_count: u64,
}

impl PageCodec {
    /// Build a codec from a 16-byte encryption key and 32-byte MAC key.
    pub fn new(enc_key: &[u8; 16], mac_key: &[u8; 32]) -> Self {
        PageCodec { aes: Aes128::new(enc_key), mac_key: *mac_key, encrypt_count: 0, decrypt_count: 0 }
    }

    /// Derive both keys from a single 16-byte database key (as SQLCipher
    /// derives its page keys from the user key).
    pub fn from_db_key(db_key: &[u8; 16]) -> Self {
        let enc = ironsafe_crypto::hkdf::derive_key_128(db_key, b"page-enc");
        let mac = ironsafe_crypto::hkdf::derive_key_256(db_key, b"page-mac");
        Self::new(&enc, &mac)
    }

    /// Encrypt `payload` (exactly [`PAGE_PAYLOAD`] bytes) for page
    /// `page_id`, producing a stored block and its MAC.
    pub fn encrypt_page(
        &mut self,
        page_id: u64,
        payload: &[u8],
        rng: &mut (impl rand::Rng + ?Sized),
    ) -> Result<([u8; BLOCK_SIZE], [u8; 32])> {
        if payload.len() != PAGE_PAYLOAD {
            return Err(StorageError::BadBufferSize { expected: PAGE_PAYLOAD, got: payload.len() });
        }
        let mut block = [0u8; BLOCK_SIZE];
        let mut iv = [0u8; IV_LEN];
        rng.fill(&mut iv);
        block[..IV_LEN].copy_from_slice(&iv);
        block[IV_LEN..IV_LEN + PAGE_PAYLOAD].copy_from_slice(payload);
        cbc_encrypt_aligned(&self.aes, &iv, &mut block[IV_LEN..IV_LEN + PAGE_PAYLOAD]);
        let mac = self.page_mac(page_id, &block);
        block[IV_LEN + PAGE_PAYLOAD..].copy_from_slice(&mac);
        self.encrypt_count += 1;
        Ok((block, mac))
    }

    /// Verify and decrypt a stored block into `out` (exactly
    /// [`PAGE_PAYLOAD`] bytes). Returns the page MAC for Merkle checking.
    pub fn decrypt_page(
        &mut self,
        page_id: u64,
        block: &[u8; BLOCK_SIZE],
        out: &mut [u8],
    ) -> Result<[u8; 32]> {
        if out.len() != PAGE_PAYLOAD {
            return Err(StorageError::BadBufferSize { expected: PAGE_PAYLOAD, got: out.len() });
        }
        let expect = self.page_mac(page_id, block);
        let stored: &[u8] = &block[IV_LEN + PAGE_PAYLOAD..];
        if !ironsafe_crypto::ct_eq(&expect, stored) {
            return Err(StorageError::IntegrityViolation("page MAC mismatch"));
        }
        let iv: [u8; IV_LEN] = block[..IV_LEN].try_into().expect("fixed split");
        out.copy_from_slice(&block[IV_LEN..IV_LEN + PAGE_PAYLOAD]);
        cbc_decrypt_aligned(&self.aes, &iv, out)
            .map_err(|_| StorageError::IntegrityViolation("page decryption failed"))?;
        self.decrypt_count += 1;
        Ok(expect)
    }

    /// HMAC-SHA512/256 over `page_id ‖ IV ‖ ciphertext`.
    pub fn page_mac(&self, page_id: u64, block: &[u8; BLOCK_SIZE]) -> [u8; 32] {
        hmac_sha512_trunc256(
            &self.mac_key,
            &[b"page", &page_id.to_be_bytes(), &block[..IV_LEN + PAGE_PAYLOAD]],
        )
    }
}

// ---------------------------------------------------------------------------
// Page compression (applied to the plaintext payload *before* encrypt+MAC)
// ---------------------------------------------------------------------------

/// Version tag in the compressed-page header. Bump on any format change:
/// the decoder rejects unknown versions instead of misreading them.
pub const COMPRESS_VERSION: u8 = 1;
/// Magic bytes at the head of every compressed page.
pub const COMPRESS_MAGIC: [u8; 2] = *b"IZ";
/// Fixed header: magic(2) ‖ version(1) ‖ codec(1) ‖ compressed_len(u32 BE)
/// ‖ logical_len(u32 BE) ‖ reserved(4).
pub const COMPRESS_HEADER: usize = 16;

/// Per-page compression codec, chosen independently for every page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Compression {
    /// Stored verbatim (incompressible page).
    Raw,
    /// Byte run-length encoding: `(run_len-1, byte)` pairs. Wins on
    /// zeroed/fresh pages and long constant tails.
    Rle,
    /// Windowed dictionary coding (LZ77-style): back-references into the
    /// already-emitted page bytes. Wins on heap pages, whose row records
    /// repeat value tags, zero-padded integers and shared text prefixes.
    Dict,
}

impl Compression {
    fn tag(self) -> u8 {
        match self {
            Compression::Raw => 0,
            Compression::Rle => 1,
            Compression::Dict => 2,
        }
    }

    fn from_tag(tag: u8) -> Result<Self> {
        match tag {
            0 => Ok(Compression::Raw),
            1 => Ok(Compression::Rle),
            2 => Ok(Compression::Dict),
            _ => Err(StorageError::IntegrityViolation("unknown compression codec tag")),
        }
    }
}

/// RLE-compress `input` as `(run_len-1, byte)` pairs.
pub fn rle_compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 4);
    let mut i = 0;
    while i < input.len() {
        let b = input[i];
        let mut run = 1usize;
        while run < 256 && i + run < input.len() && input[i + run] == b {
            run += 1;
        }
        out.push((run - 1) as u8);
        out.push(b);
        i += run;
    }
    out
}

/// Invert [`rle_compress`]. `logical_len` bounds the output.
pub fn rle_decompress(body: &[u8], logical_len: usize) -> Result<Vec<u8>> {
    if !body.len().is_multiple_of(2) {
        return Err(StorageError::IntegrityViolation("rle body truncated"));
    }
    let mut out = Vec::with_capacity(logical_len);
    for pair in body.chunks_exact(2) {
        let run = pair[0] as usize + 1;
        if out.len() + run > logical_len {
            return Err(StorageError::IntegrityViolation("rle run overflows page"));
        }
        out.resize(out.len() + run, pair[1]);
    }
    if out.len() != logical_len {
        return Err(StorageError::IntegrityViolation("rle body short of page"));
    }
    Ok(out)
}

/// Dict-codec parameters. Matches are 4..=131 bytes at offsets
/// 1..=65535 back; literals run 1..=128 bytes per token.
const DICT_MIN_MATCH: usize = 4;
const DICT_MAX_MATCH: usize = 131;
const DICT_MAX_LITERAL: usize = 128;
const DICT_HASH_BITS: u32 = 13;

fn dict_hash(window: &[u8]) -> usize {
    let v = u32::from_le_bytes([window[0], window[1], window[2], window[3]]);
    (v.wrapping_mul(2654435761) >> (32 - DICT_HASH_BITS)) as usize
}

fn dict_emit_literals(out: &mut Vec<u8>, lits: &[u8]) {
    for chunk in lits.chunks(DICT_MAX_LITERAL) {
        out.push((chunk.len() - 1) as u8);
        out.extend_from_slice(chunk);
    }
}

/// Dictionary-compress `input`: greedy hash-table matching against the
/// page's own history window.
pub fn dict_compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2);
    let mut htab = vec![usize::MAX; 1 << DICT_HASH_BITS];
    let mut lit_start = 0usize;
    let mut i = 0usize;
    while i + DICT_MIN_MATCH <= input.len() {
        let h = dict_hash(&input[i..]);
        let cand = htab[h];
        htab[h] = i;
        let hit = cand != usize::MAX
            && i - cand <= u16::MAX as usize
            && input[cand..cand + DICT_MIN_MATCH] == input[i..i + DICT_MIN_MATCH];
        if hit {
            let mut len = DICT_MIN_MATCH;
            let max = DICT_MAX_MATCH.min(input.len() - i);
            while len < max && input[cand + len] == input[i + len] {
                len += 1;
            }
            dict_emit_literals(&mut out, &input[lit_start..i]);
            out.push(0x80 | (len - DICT_MIN_MATCH) as u8);
            out.extend_from_slice(&((i - cand) as u16).to_be_bytes());
            // Seed the table across the matched span so later repeats of
            // its interior still find a reference.
            let end = (i + len).min(input.len() - DICT_MIN_MATCH + 1);
            let mut j = i + 1;
            while j < end {
                htab[dict_hash(&input[j..])] = j;
                j += 1;
            }
            i += len;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    dict_emit_literals(&mut out, &input[lit_start..]);
    out
}

/// Invert [`dict_compress`]. `logical_len` bounds the output.
pub fn dict_decompress(body: &[u8], logical_len: usize) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(logical_len);
    let mut i = 0usize;
    while i < body.len() {
        let ctrl = body[i];
        i += 1;
        if ctrl & 0x80 != 0 {
            let len = (ctrl & 0x7f) as usize + DICT_MIN_MATCH;
            if i + 2 > body.len() {
                return Err(StorageError::IntegrityViolation("dict match truncated"));
            }
            let off = u16::from_be_bytes([body[i], body[i + 1]]) as usize;
            i += 2;
            if off == 0 || off > out.len() || out.len() + len > logical_len {
                return Err(StorageError::IntegrityViolation("dict match out of window"));
            }
            // Byte-at-a-time: overlapping matches (offset < len) replicate.
            let start = out.len() - off;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        } else {
            let len = ctrl as usize + 1;
            if i + len > body.len() || out.len() + len > logical_len {
                return Err(StorageError::IntegrityViolation("dict literal overflows page"));
            }
            out.extend_from_slice(&body[i..i + len]);
            i += len;
        }
    }
    if out.len() != logical_len {
        return Err(StorageError::IntegrityViolation("dict body short of page"));
    }
    Ok(out)
}

/// Compress `payload` with whichever codec yields the smallest framed
/// page, raw fallback included. Returns the codec chosen and the full
/// framed bytes (versioned header + body).
pub fn compress_page(payload: &[u8]) -> (Compression, Vec<u8>) {
    let rle = rle_compress(payload);
    let dict = dict_compress(payload);
    let (codec, body) = if dict.len() < payload.len() && dict.len() <= rle.len() {
        (Compression::Dict, dict)
    } else if rle.len() < payload.len() {
        (Compression::Rle, rle)
    } else {
        (Compression::Raw, payload.to_vec())
    };
    let mut framed = Vec::with_capacity(COMPRESS_HEADER + body.len());
    framed.extend_from_slice(&COMPRESS_MAGIC);
    framed.push(COMPRESS_VERSION);
    framed.push(codec.tag());
    framed.extend_from_slice(&(body.len() as u32).to_be_bytes());
    framed.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    framed.extend_from_slice(&[0u8; 4]);
    framed.extend_from_slice(&body);
    (codec, framed)
}

/// Decode a framed compressed page (as produced by [`compress_page`];
/// trailing padding after the body is ignored). `expected_len` is the
/// logical payload size the caller requires.
pub fn decompress_page(framed: &[u8], expected_len: usize) -> Result<Vec<u8>> {
    if framed.len() < COMPRESS_HEADER {
        return Err(StorageError::IntegrityViolation("compressed page shorter than header"));
    }
    if framed[0..2] != COMPRESS_MAGIC {
        return Err(StorageError::IntegrityViolation("compressed page bad magic"));
    }
    if framed[2] != COMPRESS_VERSION {
        return Err(StorageError::IntegrityViolation("compressed page unknown version"));
    }
    let codec = Compression::from_tag(framed[3])?;
    let clen = u32::from_be_bytes(framed[4..8].try_into().expect("4")) as usize;
    let llen = u32::from_be_bytes(framed[8..12].try_into().expect("4")) as usize;
    if llen != expected_len {
        return Err(StorageError::BadBufferSize { expected: expected_len, got: llen });
    }
    if COMPRESS_HEADER + clen > framed.len() {
        return Err(StorageError::IntegrityViolation("compressed body overruns page"));
    }
    let body = &framed[COMPRESS_HEADER..COMPRESS_HEADER + clen];
    match codec {
        Compression::Raw => {
            if body.len() != llen {
                return Err(StorageError::IntegrityViolation("raw body length mismatch"));
            }
            Ok(body.to_vec())
        }
        Compression::Rle => rle_decompress(body, llen),
        Compression::Dict => dict_decompress(body, llen),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn codec() -> PageCodec {
        PageCodec::from_db_key(&[0x11; 16])
    }

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(2)
    }

    #[test]
    fn roundtrip() {
        let mut c = codec();
        let mut r = rng();
        let payload: Vec<u8> = (0..PAGE_PAYLOAD).map(|i| (i % 251) as u8).collect();
        let (block, _) = c.encrypt_page(42, &payload, &mut r).unwrap();
        let mut out = vec![0u8; PAGE_PAYLOAD];
        c.decrypt_page(42, &block, &mut out).unwrap();
        assert_eq!(out, payload);
        assert_eq!((c.encrypt_count, c.decrypt_count), (1, 1));
    }

    #[test]
    fn wrong_page_id_rejected() {
        // Prevents the displacement attack at the codec level.
        let mut c = codec();
        let mut r = rng();
        let payload = vec![7u8; PAGE_PAYLOAD];
        let (block, _) = c.encrypt_page(1, &payload, &mut r).unwrap();
        let mut out = vec![0u8; PAGE_PAYLOAD];
        assert_eq!(
            c.decrypt_page(2, &block, &mut out),
            Err(StorageError::IntegrityViolation("page MAC mismatch"))
        );
    }

    #[test]
    fn ciphertext_tamper_rejected() {
        let mut c = codec();
        let mut r = rng();
        let payload = vec![7u8; PAGE_PAYLOAD];
        let (mut block, _) = c.encrypt_page(1, &payload, &mut r).unwrap();
        block[100] ^= 1;
        let mut out = vec![0u8; PAGE_PAYLOAD];
        assert!(c.decrypt_page(1, &block, &mut out).is_err());
    }

    #[test]
    fn iv_tamper_rejected() {
        let mut c = codec();
        let mut r = rng();
        let (mut block, _) = c.encrypt_page(1, &vec![0u8; PAGE_PAYLOAD], &mut r).unwrap();
        block[0] ^= 1;
        let mut out = vec![0u8; PAGE_PAYLOAD];
        assert!(c.decrypt_page(1, &block, &mut out).is_err());
    }

    #[test]
    fn mac_tamper_rejected() {
        let mut c = codec();
        let mut r = rng();
        let (mut block, _) = c.encrypt_page(1, &vec![0u8; PAGE_PAYLOAD], &mut r).unwrap();
        block[BLOCK_SIZE - 1] ^= 1;
        let mut out = vec![0u8; PAGE_PAYLOAD];
        assert!(c.decrypt_page(1, &block, &mut out).is_err());
    }

    #[test]
    fn same_payload_distinct_ciphertext() {
        let mut c = codec();
        let mut r = rng();
        let payload = vec![0u8; PAGE_PAYLOAD];
        let (b1, m1) = c.encrypt_page(1, &payload, &mut r).unwrap();
        let (b2, m2) = c.encrypt_page(1, &payload, &mut r).unwrap();
        assert_ne!(b1[..], b2[..], "random IVs");
        assert_ne!(m1, m2);
    }

    #[test]
    fn wrong_key_cannot_decrypt() {
        let mut c1 = PageCodec::from_db_key(&[1; 16]);
        let mut c2 = PageCodec::from_db_key(&[2; 16]);
        let mut r = rng();
        let (block, _) = c1.encrypt_page(0, &vec![9u8; PAGE_PAYLOAD], &mut r).unwrap();
        let mut out = vec![0u8; PAGE_PAYLOAD];
        assert!(c2.decrypt_page(0, &block, &mut out).is_err());
    }

    #[test]
    fn bad_sizes_rejected() {
        let mut c = codec();
        let mut r = rng();
        assert!(matches!(
            c.encrypt_page(0, &[0u8; 10], &mut r),
            Err(StorageError::BadBufferSize { .. })
        ));
        let (block, _) = c.encrypt_page(0, &vec![0u8; PAGE_PAYLOAD], &mut r).unwrap();
        let mut small = vec![0u8; 10];
        assert!(matches!(
            c.decrypt_page(0, &block, &mut small),
            Err(StorageError::BadBufferSize { .. })
        ));
    }

    #[test]
    fn payload_is_block_aligned_for_cbc() {
        assert_eq!(PAGE_PAYLOAD % 16, 0);
    }

    fn roundtrip_compressed(payload: &[u8]) -> Compression {
        let (codec, framed) = compress_page(payload);
        let back = decompress_page(&framed, payload.len()).unwrap();
        assert_eq!(back, payload, "roundtrip under {codec:?}");
        codec
    }

    #[test]
    fn zero_page_compresses_to_a_sliver() {
        let payload = vec![0u8; 4 * PAGE_PAYLOAD];
        let (codec, framed) = compress_page(&payload);
        assert_ne!(codec, Compression::Raw);
        assert!(framed.len() < payload.len() / 16, "{} bytes", framed.len());
        assert_eq!(decompress_page(&framed, payload.len()).unwrap(), payload);
    }

    #[test]
    fn incompressible_page_falls_back_to_raw() {
        // A keyed PRF stream has no runs and no repeats the window finds.
        let mut payload = Vec::new();
        let mut i = 0u64;
        while payload.len() < PAGE_PAYLOAD {
            payload
                .extend_from_slice(&hmac_sha512_trunc256(&[0x5a; 32], &[&i.to_be_bytes()])[..]);
            i += 1;
        }
        payload.truncate(PAGE_PAYLOAD);
        let codec = roundtrip_compressed(&payload);
        assert_eq!(codec, Compression::Raw);
        let (_, framed) = compress_page(&payload);
        assert_eq!(framed.len(), COMPRESS_HEADER + payload.len());
    }

    #[test]
    fn repetitive_page_picks_dict() {
        let record = b"\x01\x00\x00\x00\x00\x00\x00\x00\x2a\x03\x00\x00\x00\x0a1994-01-01";
        let mut payload = Vec::new();
        while payload.len() + record.len() <= PAGE_PAYLOAD {
            payload.extend_from_slice(record);
        }
        payload.resize(PAGE_PAYLOAD, 0);
        let codec = roundtrip_compressed(&payload);
        assert_eq!(codec, Compression::Dict);
        let (_, framed) = compress_page(&payload);
        assert!(framed.len() * 3 < payload.len(), "{} bytes", framed.len());
    }

    #[test]
    fn overlapping_matches_replicate() {
        // "abcabcabc…" forces offset < length back-references.
        let payload: Vec<u8> = b"abc".iter().cycle().take(1000).copied().collect();
        roundtrip_compressed(&payload);
    }

    #[test]
    fn corrupt_compressed_pages_error_cleanly() {
        let payload = vec![7u8; 512];
        let (_, mut framed) = compress_page(&payload);
        assert!(decompress_page(&framed[..8], 512).is_err(), "truncated header");
        assert!(decompress_page(&framed, 513).is_err(), "wrong expected length");
        framed[0] ^= 1;
        assert!(decompress_page(&framed, 512).is_err(), "bad magic");
        framed[0] ^= 1;
        framed[2] = 99;
        assert!(decompress_page(&framed, 512).is_err(), "unknown version");
        framed[2] = COMPRESS_VERSION;
        framed[3] = 7;
        assert!(decompress_page(&framed, 512).is_err(), "unknown codec tag");
        framed[3] = Compression::Rle.tag();
        framed[4..8].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(decompress_page(&framed, 512).is_err(), "body overruns page");
    }

    #[test]
    fn trailing_padding_after_body_is_ignored() {
        let payload = vec![9u8; 300];
        let (_, mut framed) = compress_page(&payload);
        framed.resize(framed.len() + 100, 0);
        assert_eq!(decompress_page(&framed, 300).unwrap(), payload);
    }
}
